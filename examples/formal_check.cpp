// Formal equivalence CLI: reads two structural Verilog netlists (such as
// those written by export_rtl or by hand) and proves or refutes their
// equivalence — under full ternary (metastability) semantics by default,
// or classical Boolean semantics with --semantics boolean. A "mini-Formality" for the
// MC design style: two netlists a synthesis tool considers equal may well
// differ under metastability, and this tool finds the witness.
//
//   $ ./export_rtl --bits 8 --out a.v
//   $ ./export_rtl --bits 8 --no-opt --out b.v
//   $ ./formal_check a.v b.v
//   PROVED ternary-equivalent (...)

#include <fstream>
#include <iostream>
#include <sstream>

#include "mcsn/mcsn.hpp"

namespace {

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcsn;
  const CliArgs args(argc, argv);
  if (args.positional().size() != 2) {
    std::cerr << "usage: formal_check [--semantics boolean|ternary] a.v b.v\n";
    return 2;
  }
  Netlist circuits[2];
  for (int i = 0; i < 2; ++i) {
    const std::string& path = args.positional()[static_cast<std::size_t>(i)];
    const auto text = slurp(path);
    if (!text) {
      std::cerr << "cannot read " << path << "\n";
      return 2;
    }
    VerilogError err;
    auto nl = parse_verilog(*text, &err);
    if (!nl) {
      std::cerr << path << ":" << err.line << ": " << err.message << "\n";
      return 2;
    }
    circuits[i] = std::move(*nl);
  }
  if (circuits[0].inputs().size() != circuits[1].inputs().size() ||
      circuits[0].outputs().size() != circuits[1].outputs().size()) {
    std::cerr << "interface mismatch: " << circuits[0].inputs().size() << "/"
              << circuits[0].outputs().size() << " vs "
              << circuits[1].inputs().size() << "/"
              << circuits[1].outputs().size() << "\n";
    return 2;
  }

  FormalEquivOptions opt;
  const bool boolean_mode = args.get_or("semantics", "ternary") == "boolean";
  if (boolean_mode) opt.semantics = EquivSemantics::boolean_only;
  const char* mode = boolean_mode ? "Boolean" : "ternary";
  try {
    const FormalEquivResult res =
        check_equivalence_formal(circuits[0], circuits[1], opt);
    if (res.equivalent) {
      std::cout << "PROVED " << mode << "-equivalent ("
                << circuits[0].inputs().size() << " inputs, "
                << res.bdd_nodes << " BDD nodes)\n";
      return 0;
    }
    std::cout << "NOT " << mode << "-equivalent; witness input: "
              << res.witness->str() << "\n";
    std::cout << "  " << circuits[0].name() << " -> "
              << evaluate(circuits[0], *res.witness) << "\n";
    std::cout << "  " << circuits[1].name() << " -> "
              << evaluate(circuits[1], *res.witness) << "\n";
    return 1;
  } catch (const std::length_error&) {
    std::cerr << "BDD node limit exceeded; try --semantics boolean or a better "
                 "input order\n";
    return 2;
  }
}
