// FSM trace: steps the Gray-code comparison FSM (paper Fig. 2) bit by bit on
// two inputs and prints the state trajectory and per-bit outputs (Table 4),
// including the metastable-closure states for marginal inputs.
//
//   $ ./fsm_trace 0M10 0110
//   $ ./fsm_trace              (uses the paper's example words)

#include <iostream>
#include <string>

#include "mcsn/mcsn.hpp"

int main(int argc, char** argv) {
  using namespace mcsn;
  const CliArgs args(argc, argv);

  std::string gs = "0M10";
  std::string hs = "0110";
  if (args.positional().size() >= 2) {
    gs = args.positional()[0];
    hs = args.positional()[1];
  }
  const auto g = Word::parse(gs);
  const auto h = Word::parse(hs);
  if (!g || !h || g->size() != h->size() || g->empty()) {
    std::cerr << "usage: fsm_trace <word> <word>   (equal-width over 0/1/M)\n";
    return 1;
  }
  if (!is_valid_string(*g) || !is_valid_string(*h)) {
    std::cerr << "note: inputs are not valid strings; the closure-FSM output "
                 "below is still defined but Theorem 4.3 does not apply.\n";
  }

  TextTable table({"i", "g_i h_i", "state before", "label", "out (max,min)",
                   "state after"});
  GrayCompareFsm fsm;
  Word mx(g->size()), mn(g->size());
  for (std::size_t i = 0; i < g->size(); ++i) {
    const TritPair before = fsm.state();
    const TritPair out = fsm.step((*g)[i], (*h)[i]);
    mx[i] = out.first;
    mn[i] = out.second;
    table.add_row({std::to_string(i + 1),
                   std::string{to_char((*g)[i]), to_char((*h)[i])},
                   before.str(), std::string(fsm_state_label(before)),
                   out.str(), fsm.state().str()});
  }
  std::cout << "g = " << *g << ", h = " << *h << "\n\n";
  table.print(std::cout);
  std::cout << "\nmax = " << mx << "\nmin = " << mn << "\n";

  if (is_valid_string(*g) && is_valid_string(*h)) {
    const auto [smax, smin] = sort2_spec_rank(*g, *h);
    std::cout << "spec: max = " << smax << ", min = " << smin << "  ("
              << ((smax == mx && smin == mn) ? "match" : "MISMATCH") << ")\n";
  }
  return 0;
}
