// RTL export: replicates the paper's design-entry step. Builds the chosen
// MC circuit, runs the ternary-exact optimizer, and writes the hand-mapped
// structural Verilog (plus optional DOT) that the paper's flow would place
// and route with optimization disabled.
//
//   $ ./export_rtl --bits 16 --out sort2_b16.v
//   $ ./export_rtl --network 10-sortd --bits 8 --out sorter.v --no-opt

#include <fstream>
#include <iostream>

#include "mcsn/mcsn.hpp"

int main(int argc, char** argv) {
  using namespace mcsn;
  const CliArgs args(argc, argv);
  const std::size_t bits =
      static_cast<std::size_t>(args.get_long_or("bits", 16));

  Netlist nl;
  if (const auto netname = args.get("network")) {
    bool found = false;
    for (const ComparatorNetwork& cand : paper_networks()) {
      if (cand.name() == *netname) {
        nl = elaborate_network(cand, bits, sort2_builder());
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown network '" << *netname << "'\n";
      return 1;
    }
  } else {
    nl = make_sort2(bits);
  }

  std::cout << "built:     " << compute_stats(nl) << "\n";
  if (!args.has("no-opt")) {
    OptResult res = optimize(nl);
    // Safety net, mirroring the paper's concern about synthesis: prove the
    // optimized netlist ternary-equivalent before exporting it.
    EquivOptions eq;
    eq.exhaustive_bound = 1u << 14;
    eq.random_samples = 20'000;
    if (const auto mismatch = check_equivalence(nl, res.netlist, eq)) {
      std::cerr << "optimizer bug: " << mismatch->describe() << "\n";
      return 1;
    }
    std::cout << "optimized: " << compute_stats(res.netlist)
              << "  (ternary-equivalence verified)\n";
    nl = std::move(res.netlist);
  }

  const std::string path = args.get_or("out", "");
  if (path.empty()) {
    write_verilog(std::cout, nl);
  } else {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    write_verilog(f, nl);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
