// Netlist explorer: build any circuit from this library, print its report
// (gate histogram, area, STA critical path), and optionally dump DOT or a
// VCD trace of a metastability-resolution event.
//
//   $ ./netlist_explorer --circuit sort2 --bits 16 --ppc ladner-fischer
//   $ ./netlist_explorer --circuit date17 --bits 8
//   $ ./netlist_explorer --network 10-sortd --bits 4
//   $ ./netlist_explorer --circuit sort2 --bits 4 --dot
//   $ ./netlist_explorer --circuit sort2 --bits 4 --vcd

#include <iostream>

#include "mcsn/mcsn.hpp"

namespace {

void print_report(const mcsn::Netlist& nl) {
  using namespace mcsn;
  const auto& lib = CellLibrary::paper_calibrated();
  const CircuitStats s = compute_stats(nl, lib);
  std::cout << s << "\n";
  const TimingReport rep = analyze_timing(nl, lib);
  std::cout << "critical path (" << rep.critical_path.size()
            << " nodes): input";
  for (const NodeId id : rep.critical_path) {
    if (is_gate(nl.node(id).kind)) {
      std::cout << " -> " << cell_name(nl.node(id).kind);
    }
  }
  std::cout << " [" << TextTable::num(rep.critical_delay, 1) << " ps]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcsn;
  const CliArgs args(argc, argv);
  const std::size_t bits =
      static_cast<std::size_t>(args.get_long_or("bits", 8));

  Netlist nl;
  if (const auto netname = args.get("network")) {
    ComparatorNetwork net = depth_optimal_10();
    bool found = false;
    for (const ComparatorNetwork& cand : paper_networks()) {
      if (cand.name() == *netname) {
        net = cand;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown network '" << *netname
                << "' (try 4-sort, 7-sort, 10-sort#, 10-sortd)\n";
      return 1;
    }
    std::cout << net;
    nl = elaborate_network(net, bits, sort2_builder());
  } else {
    const std::string kind = args.get_or("circuit", "sort2");
    if (kind == "sort2") {
      const auto topo =
          ppc_topology_from_name(args.get_or("ppc", "ladner-fischer"));
      if (!topo) {
        std::cerr << "unknown --ppc topology\n";
        return 1;
      }
      nl = make_sort2(bits, Sort2Options{*topo});
    } else if (kind == "date17") {
      nl = make_sort2_date17_style(bits);
    } else if (kind == "naive") {
      nl = make_sort2_naive_trees(bits);
    } else if (kind == "bincomp") {
      nl = make_bincomp(bits);
    } else {
      std::cerr << "unknown --circuit '" << kind
                << "' (try sort2, date17, naive, bincomp)\n";
      return 1;
    }
  }

  print_report(nl);

  if (args.has("dot")) {
    write_dot(std::cout, nl);
  }
  if (args.has("vcd")) {
    // Trace a resolution event: g marginal between 2 and 3, h = 1.
    EventSimulator sim(nl, CellLibrary::paper_calibrated());
    const std::size_t width = nl.inputs().size();
    Word stim(width, Trit::zero);
    const Word g = valid_from_rank(5, bits);  // rg(2)*rg(3)
    const Word h = valid_from_rank(2, bits);  // rg(1)
    for (std::size_t i = 0; i < bits && i < width; ++i) stim[i] = g[i];
    for (std::size_t i = 0; i < bits && bits + i < width; ++i) {
      stim[bits + i] = h[i];
    }
    for (std::size_t i = 0; i < width; ++i) sim.set_input(i, stim[i], 0.0);
    sim.run();
    sim.set_input(*g.first_meta(), Trit::one, 2000.0);
    sim.run();
    write_vcd(std::cout, nl, sim);
  }
  return 0;
}
