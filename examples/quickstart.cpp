// Quickstart: build the paper's metastability-containing 2-sort(8), feed it
// two Gray-coded measurements — one of them marginal (containing an M bit) —
// and show that the circuit sorts them without amplifying the uncertainty.
//
//   $ ./quickstart

#include <iostream>

#include "mcsn/mcsn.hpp"

int main() {
  using namespace mcsn;

  constexpr std::size_t kBits = 8;

  // 1. Build the circuit (Fig. 5 of the paper): Ladner-Fischer parallel
  //    prefix over the ^⋄M operator, plus one outM block per bit.
  const Netlist circuit = make_sort2(kBits);
  const CircuitStats stats = compute_stats(circuit);
  std::cout << "Circuit: " << stats << "\n\n";

  // 2. Two measurements. g is a clean reading of value 100. h was sampled
  //    while crossing between 100 and 101, so one bit is metastable: h is
  //    the superposition rg(100) * rg(101).
  const Word g = gray_encode(100, kBits);
  Word h = gray_encode(100, kBits);
  h[gray_flip_index(100, kBits)] = Trit::meta;

  std::cout << "g = " << g << "  (rg(100))\n";
  std::cout << "h = " << h << "  (rg(100) * rg(101), one metastable bit)\n\n";

  // 3. Simulate with worst-case metastability semantics.
  const Word out = evaluate(circuit, g + h);
  const Word max = out.sub(0, kBits - 1);
  const Word min = out.sub(kBits, 2 * kBits - 1);

  std::cout << "max = " << max << "  (rank " << *valid_rank(max) << ")\n";
  std::cout << "min = " << min << "  (rank " << *valid_rank(min) << ")\n\n";

  // 4. The guarantee: outputs match the metastable closure of max/min, i.e.
  //    the M was neither duplicated nor spread: min is exactly 100, max is
  //    still "between 100 and 101".
  const auto [smax, smin] = sort2_spec_rank(g, h);
  std::cout << "spec says max = " << smax << ", min = " << smin << " -> "
            << (max == smax && min == smin ? "MATCH" : "MISMATCH") << "\n";

  // 5. If the metastable bit later resolves, the already-computed outputs
  //    resolve consistently (refinement monotonicity).
  for (const Trit r : {Trit::zero, Trit::one}) {
    Word hr = h;
    hr[*h.first_meta()] = r;
    const Word out_r = evaluate(circuit, g + hr);
    std::cout << "if the M resolves to " << r << ": max,min = "
              << out_r.sub(0, kBits - 1) << ","
              << out_r.sub(kBits, 2 * kBits - 1)
              << "  (refines the metastable answer: "
              << (out.matches_resolution(out_r) ? "yes" : "NO") << ")\n";
  }

  // 6. Production-scale use: the McSorter facade sorts whole measurement
  //    batches through the compiled 256-lane engine in one call.
  McSorter sorter(10, kBits);  // 10 channels, 8 bits
  std::vector<std::vector<std::uint64_t>> rounds;
  for (std::uint64_t r = 0; r < 5; ++r) {
    std::vector<std::uint64_t> round;
    for (std::uint64_t c = 0; c < 10; ++c) {
      round.push_back((r * 37 + c * 91) % 200);
    }
    rounds.push_back(round);
  }
  const auto sorted = sorter.sort_values_batch(rounds);
  std::cout << "\nBatch-sorted " << sorted.size()
            << " ten-channel rounds; round 0:";
  for (const std::uint64_t v : sorted[0]) std::cout << " " << v;
  std::cout << "\n";

  // 7. For streaming traffic there is SortService (micro-batching over
  //    this same engine), and for network clients a TCP front-end — see
  //    examples/net_client.cpp against `tool_sortd --listen`.
  return 0;
}
