// Clock-synchronization scenario (the paper's motivating application, cf.
// the TDC reference [7]): a node measures clock offsets to 10 remote nodes
// with time-to-digital converters. Each TDC reports a B-bit Gray code value;
// when a signal edge races the sampling clock, the affected code word
// contains one metastable bit (a valid string "between x and x+1").
//
// Fault-tolerant clock sync needs order statistics (e.g. discard the k
// smallest/largest and average the middle) — so the measurements must be
// SORTED before metastability has time to resolve. This example runs the
// full MC 10-sort network on randomized measurement rounds and verifies:
//   * outputs are always rank-sorted valid strings,
//   * marginal measurements stay contained (#metastable output channels =
//     #metastable input channels),
//   * the non-containing Bin-comp design, in contrast, poisons many bits.
//
//   $ ./tdc_sorting [--rounds 1000] [--bits 8] [--seed 7]

#include <algorithm>
#include <iostream>
#include <vector>

#include "mcsn/mcsn.hpp"

namespace {

struct Measurement {
  mcsn::Word code;
  std::uint64_t rank;
};

// A TDC measurement of a real-valued offset in [0, 2^bits - 1): values close
// to a code boundary come out marginal.
Measurement measure(double offset, std::size_t bits) {
  const auto x = static_cast<std::uint64_t>(offset);
  const double frac = offset - static_cast<double>(x);
  // Within 5% of the boundary: the sampled bit is metastable.
  if (frac > 0.95) {
    mcsn::Word w = mcsn::gray_encode(x, bits);
    w[mcsn::gray_flip_index(x, bits)] = mcsn::Trit::meta;
    return {w, 2 * x + 1};
  }
  return {mcsn::gray_encode(x, bits), 2 * x};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcsn;
  const CliArgs args(argc, argv);
  const std::size_t bits =
      static_cast<std::size_t>(args.get_long_or("bits", 8));
  const long rounds = args.get_long_or("rounds", 1000);
  Xoshiro256 rng(static_cast<std::uint64_t>(args.get_long_or("seed", 7)));

  const ComparatorNetwork net = depth_optimal_10();
  const Netlist sorter = elaborate_network(net, bits, sort2_builder());
  const Netlist binary = elaborate_network(net, bits, bincomp_builder());
  std::cout << "MC sorter:     " << compute_stats(sorter) << "\n";
  std::cout << "binary sorter: " << compute_stats(binary) << "\n\n";

  Evaluator mc_eval(sorter);
  Evaluator bin_eval(binary);

  long marginal_rounds = 0;
  long contained = 0;
  long bin_poisoned_bits = 0;
  long mc_meta_bits = 0;
  Word mc_out, bin_out;
  std::vector<Trit> in;

  const double span = static_cast<double>((1u << bits) - 1);
  for (long round = 0; round < rounds; ++round) {
    std::vector<Measurement> ms;
    std::size_t marginal_inputs = 0;
    in.clear();
    for (int c = 0; c < net.channels(); ++c) {
      const double offset = rng.uniform() * span;
      ms.push_back(measure(offset, bits));
      marginal_inputs += ms.back().code.is_stable() ? 0 : 1;
      in.insert(in.end(), ms.back().code.begin(), ms.back().code.end());
    }
    mc_eval.run_outputs(in, mc_out);
    bin_eval.run_outputs(in, bin_out);

    // Verify: MC output channels are the rank-sorted inputs.
    std::vector<std::uint64_t> ranks;
    for (const Measurement& m : ms) ranks.push_back(m.rank);
    std::sort(ranks.begin(), ranks.end());
    std::size_t marginal_outputs = 0;
    for (int c = 0; c < net.channels(); ++c) {
      const Word ch = mc_out.sub(static_cast<std::size_t>(c) * bits,
                                 (static_cast<std::size_t>(c) + 1) * bits - 1);
      const auto r = valid_rank(ch);
      if (!r || *r != ranks[static_cast<std::size_t>(c)]) {
        std::cerr << "SORTING BUG in round " << round << "\n";
        return 1;
      }
      marginal_outputs += ch.is_stable() ? 0 : 1;
      for (const Trit t : ch) mc_meta_bits += is_meta(t) ? 1 : 0;
    }
    if (marginal_inputs > 0) {
      ++marginal_rounds;
      if (marginal_outputs == marginal_inputs) ++contained;
    }
    for (const Trit t : bin_out) bin_poisoned_bits += is_meta(t) ? 1 : 0;
  }

  std::cout << "rounds:                         " << rounds << "\n";
  std::cout << "rounds with marginal input:     " << marginal_rounds << "\n";
  std::cout << "  contained by MC sorter:       " << contained << " ("
            << (marginal_rounds ? 100.0 * contained / marginal_rounds : 100.0)
            << "%)\n";
  std::cout << "metastable output bits, MC:     " << mc_meta_bits
            << " (exactly one per marginal measurement)\n";
  std::cout << "metastable output bits, binary: " << bin_poisoned_bits
            << " (uncontained spread)\n";
  return contained == marginal_rounds ? 0 : 1;
}
