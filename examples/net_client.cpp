// Network quickstart: the SortRequest API end-to-end over a socket,
// against a running `tool_sortd --listen` (TCP) or `--listen-unix`
// (AF_UNIX) server. Demonstrates the request flavors a real TDC client
// uses — integer values, zero-copy trit views, a marginal (metastable)
// measurement that must cross the wire without being amplified, and a
// multi-round batch frame (wire v2) that amortizes framing over a whole
// group — plus deadline budgets and error handling.
//
//   $ ./tool_sortd --listen 0 &          # prints "listening on 127.0.0.1:P"
//   $ ./example_net_client --port P
//   $ ./tool_sortd --listen-unix /tmp/mcsn.sock &
//   $ ./example_net_client --unix /tmp/mcsn.sock
//
// With --stats the client is a scraper instead: it sends a STATS admin
// frame (wire v2), validates the reply in BOTH formats, and prints the
// one picked by --format json|prometheus (default json) on stdout — CI
// pipes it into scripts/check_metrics.py.
//
//   $ ./example_net_client --port P --stats | python3 scripts/check_metrics.py
//   $ ./example_net_client --port P --stats --format prometheus
//
// Exits non-zero on any mismatch, so CI can use it as the socket smoke.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "mcsn/core/gray.hpp"
#include "mcsn/serve/net/client.hpp"
#include "mcsn/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mcsn;

  const CliArgs args(argc, argv);
  const std::string host = args.get_or("host", "127.0.0.1");
  const std::string unix_path = args.get_or("unix", "");
  const long port = args.get_long_or("port", 0);
  // --channels N sizes the integer round: anything beyond the optimal
  // catalog (n > 10) makes the server compose the network on demand, so
  // CI smokes a non-catalog shape with e.g. --channels 24.
  const long round_channels = args.get_long_or("channels", 6);
  if ((unix_path.empty() && (port < 1 || port > 65535)) ||
      round_channels < 2 || round_channels > 4096) {
    std::cerr << "usage: example_net_client --port P [--host H]"
                 " [--channels N]\n"
                 "       example_net_client --unix PATH [--channels N]\n";
    return 2;
  }

  // 1. Connect. A SortClient is one blocking connection (TCP or AF_UNIX,
  //    same protocol) speaking the length-prefixed frames of
  //    serve/wire.hpp. The timeout bounds the connect, not the requests.
  StatusOr<net::SortClient> client =
      unix_path.empty()
          ? net::SortClient::connect(host, static_cast<std::uint16_t>(port),
                                     std::chrono::seconds(5))
          : net::SortClient::connect_unix(unix_path, std::chrono::seconds(5));
  if (!client.ok()) {
    std::cerr << "connect: " << client.status().to_string() << "\n";
    return 1;
  }

  // Scraper mode: one STATS round-trip per format. Both renderings come
  // from the same registry snapshot machinery, so validating both here
  // catches a format-dispatch bug server-side; only the selected one is
  // printed (stdout stays pipeable).
  if (args.has("stats")) {
    const std::string format = args.get_or("format", "json");
    if (format != "json" && format != "prometheus") {
      std::cerr << "example_net_client: --format must be json or prometheus\n";
      return 2;
    }
    StatusOr<wire::StatsReply> json_reply =
        client->stats(wire::StatsFormat::json);
    if (!json_reply.ok() || !json_reply->status.ok()) {
      std::cerr << "stats(json): "
                << (json_reply.ok() ? json_reply->status : json_reply.status())
                       .to_string()
                << "\n";
      return 1;
    }
    if (json_reply->format != wire::StatsFormat::json ||
        json_reply->text.empty() || json_reply->text.front() != '{') {
      std::cerr << "stats(json): reply is not a JSON document\n";
      return 1;
    }
    StatusOr<wire::StatsReply> prom_reply =
        client->stats(wire::StatsFormat::prometheus);
    if (!prom_reply.ok() || !prom_reply->status.ok()) {
      std::cerr << "stats(prometheus): "
                << (prom_reply.ok() ? prom_reply->status : prom_reply.status())
                       .to_string()
                << "\n";
      return 1;
    }
    if (prom_reply->format != wire::StatsFormat::prometheus ||
        prom_reply->text.compare(0, 2, "# ") != 0) {
      std::cerr << "stats(prometheus): reply is not exposition text\n";
      return 1;
    }
    const std::string& text =
        format == "json" ? json_reply->text : prom_reply->text;
    std::cout << text;
    if (text.empty() || text.back() != '\n') std::cout << "\n";
    return 0;
  }

  // 2. Integer round trip: from_values Gray-encodes on the client; the
  //    response decodes straight back to integers. A fixed pseudo-random
  //    pattern (with repeats) fills whatever --channels asks for.
  std::vector<std::uint64_t> values;
  for (long i = 0; i < round_channels; ++i) {
    values.push_back((static_cast<std::uint64_t>(i) * 97 + 41) % 256);
  }
  const SortShape shape{static_cast<int>(values.size()), 8};
  StatusOr<SortRequest> request = SortRequest::from_values(shape, values);
  if (!request.ok()) {
    std::cerr << "from_values: " << request.status().to_string() << "\n";
    return 1;
  }
  // Optional: a deadline. It travels as a relative budget and the service
  // fails the request with kDeadlineExceeded rather than sorting it late.
  request->set_deadline_after(std::chrono::seconds(5));

  StatusOr<SortResponse> response = client->sort(*request);
  if (!response.ok() || !response->status.ok()) {
    std::cerr << "sort: "
              << (response.ok() ? response->status : response.status())
                     .to_string()
              << "\n";
    return 1;
  }
  const StatusOr<std::vector<std::uint64_t>> sorted = response->values();
  if (!sorted.ok()) {
    std::cerr << "values: " << sorted.status().to_string() << "\n";
    return 1;
  }
  std::vector<std::uint64_t> expect = values;
  std::sort(expect.begin(), expect.end());
  std::cout << (unix_path.empty() ? "sorted over TCP:" : "sorted over UDS:");
  for (const std::uint64_t v : *sorted) std::cout << " " << v;
  std::cout << "  (latency "
            << std::chrono::duration_cast<std::chrono::microseconds>(
                   response->latency)
                   .count()
            << "us)\n";
  if (*sorted != expect) {
    std::cerr << "MISMATCH vs std::sort\n";
    return 1;
  }

  // 3. The paper's guarantee, over the network: one marginal measurement
  //    (a single metastable bit) goes in, and exactly one metastable bit
  //    comes back — containment survives serialization.
  const std::size_t bits = 8;
  const Word clean = gray_encode(100, bits);
  Word marginal = gray_encode(100, bits);
  marginal[gray_flip_index(100, bits)] = Trit::meta;
  std::vector<Trit> flat;
  flat.insert(flat.end(), marginal.begin(), marginal.end());
  flat.insert(flat.end(), clean.begin(), clean.end());

  StatusOr<SortRequest> trit_request =
      SortRequest::view(SortShape{2, bits}, flat);  // zero-copy view
  if (!trit_request.ok()) {
    std::cerr << "view: " << trit_request.status().to_string() << "\n";
    return 1;
  }
  StatusOr<SortResponse> trit_response = client->sort(*trit_request);
  if (!trit_response.ok() || !trit_response->status.ok()) {
    std::cerr << "trit sort failed\n";
    return 1;
  }
  const long metastable =
      std::count(trit_response->payload.begin(), trit_response->payload.end(),
                 Trit::meta);
  std::cout << "marginal round: " << metastable
            << " metastable bit(s) after sorting (must be 1)\n";
  if (metastable != 1) {
    std::cerr << "containment violated over the wire\n";
    return 1;
  }

  // 4. Batch frames (wire v2): many independent rounds ride one
  //    request/response pair, amortizing the header, the syscalls and the
  //    dispatch — this is the high-throughput socket path. Rounds are
  //    concatenated into one flat buffer and each is sorted on its own.
  const SortShape bshape{2, 4};
  const std::vector<std::uint64_t> batch_values{9, 4, 15, 0, 3, 12};
  const std::size_t batch_rounds = batch_values.size() / 2;
  std::vector<Trit> batch_flat;
  std::vector<Trit> batch_expect;
  for (std::size_t r = 0; r < batch_rounds; ++r) {
    const std::uint64_t a = batch_values[2 * r];
    const std::uint64_t b = batch_values[2 * r + 1];
    for (const std::uint64_t v : {a, b}) {
      const Word w = gray_encode(v, bshape.bits);
      batch_flat.insert(batch_flat.end(), w.begin(), w.end());
    }
    for (const std::uint64_t v : {std::min(a, b), std::max(a, b)}) {
      const Word w = gray_encode(v, bshape.bits);
      batch_expect.insert(batch_expect.end(), w.begin(), w.end());
    }
  }
  StatusOr<SortRequest> batch =
      SortRequest::view_batch(bshape, batch_rounds, batch_flat);
  if (!batch.ok()) {
    std::cerr << "view_batch: " << batch.status().to_string() << "\n";
    return 1;
  }
  StatusOr<SortResponse> batch_rsp = client->sort_batch(*batch);
  if (!batch_rsp.ok() || !batch_rsp->status.ok()) {
    std::cerr << "batch sort failed\n";
    return 1;
  }
  if (batch_rsp->rounds != batch_rounds || batch_rsp->payload != batch_expect) {
    std::cerr << "batch MISMATCH\n";
    return 1;
  }
  std::cout << "batch frame: " << batch_rounds
            << " rounds sorted in one round-trip\n";

  // 5. Errors come back as Status values on the response, never as broken
  //    connections — here, integers that don't fit the declared width.
  StatusOr<SortRequest> bad =
      SortRequest::from_values(SortShape{2, 4}, std::vector<std::uint64_t>{
                                                    300, 1});  // 300 > 4 bits
  if (bad.ok()) {
    std::cerr << "from_values accepted an out-of-range value\n";
    return 1;
  }
  std::cout << "client-side validation: " << bad.status().to_string() << "\n";

  std::cout << "OK\n";
  return 0;
}
