// soak — long-running fault-injection campaign against the full serving
// stack, with hard leak assertions. The "it ran for a while" smoke turned
// into a pass/fail gate:
//
//   tool_soak --duration 60 --all-faults
//
// hosts a SortService + SocketServer in-process (so /proc/self sampling
// measures the serving process) and drives it with:
//
//   * well-behaved clients: open-loop Poisson traffic over a mixed shape
//     set (optimal-catalog 2..10 channels, composed 11..16, plus
//     over-limit shapes the builder refuses), single and BATCH frames,
//     trit and value payloads, short-lived connections (churn), and a
//     seeded fraction of tiny deadlines (deadline storms);
//   * adversaries (each its own thread, each gated by a --fault-* flag or
//     --all-faults): forked child processes SIGKILLed mid-conversation,
//     half-closes mid-frame, never-reading peers that hold a full
//     response backlog until the idle reaper fires, and malformed-frame
//     injection (bad magic/version/type/length, truncated bodies);
//   * byte-level hostility on *every* connection via the
//     SocketOptions::fault recv/send caps (frames fragment at arbitrary
//     boundaries in both directions);
//   * a resource monitor sampling /proc/self RSS + fd counts
//     (util/proc_stats) and scraping the live STATS wire frames.
//
// The campaign ends with hard assertions — any failure exits non-zero:
//
//   * zero client-observed errors outside the injected classes
//     (kUnimplemented for over-limit shapes, kDeadlineExceeded under
//     deadline storms);
//   * a completed-traffic floor (a vacuously idle campaign cannot pass);
//   * pool residency <= capacity after a final fresh-shape request forces
//     an eviction sweep — the primary leak gate: a pinned-sorter leak
//     (e.g. reverting the MicroBatcher shard-husk fix) makes eviction
//     skip every entry and residency grow with the shape churn;
//   * fd count back to its pre-campaign baseline (+ --fd-slack);
//   * post-warmup RSS slope (least squares over the monitor samples)
//     under --rss-slope-max-kib-s;
//   * every ConnFsm violation counter at zero;
//   * enabled adversaries actually fired (kills > 0, protocol errors > 0).
//
// A JSON report (config, per-class counts, samples, per-assertion
// verdicts) goes to stdout and, with --report FILE, to a file for CI
// artifact upload. docs/SOAK.md documents the knobs, fault classes and
// how to read a failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <locale>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/serve/net/client.hpp"
#include "mcsn/serve/net/socket_server.hpp"
#include "mcsn/serve/service.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/util/cli.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/proc_stats.hpp"
#include "mcsn/util/rng.hpp"

namespace {

using namespace mcsn;
using Clock = std::chrono::steady_clock;

// --- configuration ----------------------------------------------------------

struct SoakConfig {
  double duration_s = 60.0;
  double rate = 400.0;     ///< total well-behaved requests/s across clients
  int clients = 4;         ///< well-behaved client threads
  int workers = 2;         ///< service worker threads
  int loops = 1;           ///< socket event loops
  std::size_t pool_capacity = 8;
  std::uint64_t seed = 1;
  long idle_timeout_ms = 1500;  ///< short, so never-reader reaping happens
                                ///< many times within even a 60 s campaign

  bool fault_kill = false;
  bool fault_halfclose = false;
  bool fault_neverread = false;
  bool fault_malformed = false;
  std::size_t recv_cap = 0;
  std::size_t send_cap = 0;

  double rss_slope_max_kib_s = 512.0;
  long fd_slack = 0;
  long min_completed = -1;  ///< -1: derived as duration * rate / 10
  std::string report_path;

  /// Builder refusal bound: shapes above this come back kUnimplemented.
  /// Kept small so the over-limit class is cheap to exercise.
  int max_channels = 24;

  [[nodiscard]] long min_completed_floor() const {
    if (min_completed >= 0) return min_completed;
    return static_cast<long>(duration_s * rate / 10.0);
  }
};

/// Hot shapes most traffic lands on (warmed, pool-resident); the cold
/// tail below churns the remaining pool slots.
const SortShape kHotShapes[] = {
    {4, 4}, {8, 4}, {6, 6}, {10, 3}, {12, 4}, {16, 2},
};
constexpr int kColdChannelsMin = 2;
constexpr int kColdChannelsMax = 16;
constexpr std::size_t kColdBitsMin = 2;
constexpr std::size_t kColdBitsMax = 6;
/// Never part of campaign traffic; requested once at the end to force an
/// eviction sweep through the pool before the residency assertion.
const SortShape kFreshShape{17, 3};

// --- shared campaign state --------------------------------------------------

struct Totals {
  std::atomic<std::uint64_t> ok_single_trit{0};
  std::atomic<std::uint64_t> ok_single_value{0};
  std::atomic<std::uint64_t> ok_batch{0};
  std::atomic<std::uint64_t> ok_batch_rounds{0};
  std::atomic<std::uint64_t> deadline_ok{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> overlimit_refused{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> kills{0};
  std::atomic<std::uint64_t> halfcloses{0};
  std::atomic<std::uint64_t> neverread_sessions{0};
  std::atomic<std::uint64_t> malformed_sent{0};
  std::atomic<std::uint64_t> scrapes_ok{0};
  std::atomic<std::uint64_t> errors{0};  ///< non-injected failures

  std::mutex mu;
  std::vector<std::string> first_errors;  ///< capped detail for the report

  void fail(const std::string& what) {
    errors.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(mu);
    if (first_errors.size() < 20) first_errors.push_back(what);
  }

  [[nodiscard]] std::uint64_t completed() const {
    return ok_single_trit.load() + ok_single_value.load() + ok_batch.load() +
           deadline_ok.load() + deadline_expired.load() +
           overlimit_refused.load();
  }
};

struct RssSample {
  double t_s = 0.0;
  std::int64_t rss_bytes = 0;
};

std::atomic<bool> g_stop{false};

/// Sleep until `when` in small chunks so campaign stop stays responsive.
void sleep_until_or_stop(Clock::time_point when) {
  while (!g_stop.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    if (now >= when) return;
    std::this_thread::sleep_for(
        std::min<Clock::duration>(when - now, std::chrono::milliseconds(50)));
  }
}

// --- request builders -------------------------------------------------------

std::vector<Trit> random_flat(Xoshiro256& rng, SortShape shape) {
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const Word& w : random_valid_round(rng, shape.channels, shape.bits)) {
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return flat;
}

SortShape random_shape(Xoshiro256& rng) {
  if (rng.uniform() < 0.7) {
    return kHotShapes[rng.below(std::size(kHotShapes))];
  }
  return SortShape{
      kColdChannelsMin +
          static_cast<int>(rng.below(kColdChannelsMax - kColdChannelsMin + 1)),
      kColdBitsMin + rng.below(kColdBitsMax - kColdBitsMin + 1)};
}

// --- well-behaved client thread ---------------------------------------------

void client_thread(const SoakConfig& cfg, std::uint16_t port, int index,
                   Totals& totals) {
  Xoshiro256 rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(index));
  const double rate = cfg.rate / std::max(1, cfg.clients);
  PoissonClock arrivals(rate, rng);

  std::optional<net::SortClient> client;
  auto reconnect = [&]() -> bool {
    if (client) client->close();
    StatusOr<net::SortClient> c = net::SortClient::connect("127.0.0.1", port);
    if (!c.ok()) {
      totals.fail("client connect: " + c.status().to_string());
      return false;
    }
    client.emplace(std::move(*c));
    totals.reconnects.fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  if (!reconnect()) return;

  std::uint64_t on_this_conn = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    sleep_until_or_stop(arrivals.next());
    if (g_stop.load(std::memory_order_relaxed)) break;
    // Connection churn: short sessions are the normal case for this
    // campaign, so accept/adopt/teardown runs thousands of times.
    if (on_this_conn >= 64) {
      on_this_conn = 0;
      if (!reconnect()) return;
    }
    ++on_this_conn;

    const double kind = rng.uniform();
    if (kind < 0.02) {
      // Over-limit shape: the builder must refuse with kUnimplemented.
      const SortShape shape{cfg.max_channels + 1 +
                                static_cast<int>(rng.below(8)),
                            4};
      StatusOr<SortRequest> req =
          SortRequest::own(shape, random_flat(rng, shape));
      if (!req.ok()) {
        totals.fail("over-limit build request: " + req.status().to_string());
        continue;
      }
      StatusOr<SortResponse> rsp = client->sort(*req);
      if (!rsp.ok()) {
        totals.fail("over-limit transport: " + rsp.status().to_string());
        if (!reconnect()) return;
        continue;
      }
      if (rsp->status.code() != StatusCode::kUnimplemented) {
        totals.fail("over-limit shape not refused: " +
                    rsp->status.to_string());
        continue;
      }
      totals.overlimit_refused.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    const SortShape shape = random_shape(rng);
    const bool storm = rng.uniform() < 0.05;

    if (kind < 0.32) {
      // BATCH frame: 2..8 same-shape rounds behind one header.
      const std::size_t rounds = 2 + rng.below(7);
      std::vector<Trit> flat;
      flat.reserve(rounds * shape.trits());
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::vector<Trit> one = random_flat(rng, shape);
        flat.insert(flat.end(), one.begin(), one.end());
      }
      StatusOr<SortRequest> req = SortRequest::own_batch(shape, rounds, flat);
      if (!req.ok()) {
        totals.fail("batch build request: " + req.status().to_string());
        continue;
      }
      if (storm) req->set_deadline_after(std::chrono::microseconds(
          20 + static_cast<long>(rng.below(180))));
      StatusOr<SortResponse> rsp = client->sort_batch(*req);
      if (!rsp.ok()) {
        totals.fail("batch transport: " + rsp.status().to_string());
        if (!reconnect()) return;
        continue;
      }
      if (rsp->status.ok()) {
        if (rsp->rounds != rounds ||
            rsp->payload.size() != rounds * shape.trits()) {
          totals.fail("batch response shape mismatch");
          continue;
        }
        if (storm) {
          totals.deadline_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          totals.ok_batch.fetch_add(1, std::memory_order_relaxed);
          totals.ok_batch_rounds.fetch_add(rounds, std::memory_order_relaxed);
        }
      } else if (storm &&
                 rsp->status.code() == StatusCode::kDeadlineExceeded) {
        totals.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      } else {
        totals.fail("batch served error: " + rsp->status.to_string());
      }
      continue;
    }

    const bool values = rng.uniform() < 0.4;
    StatusOr<SortRequest> req = Status::internal("unbuilt");
    std::vector<std::uint64_t> sorted_values;
    if (values) {
      std::vector<std::uint64_t> v(static_cast<std::size_t>(shape.channels));
      const std::uint64_t bound = shape.bits >= 64
                                      ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << shape.bits) - 1;
      for (auto& x : v) x = rng.below(bound + 1);
      sorted_values = v;
      std::sort(sorted_values.begin(), sorted_values.end());
      req = SortRequest::from_values(shape, v);
    } else {
      req = SortRequest::own(shape, random_flat(rng, shape));
    }
    if (!req.ok()) {
      totals.fail("single build request: " + req.status().to_string());
      continue;
    }
    if (storm) req->set_deadline_after(std::chrono::microseconds(
        20 + static_cast<long>(rng.below(180))));
    StatusOr<SortResponse> rsp = client->sort(*req);
    if (!rsp.ok()) {
      totals.fail("single transport: " + rsp.status().to_string());
      if (!reconnect()) return;
      continue;
    }
    if (rsp->status.ok()) {
      if (rsp->payload.size() != shape.trits()) {
        totals.fail("single response size mismatch");
        continue;
      }
      if (values) {
        // Value rounds are fully checkable against a local std::sort.
        StatusOr<std::vector<std::uint64_t>> got = rsp->values();
        if (!got.ok() || *got != sorted_values) {
          totals.fail("value round mis-sorted for " +
                      std::to_string(shape.channels) + "x" +
                      std::to_string(shape.bits));
          continue;
        }
        if (!storm) {
          totals.ok_single_value.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (!storm) {
        totals.ok_single_trit.fetch_add(1, std::memory_order_relaxed);
      }
      if (storm) totals.deadline_ok.fetch_add(1, std::memory_order_relaxed);
    } else if (storm && rsp->status.code() == StatusCode::kDeadlineExceeded) {
      totals.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    } else {
      totals.fail("single served error: " + rsp->status.to_string());
    }
  }
  if (client) client->close();
}

// --- adversaries ------------------------------------------------------------

/// Blocking loopback dial with a receive timeout so no adversary can hang
/// the campaign on a read.
int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed / reset — fine for an adversary
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Drain until EOF/timeout; adversaries never care about the bytes.
void read_to_eof(int fd) {
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // 0 = EOF, <0 = timeout/reset
  }
}

std::vector<std::uint8_t> valid_request_frame(Xoshiro256& rng) {
  const SortShape shape{4, 4};
  StatusOr<SortRequest> req =
      SortRequest::own(shape, random_flat(rng, shape));
  return wire::encode_request(*req);
}

/// Forked children SIGKILLed mid-conversation. The parent process is
/// heavily multithreaded, so between fork and _exit the child calls only
/// async-signal-safe raw syscalls — every buffer it sends is built by the
/// parent before the fork.
void killer_thread(const SoakConfig& cfg, std::uint16_t port,
                   Totals& totals) {
  Xoshiro256 rng(cfg.seed ^ 0x6b696c6cULL);  // "kill"
  const std::vector<std::uint8_t> frame = valid_request_frame(rng);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  while (!g_stop.load(std::memory_order_relaxed)) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: connect and keep sending valid frames (some half-written
      // when the SIGKILL lands) until killed. Raw syscalls only.
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        timespec pause{0, 500 * 1000};  // 0.5 ms between frames
        for (int i = 0; i < 100000; ++i) {
          std::size_t off = 0;
          while (off < frame.size()) {
            const ssize_t n = ::send(fd, frame.data() + off,
                                     frame.size() - off, MSG_NOSIGNAL);
            if (n <= 0) _exit(0);
            off += static_cast<std::size_t>(n);
          }
          ::nanosleep(&pause, nullptr);
        }
      }
      _exit(0);
    }
    if (pid < 0) {  // fork pressure: back off, not a campaign error
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    // Parent: let the child get mid-conversation, then kill -9. The
    // kernel tears its socket down abruptly — the server must reclaim
    // everything the half-dead session owed.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(5 + static_cast<long>(rng.below(75))));
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    totals.kills.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Half-close mid-frame: a valid request, then a partial frame, then
/// shutdown(SHUT_WR). The server owes the answer to the complete frame
/// and a protocol error for the truncated tail, then must fully reclaim.
void halfclose_thread(const SoakConfig& cfg, std::uint16_t port,
                      Totals& totals) {
  Xoshiro256 rng(cfg.seed ^ 0x68616c66ULL);  // "half"
  while (!g_stop.load(std::memory_order_relaxed)) {
    const std::vector<std::uint8_t> frame = valid_request_frame(rng);
    const int fd = dial(port);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    send_all(fd, frame.data(), frame.size());
    // 1..frame-1 bytes of a second frame: never completable.
    const std::size_t partial = 1 + rng.below(frame.size() - 1);
    send_all(fd, frame.data(), partial);
    ::shutdown(fd, SHUT_WR);
    read_to_eof(fd);  // response to the good frame, error frame, EOF
    ::close(fd);
    totals.halfcloses.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + static_cast<long>(rng.below(40))));
  }
}

/// Never-reading peer: fill the per-connection inflight cap and sit on
/// the unread responses until the idle reaper fires. Exercises the
/// flow-control pause and the owed-backlog reclaim path.
void neverread_thread(const SoakConfig& cfg, std::uint16_t port,
                      Totals& totals) {
  Xoshiro256 rng(cfg.seed ^ 0x72656164ULL);  // "read"
  while (!g_stop.load(std::memory_order_relaxed)) {
    const std::vector<std::uint8_t> frame = valid_request_frame(rng);
    const int fd = dial(port);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    // More frames than the per-connection cap; the loop pauses reading
    // us once pending rounds hit the cap, the rest sit in kernel buffers.
    for (int i = 0; i < 128 && !g_stop.load(std::memory_order_relaxed);
         ++i) {
      send_all(fd, frame.data(), frame.size());
    }
    // Hold without reading until the idle timeout must have fired.
    const auto held_until =
        Clock::now() + std::chrono::milliseconds(cfg.idle_timeout_ms + 500);
    sleep_until_or_stop(held_until);
    ::close(fd);
    totals.neverread_sessions.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Malformed-frame injection at a seeded rate: every wire-level way to be
/// wrong, each answered (where answerable) with an error frame and a
/// close — never a crash, never a leak.
void malformed_thread(const SoakConfig& cfg, std::uint16_t port,
                      Totals& totals) {
  Xoshiro256 rng(cfg.seed ^ 0x6d616c66ULL);  // "malf"
  PoissonClock arrivals(20.0, rng);
  while (!g_stop.load(std::memory_order_relaxed)) {
    sleep_until_or_stop(arrivals.next());
    if (g_stop.load(std::memory_order_relaxed)) break;
    std::vector<std::uint8_t> bytes = valid_request_frame(rng);
    switch (rng.below(5)) {
      case 0:  // bad magic
        bytes[0] = 0x58;
        break;
      case 1:  // unsupported version
        bytes[2] = 0x7f;
        break;
      case 2:  // unknown frame type
        bytes[3] = 0x2a;
        break;
      case 3: {  // length prefix beyond kMaxBody
        const std::uint32_t huge = (1u << 24) + 1;
        std::memcpy(bytes.data() + 4, &huge, sizeof(huge));
        break;
      }
      case 4: {  // well-framed but undecodable body (truncate + fix length)
        bytes.resize(wire::kHeaderSize + 3);
        const std::uint32_t len = 3;
        std::memcpy(bytes.data() + 4, &len, sizeof(len));
        break;
      }
    }
    const int fd = dial(port);
    if (fd < 0) continue;
    send_all(fd, bytes.data(), bytes.size());
    read_to_eof(fd);  // error frame (when answerable) then close
    ::close(fd);
    totals.malformed_sent.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- resource monitor -------------------------------------------------------

void monitor_thread(std::uint16_t port, Clock::time_point start,
                    Totals& totals, std::vector<RssSample>& samples,
                    std::mutex& samples_mu) {
  int tick = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    const ProcStats s = read_proc_stats();
    if (s.rss_bytes > 0) {
      std::lock_guard lock(samples_mu);
      samples.push_back(
          {std::chrono::duration<double>(Clock::now() - start).count(),
           s.rss_bytes});
    }
    // Every ~2 s, scrape the live STATS wire frame — the monitor path an
    // external watcher would use — and check the process gauges made it
    // into the document.
    if (++tick % 4 == 0) {
      StatusOr<net::SortClient> c =
          net::SortClient::connect("127.0.0.1", port);
      if (!c.ok()) {
        totals.fail("monitor connect: " + c.status().to_string());
      } else {
        StatusOr<wire::StatsReply> reply = c->stats();
        if (!reply.ok() || !reply->status.ok()) {
          totals.fail("monitor scrape failed");
        } else if (reply->text.find("process_rss_bytes") ==
                       std::string::npos ||
                   reply->text.find("process_open_fds") ==
                       std::string::npos) {
          totals.fail("monitor scrape missing process gauges");
        } else {
          totals.scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        }
        c->close();
      }
    }
    sleep_until_or_stop(Clock::now() + std::chrono::milliseconds(500));
  }
}

/// Least-squares slope of RSS over time for samples past the warmup
/// fraction, in KiB/s. nullopt when there are too few samples to fit.
std::optional<double> rss_slope_kib_s(const std::vector<RssSample>& samples,
                                      double duration_s) {
  const double warmup_end = duration_s * 0.25;
  double n = 0, st = 0, sr = 0, stt = 0, str = 0;
  for (const RssSample& s : samples) {
    if (s.t_s < warmup_end) continue;
    const double r = static_cast<double>(s.rss_bytes) / 1024.0;  // KiB
    n += 1.0;
    st += s.t_s;
    sr += r;
    stt += s.t_s * s.t_s;
    str += s.t_s * r;
  }
  if (n < 3.0) return std::nullopt;
  const double denom = n * stt - st * st;
  if (denom <= 0.0) return std::nullopt;
  return (n * str - st * sr) / denom;
}

// --- report -----------------------------------------------------------------

std::string fmt(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

struct Assertion {
  std::string name;
  bool pass = false;
  std::string detail;
};

int usage() {
  std::cerr
      << "usage: tool_soak [--duration S] [--all-faults]\n"
         "  [--fault-kill] [--fault-halfclose] [--fault-neverread]\n"
         "  [--fault-malformed] [--recv-cap N] [--send-cap N]\n"
         "  [--rate R] [--clients N] [--workers N] [--loops N]\n"
         "  [--pool-capacity N] [--seed S] [--idle-timeout-ms T]\n"
         "  [--rss-slope-max-kib-s X] [--fd-slack N] [--min-completed N]\n"
         "  [--report FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Adversary sockets die at arbitrary moments; a write into one must
  // come back EPIPE, not kill the harness.
  std::signal(SIGPIPE, SIG_IGN);

  CliArgs args(argc, argv);
  SoakConfig cfg;
  {
    std::istringstream ds(args.get_or("duration", "60"));
    ds.imbue(std::locale::classic());
    if (!(ds >> cfg.duration_s) || cfg.duration_s <= 0) return usage();
  }
  {
    std::istringstream rs(args.get_or("rate", "400"));
    rs.imbue(std::locale::classic());
    if (!(rs >> cfg.rate) || cfg.rate <= 0) return usage();
  }
  cfg.clients = static_cast<int>(args.get_long_or("clients", 4));
  cfg.workers = static_cast<int>(args.get_long_or("workers", 2));
  cfg.loops = static_cast<int>(args.get_long_or("loops", 1));
  cfg.pool_capacity =
      static_cast<std::size_t>(args.get_long_or("pool-capacity", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 1));
  cfg.idle_timeout_ms = args.get_long_or("idle-timeout-ms", 1500);
  const bool all = args.has("all-faults");
  cfg.fault_kill = all || args.has("fault-kill");
  cfg.fault_halfclose = all || args.has("fault-halfclose");
  cfg.fault_neverread = all || args.has("fault-neverread");
  cfg.fault_malformed = all || args.has("fault-malformed");
  cfg.recv_cap =
      static_cast<std::size_t>(args.get_long_or("recv-cap", all ? 7 : 0));
  cfg.send_cap =
      static_cast<std::size_t>(args.get_long_or("send-cap", all ? 9 : 0));
  {
    std::istringstream ss(args.get_or("rss-slope-max-kib-s", "512"));
    ss.imbue(std::locale::classic());
    if (!(ss >> cfg.rss_slope_max_kib_s)) return usage();
  }
  cfg.fd_slack = args.get_long_or("fd-slack", 0);
  cfg.min_completed = args.get_long_or("min-completed", -1);
  cfg.report_path = args.get_or("report", "");
  if (cfg.clients < 1 || cfg.workers < 1 || cfg.loops < 1) return usage();

  // --- bring the stack up ---------------------------------------------------

  ServeOptions vopt;
  vopt.workers = cfg.workers;
  vopt.pool_capacity = cfg.pool_capacity;
  vopt.sorter.max_channels = cfg.max_channels;
  // Warm the hot set (must fit the pool or validate() refuses).
  for (const SortShape& s : kHotShapes) {
    if (vopt.warmup_shapes.size() + 1 <= cfg.pool_capacity) {
      vopt.warmup_shapes.push_back(s);
    }
  }

  net::SocketOptions sopt;
  sopt.port = 0;  // ephemeral
  sopt.loops = cfg.loops;
  sopt.idle_timeout = std::chrono::milliseconds(cfg.idle_timeout_ms);
  sopt.fault.recv_cap = cfg.recv_cap;
  sopt.fault.send_cap = cfg.send_cap;
  // Event loops must never block in submit() even with every connection
  // at its per-connection cap.
  vopt.max_inflight =
      std::max<std::size_t>(4096, sopt.max_connections * sopt.max_inflight);
  if (Status s = vopt.validate(); !s.ok()) {
    std::cerr << "soak: " << s.to_string() << "\n";
    return 2;
  }

  SortService service(vopt);
  net::SocketServer server(service, sopt);
  if (Status s = server.start(); !s.ok()) {
    std::cerr << "soak: " << s.to_string() << "\n";
    return 2;
  }
  const std::uint16_t port = server.port();

  // fd baseline after the stack is fully up (listeners, loop pipes,
  // worker threads) and one connection has round-tripped, so nothing
  // lazily allocated later can masquerade as a leak.
  {
    Xoshiro256 rng(cfg.seed);
    StatusOr<net::SortClient> c = net::SortClient::connect("127.0.0.1", port);
    if (!c.ok()) {
      std::cerr << "soak: warm connect failed: " << c.status().to_string()
                << "\n";
      return 2;
    }
    const std::vector<Trit> flat = random_flat(rng, kHotShapes[0]);
    StatusOr<SortRequest> req = SortRequest::view(kHotShapes[0], flat);
    StatusOr<SortResponse> rsp = c->sort(*req);
    if (!rsp.ok() || !rsp->status.ok()) {
      std::cerr << "soak: warm round-trip failed\n";
      return 2;
    }
    c->close();
  }
  // The warm client's server side tears down asynchronously; settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::int64_t fd_baseline = read_proc_stats().open_fds;

  std::cerr << "soak: port " << port << ", duration " << fmt(cfg.duration_s)
            << " s, rate " << fmt(cfg.rate) << "/s, faults:"
            << (cfg.fault_kill ? " kill" : "")
            << (cfg.fault_halfclose ? " halfclose" : "")
            << (cfg.fault_neverread ? " neverread" : "")
            << (cfg.fault_malformed ? " malformed" : "") << " recv-cap "
            << cfg.recv_cap << " send-cap " << cfg.send_cap
            << ", fd baseline " << fd_baseline << "\n";

  // --- run the campaign -----------------------------------------------------

  Totals totals;
  std::vector<RssSample> samples;
  std::mutex samples_mu;
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> threads;
  for (int i = 0; i < cfg.clients; ++i) {
    threads.emplace_back(client_thread, std::cref(cfg), port, i,
                         std::ref(totals));
  }
  if (cfg.fault_kill) {
    threads.emplace_back(killer_thread, std::cref(cfg), port,
                         std::ref(totals));
  }
  if (cfg.fault_halfclose) {
    threads.emplace_back(halfclose_thread, std::cref(cfg), port,
                         std::ref(totals));
  }
  if (cfg.fault_neverread) {
    threads.emplace_back(neverread_thread, std::cref(cfg), port,
                         std::ref(totals));
  }
  if (cfg.fault_malformed) {
    threads.emplace_back(malformed_thread, std::cref(cfg), port,
                         std::ref(totals));
  }
  threads.emplace_back(monitor_thread, port, start, std::ref(totals),
                       std::ref(samples), std::ref(samples_mu));

  sleep_until_or_stop(start + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      cfg.duration_s)));
  g_stop.store(true);
  for (std::thread& t : threads) t.join();

  // --- end-of-campaign assertions -------------------------------------------

  std::vector<Assertion> checks;
  auto check = [&checks](std::string name, bool pass, std::string detail) {
    checks.push_back({std::move(name), pass, std::move(detail)});
  };

  // 1. Zero client-observed errors outside the injected classes.
  check("no_uninjected_errors", totals.errors.load() == 0,
        std::to_string(totals.errors.load()) + " errors");

  // 2. The campaign actually served traffic.
  const std::uint64_t completed = totals.completed();
  check("completed_floor",
        completed >= static_cast<std::uint64_t>(cfg.min_completed_floor()),
        std::to_string(completed) + " completed, floor " +
            std::to_string(cfg.min_completed_floor()));

  // 3. Pool residency: one fresh-shape request forces an eviction sweep
  // (eviction runs on insert), then every idle shape beyond capacity must
  // be gone. A pinned-sorter leak fails here: eviction skips busy
  // entries, so residency tracks the whole campaign's shape churn.
  {
    Xoshiro256 rng(cfg.seed ^ 0xf2e5);
    StatusOr<net::SortClient> c = net::SortClient::connect("127.0.0.1", port);
    bool swept = false;
    if (c.ok()) {
      StatusOr<SortRequest> req =
          SortRequest::own(kFreshShape, random_flat(rng, kFreshShape));
      StatusOr<SortResponse> rsp = c->sort(*req);
      swept = rsp.ok() && rsp->status.ok();
      c->close();
    }
    const std::size_t shapes = service.shapes();
    check("pool_residency_within_capacity",
          swept && shapes <= cfg.pool_capacity,
          std::to_string(shapes) + " resident shapes, capacity " +
              std::to_string(cfg.pool_capacity) +
              (swept ? "" : " (sweep request failed)"));
  }

  // 4. fd count back to baseline. Server-side teardown of the last
  // connections is asynchronous — poll with a deadline before judging.
  std::int64_t fd_now = -1;
  {
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    for (;;) {
      fd_now = read_proc_stats().open_fds;
      if (fd_now >= 0 && fd_now <= fd_baseline + cfg.fd_slack &&
          server.connections() == 0) {
        break;
      }
      if (Clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    check("fd_back_to_baseline",
          fd_now >= 0 && fd_now <= fd_baseline + cfg.fd_slack,
          std::to_string(fd_now) + " open fds, baseline " +
              std::to_string(fd_baseline) + " + slack " +
              std::to_string(cfg.fd_slack));
  }

  // 5. Post-warmup RSS slope under the configured bound.
  {
    std::lock_guard lock(samples_mu);
    const std::optional<double> slope =
        rss_slope_kib_s(samples, cfg.duration_s);
    // Too-short campaigns have no post-warmup window; that's a pass (the
    // fd/residency gates still hold), not a silent skip — the report
    // says so.
    check("rss_slope_within_bound",
          !slope || *slope <= cfg.rss_slope_max_kib_s,
          slope ? fmt(*slope) + " KiB/s, bound " +
                      fmt(cfg.rss_slope_max_kib_s)
                : "too few post-warmup samples; skipped");
  }

  // 6. Every FSM violation counter at zero, plus adversary-effectiveness
  // sanity: an enabled fault class that never fired would make the whole
  // campaign vacuous.
  const net::SocketServer::Stats sstats = server.stats();
  check("fsm_violations_zero", sstats.fsm_violations == 0,
        std::to_string(sstats.fsm_violations) + " violations");
  if (cfg.fault_kill) {
    check("kills_fired", totals.kills.load() > 0,
          std::to_string(totals.kills.load()) + " children killed");
  }
  if (cfg.fault_malformed || cfg.fault_halfclose) {
    check("protocol_errors_fired", sstats.protocol_errors > 0,
          std::to_string(sstats.protocol_errors) + " protocol errors");
  }
  if (cfg.fault_neverread) {
    check("idle_reaper_fired", sstats.idle_closed > 0,
          std::to_string(sstats.idle_closed) + " idle closes");
  }
  check("monitor_scraped", totals.scrapes_ok.load() > 0,
        std::to_string(totals.scrapes_ok.load()) + " scrapes");

  // --- report ---------------------------------------------------------------

  bool ok = true;
  std::ostringstream report;
  report.imbue(std::locale::classic());
  report << "{\n  \"config\": {\"duration_s\": " << fmt(cfg.duration_s)
         << ", \"rate\": " << fmt(cfg.rate)
         << ", \"clients\": " << cfg.clients
         << ", \"workers\": " << cfg.workers << ", \"loops\": " << cfg.loops
         << ", \"pool_capacity\": " << cfg.pool_capacity
         << ", \"seed\": " << cfg.seed << ", \"recv_cap\": " << cfg.recv_cap
         << ", \"send_cap\": " << cfg.send_cap << "},\n";
  report << "  \"traffic\": {\"completed\": " << completed
         << ", \"ok_single_trit\": " << totals.ok_single_trit.load()
         << ", \"ok_single_value\": " << totals.ok_single_value.load()
         << ", \"ok_batch\": " << totals.ok_batch.load()
         << ", \"ok_batch_rounds\": " << totals.ok_batch_rounds.load()
         << ", \"deadline_ok\": " << totals.deadline_ok.load()
         << ", \"deadline_expired\": " << totals.deadline_expired.load()
         << ", \"overlimit_refused\": " << totals.overlimit_refused.load()
         << ", \"reconnects\": " << totals.reconnects.load() << "},\n";
  report << "  \"faults\": {\"kills\": " << totals.kills.load()
         << ", \"halfcloses\": " << totals.halfcloses.load()
         << ", \"neverread_sessions\": " << totals.neverread_sessions.load()
         << ", \"malformed_sent\": " << totals.malformed_sent.load()
         << "},\n";
  report << "  \"server\": {\"accepted\": " << sstats.accepted
         << ", \"closed\": " << sstats.closed
         << ", \"requests\": " << sstats.requests
         << ", \"responses\": " << sstats.responses
         << ", \"protocol_errors\": " << sstats.protocol_errors
         << ", \"idle_closed\": " << sstats.idle_closed
         << ", \"fsm_violations\": " << sstats.fsm_violations << "},\n";
  {
    std::lock_guard lock(samples_mu);
    report << "  \"resources\": {\"fd_baseline\": " << fd_baseline
           << ", \"fd_final\": " << fd_now << ", \"rss_samples\": "
           << samples.size() << ", \"rss_first_bytes\": "
           << (samples.empty() ? -1 : samples.front().rss_bytes)
           << ", \"rss_last_bytes\": "
           << (samples.empty() ? -1 : samples.back().rss_bytes) << "},\n";
  }
  report << "  \"assertions\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const Assertion& a = checks[i];
    ok = ok && a.pass;
    report << "    {\"name\": \"" << a.name << "\", \"pass\": "
           << (a.pass ? "true" : "false") << ", \"detail\": \"" << a.detail
           << "\"}" << (i + 1 < checks.size() ? "," : "") << "\n";
  }
  report << "  ],\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";

  const std::string doc = report.str();
  std::cout << doc << std::flush;
  if (!cfg.report_path.empty()) {
    std::ofstream out(cfg.report_path);
    out << doc;
  }
  {
    std::lock_guard lock(totals.mu);
    for (const std::string& e : totals.first_errors) {
      std::cerr << "soak: error: " << e << "\n";
    }
  }
  for (const Assertion& a : checks) {
    if (!a.pass) {
      std::cerr << "soak: FAIL " << a.name << ": " << a.detail << "\n";
    }
  }

  server.stop();
  service.stop();
  if (!ok) return 1;
  std::cerr << "soak: PASS (" << completed << " completed)\n";
  return 0;
}
