// sortd — load-serving driver for the streaming sort service.
//
// Modes:
//
//   tool_sortd --rate 50000 --duration-s 2        synthetic Poisson load:
//     submits random valid measurement rounds at the given arrival rate for
//     the given duration, then prints the service metrics JSON (request and
//     batch counters, lane occupancy, p50/p99 latency).
//
//   tool_sortd --stdin                            text pipe mode:
//     each input line is one round of whitespace-separated integers; every
//     line is submitted asynchronously (the service coalesces them into
//     lane groups) and the sorted lines are printed in input order. Metrics
//     JSON goes to stderr.
//
//   tool_sortd --framed                           binary pipe mode:
//     stdin carries length-prefixed SortRequest frames (serve/wire.hpp);
//     each decoded request is submitted and its SortResponse frame is
//     written to stdout strictly in request order (heterogeneous shapes
//     welcome — every frame names its own). A malformed-but-framed request
//     gets an error-status response in its slot; a corrupt stream (bad
//     magic/version/length) aborts, since framing is unrecoverable.
//     Metrics JSON goes to stderr.
//
//   tool_sortd --encode-frames --bits B           codec helpers: turn text
//   tool_sortd --decode-frames                    rounds into request
//     frames and response frames back into text — the two ends of a
//     --framed pipeline, also used by CI to round-trip the binary path.
//
//   tool_sortd --listen PORT                      socket server mode:
//     serves the same wire frames (BATCH frames included) over a
//     non-blocking socket front-end (serve/net/socket_server.hpp — epoll
//     on Linux, --poll forces the portable poll(2) loop). PORT 0 binds an
//     ephemeral port; each bound endpoint is printed on stdout so scripts
//     can scrape it: "listening on HOST:PORT" for TCP (the one shared port
//     even with several SO_REUSEPORT listeners) and "listening on
//     unix:PATH" for --listen-unix PATH (which also works without
//     --listen, giving a UDS-only server). Serves until SIGINT/SIGTERM,
//     then drains and dumps the observability document to stderr — the
//     per-loop socket counters live in the same MetricsRegistry as the
//     service series, so one document covers both. Socket knobs: --host H
//     (default 127.0.0.1) --loops N (event-loop threads) --max-conns N
//     --conn-inflight N (in rounds: a batch frame counts its round count)
//     --idle-timeout-ms T. Unless --max-inflight is given explicitly, the
//     service backpressure bound is raised to max-conns x conn-inflight so
//     the event loops never block in submit().
//
// Observability: every service mode (--stdin, --framed, --listen, load)
// emits the same registry-rendered stats document on stderr when it
// finishes — one schema across all modes. --metrics-format json (default)
// or prometheus selects the rendering. --stats-interval SECS additionally
// dumps the document every SECS seconds while serving, and SIGUSR1 forces
// a dump immediately (in any service mode, interval set or not).
//
// Arbitrary-shape serving: the sorter pool compiles any requested shape on
// first use (nets/compose/). --pool-capacity N bounds resident compiled
// shapes (LRU-evicting idle ones; 0 = unbounded), and --warmup CxB[,CxB...]
// pre-builds the listed shapes before traffic is accepted, logging each
// shape's build time to stderr — so the first request of a known-hot shape
// never pays the compile.
//
// Shared knobs: --channels C --bits B --workers W --window-us U
//               --max-lanes L --max-inflight N --seed S
//               --pool-capacity N --warmup CxB[,CxB...]
//               --metrics-format json|prometheus --stats-interval SECS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <future>
#include <iostream>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/core/gray.hpp"
#include "mcsn/serve/net/socket_server.hpp"
#include "mcsn/serve/service.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/util/cli.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace {

using namespace mcsn;
using Clock = std::chrono::steady_clock;

/// Selected by --metrics-format; every stderr stats dump honours it, so
/// all modes emit one schema (registry-rendered, not hand-assembled).
wire::StatsFormat g_stats_format = wire::StatsFormat::json;

void dump_stats(const SortService& service) {
  if (g_stats_format == wire::StatsFormat::prometheus) {
    std::cerr << service.stats_prometheus();
  } else {
    std::cerr << service.stats_json() << "\n";
  }
  std::cerr << std::flush;
}

std::atomic<bool> g_dump_requested{false};

void on_dump_signal(int) { g_dump_requested.store(true); }

/// Background periodic/on-demand stats dumper: every service mode gets
/// SIGUSR1 = dump-now for free, and --stats-interval SECS adds a steady
/// cadence. Dumps go to stderr through dump_stats(), so they carry the
/// same schema as the end-of-run dump. RAII: joins in the destructor.
class StatsDumper {
 public:
  StatsDumper(const SortService& service, long interval_s)
      : service_(service), interval_s_(interval_s) {
    std::signal(SIGUSR1, on_dump_signal);
    thread_ = std::thread([this] { run(); });
  }
  ~StatsDumper() {
    stop_.store(true);
    thread_.join();
  }

 private:
  void run() {
    auto next = Clock::now() + std::chrono::seconds(interval_s_);
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (g_dump_requested.exchange(false)) dump_stats(service_);
      if (interval_s_ > 0 && Clock::now() >= next) {
        dump_stats(service_);
        next = Clock::now() + std::chrono::seconds(interval_s_);
      }
    }
  }

  const SortService& service_;
  long interval_s_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int run_stdin(SortService& service, std::size_t bits) {
  const std::uint64_t limit = std::uint64_t{1} << bits;
  std::vector<std::future<std::vector<Word>>> futures;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::vector<Word> round;
    std::uint64_t v = 0;
    while (ss >> v) {
      if (v >= limit) {
        std::cerr << "sortd: line " << lineno << ": value " << v
                  << " needs more than " << bits << " bits\n";
        return 2;
      }
      round.push_back(gray_encode(v, bits));
    }
    if (!ss.eof()) {
      std::cerr << "sortd: line " << lineno << ": not an integer round\n";
      return 2;
    }
    if (round.empty()) continue;
    futures.push_back(service.submit(std::move(round)));
  }
  for (auto& f : futures) {
    const std::vector<Word> sorted = f.get();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::cout << (i ? " " : "") << gray_decode(sorted[i]);
    }
    std::cout << "\n";
  }
  dump_stats(service);
  return 0;
}

int run_framed(SortService& service) {
  std::deque<std::future<SortResponse>> pending;
  // Responses leave in request order: only the front of the queue is ever
  // written, opportunistically while reading (so a long-lived pipe streams
  // results instead of buffering until EOF) and exhaustively at the end.
  const auto drain = [&pending](bool wait_all) {
    while (!pending.empty()) {
      if (!wait_all && pending.front().wait_for(std::chrono::seconds(0)) !=
                           std::future_status::ready) {
        break;
      }
      const SortResponse response = pending.front().get();
      pending.pop_front();
      wire::write_frame(std::cout, wire::encode_response(response));
    }
  };

  for (;;) {
    StatusOr<std::optional<wire::Frame>> frame = wire::read_frame(std::cin);
    if (!frame.ok()) {
      std::cerr << "sortd: framed stream: " << frame.status().to_string()
                << "\n";
      return 2;
    }
    if (!frame->has_value()) break;  // clean EOF between frames
    if ((*frame)->type != wire::FrameType::request) {
      std::cerr << "sortd: framed stream: expected a request frame\n";
      return 2;
    }
    StatusOr<SortRequest> request = wire::decode_request((*frame)->body);
    if (!request.ok()) {
      // The frame itself was well-delimited, so framing is intact: answer
      // this slot with the decode failure and keep serving.
      std::promise<SortResponse> failed;
      failed.set_value(
          SortResponse::failure(request.status(), SortShape{1, 1}));
      pending.push_back(failed.get_future());
    } else {
      pending.push_back(service.submit(std::move(*request)));
    }
    drain(false);
  }
  drain(true);
  std::cout.flush();
  dump_stats(service);
  return 0;
}

int run_encode_frames(std::size_t bits) {
  const std::uint64_t limit = std::uint64_t{1} << bits;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::vector<std::uint64_t> values;
    std::uint64_t v = 0;
    while (ss >> v) {
      if (v >= limit) {
        std::cerr << "sortd: line " << lineno << ": value " << v
                  << " needs more than " << bits << " bits\n";
        return 2;
      }
      values.push_back(v);
    }
    if (!ss.eof()) {
      std::cerr << "sortd: line " << lineno << ": not an integer round\n";
      return 2;
    }
    if (values.empty()) continue;
    StatusOr<SortRequest> request = SortRequest::from_values(
        SortShape{static_cast<int>(values.size()), bits}, values);
    if (!request.ok()) {
      std::cerr << "sortd: line " << lineno << ": "
                << request.status().to_string() << "\n";
      return 2;
    }
    wire::write_frame(std::cout, wire::encode_request(*request));
  }
  std::cout.flush();
  return 0;
}

int run_decode_frames() {
  for (;;) {
    StatusOr<std::optional<wire::Frame>> frame = wire::read_frame(std::cin);
    if (!frame.ok()) {
      std::cerr << "sortd: framed stream: " << frame.status().to_string()
                << "\n";
      return 2;
    }
    if (!frame->has_value()) break;
    if ((*frame)->type != wire::FrameType::response) {
      std::cerr << "sortd: framed stream: expected a response frame\n";
      return 2;
    }
    StatusOr<SortResponse> response = wire::decode_response((*frame)->body);
    if (!response.ok()) {
      std::cerr << "sortd: framed stream: " << response.status().to_string()
                << "\n";
      return 2;
    }
    if (!response->status.ok()) {
      std::cerr << "sortd: request failed: " << response->status.to_string()
                << "\n";
      return 3;
    }
    const StatusOr<std::vector<std::uint64_t>> values = response->values();
    if (values.ok()) {
      for (std::size_t i = 0; i < values->size(); ++i) {
        std::cout << (i ? " " : "") << (*values)[i];
      }
    } else {
      // Metastable or >64-bit outputs have no integer form; print words.
      const std::vector<Word> words = response->words();
      for (std::size_t i = 0; i < words.size(); ++i) {
        std::cout << (i ? " " : "") << words[i].str();
      }
    }
    std::cout << "\n";
  }
  return 0;
}

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

int run_listen(SortService& service, const net::SocketOptions& sopt) {
  net::SocketServer server(service, sopt);
  if (Status s = server.start(); !s.ok()) {
    std::cerr << "sortd: " << s.to_string() << "\n";
    return 2;
  }
  // Scrapable by scripts (and the CI smoke): one stdout line per bound
  // endpoint. With SO_REUSEPORT the N TCP listeners share one port, so
  // one line still identifies the whole TCP endpoint.
  if (sopt.listen_tcp) {
    std::cout << "listening on " << sopt.host << ":" << server.port() << "\n";
  }
  if (!sopt.unix_path.empty()) {
    std::cout << "listening on unix:" << sopt.unix_path << "\n";
  }
  std::cout << std::flush;

  // SIGINT/SIGTERM handlers were installed in main() *before* the service
  // was constructed — a SIGTERM that lands during a long --warmup build
  // latches into g_signal instead of killing the process mid-construction,
  // and this loop then exits immediately into the ordinary drain path.
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  // One registry-rendered document: the per-loop socket_*_total series
  // (labeled loop="i") sit next to the service series, replacing the old
  // hand-assembled {"socket": ..., "service": ...} blob.
  dump_stats(service);
  return 0;
}

int run_load(SortService& service, int channels, std::size_t bits,
             double rate, double duration_s, std::uint64_t seed) {
  // Oldest futures are drained once the window tops this size, bounding
  // driver memory on long soak runs (rate x duration can reach millions);
  // an old future is all but certainly fulfilled, so the get() is cheap.
  constexpr std::size_t kMaxPendingFutures = 16384;
  Xoshiro256 rng(seed);
  std::deque<std::future<std::vector<Word>>> futures;
  std::size_t completed = 0;
  PoissonClock arrivals(rate, rng);
  const auto end = arrivals.start() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(duration_s));
  while (true) {
    const auto scheduled = arrivals.next();
    if (scheduled >= end) break;
    if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);
    futures.push_back(
        service.submit(random_valid_round(rng, channels, bits)));
    while (futures.size() > kMaxPendingFutures) {
      (void)futures.front().get();
      futures.pop_front();
      ++completed;
    }
  }
  for (auto& f : futures) {
    (void)f.get();
    ++completed;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - arrivals.start()).count();
  std::cout << "{\"offered_rate\": " << rate
            << ", \"elapsed_s\": " << elapsed << ", \"throughput_vps\": "
            << static_cast<double>(completed) / elapsed
            << ",\n \"service\": " << service.metrics_json() << "}\n";
  // The bench JSON above keeps its schema for scripts; the registry
  // document goes to stderr like every other mode.
  dump_stats(service);
  return 0;
}

/// Parses "CxB[,CxB...]" (e.g. "24x8,12x4") into shapes. Returns false and
/// prints a diagnostic on malformed input; shape-range errors are left to
/// ServeOptions::validate(), which names them precisely.
bool parse_warmup_shapes(const std::string& arg,
                         std::vector<SortShape>& shapes) {
  const char* p = arg.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long channels = std::strtol(p, &end, 10);
    if (end == p || *end != 'x') {
      std::cerr << "sortd: --warmup wants CxB[,CxB...], got: " << arg << "\n";
      return false;
    }
    p = end + 1;
    const long bits = std::strtol(p, &end, 10);
    if (end == p || (*end != ',' && *end != '\0') || channels < 1 ||
        bits < 1) {
      std::cerr << "sortd: --warmup wants CxB[,CxB...], got: " << arg << "\n";
      return false;
    }
    shapes.push_back(SortShape{static_cast<int>(channels),
                               static_cast<std::size_t>(bits)});
    p = (*end == ',') ? end + 1 : end;
  }
  if (shapes.empty()) {
    std::cerr << "sortd: --warmup list is empty\n";
    return false;
  }
  return true;
}

int usage() {
  std::cerr << "usage: tool_sortd [--channels C>=2] [--bits 1..16]"
               " [--workers W>=1] [--window-us U>=0] [--max-lanes L>=1]"
               " [--max-inflight N>=1] [--rate R>0] [--duration-s S>0]"
               " [--seed S] [--pool-capacity N>=0] [--warmup CxB[,CxB...]]"
               " [--stdin | --framed | --encode-frames |"
               " --decode-frames | --listen PORT | --listen-unix PATH]\n"
               "       server knobs: [--host H] [--loops N>=1]"
               " [--max-conns N>=1] [--conn-inflight N>=1]"
               " [--idle-timeout-ms T>=0] [--poll]\n"
               "       observability: [--metrics-format json|prometheus]"
               " [--stats-interval SECS>=0]  (SIGUSR1 dumps now)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // JSON and sorted rounds must come out locale-independent even if a
  // linked component switches the global locale.
  std::cout.imbue(std::locale::classic());
  std::cerr.imbue(std::locale::classic());

  const CliArgs args(argc, argv);
  const int channels = static_cast<int>(args.get_long_or("channels", 10));
  const std::size_t bits =
      static_cast<std::size_t>(args.get_long_or("bits", 8));
  const long workers = args.get_long_or("workers", 1);
  const long window_us = args.get_long_or("window-us", 200);
  const long max_lanes = args.get_long_or("max-lanes", 256);
  const long max_inflight = args.get_long_or("max-inflight", 4096);
  double rate = 20000.0;
  double duration_s = 1.0;
  try {
    rate = std::stod(args.get_or("rate", "20000"));
    duration_s = std::stod(args.get_or("duration-s", "1"));
  } catch (const std::exception&) {
    rate = duration_s = 0.0;  // falls through to usage
  }
  // Workload-shape knobs keep their domain checks here; a non-finite or
  // non-positive rate feeds PoissonClock inf/NaN deadlines.
  if (channels < 2 || bits < 1 || bits > 16 || !std::isfinite(rate) ||
      rate <= 0.0 || !std::isfinite(duration_s) || duration_s <= 0.0) {
    return usage();
  }

  if (args.has("encode-frames")) return run_encode_frames(bits);
  if (args.has("decode-frames")) return run_decode_frames();

  const std::string metrics_format = args.get_or("metrics-format", "json");
  if (metrics_format == "prometheus") {
    g_stats_format = wire::StatsFormat::prometheus;
  } else if (metrics_format != "json") {
    std::cerr << "sortd: --metrics-format must be json or prometheus\n";
    return usage();
  }
  const long stats_interval_s = args.get_long_or("stats-interval", 0);
  if (stats_interval_s < 0) {
    std::cerr << "sortd: --stats-interval must be >= 0\n";
    return usage();
  }

  ServeOptions opt;
  opt.workers = static_cast<int>(workers);
  opt.flush_window = std::chrono::microseconds(window_us);
  // Negative values must reach validate() as out-of-range, not wrap
  // through the size_t casts into huge "valid" bounds.
  opt.max_lanes =
      max_lanes < 0 ? 0 : static_cast<std::size_t>(max_lanes);
  opt.max_inflight =
      max_inflight < 0 ? 0 : static_cast<std::size_t>(max_inflight);

  const long pool_capacity = args.get_long_or("pool-capacity", 0);
  if (pool_capacity < 0) {
    std::cerr << "sortd: --pool-capacity must be >= 0\n";
    return usage();
  }
  opt.pool_capacity = static_cast<std::size_t>(pool_capacity);
  if (args.has("warmup")) {
    if (!parse_warmup_shapes(args.get_or("warmup", ""), opt.warmup_shapes)) {
      return usage();
    }
    // Per-shape build-time log: the whole point of warming up is knowing
    // what the compile would have cost on the serving path.
    opt.warmup_observer = [](const SortShape& shape, const Status& status,
                             std::uint64_t build_ns) {
      std::cerr << "sortd: warmup " << shape.channels << "x" << shape.bits
                << ": ";
      if (status.ok()) {
        std::cerr << "built in "
                  << static_cast<double>(build_ns) / 1e6 << " ms\n";
      } else {
        std::cerr << status.to_string() << "\n";
      }
    };
  }

  net::SocketOptions sopt;
  const bool serve_sockets = args.has("listen") || args.has("listen-unix");
  if (serve_sockets) {
    const long max_conns = args.get_long_or("max-conns", 256);
    const long conn_inflight = args.get_long_or("conn-inflight", 64);
    const long idle_ms = args.get_long_or("idle-timeout-ms", 30000);
    const long loops = args.get_long_or("loops", 1);
    sopt.listen_tcp = args.has("listen");
    if (sopt.listen_tcp) {
      const long port = args.get_long_or("listen", -1);
      if (port < 0 || port > 65535) {
        std::cerr << "sortd: --listen needs a port in 0..65535\n";
        return usage();
      }
      sopt.port = static_cast<std::uint16_t>(port);
    }
    sopt.unix_path = args.get_or("listen-unix", "");
    sopt.host = args.get_or("host", "127.0.0.1");
    sopt.loops = static_cast<int>(loops);
    sopt.max_connections =
        max_conns < 0 ? 0 : static_cast<std::size_t>(max_conns);
    sopt.max_inflight =
        conn_inflight < 0 ? 0 : static_cast<std::size_t>(conn_inflight);
    sopt.idle_timeout = std::chrono::milliseconds(idle_ms < 0 ? -1 : idle_ms);
    sopt.force_poll = args.has("poll");
    if (Status s = sopt.validate(); !s.ok()) {
      std::cerr << "sortd: " << s.to_string() << "\n";
      return usage();
    }
    // Provision the service so the event loops never block in submit():
    // worst case every connection is at its per-connection cap.
    if (!args.has("max-inflight")) {
      opt.max_inflight =
          std::max(opt.max_inflight, sopt.max_connections * sopt.max_inflight);
    }
  }

  // Reject (rather than clamp) bad service knobs: validate() names every
  // out-of-range value so a typo'd flag errors instead of being silently
  // rewritten by the constructor's sanitize step.
  if (Status s = opt.validate(); !s.ok()) {
    std::cerr << "sortd: " << s.to_string() << "\n";
    return usage();
  }
  // Latch shutdown signals before the service exists: --warmup builds
  // composed shapes inside the SortService constructor (milliseconds to
  // seconds for big shapes), and the default SIGTERM disposition would
  // kill the process mid-construction — pool threads racing teardown.
  // Latched early, a signal during warmup just makes run_listen's wait
  // loop fall through to the ordinary stop()/drain path. Socket modes
  // only: the pipe/load modes keep the default die-on-signal behavior
  // their drivers (and the CI smokes) expect.
  if (serve_sockets) {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
  }
  SortService service(opt);
  // Joined after the mode returns but before the service is destroyed, so
  // periodic/SIGUSR1 dumps can read the registry for the mode's lifetime.
  const StatsDumper dumper(service, stats_interval_s);

  if (serve_sockets) return run_listen(service, sopt);
  if (args.has("framed")) return run_framed(service);
  if (args.has("stdin")) return run_stdin(service, bits);
  return run_load(service, channels, bits, rate, duration_s,
                  static_cast<std::uint64_t>(args.get_long_or("seed", 42)));
}
