// sortd — load-serving driver for the streaming sort service.
//
// Two modes:
//
//   tool_sortd --rate 50000 --duration-s 2        synthetic Poisson load:
//     submits random valid measurement rounds at the given arrival rate for
//     the given duration, then prints the service metrics JSON (request and
//     batch counters, lane occupancy, p50/p99 latency).
//
//   tool_sortd --stdin                            pipe mode:
//     each input line is one round of whitespace-separated integers; every
//     line is submitted asynchronously (the service coalesces them into
//     lane groups) and the sorted lines are printed in input order. Metrics
//     JSON goes to stderr.
//
// Shared knobs: --channels C --bits B --workers W --window-us U
//               --max-lanes L --max-inflight N --seed S

#include <chrono>
#include <cmath>
#include <deque>
#include <future>
#include <iostream>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/core/gray.hpp"
#include "mcsn/serve/service.hpp"
#include "mcsn/util/cli.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace {

using namespace mcsn;
using Clock = std::chrono::steady_clock;

int run_stdin(SortService& service, std::size_t bits) {
  const std::uint64_t limit = std::uint64_t{1} << bits;
  std::vector<std::future<std::vector<Word>>> futures;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::vector<Word> round;
    std::uint64_t v = 0;
    while (ss >> v) {
      if (v >= limit) {
        std::cerr << "sortd: line " << lineno << ": value " << v
                  << " needs more than " << bits << " bits\n";
        return 2;
      }
      round.push_back(gray_encode(v, bits));
    }
    if (!ss.eof()) {
      std::cerr << "sortd: line " << lineno << ": not an integer round\n";
      return 2;
    }
    if (round.empty()) continue;
    futures.push_back(service.submit(std::move(round)));
  }
  for (auto& f : futures) {
    const std::vector<Word> sorted = f.get();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::cout << (i ? " " : "") << gray_decode(sorted[i]);
    }
    std::cout << "\n";
  }
  std::cerr << service.metrics_json() << "\n";
  return 0;
}

int run_load(SortService& service, int channels, std::size_t bits,
             double rate, double duration_s, std::uint64_t seed) {
  // Oldest futures are drained once the window tops this size, bounding
  // driver memory on long soak runs (rate x duration can reach millions);
  // an old future is all but certainly fulfilled, so the get() is cheap.
  constexpr std::size_t kMaxPendingFutures = 16384;
  Xoshiro256 rng(seed);
  std::deque<std::future<std::vector<Word>>> futures;
  std::size_t completed = 0;
  PoissonClock arrivals(rate, rng);
  const auto end = arrivals.start() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(duration_s));
  while (true) {
    const auto scheduled = arrivals.next();
    if (scheduled >= end) break;
    if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);
    futures.push_back(
        service.submit(random_valid_round(rng, channels, bits)));
    while (futures.size() > kMaxPendingFutures) {
      (void)futures.front().get();
      futures.pop_front();
      ++completed;
    }
  }
  for (auto& f : futures) {
    (void)f.get();
    ++completed;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - arrivals.start()).count();
  std::cout << "{\"offered_rate\": " << rate
            << ", \"elapsed_s\": " << elapsed << ", \"throughput_vps\": "
            << static_cast<double>(completed) / elapsed
            << ",\n \"service\": " << service.metrics_json() << "}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // JSON and sorted rounds must come out locale-independent even if a
  // linked component switches the global locale.
  std::cout.imbue(std::locale::classic());
  std::cerr.imbue(std::locale::classic());

  const CliArgs args(argc, argv);
  const int channels = static_cast<int>(args.get_long_or("channels", 10));
  const std::size_t bits =
      static_cast<std::size_t>(args.get_long_or("bits", 8));
  const long workers = args.get_long_or("workers", 1);
  const long window_us = args.get_long_or("window-us", 200);
  const long max_lanes = args.get_long_or("max-lanes", 256);
  const long max_inflight = args.get_long_or("max-inflight", 4096);
  double rate = 20000.0;
  double duration_s = 1.0;
  try {
    rate = std::stod(args.get_or("rate", "20000"));
    duration_s = std::stod(args.get_or("duration-s", "1"));
  } catch (const std::exception&) {
    rate = duration_s = 0.0;  // falls through to usage
  }
  // Reject (rather than clamp) every value that would wedge the open loop:
  // a non-finite or non-positive rate feeds PoissonClock inf/NaN deadlines,
  // and negative pool/queue bounds would wrap through the size_t casts.
  if (channels < 2 || bits < 1 || bits > 16 || !std::isfinite(rate) ||
      rate <= 0.0 || !std::isfinite(duration_s) || duration_s <= 0.0 ||
      workers < 1 || window_us < 0 || max_lanes < 1 || max_inflight < 1) {
    std::cerr << "usage: tool_sortd [--channels C>=2] [--bits 1..16]"
                 " [--workers W>=1] [--window-us U>=0] [--max-lanes L>=1]"
                 " [--max-inflight N>=1] [--rate R>0] [--duration-s S>0]"
                 " [--seed S] [--stdin]\n";
    return 2;
  }

  ServeOptions opt;
  opt.workers = static_cast<int>(workers);
  opt.flush_window = std::chrono::microseconds(window_us);
  opt.max_lanes = static_cast<std::size_t>(max_lanes);
  opt.max_inflight = static_cast<std::size_t>(max_inflight);
  SortService service(opt);

  if (args.has("stdin")) return run_stdin(service, bits);
  return run_load(service, channels, bits, rate, duration_s,
                  static_cast<std::uint64_t>(args.get_long_or("seed", 42)));
}
