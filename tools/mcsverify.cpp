// tool_mcsverify — sweeps the IR verifier (netlist/verify_ir.hpp) over
// every network the repo can build: the paper catalog, the generator
// families, and composed/PPC elaborations under every 2-sort builder and
// PPC topology, each compiled under every CompileOptions combination.
//
//   tool_mcsverify                 full sweep (CI default)
//   tool_mcsverify --quick         catalog networks at 4 bits only
//   tool_mcsverify --bits 1,8      override the bit widths swept
//   tool_mcsverify --filter ppc    only configurations whose name matches
//   tool_mcsverify --mutate        also run the seeded mutation self-test
//                                  (each invariant class must be caught
//                                  with its own diagnostic)
//   tool_mcsverify --verbose       print every configuration checked
//
// Exit status 0 iff every compiled program verifies (and, with --mutate,
// every seeded mutation is rejected). This is the "check the construction,
// don't trust it" gate the SAT-certificate line of work argues for, run
// over the whole serving catalog in CI.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/netlist/verify_ir.hpp"
#include "mcsn/nets/catalog.hpp"
#include "mcsn/nets/compose/compose.hpp"
#include "mcsn/nets/elaborate.hpp"

namespace {

using namespace mcsn;

struct NamedNetwork {
  std::string name;
  ComparatorNetwork net;
};

struct NamedBuilder {
  std::string name;
  Sort2Builder builder;
};

std::vector<NamedNetwork> sweep_networks(bool quick) {
  std::vector<NamedNetwork> nets;
  nets.push_back({"optimal_4", optimal_4()});
  nets.push_back({"optimal_7", optimal_7()});
  nets.push_back({"optimal_9", optimal_9()});
  nets.push_back({"size_optimal_10", size_optimal_10()});
  nets.push_back({"depth_optimal_10", depth_optimal_10()});
  if (quick) return nets;
  for (const int n : {2, 3, 5, 8, 13}) {
    nets.push_back({"batcher_" + std::to_string(n), batcher_odd_even(n)});
  }
  nets.push_back({"merger_8", odd_even_merger(8)});
  nets.push_back({"transposition_6", odd_even_transposition(6)});
  nets.push_back({"insertion_6", insertion_network(6)});
  // The arbitrary-shape composer families the serving stack builds on
  // demand (nets/compose/): recursive odd-even composition, the PPC
  // construction under both realizable tree cones, and an uneven merger.
  for (const int n : {12, 17, 24}) {
    nets.push_back({"composed_" + std::to_string(n),
                    composed_sort_network(n, /*prefer_depth=*/true)});
  }
  nets.push_back({"composed_11s", composed_sort_network(11, false)});
  nets.push_back(
      {"ppc_lf_13", ppc_sort_network(13, PpcTopology::ladner_fischer)});
  nets.push_back({"ppc_sklansky_11",
                  ppc_sort_network(11, PpcTopology::sklansky)});
  nets.push_back({"oemerge_5_3", odd_even_merge_network(5, 3)});
  return nets;
}

std::vector<NamedBuilder> sweep_builders(bool quick) {
  std::vector<NamedBuilder> builders;
  // The paper's MC 2-sort under every PPC topology — the composed/PPC
  // construction path the serving stack ships.
  for (const PpcTopology topo : kAllPpcTopologies) {
    builders.push_back(
        {"mc-" + std::string(ppc_topology_name(topo)),
         sort2_builder(Sort2Options{topo, OpStyle::simple_gates})});
    if (quick) break;
  }
  if (quick) return builders;
  builders.push_back(
      {"mc-aoi", sort2_builder(Sort2Options{PpcTopology::ladner_fischer,
                                            OpStyle::aoi_cells})});
  builders.push_back({"naive-trees", sort2_naive_trees_builder()});
  builders.push_back({"date17", sort2_date17_style_builder()});
  builders.push_back({"bincomp", bincomp_builder()});
  return builders;
}

struct NamedCompile {
  const char* name;
  CompileOptions opt;
};

constexpr NamedCompile kCompileModes[] = {
    {"default", CompileOptions{}},
    {"creation-order", CompileOptions{.levelize = false}},
    {"keep-dead", CompileOptions{.eliminate_dead = false}},
    {"retain-all", CompileOptions{.retain_all_nodes = true}},
};

/// One seeded mutation per invariant class: perturb a known-good program
/// and demand the verifier rejects it with the class's own diagnostic.
/// Mirrors the gtest suite (tests/verify_ir_test.cpp) so the CI sweep
/// binary is self-negative-testing too.
int run_mutation_selftest() {
  const Netlist nl =
      elaborate_network(optimal_4(), 4, sort2_builder(), "mutate_seed");
  const CompiledProgram prog = CompiledProgram::compile(nl);
  const IrImage clean = ir_image_of(prog);
  if (Status s = verify_ir(clean); !s.ok()) {
    std::fprintf(stderr, "mutation self-test seed failed verification: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  struct Mutation {
    const char* name;
    const char* want_token;
    void (*apply)(IrImage&);
  };
  const Mutation mutations[] = {
      {"out-of-bounds slot", "slot-bounds",
       [](IrImage& ir) { ir.ops.back().out = static_cast<std::uint32_t>(
                             ir.slot_count + 7); }},
      {"corrupt level offsets", "level-structure",
       [](IrImage& ir) { ir.level_offsets.back() += 1; }},
      {"double-written slot", "double-write",
       [](IrImage& ir) { ir.ops[1].out = ir.ops[0].out; }},
      {"dangling operand read", "dangling-read",
       [](IrImage& ir) {
         ir.slot_count += 1;  // a slot nobody writes
         ir.ops[0].in[0] = static_cast<std::uint32_t>(ir.slot_count - 1);
       }},
      {"operand from a later level", "operand-level",
       [](IrImage& ir) {
         // Make the last op of level 0 read its neighbor's output: same
         // level, earlier in the stream — passes stream order, breaks
         // levelization.
         const std::size_t last = ir.level_offsets[1] - 1;
         ir.ops[last].in[0] = ir.ops[last - 1].out;
       }},
      {"orphan op", "orphan-op",
       [](IrImage& ir) {
         CompiledOp op;
         op.kind = CellKind::inv;
         op.out = static_cast<std::uint32_t>(ir.slot_count);
         op.in = {ir.output_slots[0], 0, 0};
         ir.slot_count += 1;
         ir.ops.push_back(op);
         ir.level_offsets.back() += 1;
       }},
  };

  int failures = 0;
  for (const Mutation& m : mutations) {
    IrImage mutated = clean;
    m.apply(mutated);
    const Status s = verify_ir(mutated);
    if (s.ok()) {
      std::fprintf(stderr, "MUTATION NOT CAUGHT: %s\n", m.name);
      ++failures;
    } else if (s.message().find(m.want_token) == std::string::npos) {
      std::fprintf(stderr,
                   "mutation '%s' caught with the wrong diagnostic: %s "
                   "(want token '%s')\n",
                   m.name, s.to_string().c_str(), m.want_token);
      ++failures;
    }
  }
  std::printf("mutation self-test: %zu invariant classes, %d escaped\n",
              std::size(mutations), failures);
  return failures == 0 ? 0 : 1;
}

std::vector<std::size_t> parse_bits_list(const char* arg) {
  std::vector<std::size_t> bits;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0) {
      std::fprintf(stderr, "bad --bits list: %s\n", arg);
      std::exit(2);
    }
    bits.push_back(static_cast<std::size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return bits;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool verbose = false;
  bool mutate = false;
  std::string filter;
  std::vector<std::size_t> bits = {1, 2, 4, 8, 16};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--bits" && i + 1 < argc) {
      bits = parse_bits_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--verbose] [--mutate] "
                   "[--filter SUBSTR] [--bits B1,B2,...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick) bits = {4};

  const std::vector<NamedNetwork> nets = sweep_networks(quick);
  const std::vector<NamedBuilder> builders = sweep_builders(quick);

  std::size_t checked = 0;
  std::size_t failures = 0;
  for (const NamedNetwork& net : nets) {
    for (const NamedBuilder& builder : builders) {
      for (const std::size_t b : bits) {
        const std::string base =
            net.name + "/" + builder.name + "/b" + std::to_string(b);
        if (!filter.empty() && base.find(filter) == std::string::npos) {
          continue;
        }
        const Netlist nl = elaborate_network(net.net, b, builder.builder);
        for (const NamedCompile& mode : kCompileModes) {
          const CompiledProgram prog = CompiledProgram::compile(nl, mode.opt);
          const Status s = verify_ir(prog, verify_options_for(mode.opt));
          ++checked;
          if (!s.ok()) {
            ++failures;
            std::fprintf(stderr, "FAIL %s/%s: %s\n", base.c_str(), mode.name,
                         s.to_string().c_str());
          } else if (verbose) {
            std::printf("ok   %s/%s (%zu slots, %zu ops, %zu levels)\n",
                        base.c_str(), mode.name, prog.slot_count(),
                        prog.ops().size(), prog.level_count());
          }
        }
      }
    }
  }

  std::printf("mcsverify: %zu compiled programs checked, %zu failed\n",
              checked, failures);
  int rc = failures == 0 ? 0 : 1;
  if (mutate && run_mutation_selftest() != 0) rc = 1;
  return rc;
}
