// Offline synthesis driver: searches for a depth-7 sorting network on 10
// channels (the minimum depth, Bundala & Zavodny) with the simulated
// annealing engine, then greedily minimizes its size. The found network is
// hardcoded in nets/catalog.cpp (depth_optimal_10) and machine-verified by
// the test suite.
//
// Usage: find_depth7 [--channels N] [--layers D] [--seeds K] [--iters I]

#include <cstdio>
#include <optional>

#include "mcsn/nets/search.hpp"
#include "mcsn/util/cli.hpp"

int main(int argc, char** argv) {
  const mcsn::CliArgs args(argc, argv);
  mcsn::AnnealConfig cfg;
  cfg.channels = static_cast<int>(args.get_long_or("channels", 10));
  cfg.layers = static_cast<int>(args.get_long_or("layers", 7));
  cfg.max_iterations =
      static_cast<std::uint64_t>(args.get_long_or("iters", 3'000'000));
  const long seeds = args.get_long_or("seeds", 16);

  std::optional<mcsn::ComparatorNetwork> best;
  for (long s = 1; s <= seeds; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s);
    const mcsn::AnnealResult res = mcsn::anneal_fixed_depth(cfg);
    std::printf("seed %ld: unsorted=%zu size=%zu depth=%zu\n", s,
                res.unsorted, res.network.size(), res.network.depth());
    std::fflush(stdout);
    if (res.unsorted == 0) {
      const mcsn::ComparatorNetwork mini = mcsn::minimize_size(res.network);
      std::printf("  minimized: size=%zu depth=%zu\n", mini.size(),
                  mini.depth());
      if (!best || mini.size() < best->size()) best = mini;
      if (best->size() <= 31) break;
    }
  }

  if (!best) {
    std::printf("no sorting network found; increase --iters/--seeds\n");
    return 1;
  }
  std::printf("\nbest: size=%zu depth=%zu\n", best->size(), best->depth());
  for (const auto& layer : best->layers()) {
    std::printf("  {");
    for (std::size_t i = 0; i < layer.size(); ++i) {
      std::printf("%s{%d, %d}", i ? ", " : "", layer[i].lo, layer[i].hi);
    }
    std::printf("},\n");
  }
  return 0;
}
