// Calibration helper for the default cell library's delay parameters
// (netlist/library.cpp). Two modes:
//
//   calibrate_delay          — report measured vs published Table 7 values
//   calibrate_delay --sweep  — grid-search (intrinsic, slope) parameters for
//                              INV/AND2/OR2 minimizing the maximum relative
//                              error against the four published delays
//                              (119 / 362 / 516 / 805 ps)

#include <array>
#include <cstdio>
#include <limits>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/stats.hpp"
#include "mcsn/netlist/timing.hpp"
#include "mcsn/refdata/paper_tables.hpp"
#include "mcsn/util/cli.hpp"

namespace {

using namespace mcsn;

CellLibrary make_lib(double inv_i, double inv_s, double gate_i, double gate_s,
                     double port) {
  std::array<CellParams, kCellKindCount> cells{};
  cells[static_cast<int>(CellKind::inv)] = CellParams{0.8703, 1.0, inv_i,
                                                      inv_s};
  cells[static_cast<int>(CellKind::and2)] =
      CellParams{1.4875, 1.0, gate_i, gate_s};
  cells[static_cast<int>(CellKind::or2)] =
      CellParams{1.4875, 1.0, gate_i, gate_s};
  return CellLibrary("sweep", cells, port);
}

double max_rel_error(const CellLibrary& lib, bool print) {
  double worst = 0.0;
  if (print) {
    std::printf("%4s %8s %10s %10s %10s %10s %10s %10s\n", "B", "gates",
                "gates.ref", "area", "area.ref", "delay", "delay.ref",
                "d.err%");
  }
  for (const int bits : {2, 4, 8, 16}) {
    const Netlist nl = make_sort2(static_cast<std::size_t>(bits));
    const auto ref = refdata::table7_row(refdata::Circuit::here, bits);
    const double delay = analyze_timing(nl, lib).critical_delay;
    const double err = (delay - ref->delay) / ref->delay;
    worst = std::max(worst, std::abs(err));
    if (print) {
      const CircuitStats s = compute_stats(nl);
      std::printf("%4d %8zu %10zu %10.3f %10.3f %10.1f %10.1f %9.1f%%\n",
                  bits, s.gates, ref->gates, s.area, ref->area, delay,
                  ref->delay, 100.0 * err);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (!args.has("sweep")) {
    max_rel_error(CellLibrary::paper_calibrated(), true);
    return 0;
  }

  double best = std::numeric_limits<double>::infinity();
  double bp[5] = {0, 0, 0, 0, 0};
  for (double inv_i = 4; inv_i <= 16; inv_i += 2) {
    for (double inv_s = 2; inv_s <= 12; inv_s += 2) {
      for (double gate_i = 14; gate_i <= 36; gate_i += 2) {
        for (double gate_s = 2; gate_s <= 14; gate_s += 2) {
          for (double port = 0.5; port <= 2.5; port += 0.5) {
            const double err = max_rel_error(
                make_lib(inv_i, inv_s, gate_i, gate_s, port), false);
            if (err < best) {
              best = err;
              bp[0] = inv_i;
              bp[1] = inv_s;
              bp[2] = gate_i;
              bp[3] = gate_s;
              bp[4] = port;
            }
          }
        }
      }
    }
  }
  std::printf("best max|err| = %.2f%% at inv=(%.0f,%.0f) gate=(%.0f,%.0f) "
              "port=%.1f\n",
              100.0 * best, bp[0], bp[1], bp[2], bp[3], bp[4]);
  max_rel_error(make_lib(bp[0], bp[1], bp[2], bp[3], bp[4]), true);
  return 0;
}
