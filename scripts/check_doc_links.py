#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans README.md, docs/*.md and the other top-level *.md files for
[text](target) links, skips absolute URLs and mailto:, strips #fragments,
and verifies each remaining target exists relative to the file that links
it. Exits non-zero listing every dangling link, so docs cross-references
cannot rot silently.

Usage: scripts/check_doc_links.py [repo_root]
"""

import pathlib
import re
import sys

# [text](target) — target must not start with a scheme. Nested parens and
# images are rare enough in this repo that the simple pattern is right.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: pathlib.Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    broken = []
    checked = 0
    for md in doc_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
    for b in broken:
        print(f"dangling link: {b}", file=sys.stderr)
    print(f"checked {checked} relative links, {len(broken)} dangling")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
