#!/usr/bin/env python3
"""Validate a scraped observability document from the sort service.

Reads the document from stdin (or a file argument). Two modes:

  check_metrics.py            JSON document, as served for StatsFormat
                              json: {"metrics": {...}, "slow_requests":
                              [...]}. Checks the schema, that counters and
                              gauges are integers, that histogram objects
                              carry the full summary-stat set, and — the
                              CI smoke's point — that every per-stage
                              latency histogram has samples.
  check_metrics.py --prometheus
                              Prometheus text exposition: every non-#
                              line must match the sample grammar, every
                              sample must be preceded by a # TYPE line for
                              its metric, and the stage histograms must
                              report non-zero _count samples.

Flags (both modes):

  --require-cache             also assert the sorter-pool cache series
                              (pool_hits_total / pool_misses_total /
                              pool_evictions_total, plus the pool_capacity
                              and pool_shapes gauges) are present and that
                              at least one miss was recorded — i.e. the
                              scrape saw a pool that actually built a
                              shape.
  --require-evictions         additionally assert pool_evictions_total > 0
                              — the churn smoke's point: under more shapes
                              than capacity, the LRU must have evicted.
  --require-process-stats     assert the process_rss_bytes and
                              process_open_fds gauges are present and
                              positive — i.e. the scrape came from a
                              server whose /proc sampling works (the soak
                              harness leans on these for leak detection).

Exits non-zero listing every violation, so a malformed or empty scrape
fails CI loudly.

Usage: tool_sortd --listen 0 &  ... load ...
       example_net_client --port P --stats | scripts/check_metrics.py
"""

import json
import re
import sys

STAGES = (
    "stage_decode_ns",
    "stage_queue_ns",
    "stage_execute_ns",
    "stage_encode_ns",
    "stage_write_ns",
)
HISTO_KEYS = {"count", "min", "p50", "p90", "p99", "max", "mean"}
SLOW_KEYS = {
    "channels", "bits", "rounds", "total_ns", "queue_ns", "execute_ns",
    "status",
}

# name or name{k="v",...} followed by a number; \" and \\ stay inside the
# quoted label value.
CACHE_COUNTERS = (
    "pool_hits_total",
    "pool_misses_total",
    "pool_evictions_total",
)
CACHE_GAUGES = ("pool_capacity", "pool_shapes")
PROCESS_GAUGES = ("process_rss_bytes", "process_open_fds")

SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$'
)
TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|untyped)$"
)


def check_cache(values: dict, require_evictions: bool) -> list:
    """Shared --require-cache assertions over a {name: value} map."""
    errors = []
    for name in CACHE_COUNTERS + CACHE_GAUGES:
        if name not in values:
            errors.append(f"{name}: cache series missing")
    misses = values.get("pool_misses_total")
    if misses is not None and misses == 0:
        errors.append("pool_misses_total: no cache miss recorded — did the "
                      "pool ever build a shape?")
    if require_evictions:
        evictions = values.get("pool_evictions_total")
        if evictions is not None and evictions == 0:
            errors.append("pool_evictions_total: no eviction under churn — "
                          "is the LRU bound enforced?")
    return errors


def check_process_stats(values: dict) -> list:
    """Shared --require-process-stats assertions over a {name: value} map.

    The gauges publish -1 when /proc sampling is unsupported, so "present
    but non-positive" is as much a failure as "missing": CI runs on Linux
    where the sampling must work.
    """
    errors = []
    for name in PROCESS_GAUGES:
        value = values.get(name)
        if value is None:
            errors.append(f"{name}: process-stats gauge missing")
        elif value <= 0:
            errors.append(f"{name}: non-positive ({value}) — /proc "
                          "sampling unsupported or broken")
    return errors


def check_json(text: str, require_cache: bool = False,
               require_evictions: bool = False,
               require_process: bool = False) -> list:
    errors = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    for key in ("metrics", "slow_requests"):
        if key not in doc:
            errors.append(f'missing top-level "{key}"')
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return errors + ['"metrics" is not an object']

    for key, value in metrics.items():
        if isinstance(value, dict):
            missing = HISTO_KEYS - value.keys()
            if missing:
                errors.append(f"{key}: histogram missing {sorted(missing)}")
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{key}: expected integer, got {value!r}")

    for stage in STAGES:
        histo = metrics.get(stage)
        if not isinstance(histo, dict):
            errors.append(f"{stage}: missing stage histogram")
        elif not histo.get("count"):
            errors.append(f"{stage}: stage histogram is empty")

    slow = doc.get("slow_requests")
    if not isinstance(slow, list):
        errors.append('"slow_requests" is not an array')
    else:
        for i, entry in enumerate(slow):
            if not isinstance(entry, dict) or entry.keys() != SLOW_KEYS:
                errors.append(f"slow_requests[{i}]: bad entry {entry!r}")

    if require_cache or require_process:
        scalars = {k: v for k, v in metrics.items()
                   if isinstance(v, int) and not isinstance(v, bool)}
        if require_cache:
            errors += check_cache(scalars, require_evictions)
        if require_process:
            errors += check_process_stats(scalars)
    return errors


def check_prometheus(text: str, require_cache: bool = False,
                     require_evictions: bool = False,
                     require_process: bool = False) -> list:
    errors = []
    typed = set()
    counts = {}
    scalars = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"line {lineno}: empty line")
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if not m:
                errors.append(f"line {lineno}: bad comment line: {line}")
            else:
                typed.add(m.group(1))
            continue
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"line {lineno}: bad sample line: {line}")
            continue
        name = m.group(1)
        # A summary's _sum/_count samples belong to the base metric's TYPE.
        base = re.sub(r"_(sum|count)$", "", name)
        if name not in typed and base not in typed:
            errors.append(f"line {lineno}: sample before any # TYPE: {name}")
        if name.endswith("_count"):
            counts[name] = float(line.rsplit(" ", 1)[1])
        if m.group(2) is None:  # unlabeled sample: eligible cache series
            scalars[name] = float(line.rsplit(" ", 1)[1])
    for stage in STAGES:
        count = counts.get(stage + "_count")
        if count is None:
            errors.append(f"{stage}: no _count sample")
        elif count == 0:
            errors.append(f"{stage}: stage histogram is empty")
    if require_cache:
        errors += check_cache(scalars, require_evictions)
    if require_process:
        errors += check_process_stats(scalars)
    return errors


def main() -> int:
    args = sys.argv[1:]
    prometheus = "--prometheus" in args
    require_evictions = "--require-evictions" in args
    require_cache = "--require-cache" in args or require_evictions
    require_process = "--require-process-stats" in args
    flags = {"--prometheus", "--require-cache", "--require-evictions",
             "--require-process-stats"}
    paths = [a for a in args if a not in flags]
    if paths:
        with open(paths[0], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("check_metrics: empty document", file=sys.stderr)
        return 1
    check = check_prometheus if prometheus else check_json
    errors = check(text, require_cache, require_evictions, require_process)
    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    if not errors:
        mode = "prometheus" if prometheus else "json"
        print(f"check_metrics: OK ({mode}, {len(text)} bytes)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
