#pragma once
// High-level facade: an n-channel, B-bit metastability-containing sorter.
//
// Wraps network selection, elaboration, evaluation and containment
// accounting behind a value-semantic class, so downstream users can sort
// vectors of (possibly marginal) Gray code measurements in two lines:
//
//   McSorter sorter(10, 8);                       // 10 channels, 8 bits
//   std::vector<Word> sorted = sorter.sort(measurements);

#include <span>
#include <string>
#include <vector>

#include "mcsn/api/sort_api.hpp"
#include "mcsn/nets/compose/builder.hpp"
#include "mcsn/nets/elaborate.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/netlist/stats.hpp"

namespace mcsn {

struct McSorterOptions {
  /// Catalog tie-break under auto_select where two optima differ (n = 10):
  /// prefer minimal depth (true) or minimal comparator count (false).
  bool prefer_depth = true;
  /// Network construction policy (nets/compose/builder.hpp): any channel
  /// count is servable — n <= 10 uses the optimal catalog, larger n picks
  /// between recursive odd-even composition over the catalog leaves and
  /// the PPC construction. smallest_depth also switches the 2-sort's
  /// internal PPC topology to the depth-minimal sklansky cone, overriding
  /// sort2.topology.
  BuildPolicy policy = BuildPolicy::auto_select;
  /// Channel bound forwarded to NetworkBuilder: construction beyond this
  /// is refused (kUnimplemented through the pool, std::invalid_argument
  /// from the constructor) instead of compiling unboundedly large
  /// programs on demand.
  int max_channels = 4096;
  Sort2Options sort2;
  /// Batch engine knobs (thread sharding) used by sort_batch.
  BatchOptions batch;
};

/// The NetworkBuilder configuration McSorter derives from its options —
/// exposed so SorterPool can pre-run construction and report failures as
/// Status values instead of catching constructor exceptions.
[[nodiscard]] NetworkBuilderOptions builder_options(
    const McSorterOptions& opt) noexcept;

class McSorter {
 public:
  McSorter(int channels, std::size_t bits, const McSorterOptions& opt = {});

  /// Constructs from an already-built network (see NetworkBuilder) —
  /// skips re-running construction when the caller has validated the
  /// shape, e.g. the serving pool's Status-based path.
  McSorter(BuiltNetwork built, std::size_t bits,
           const McSorterOptions& opt = {});

  // The executor holds a pointer into the owned compiled program, so copies
  // are deleted; moves re-pin that pointer, letting pools and containers
  // hold sorters by value.
  McSorter(const McSorter&) = delete;
  McSorter& operator=(const McSorter&) = delete;
  McSorter(McSorter&& other) noexcept;
  McSorter& operator=(McSorter&& other) noexcept;

  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }
  [[nodiscard]] const ComparatorNetwork& network() const noexcept {
    return network_;
  }

  /// Gate-level report under the default (paper-calibrated) library.
  [[nodiscard]] CircuitStats stats() const;

  [[nodiscard]] SortShape shape() const noexcept {
    return SortShape{channels_, bits_};
  }

  // --- primary (flat, Status-based) API -------------------------------------

  /// Sorts N rounds given as one flat contiguous buffer: `in` holds
  /// N x channels() x bits() trits (round-major, channel-major within a
  /// round) and the sorted rounds are written to `out` in the same layout.
  /// This is the zero-copy path the compiled engine consumes directly — no
  /// per-round repacking. Returns kInvalidArgument (and writes nothing) if
  /// in.size() is not a multiple of the round size or out.size() differs.
  ///
  /// Const and safe to call concurrently from multiple threads.
  [[nodiscard]] Status sort_batch_flat(std::span<const Trit> in,
                                       std::span<Trit> out) const;

  /// Sorts one SortRequest through the flat path. The response carries
  /// kInvalidArgument (never throws) when the request is malformed or its
  /// shape differs from this sorter's.
  [[nodiscard]] SortResponse sort_request(const SortRequest& request) const;

  // --- legacy wrappers (thin shims over the flat path) ----------------------

  /// Sorts `values` (each a B-bit valid string) through the gate-level
  /// netlist with worst-case metastability semantics.
  /// Precondition: values.size() == channels().
  [[nodiscard]] std::vector<Word> sort(const std::vector<Word>& values);

  /// Convenience: encodes integers as Gray codewords and sorts. Throws
  /// std::invalid_argument when bits() > 64 (values are uint64_t; use the
  /// trit-based API for wider words).
  [[nodiscard]] std::vector<std::uint64_t> sort_values(
      const std::vector<std::uint64_t>& values);

  /// Sorts many measurement rounds in one pass through the compiled batch
  /// engine (256-lane packing, optional thread sharding). Each round is a
  /// vector of channels() B-bit words; results come back round-aligned.
  /// Wrapper over sort_batch_flat: flattens once into a contiguous buffer,
  /// then splits the flat results back into Words.
  ///
  /// Const and safe to call concurrently from multiple threads (each call
  /// runs its own executor over the shared program); sort()/sort_values()
  /// mutate the scalar executor and are not.
  [[nodiscard]] std::vector<std::vector<Word>> sort_batch(
      const std::vector<std::vector<Word>>& rounds) const;

  /// Batch variant of sort_values: each round is a vector of channels()
  /// integers, Gray-encoded/decoded transparently. Throws
  /// std::invalid_argument when bits() > 64.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> sort_values_batch(
      const std::vector<std::vector<std::uint64_t>>& rounds) const;

 private:
  int channels_;
  std::size_t bits_;
  ComparatorNetwork network_;
  Netlist netlist_;
  // One dense, dead-node-eliminated program serves both the per-round
  // scalar path (exec_) and sort_batch (batch_ shares the same program
  // object; order matters — exec_ points into batch_'s program).
  BatchEvaluator batch_;
  CompiledExecutor<ScalarBackend> exec_;
};

}  // namespace mcsn
