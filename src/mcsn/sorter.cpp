#include "mcsn/sorter.hpp"

#include <cassert>
#include <stdexcept>

#include "mcsn/core/gray.hpp"
#include "mcsn/nets/catalog.hpp"

namespace mcsn {

namespace {

ComparatorNetwork pick_network(int channels, bool prefer_depth) {
  switch (channels) {
    case 4: return optimal_4();
    case 7: return optimal_7();
    case 9: return optimal_9();
    case 10: return prefer_depth ? depth_optimal_10() : size_optimal_10();
    default: return batcher_odd_even(channels);
  }
}

int checked_shape(int channels, std::size_t bits) {
  if (channels < 1 || bits < 1) {
    throw std::invalid_argument("McSorter: channels and bits must be >= 1");
  }
  return channels;
}

}  // namespace

McSorter::McSorter(int channels, std::size_t bits, const McSorterOptions& opt)
    : channels_(checked_shape(channels, bits)),
      bits_(bits),
      network_(pick_network(channels, opt.prefer_depth)),
      netlist_(elaborate_network(network_, bits, sort2_builder(opt.sort2))),
      evaluator_(netlist_) {}

CircuitStats McSorter::stats() const { return compute_stats(netlist_); }

std::vector<Word> McSorter::sort(const std::vector<Word>& values) {
  assert(static_cast<int>(values.size()) == channels_);
  std::vector<Trit> in;
  in.reserve(static_cast<std::size_t>(channels_) * bits_);
  for (const Word& w : values) {
    assert(w.size() == bits_);
    in.insert(in.end(), w.begin(), w.end());
  }
  Word out;
  evaluator_.run_outputs(in, out);
  std::vector<Word> sorted(static_cast<std::size_t>(channels_));
  for (std::size_t c = 0; c < sorted.size(); ++c) {
    sorted[c] = out.sub(c * bits_, (c + 1) * bits_ - 1);
  }
  return sorted;
}

std::vector<std::uint64_t> McSorter::sort_values(
    const std::vector<std::uint64_t>& values) {
  std::vector<Word> words;
  words.reserve(values.size());
  for (const std::uint64_t v : values) {
    words.push_back(gray_encode(v, bits_));
  }
  const std::vector<Word> sorted = sort(words);
  std::vector<std::uint64_t> out;
  out.reserve(sorted.size());
  for (const Word& w : sorted) out.push_back(gray_decode(w));
  return out;
}

}  // namespace mcsn
