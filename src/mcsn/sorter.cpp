#include "mcsn/sorter.hpp"

#include <cassert>
#include <stdexcept>

#include "mcsn/core/gray.hpp"

namespace mcsn {

namespace {

int checked_shape(int channels, std::size_t bits) {
  if (channels < 1 || bits < 1) {
    throw std::invalid_argument("McSorter: channels and bits must be >= 1");
  }
  return channels;
}

BuiltNetwork build_or_throw(int channels, std::size_t bits,
                            const McSorterOptions& opt) {
  checked_shape(channels, bits);
  StatusOr<BuiltNetwork> built = NetworkBuilder(builder_options(opt))
                                     .build(channels);
  if (!built.ok()) {
    throw std::invalid_argument("McSorter: " + built.status().to_string());
  }
  return std::move(*built);
}

Sort2Options effective_sort2(const McSorterOptions& opt,
                             PpcTopology suggested) {
  Sort2Options sort2 = opt.sort2;
  // smallest_depth is a whole-stack promise: the comparator network *and*
  // the 2-sort's internal prefix tree go depth-minimal.
  if (opt.policy == BuildPolicy::smallest_depth) sort2.topology = suggested;
  return sort2;
}

}  // namespace

NetworkBuilderOptions builder_options(const McSorterOptions& opt) noexcept {
  return NetworkBuilderOptions{opt.policy, opt.prefer_depth, opt.max_channels};
}

McSorter::McSorter(int channels, std::size_t bits, const McSorterOptions& opt)
    : McSorter(build_or_throw(channels, bits, opt), bits, opt) {}

McSorter::McSorter(BuiltNetwork built, std::size_t bits,
                   const McSorterOptions& opt)
    : channels_(checked_shape(built.network.channels(), bits)),
      bits_(bits),
      network_(std::move(built.network)),
      netlist_(elaborate_network(
          network_, bits,
          sort2_builder(effective_sort2(opt, built.sort2_topology)))),
      batch_(netlist_, opt.batch),
      exec_(batch_.program()) {}

McSorter::McSorter(McSorter&& other) noexcept
    : channels_(other.channels_),
      bits_(other.bits_),
      network_(std::move(other.network_)),
      netlist_(std::move(other.netlist_)),
      batch_(std::move(other.batch_)),
      exec_(std::move(other.exec_)) {
  // batch_ owns the compiled program; the moved executor still points at the
  // old object's storage.
  exec_.rebind(batch_.program());
}

McSorter& McSorter::operator=(McSorter&& other) noexcept {
  if (this != &other) {
    channels_ = other.channels_;
    bits_ = other.bits_;
    network_ = std::move(other.network_);
    netlist_ = std::move(other.netlist_);
    batch_ = std::move(other.batch_);
    exec_ = std::move(other.exec_);
    exec_.rebind(batch_.program());
  }
  return *this;
}

CircuitStats McSorter::stats() const { return compute_stats(netlist_); }

std::vector<Word> McSorter::sort(const std::vector<Word>& values) {
  assert(static_cast<int>(values.size()) == channels_);
  std::vector<Trit> in;
  in.reserve(static_cast<std::size_t>(channels_) * bits_);
  for (const Word& w : values) {
    assert(w.size() == bits_);
    in.insert(in.end(), w.begin(), w.end());
  }
  exec_.run(in);
  std::vector<Word> sorted(static_cast<std::size_t>(channels_));
  for (std::size_t c = 0; c < sorted.size(); ++c) {
    Word w(bits_);
    for (std::size_t b = 0; b < bits_; ++b) {
      w[b] = exec_.output_lane(c * bits_ + b, 0);
    }
    sorted[c] = std::move(w);
  }
  return sorted;
}

Status McSorter::sort_batch_flat(std::span<const Trit> in,
                                 std::span<Trit> out) const {
  const std::size_t round_trits = static_cast<std::size_t>(channels_) * bits_;
  if (round_trits == 0 || in.size() % round_trits != 0) {
    return Status::invalid_argument(
        "flat payload of " + std::to_string(in.size()) +
        " trits is not a whole number of " + std::to_string(channels_) + "x" +
        std::to_string(bits_) + " rounds");
  }
  if (out.size() != in.size()) {
    return Status::invalid_argument(
        "output buffer of " + std::to_string(out.size()) +
        " trits does not match input of " + std::to_string(in.size()));
  }
  batch_.run_flat(in, out);
  return Status();
}

SortResponse McSorter::sort_request(const SortRequest& request) const {
  SortResponse response;
  response.shape = request.shape;
  response.values_requested = request.values_requested;
  if (Status s = request.validate(); !s.ok()) {
    response.status = std::move(s);
    return response;
  }
  if (request.shape != shape()) {
    response.status = Status::invalid_argument(
        "request shape " + std::to_string(request.shape.channels) + "x" +
        std::to_string(request.shape.bits) + " does not match sorter " +
        std::to_string(channels_) + "x" + std::to_string(bits_));
    return response;
  }
  response.payload.resize(request.payload.size());
  response.status = sort_batch_flat(request.payload, response.payload);
  if (!response.status.ok()) response.payload.clear();
  return response;
}

std::vector<std::uint64_t> McSorter::sort_values(
    const std::vector<std::uint64_t>& values) {
  if (bits_ > 64) {
    throw std::invalid_argument(
        "McSorter::sort_values: integer entry points require bits <= 64 "
        "(values are uint64_t); sort raw trit words instead");
  }
  std::vector<Word> words;
  words.reserve(values.size());
  for (const std::uint64_t v : values) {
    words.push_back(gray_encode(v, bits_));
  }
  const std::vector<Word> sorted = sort(words);
  std::vector<std::uint64_t> out;
  out.reserve(sorted.size());
  for (const Word& w : sorted) out.push_back(gray_decode(w));
  return out;
}

std::vector<std::vector<Word>> McSorter::sort_batch(
    const std::vector<std::vector<Word>>& rounds) const {
  const std::size_t round_trits = static_cast<std::size_t>(channels_) * bits_;
  std::vector<Trit> flat(rounds.size() * round_trits);
  std::size_t k = 0;
  for (const std::vector<Word>& round : rounds) {
    assert(static_cast<int>(round.size()) == channels_);
    for (const Word& w : round) {
      assert(w.size() == bits_);
      for (const Trit t : w) flat[k++] = t;
    }
  }
  std::vector<Trit> outs(flat.size());
  batch_.run_flat(flat, outs);
  std::vector<std::vector<Word>> sorted(rounds.size());
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const Trit* const row = outs.data() + r * round_trits;
    sorted[r].reserve(static_cast<std::size_t>(channels_));
    for (std::size_t c = 0; c < static_cast<std::size_t>(channels_); ++c) {
      Word w(bits_);
      for (std::size_t b = 0; b < bits_; ++b) w[b] = row[c * bits_ + b];
      sorted[r].push_back(std::move(w));
    }
  }
  return sorted;
}

std::vector<std::vector<std::uint64_t>> McSorter::sort_values_batch(
    const std::vector<std::vector<std::uint64_t>>& rounds) const {
  if (bits_ > 64) {
    throw std::invalid_argument(
        "McSorter::sort_values_batch: integer entry points require bits <= "
        "64 (values are uint64_t); sort raw trit words instead");
  }
  std::vector<std::vector<Word>> words(rounds.size());
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    words[r].reserve(rounds[r].size());
    for (const std::uint64_t v : rounds[r]) {
      words[r].push_back(gray_encode(v, bits_));
    }
  }
  const std::vector<std::vector<Word>> sorted = sort_batch(words);
  std::vector<std::vector<std::uint64_t>> out(sorted.size());
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    out[r].reserve(sorted[r].size());
    for (const Word& w : sorted[r]) out[r].push_back(gray_decode(w));
  }
  return out;
}

}  // namespace mcsn
