#pragma once
// Arbitrary-n construction of metastability-containing sorting networks.
//
// The paper's catalog stops at 10 channels; production traffic has a long
// tail of shapes. Two construction routes cover any channel count:
//
//   * composed_sort_network — classic recursive odd-even merge composition:
//     split the channels in half, sort each half recursively, and merge
//     with Batcher's odd-even merge generalized to arbitrary (p, q) run
//     sizes. The recursion bottoms out on the *optimal* catalog blocks
//     (2-sort .. 10-sort), so every leaf is a paper-grade network and only
//     the merge glue is generated.
//
//   * ppc_sort_network — the parallel-prefix-computation construction
//     (arXiv 1911.00267, "Optimal MC Sorting via Parallel Prefix
//     Computation"): the merge tree is shaped by a PPC topology's
//     reduction cone over contiguous channel runs (combine = odd-even
//     merge of two adjacent sorted runs — adjacent, disjoint ranges only,
//     the Theorem 4.1 condition `ckt/ppc.hpp` documents). Supported
//     topologies are the reuse-free cones: ladner_fischer (balanced
//     pairing tree), sklansky (top-down halving — the depth-minimal
//     route), and serial (insertion chain, the FSM-unrolling reference).
//     kogge_stone / han_carlson reuse intermediate prefixes, which an
//     in-place comparator network cannot express; they are rejected.
//
// Every generated network is machine-checked in tests: the merger via the
// merge variant of the 0-1 principle, the sorters via the 0-1 principle
// (n <= 16 exhaustively) plus gate-level differential verification against
// a reference sort on random and metastable inputs up to n = 32.

#include "mcsn/ckt/ppc.hpp"
#include "mcsn/nets/network.hpp"

namespace mcsn {

/// Batcher's odd-even merge for arbitrary run sizes: given channels
/// [0, left) and [left, left+right) each sorted ascending, the network
/// sorts all left+right channels. left, right >= 1. Validated with
/// merges_sorted_halves() over every (left, right) pair in tests.
[[nodiscard]] ComparatorNetwork odd_even_merge_network(int left, int right);

/// Appends the comparators of odd_even_merge_network over two adjacent
/// channel runs [base, base+left) and [base+left, base+left+right) to
/// `seq` — the building block both construction routes share.
void append_odd_even_merge(std::vector<Comparator>& seq, int base, int left,
                           int right);

/// Recursive odd-even merge composition over the optimal catalog leaves
/// (n <= 10 returns the catalog network itself). `prefer_depth` picks the
/// 10-channel leaf variant (depth_optimal_10 vs size_optimal_10).
[[nodiscard]] ComparatorNetwork composed_sort_network(int channels,
                                                      bool prefer_depth = true);

/// True for the PPC topologies whose reduction cone is reuse-free and can
/// therefore be realized as a comparator network (ladner_fischer,
/// sklansky, serial).
[[nodiscard]] bool ppc_compose_supported(PpcTopology topo) noexcept;

/// The PPC-construction route: merge tree shaped by `topo`'s reduction
/// cone, singleton leaves. Throws std::invalid_argument for channels < 1
/// or an unsupported topology (!ppc_compose_supported).
[[nodiscard]] ComparatorNetwork ppc_sort_network(
    int channels, PpcTopology topo = PpcTopology::ladner_fischer);

}  // namespace mcsn
