#pragma once
// NetworkBuilder — the one entry point for "give me an MC sorting network
// for n channels". Routes between the optimal catalog (n <= 10), the
// recursive odd-even composition and the PPC construction (compose.hpp)
// under one policy knob, and reports unsupported/invalid shapes through
// StatusOr instead of exceptions — so the serve path can turn them into
// proper wire-visible error frames.

#include "mcsn/api/status.hpp"
#include "mcsn/ckt/ppc.hpp"
#include "mcsn/nets/network.hpp"

namespace mcsn {

/// What the builder optimizes when several routes can produce the shape.
enum class BuildPolicy {
  /// Fewest comparators; ties broken by depth. Gate count dominates
  /// serving throughput, so this is the throughput policy.
  smallest_size,
  /// Fewest layers; ties broken by size. Also switches the 2-sort's
  /// internal PPC topology to the depth-minimal sklansky cone (the
  /// arXiv 1911.00267 depth-optimality lever), via BuiltNetwork.
  smallest_depth,
  /// smallest_size selection with the catalog's historical tie-breaks
  /// (prefer_depth picks the 10-channel variant) and no 2-sort override.
  auto_select,
};

[[nodiscard]] std::string_view build_policy_name(BuildPolicy policy) noexcept;

/// Which construction produced the network.
enum class BuildRoute { catalog, composed, ppc };

[[nodiscard]] std::string_view build_route_name(BuildRoute route) noexcept;

struct BuiltNetwork {
  ComparatorNetwork network;
  BuildRoute route = BuildRoute::catalog;
  /// The PPC topology the bit-level 2-sort elaboration should use so the
  /// policy holds at gate level, not just comparator level: sklansky
  /// (depth ceil(log2 B)) under smallest_depth, the paper's
  /// ladner_fischer otherwise. Applied by McSorter for smallest_depth;
  /// advisory for other policies.
  PpcTopology sort2_topology = PpcTopology::ladner_fischer;
};

struct NetworkBuilderOptions {
  BuildPolicy policy = BuildPolicy::auto_select;
  /// Catalog tie-break under auto_select where two optima differ (n = 10).
  bool prefer_depth = true;
  /// Shapes above this come back kUnimplemented instead of compiling a
  /// program with millions of gates on the serve path. Raise deliberately.
  int max_channels = 4096;
};

class NetworkBuilder {
 public:
  explicit NetworkBuilder(NetworkBuilderOptions opt = {}) : opt_(opt) {}

  /// A verified-construction network for `channels`, or:
  ///   kInvalidArgument — channels < 1
  ///   kUnimplemented   — channels > options().max_channels
  [[nodiscard]] StatusOr<BuiltNetwork> build(int channels) const;

  [[nodiscard]] const NetworkBuilderOptions& options() const noexcept {
    return opt_;
  }

 private:
  NetworkBuilderOptions opt_;
};

}  // namespace mcsn
