#include "mcsn/nets/compose/compose.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "mcsn/nets/catalog.hpp"

namespace mcsn {

namespace {

// Merges two sorted channel runs given as explicit channel-index lists.
// Invariants maintained by every call: each list is strictly increasing
// and every channel of `a` precedes every channel of `b` — so the
// concatenation Z = a ++ b is the output order, and the cleanup pairs
// below always land on Z-adjacent channels.
//
// Classic odd-even recursion generalized to arbitrary |a|, |b|: merge the
// odd-indexed elements of both runs, merge the even-indexed elements,
// then one cleanup layer of compare-exchanges between even-merge output i
// and odd-merge output i+1 (Knuth TAOCP vol. 3, 5.3.4).
void oe_merge_lists(std::vector<Comparator>& seq, const std::vector<int>& a,
                    const std::vector<int>& b) {
  if (a.empty() || b.empty()) return;
  if (a.size() == 1 && b.size() == 1) {
    seq.push_back({a[0], b[0]});
    return;
  }
  std::vector<int> a_odd, a_even, b_odd, b_even;
  for (std::size_t i = 0; i < a.size(); ++i) {
    (i % 2 == 0 ? a_odd : a_even).push_back(a[i]);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    (i % 2 == 0 ? b_odd : b_even).push_back(b[i]);
  }
  oe_merge_lists(seq, a_odd, b_odd);
  oe_merge_lists(seq, a_even, b_even);

  std::vector<int> odd = std::move(a_odd);
  odd.insert(odd.end(), b_odd.begin(), b_odd.end());
  std::vector<int> even = std::move(a_even);
  even.insert(even.end(), b_even.begin(), b_even.end());
  const std::size_t pairs = std::min(even.size(), odd.size() - 1);
  for (std::size_t i = 0; i < pairs; ++i) {
    const int x = even[i];
    const int y = odd[i + 1];
    seq.push_back({std::min(x, y), std::max(x, y)});
  }
}

std::vector<int> run_channels(int base, int count) {
  std::vector<int> channels(static_cast<std::size_t>(count));
  std::iota(channels.begin(), channels.end(), base);
  return channels;
}

void check_channels(const char* who, int channels) {
  if (channels < 1) {
    throw std::invalid_argument(std::string(who) + ": channels must be >= 1");
  }
}

/// The optimal catalog network for n <= 10 (nullopt-free: callers guard n).
ComparatorNetwork catalog_leaf(int n, bool prefer_depth) {
  switch (n) {
    case 1: return ComparatorNetwork("1-sort", 1, {});
    case 2: return optimal_2();
    case 3: return optimal_3();
    case 4: return optimal_4();
    case 5: return optimal_5();
    case 6: return optimal_6();
    case 7: return optimal_7();
    case 8: return optimal_8();
    case 9: return optimal_9();
    case 10: return prefer_depth ? depth_optimal_10() : size_optimal_10();
    default: break;
  }
  assert(false && "catalog_leaf: n must be <= 10");
  return {};
}

void append_shifted(std::vector<Comparator>& seq, const ComparatorNetwork& net,
                    int base) {
  for (const Comparator& c : net.flattened()) {
    seq.push_back({c.lo + base, c.hi + base});
  }
}

// Sorts [base, base + n): catalog leaf for n <= 10, otherwise recurse on
// both halves and odd-even merge them.
void emit_composed(std::vector<Comparator>& seq, int base, int n,
                   bool prefer_depth) {
  if (n <= 1) return;
  if (n <= 10) {
    append_shifted(seq, catalog_leaf(n, prefer_depth), base);
    return;
  }
  const int left = n / 2;
  const int right = n - left;
  emit_composed(seq, base, left, prefer_depth);
  emit_composed(seq, base + left, right, prefer_depth);
  append_odd_even_merge(seq, base, left, right);
}

}  // namespace

void append_odd_even_merge(std::vector<Comparator>& seq, int base, int left,
                           int right) {
  assert(base >= 0 && left >= 1 && right >= 1);
  oe_merge_lists(seq, run_channels(base, left),
                 run_channels(base + left, right));
}

ComparatorNetwork odd_even_merge_network(int left, int right) {
  if (left < 1 || right < 1) {
    throw std::invalid_argument(
        "odd_even_merge_network: both runs must be >= 1 channel");
  }
  std::vector<Comparator> seq;
  append_odd_even_merge(seq, 0, left, right);
  return ComparatorNetwork::from_flat(
      "oemerge-" + std::to_string(left) + "+" + std::to_string(right),
      left + right, seq);
}

ComparatorNetwork composed_sort_network(int channels, bool prefer_depth) {
  check_channels("composed_sort_network", channels);
  if (channels <= 10) return catalog_leaf(channels, prefer_depth);
  std::vector<Comparator> seq;
  emit_composed(seq, 0, channels, prefer_depth);
  return ComparatorNetwork::from_flat(
      "composed-" + std::to_string(channels) + (prefer_depth ? "d" : "s"),
      channels, seq);
}

bool ppc_compose_supported(PpcTopology topo) noexcept {
  switch (topo) {
    case PpcTopology::ladner_fischer:
    case PpcTopology::sklansky:
    case PpcTopology::serial:
      return true;
    case PpcTopology::kogge_stone:
    case PpcTopology::han_carlson:
      return false;
  }
  return false;
}

namespace {

// Sklansky reduction cone: split ceil/floor (the same split ppc_sklansky
// uses), sort both halves, merge — minimal merge-tree depth ceil(log2 n).
void emit_sklansky(std::vector<Comparator>& seq, int base, int n) {
  if (n <= 1) return;
  const int left = (n + 1) / 2;
  const int right = n - left;
  emit_sklansky(seq, base, left);
  emit_sklansky(seq, base + left, right);
  append_odd_even_merge(seq, base, left, right);
}

}  // namespace

ComparatorNetwork ppc_sort_network(int channels, PpcTopology topo) {
  check_channels("ppc_sort_network", channels);
  if (!ppc_compose_supported(topo)) {
    throw std::invalid_argument(
        std::string("ppc_sort_network: topology ") +
        std::string(ppc_topology_name(topo)) +
        " reuses intermediate prefixes and cannot be realized as an "
        "in-place comparator network (supported: ladner_fischer, sklansky, "
        "serial)");
  }
  std::vector<Comparator> seq;
  switch (topo) {
    case PpcTopology::ladner_fischer: {
      // Bottom-up pairing tree over runs (the ladner_fischer final-prefix
      // cone): repeatedly merge adjacent runs; a lone trailing run passes
      // through to the next level.
      std::vector<std::pair<int, int>> runs;  // (base, length)
      runs.reserve(static_cast<std::size_t>(channels));
      for (int c = 0; c < channels; ++c) runs.push_back({c, 1});
      while (runs.size() > 1) {
        std::vector<std::pair<int, int>> next;
        next.reserve((runs.size() + 1) / 2);
        for (std::size_t k = 0; 2 * k + 1 < runs.size(); ++k) {
          const auto [lbase, llen] = runs[2 * k];
          const auto [rbase, rlen] = runs[2 * k + 1];
          assert(lbase + llen == rbase);
          append_odd_even_merge(seq, lbase, llen, rlen);
          next.push_back({lbase, llen + rlen});
        }
        if (runs.size() % 2 == 1) next.push_back(runs.back());
        runs = std::move(next);
      }
      break;
    }
    case PpcTopology::sklansky:
      emit_sklansky(seq, 0, channels);
      break;
    case PpcTopology::serial:
      // Left fold: grow a sorted prefix one channel at a time (the serial
      // cone / FSM unrolling — quadratic size, reference route only).
      for (int i = 1; i < channels; ++i) {
        append_odd_even_merge(seq, 0, i, 1);
      }
      break;
    case PpcTopology::kogge_stone:
    case PpcTopology::han_carlson:
      break;  // unreachable: rejected above
  }
  return ComparatorNetwork::from_flat(
      "ppc-" + std::string(ppc_topology_name(topo)) + "-" +
          std::to_string(channels),
      channels, seq);
}

}  // namespace mcsn
