#include "mcsn/nets/compose/builder.hpp"

#include <string>
#include <utility>
#include <vector>

#include "mcsn/nets/compose/compose.hpp"

namespace mcsn {

std::string_view build_policy_name(BuildPolicy policy) noexcept {
  switch (policy) {
    case BuildPolicy::smallest_size: return "smallest_size";
    case BuildPolicy::smallest_depth: return "smallest_depth";
    case BuildPolicy::auto_select: return "auto";
  }
  return "?";
}

std::string_view build_route_name(BuildRoute route) noexcept {
  switch (route) {
    case BuildRoute::catalog: return "catalog";
    case BuildRoute::composed: return "composed";
    case BuildRoute::ppc: return "ppc";
  }
  return "?";
}

StatusOr<BuiltNetwork> NetworkBuilder::build(int channels) const {
  if (channels < 1) {
    return Status::invalid_argument(
        "NetworkBuilder: channels must be >= 1 (got " +
        std::to_string(channels) + ")");
  }
  if (channels > opt_.max_channels) {
    return Status::unimplemented(
        "NetworkBuilder: " + std::to_string(channels) +
        " channels exceeds the configured construction bound of " +
        std::to_string(opt_.max_channels) +
        " (raise max_channels to serve this shape)");
  }

  const PpcTopology sort2 = opt_.policy == BuildPolicy::smallest_depth
                                ? PpcTopology::sklansky
                                : PpcTopology::ladner_fischer;

  // n <= 10: the catalog is optimal in both measures, so every policy
  // lands there; the policy only picks the 10-channel variant.
  if (channels <= 10) {
    const bool prefer_depth =
        opt_.policy == BuildPolicy::auto_select
            ? opt_.prefer_depth
            : opt_.policy == BuildPolicy::smallest_depth;
    return BuiltNetwork{composed_sort_network(channels, prefer_depth),
                        BuildRoute::catalog, sort2};
  }

  // Candidate routes for composite n. serial is excluded (quadratic size,
  // reference only); kogge_stone/han_carlson cones are unrealizable.
  const bool leaf_depth = opt_.policy == BuildPolicy::auto_select
                              ? opt_.prefer_depth
                              : opt_.policy == BuildPolicy::smallest_depth;
  struct Candidate {
    ComparatorNetwork net;
    BuildRoute route;
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {composed_sort_network(channels, leaf_depth), BuildRoute::composed});
  candidates.push_back(
      {ppc_sort_network(channels, PpcTopology::ladner_fischer),
       BuildRoute::ppc});
  candidates.push_back(
      {ppc_sort_network(channels, PpcTopology::sklansky), BuildRoute::ppc});

  const bool depth_first = opt_.policy == BuildPolicy::smallest_depth;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const ComparatorNetwork& a = candidates[i].net;
    const ComparatorNetwork& b = candidates[best].net;
    const auto key = [depth_first](const ComparatorNetwork& n) {
      return depth_first ? std::pair{n.depth(), n.size()}
                         : std::pair{n.size(), n.depth()};
    };
    if (key(a) < key(b)) best = i;
  }
  return BuiltNetwork{std::move(candidates[best].net),
                      candidates[best].route, sort2};
}

}  // namespace mcsn
