#pragma once
// Sorting-network synthesis by simulated annealing over fixed-depth layered
// networks (in the spirit of Dobbelaere's SorterHunter).
//
// The evaluator is bitsliced: channel c's value across all 2^n binary inputs
// is a 2^n-bit vector, so one comparator costs two bitwise ops over the whole
// input space, and the zero-one principle fitness (number of unsorted binary
// inputs) is a popcount. This makes full re-evaluation cheap enough that the
// annealer needs no incremental bookkeeping (~1M evals/s at n=10).
//
// Used to (re)derive the depth-optimal 10-channel network of Table 8 and as
// a general synthesis facility (see tools/find_depth7.cpp).

#include <cstdint>
#include <optional>

#include "mcsn/nets/network.hpp"

namespace mcsn {

struct AnnealConfig {
  int channels = 10;
  int layers = 7;
  std::uint64_t seed = 1;
  std::uint64_t max_iterations = 5'000'000;
  double t_start = 3.0;
  double t_end = 0.03;
  /// Energy = unsorted_inputs + size_weight * comparator_count: temperature
  /// is on the scale of single unsorted inputs so the annealer can cross
  /// infeasibility barriers; the small size term breaks ties toward smaller
  /// networks.
  double size_weight = 0.02;
  /// Keep layer 0 pinned to the perfect matching (0,1)(2,3)...: valid
  /// symmetry breaking for sorting networks (any first layer can be assumed
  /// to be a maximal matching up to channel permutation) that shrinks the
  /// search space considerably.
  bool fix_first_layer = true;
  /// Return as soon as a feasible (sorting) network is found instead of
  /// continuing to minimize size.
  bool stop_at_feasible = false;
};

struct AnnealResult {
  ComparatorNetwork network;
  std::size_t unsorted = 0;  // 0 iff a true sorting network was found
  std::uint64_t iterations = 0;
};

/// Runs one annealing chain. Returns the best network found (check
/// `unsorted == 0` for success).
[[nodiscard]] AnnealResult anneal_fixed_depth(const AnnealConfig& cfg);

/// Greedy post-pass: repeatedly removes comparators whose removal keeps the
/// network sorting (re-checked by the 0-1 principle); also drops layers that
/// become empty. Requires a valid sorting network.
[[nodiscard]] ComparatorNetwork minimize_size(const ComparatorNetwork& net);

/// Bitsliced fitness: number of binary inputs not sorted (same value as
/// ComparatorNetwork::count_unsorted_binary but ~100x faster).
[[nodiscard]] std::size_t count_unsorted_bitsliced(
    const ComparatorNetwork& net);

}  // namespace mcsn
