#pragma once
// Comparator (sorting) networks: layered representation, the zero-one
// principle verifier, and software application of a network to values.
//
// Convention: a comparator (lo, hi) with lo < hi routes the minimum to
// channel lo and the maximum to channel hi, i.e. networks sort ascending
// from channel 0 upward.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcsn {

struct Comparator {
  int lo = 0;
  int hi = 0;
  friend bool operator==(const Comparator&, const Comparator&) = default;
};

class ComparatorNetwork {
 public:
  ComparatorNetwork() = default;
  ComparatorNetwork(std::string name, int channels,
                    std::vector<std::vector<Comparator>> layers)
      : name_(std::move(name)),
        channels_(channels),
        layers_(std::move(layers)) {}

  /// Builds a layered network from a flat comparator sequence with greedy
  /// ASAP layering (a comparator joins the earliest layer after the last
  /// layer touching either of its channels).
  [[nodiscard]] static ComparatorNetwork from_flat(
      std::string name, int channels, const std::vector<Comparator>& seq);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] const std::vector<std::vector<Comparator>>& layers()
      const noexcept {
    return layers_;
  }

  /// Total number of comparators.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Number of layers (the network's depth).
  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }

  /// All comparators in layer order.
  [[nodiscard]] std::vector<Comparator> flattened() const;

  /// Channels in range, lo < hi, and no channel used twice within a layer.
  [[nodiscard]] bool well_formed() const noexcept;

  /// Applies the network to a vector of values under `less` (stable sort
  /// semantics per comparator: swap iff v[hi] < v[lo]).
  template <typename T, typename Less = std::less<T>>
  void apply(std::vector<T>& v, Less less = {}) const {
    for (const auto& layer : layers_) {
      for (const Comparator& c : layer) {
        if (less(v[c.hi], v[c.lo])) std::swap(v[c.lo], v[c.hi]);
      }
    }
  }

  /// Applies the network to a binary vector packed in the low `channels()`
  /// bits of `mask` (bit c = channel c); min = AND, max = OR.
  [[nodiscard]] std::uint32_t apply_mask(std::uint32_t mask) const noexcept;

  /// Zero-one principle: the network sorts everything iff it sorts all 2^n
  /// binary vectors. Guarded to channels <= 24.
  [[nodiscard]] bool sorts_all_binary() const;

  /// Merge variant of the 0-1 principle: true iff every binary input whose
  /// first `split` channels and remaining channels are each sorted comes out
  /// fully sorted (checks a merging network).
  [[nodiscard]] bool merges_sorted_halves(int split) const;

  /// Number of binary inputs (out of 2^n) the network fails to sort —
  /// the fitness used by the synthesizer. 0 iff sorting network.
  [[nodiscard]] std::size_t count_unsorted_binary() const;

 private:
  std::string name_;
  int channels_ = 0;
  std::vector<std::vector<Comparator>> layers_;
};

/// True iff mask (low n bits) is sorted ascending, i.e. of the form
/// 0^(n-k) 1^k reading from channel 0 up == all set bits at the top.
[[nodiscard]] constexpr bool mask_sorted(std::uint32_t mask,
                                         int channels) noexcept {
  const int k = __builtin_popcount(mask);
  const std::uint32_t expect =
      k == 0 ? 0u : (((std::uint32_t{1} << k) - 1) << (channels - k));
  return mask == expect;
}

std::ostream& operator<<(std::ostream& os, const ComparatorNetwork& net);

}  // namespace mcsn
