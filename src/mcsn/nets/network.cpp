#include "mcsn/nets/network.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace mcsn {

ComparatorNetwork ComparatorNetwork::from_flat(
    std::string name, int channels, const std::vector<Comparator>& seq) {
  std::vector<std::vector<Comparator>> layers;
  std::vector<std::size_t> busy_until(channels, 0);  // first free layer
  for (const Comparator& c : seq) {
    const std::size_t layer = std::max(busy_until[c.lo], busy_until[c.hi]);
    if (layer == layers.size()) layers.emplace_back();
    layers[layer].push_back(c);
    busy_until[c.lo] = layer + 1;
    busy_until[c.hi] = layer + 1;
  }
  return ComparatorNetwork(std::move(name), channels, std::move(layers));
}

std::size_t ComparatorNetwork::size() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.size();
  return n;
}

std::vector<Comparator> ComparatorNetwork::flattened() const {
  std::vector<Comparator> seq;
  seq.reserve(size());
  for (const auto& layer : layers_) {
    seq.insert(seq.end(), layer.begin(), layer.end());
  }
  return seq;
}

bool ComparatorNetwork::well_formed() const noexcept {
  for (const auto& layer : layers_) {
    std::uint32_t used = 0;
    for (const Comparator& c : layer) {
      if (c.lo < 0 || c.hi >= channels_ || c.lo >= c.hi) return false;
      const std::uint32_t bits =
          (std::uint32_t{1} << c.lo) | (std::uint32_t{1} << c.hi);
      if ((used & bits) != 0) return false;
      used |= bits;
    }
  }
  return true;
}

std::uint32_t ComparatorNetwork::apply_mask(std::uint32_t mask) const noexcept {
  for (const auto& layer : layers_) {
    for (const Comparator& c : layer) {
      const std::uint32_t lo_bit = (mask >> c.lo) & 1u;
      const std::uint32_t hi_bit = (mask >> c.hi) & 1u;
      // min(lo,hi) -> lo channel, max -> hi channel.
      const std::uint32_t mn = lo_bit & hi_bit;
      const std::uint32_t mx = lo_bit | hi_bit;
      mask &= ~((std::uint32_t{1} << c.lo) | (std::uint32_t{1} << c.hi));
      mask |= (mn << c.lo) | (mx << c.hi);
    }
  }
  return mask;
}

bool ComparatorNetwork::sorts_all_binary() const {
  return count_unsorted_binary() == 0;
}

bool ComparatorNetwork::merges_sorted_halves(int split) const {
  if (channels_ > 24) {
    throw std::length_error("merges_sorted_halves: too many channels");
  }
  const std::uint32_t total = std::uint32_t{1} << channels_;
  for (std::uint32_t m = 0; m < total; ++m) {
    const std::uint32_t lo = m & ((std::uint32_t{1} << split) - 1);
    const std::uint32_t hi = m >> split;
    if (!mask_sorted(lo, split) || !mask_sorted(hi, channels_ - split)) {
      continue;
    }
    if (!mask_sorted(apply_mask(m), channels_)) return false;
  }
  return true;
}

std::size_t ComparatorNetwork::count_unsorted_binary() const {
  if (channels_ > 24) {
    throw std::length_error("count_unsorted_binary: too many channels");
  }
  std::size_t bad = 0;
  const std::uint32_t total = std::uint32_t{1} << channels_;
  for (std::uint32_t m = 0; m < total; ++m) {
    if (!mask_sorted(apply_mask(m), channels_)) ++bad;
  }
  return bad;
}

std::ostream& operator<<(std::ostream& os, const ComparatorNetwork& net) {
  os << net.name() << " (n=" << net.channels() << ", size=" << net.size()
     << ", depth=" << net.depth() << ")\n";
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    os << "  L" << l + 1 << ":";
    for (const Comparator& c : net.layers()[l]) {
      os << " (" << c.lo << "," << c.hi << ")";
    }
    os << "\n";
  }
  return os;
}

}  // namespace mcsn
