#include "mcsn/nets/catalog.hpp"

#include <cassert>

namespace mcsn {

namespace {

using Layer = std::vector<Comparator>;

ComparatorNetwork layered(std::string name, int n,
                          std::vector<Layer> layers) {
  ComparatorNetwork net(std::move(name), n, std::move(layers));
  assert(net.well_formed());
  return net;
}

}  // namespace

ComparatorNetwork optimal_2() {
  return layered("2-sort", 2, {{{0, 1}}});
}

ComparatorNetwork optimal_3() {
  // 3 comparators, depth 3 — both minimal for 3 channels.
  return layered("3-sort", 3, {{{0, 2}}, {{0, 1}}, {{1, 2}}});
}

ComparatorNetwork optimal_4() {
  return layered("4-sort", 4,
                 {{{0, 1}, {2, 3}}, {{0, 2}, {1, 3}}, {{1, 2}}});
}

ComparatorNetwork optimal_5() {
  // 9 comparators, depth 5 (Knuth TAOCP vol. 3, Fig. 49 family).
  return layered("5-sort", 5,
                 {
                     {{0, 3}, {1, 4}},
                     {{0, 2}, {1, 3}},
                     {{0, 1}, {2, 4}},
                     {{1, 2}, {3, 4}},
                     {{2, 3}},
                 });
}

ComparatorNetwork optimal_6() {
  // 12 comparators, depth 5.
  return layered("6-sort", 6,
                 {
                     {{0, 5}, {1, 3}, {2, 4}},
                     {{1, 2}, {3, 4}},
                     {{0, 3}, {2, 5}},
                     {{0, 1}, {2, 3}, {4, 5}},
                     {{1, 2}, {3, 4}},
                 });
}

ComparatorNetwork optimal_7() {
  // 16 comparators, depth 6 (Knuth TAOCP vol. 3, Fig. 51 family).
  return layered("7-sort", 7,
                 {
                     {{0, 6}, {2, 3}, {4, 5}},
                     {{0, 2}, {1, 4}, {3, 6}},
                     {{0, 1}, {2, 5}, {3, 4}},
                     {{1, 2}, {4, 6}},
                     {{2, 3}, {4, 5}},
                     {{1, 2}, {3, 4}, {5, 6}},
                 });
}

ComparatorNetwork optimal_9() {
  // 25 comparators — minimum possible for 9 channels (Codish, Cruz-Filipe,
  // Frank, Schneider-Kamp, ICTAI 2014 [4]). Synthesized with
  // anneal_fixed_depth (tools/find_depth7 --channels 9 --layers 8, seed 1)
  // and machine-verified by the 0-1 principle.
  return layered("9-sort", 9,
                 {
                     {{0, 1}, {2, 3}, {4, 5}, {6, 7}},
                     {{2, 6}, {4, 8}, {1, 5}},
                     {{0, 4}, {3, 7}, {6, 8}},
                     {{0, 2}, {3, 4}, {1, 7}},
                     {{2, 3}, {1, 6}, {5, 8}},
                     {{4, 5}, {1, 2}, {3, 6}, {7, 8}},
                     {{4, 6}, {5, 7}, {2, 3}},
                     {{5, 6}, {3, 4}},
                 });
}

ComparatorNetwork size_optimal_10() {
  // 29 comparators — minimum possible for 10 channels [4].
  return layered("10-sort#", 10,
                 {
                     {{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}},
                     {{0, 3}, {1, 4}, {5, 8}, {6, 9}},
                     {{0, 2}, {3, 6}, {7, 9}},
                     {{0, 1}, {2, 4}, {5, 7}, {8, 9}},
                     {{1, 2}, {3, 5}, {4, 6}, {7, 8}},
                     {{1, 3}, {2, 5}, {4, 7}, {6, 8}},
                     {{2, 3}, {6, 7}},
                     {{3, 4}, {5, 6}},
                     {{4, 5}},
                 });
}

ComparatorNetwork depth_optimal_10() {
  // Depth 7 — minimum possible for 10 channels [3]; 31 comparators, the
  // same size/depth point the paper's Table 8 uses. Synthesized with
  // anneal_fixed_depth (tools/find_depth7, seed 33) and machine-verified by
  // the 0-1 principle in catalog_test.cpp.
  return layered("10-sortd", 10,
                 {
                     {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}},
                     {{3, 6}, {0, 8}, {2, 5}, {1, 9}, {4, 7}},
                     {{5, 6}, {3, 4}, {1, 8}, {0, 2}, {7, 9}},
                     {{4, 8}, {1, 5}, {2, 7}, {6, 9}, {0, 3}},
                     {{5, 7}, {1, 3}, {2, 4}, {6, 8}},
                     {{5, 6}, {3, 4}, {1, 2}, {7, 8}},
                     {{4, 5}, {6, 7}, {2, 3}},
                 });
}

ComparatorNetwork optimal_8() {
  // Batcher's odd-even merge sort meets both optima at n = 8: 19
  // comparators (minimum size) at depth 6 (minimum depth). Reuse the
  // generator under the canonical leaf name.
  const ComparatorNetwork b = batcher_odd_even(8);
  return ComparatorNetwork("8-sort", 8, b.layers());
}

ComparatorNetwork batcher_odd_even(int n) {
  // Iterative odd-even merge sort for arbitrary n; ascending comparators.
  std::vector<Comparator> seq;
  for (int p = 1; p < n; p *= 2) {
    for (int k = p; k >= 1; k /= 2) {
      for (int j = k % p; j + k < n; j += 2 * k) {
        for (int i = 0; i < k; ++i) {
          if (i + j + k < n && (i + j) / (2 * p) == (i + j + k) / (2 * p)) {
            seq.push_back({i + j, i + j + k});
          }
        }
      }
    }
  }
  return ComparatorNetwork::from_flat(
      "batcher-" + std::to_string(n), n, seq);
}

namespace {

// Classic recursive odd-even merge on the subsequence lo, lo+r, lo+2r, ...
// spanning n slots (n a power of two).
void odd_even_merge_rec(std::vector<Comparator>& seq, int lo, int n, int r) {
  const int m = 2 * r;
  if (m < n) {
    odd_even_merge_rec(seq, lo, n, m);      // even subsequence
    odd_even_merge_rec(seq, lo + r, n, m);  // odd subsequence
    for (int i = lo + r; i + r < lo + n; i += m) seq.push_back({i, i + r});
  } else {
    seq.push_back({lo, lo + r});
  }
}

}  // namespace

ComparatorNetwork odd_even_merger(int n) {
  assert(n >= 2 && (n & (n - 1)) == 0 && "power of two required");
  std::vector<Comparator> seq;
  odd_even_merge_rec(seq, 0, n, 1);
  return ComparatorNetwork::from_flat("oemerge-" + std::to_string(n), n, seq);
}

ComparatorNetwork odd_even_transposition(int n) {
  std::vector<Layer> layers;
  for (int l = 0; l < n; ++l) {
    Layer layer;
    for (int i = l % 2; i + 1 < n; i += 2) layer.push_back({i, i + 1});
    if (!layer.empty()) layers.push_back(std::move(layer));
  }
  return layered("oetrans-" + std::to_string(n), n, std::move(layers));
}

ComparatorNetwork insertion_network(int n) {
  std::vector<Comparator> seq;
  for (int i = 1; i < n; ++i) {
    for (int j = i; j >= 1; --j) seq.push_back({j - 1, j});
  }
  return ComparatorNetwork::from_flat("insertion-" + std::to_string(n), n,
                                      seq);
}

std::vector<ComparatorNetwork> paper_networks() {
  return {optimal_4(), optimal_7(), size_optimal_10(), depth_optimal_10()};
}

}  // namespace mcsn
