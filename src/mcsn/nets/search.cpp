#include "mcsn/nets/search.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mcsn/util/rng.hpp"

namespace mcsn {

namespace {

// Bitsliced evaluation state: value of channel c over all 2^n inputs as a
// bit vector of `words` 64-bit words.
class Bitslice {
 public:
  explicit Bitslice(int channels) : channels_(channels) {
    if (channels < 1 || channels > 20) {
      throw std::length_error("Bitslice: channels out of range");
    }
    const std::uint64_t inputs = std::uint64_t{1} << channels;
    words_ = inputs <= 64 ? 1 : inputs / 64;
    tail_mask_ = inputs >= 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << inputs) - 1);
    init_.assign(static_cast<std::size_t>(channels) * words_, 0);
    for (std::uint64_t m = 0; m < inputs; ++m) {
      for (int c = 0; c < channels; ++c) {
        if ((m >> c) & 1u) {
          init_[static_cast<std::size_t>(c) * words_ + m / 64] |=
              std::uint64_t{1} << (m % 64);
        }
      }
    }
    work_.resize(init_.size());
  }

  // Applies the network and returns the number of unsorted inputs.
  std::size_t unsorted(const ComparatorNetwork& net) {
    work_ = init_;
    auto chan = [this](int c) {
      return work_.data() + static_cast<std::size_t>(c) * words_;
    };
    for (const auto& layer : net.layers()) {
      for (const Comparator& cmp : layer) {
        std::uint64_t* lo = chan(cmp.lo);
        std::uint64_t* hi = chan(cmp.hi);
        for (std::size_t w = 0; w < words_; ++w) {
          const std::uint64_t a = lo[w];
          const std::uint64_t b = hi[w];
          lo[w] = a & b;
          hi[w] = a | b;
        }
      }
    }
    // An input is unsorted iff some adjacent pair has 1 above 0.
    std::size_t bad = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t viol = 0;
      for (int c = 0; c + 1 < channels_; ++c) {
        viol |= chan(c)[w] & ~chan(c + 1)[w];
      }
      bad += static_cast<std::size_t>(std::popcount(viol & tail_mask_));
    }
    return bad;
  }

 private:
  int channels_;
  std::size_t words_ = 1;
  std::uint64_t tail_mask_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> init_;
  std::vector<std::uint64_t> work_;
};

using Layers = std::vector<std::vector<Comparator>>;

std::size_t total_size(const Layers& layers) {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.size();
  return n;
}

// Channels not used by any comparator in the layer.
std::vector<int> free_channels(const std::vector<Comparator>& layer, int n) {
  std::vector<bool> used(n, false);
  for (const Comparator& c : layer) used[c.lo] = used[c.hi] = true;
  std::vector<int> free;
  for (int c = 0; c < n; ++c) {
    if (!used[c]) free.push_back(c);
  }
  return free;
}

}  // namespace

std::size_t count_unsorted_bitsliced(const ComparatorNetwork& net) {
  Bitslice bs(net.channels());
  return bs.unsorted(net);
}

AnnealResult anneal_fixed_depth(const AnnealConfig& cfg) {
  Xoshiro256 rng(cfg.seed);
  Bitslice bs(cfg.channels);
  const int n = cfg.channels;

  // Start from random maximal layers; layer 0 optionally pinned to the
  // canonical perfect matching.
  Layers layers(cfg.layers);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    if (!(cfg.fix_first_layer && l == 0)) rng.shuffle(perm);
    for (int i = 0; i + 1 < n; i += 2) {
      Comparator c{perm[i], perm[i + 1]};
      if (c.lo > c.hi) std::swap(c.lo, c.hi);
      layers[l].push_back(c);
    }
  }

  auto as_network = [&](const Layers& ls) {
    return ComparatorNetwork("anneal", n, ls);
  };
  auto energy = [&](const Layers& ls) -> double {
    return static_cast<double>(bs.unsorted(as_network(ls))) +
           cfg.size_weight * static_cast<double>(total_size(ls));
  };

  double cur_e = energy(layers);
  Layers best = layers;
  double best_e = cur_e;

  const double log_ratio = std::log(cfg.t_end / cfg.t_start);
  const double feasible_threshold = 1.0;  // energy below this => sorts
  std::uint64_t it = 0;
  for (; it < cfg.max_iterations; ++it) {
    if (best_e < feasible_threshold && cfg.stop_at_feasible) break;
    const double temp =
        cfg.t_start *
        std::exp(log_ratio * static_cast<double>(it) /
                 static_cast<double>(cfg.max_iterations));

    Layers cand = layers;
    const std::size_t first_mutable =
        cfg.fix_first_layer && cand.size() > 1 ? 1 : 0;
    auto& layer =
        cand[first_mutable + rng.below(cand.size() - first_mutable)];
    const int move = static_cast<int>(rng.below(4));
    if (move == 0 || layer.empty()) {
      // Add a comparator between two free channels.
      std::vector<int> free = free_channels(layer, n);
      if (free.size() < 2) continue;
      const std::size_t i = rng.below(free.size());
      std::size_t j = rng.below(free.size() - 1);
      if (j >= i) ++j;
      Comparator c{free[i], free[j]};
      if (c.lo > c.hi) std::swap(c.lo, c.hi);
      layer.push_back(c);
    } else if (move == 1) {
      layer.erase(layer.begin() + static_cast<long>(rng.below(layer.size())));
    } else if (move == 2) {
      // Re-target one endpoint of a comparator to a free channel.
      std::vector<int> free = free_channels(layer, n);
      if (free.empty()) continue;
      Comparator& c = layer[rng.below(layer.size())];
      const int nc = free[rng.below(free.size())];
      if (rng.below(2) == 0) {
        c.lo = nc;
      } else {
        c.hi = nc;
      }
      if (c.lo > c.hi) std::swap(c.lo, c.hi);
      if (c.lo == c.hi) continue;
    } else {
      // Swap the roles of two channels within the layer.
      if (layer.size() < 2) continue;
      const std::size_t i = rng.below(layer.size());
      std::size_t j = rng.below(layer.size() - 1);
      if (j >= i) ++j;
      std::swap(layer[i].hi, layer[j].hi);
      if (layer[i].lo > layer[i].hi) std::swap(layer[i].lo, layer[i].hi);
      if (layer[j].lo > layer[j].hi) std::swap(layer[j].lo, layer[j].hi);
      if (layer[i].lo == layer[i].hi || layer[j].lo == layer[j].hi) continue;
    }

    const double cand_e = energy(cand);
    const double delta = cand_e - cur_e;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-delta / std::max(temp, 1e-9))) {
      layers = std::move(cand);
      cur_e = cand_e;
      if (cur_e < best_e) {
        best = layers;
        best_e = cur_e;
      }
    }
  }

  AnnealResult res{as_network(best), 0, it};
  res.unsorted = bs.unsorted(res.network);
  return res;
}

ComparatorNetwork minimize_size(const ComparatorNetwork& net) {
  assert(net.sorts_all_binary());
  Layers layers = net.layers();
  Bitslice bs(net.channels());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t l = 0; l < layers.size() && !changed; ++l) {
      for (std::size_t i = 0; i < layers[l].size(); ++i) {
        Layers cand = layers;
        cand[l].erase(cand[l].begin() + static_cast<long>(i));
        if (bs.unsorted(ComparatorNetwork("t", net.channels(), cand)) == 0) {
          layers = std::move(cand);
          changed = true;
          break;
        }
      }
    }
  }
  std::erase_if(layers, [](const auto& l) { return l.empty(); });
  return ComparatorNetwork(net.name() + "-min", net.channels(),
                           std::move(layers));
}

}  // namespace mcsn
