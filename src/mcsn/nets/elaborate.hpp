#pragma once
// Elaboration of a comparator network into a flat gate-level netlist: every
// comparator becomes an instance of a 2-sort circuit over B-bit channel
// buses. Any 2-sort builder can be plugged in (the paper's circuit, the
// baselines, or Bin-comp), which is how Table 8 is generated.

#include <functional>
#include <string>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/nets/network.hpp"

namespace mcsn {

/// Builds (max, min) buses for one comparator instance from two channel
/// buses (g, h). Must emit into `nl`.
using Sort2Builder =
    std::function<BusPair(Netlist& nl, const Bus& g, const Bus& h)>;

/// Standard builders.
[[nodiscard]] Sort2Builder sort2_builder(const Sort2Options& opt = {});
[[nodiscard]] Sort2Builder sort2_naive_trees_builder();
[[nodiscard]] Sort2Builder sort2_date17_style_builder();
[[nodiscard]] Sort2Builder bincomp_builder();

/// Elaborates `net` over B-bit channels with one 2-sort instance per
/// comparator. Inputs ch<i>[.], outputs out<i>[.].
[[nodiscard]] Netlist elaborate_network(const ComparatorNetwork& net,
                                        std::size_t bits,
                                        const Sort2Builder& builder,
                                        const std::string& name = {});

}  // namespace mcsn
