#include "mcsn/nets/elaborate.hpp"

#include "mcsn/ckt/bincomp.hpp"
#include "mcsn/ckt/sort2_baselines.hpp"

namespace mcsn {

Sort2Builder sort2_builder(const Sort2Options& opt) {
  return [opt](Netlist& nl, const Bus& g, const Bus& h) {
    return build_sort2(nl, g, h, opt);
  };
}

Sort2Builder sort2_naive_trees_builder() {
  return [](Netlist& nl, const Bus& g, const Bus& h) {
    return build_sort2_naive_trees(nl, g, h);
  };
}

Sort2Builder sort2_date17_style_builder() {
  return [](Netlist& nl, const Bus& g, const Bus& h) {
    return build_sort2_date17_style(nl, g, h);
  };
}

Sort2Builder bincomp_builder() {
  return [](Netlist& nl, const Bus& g, const Bus& h) {
    return build_bincomp(nl, g, h);
  };
}

Netlist elaborate_network(const ComparatorNetwork& net, std::size_t bits,
                          const Sort2Builder& builder,
                          const std::string& name) {
  Netlist nl(name.empty()
                 ? net.name() + "_b" + std::to_string(bits)
                 : name);
  std::vector<Bus> channel(net.channels());
  for (int c = 0; c < net.channels(); ++c) {
    channel[c] = nl.add_input_bus("ch" + std::to_string(c), bits);
  }
  for (const auto& layer : net.layers()) {
    for (const Comparator& cmp : layer) {
      // Comparator routes min to `lo`, max to `hi`.
      const BusPair sorted = builder(nl, channel[cmp.lo], channel[cmp.hi]);
      channel[cmp.lo] = sorted.min;
      channel[cmp.hi] = sorted.max;
    }
  }
  for (int c = 0; c < net.channels(); ++c) {
    nl.mark_output_bus(channel[c], "out" + std::to_string(c));
  }
  return nl;
}

}  // namespace mcsn
