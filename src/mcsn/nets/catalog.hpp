#pragma once
// Catalog of sorting networks used by the paper's evaluation (Table 8) plus
// generator-based families for testing and extension.
//
// Sources:
//   optimal_4        — 5 comparators, depth 3; optimal in both measures
//                      (Knuth, TAOCP vol. 3).
//   optimal_7        — 16 comparators, depth 6; optimal in both measures
//                      (Knuth; minimality of 16 shown by Codish et al.).
//   size_optimal_10  — 29 comparators (minimum size for 10 channels, Codish,
//                      Cruz-Filipe, Frank, Schneider-Kamp, ICTAI 2014 [4]);
//                      the classic 29-comparator network from TAOCP.
//   depth_optimal_10 — depth 7 (minimum depth for 10 channels, Bundala &
//                      Zavodny, LATA 2014 [3]), 31 comparators; synthesized
//                      with this library's simulated-annealing search
//                      (nets/search.hpp) and machine-verified by the 0-1
//                      principle in the test suite.
//   batcher_odd_even — Batcher's odd-even merge sort, any n.
//   odd_even_transposition, insertion_network — simple quadratic families.
//
// Every catalog network is validated by the 0-1 principle in tests.

#include "mcsn/nets/network.hpp"

namespace mcsn {

/// Optimal leaf networks for every n <= 10 — the blocks the recursive
/// composer (nets/compose/) stitches into arbitrary-n sorters. Each is
/// optimal in size (and, where two optima differ, the depth-optimal layer
/// assignment is used); all are 0-1-verified in catalog_test.cpp.
[[nodiscard]] ComparatorNetwork optimal_2();
[[nodiscard]] ComparatorNetwork optimal_3();
[[nodiscard]] ComparatorNetwork optimal_4();
/// 9 comparators, depth 5; both measures optimal (Knuth, TAOCP vol. 3).
[[nodiscard]] ComparatorNetwork optimal_5();
/// 12 comparators, depth 5; both measures optimal.
[[nodiscard]] ComparatorNetwork optimal_6();
[[nodiscard]] ComparatorNetwork optimal_7();
/// 19 comparators, depth 6; both measures optimal — Batcher's odd-even
/// merge sort happens to achieve both bounds at n = 8.
[[nodiscard]] ComparatorNetwork optimal_8();
/// 25 comparators — the minimum for 9 channels ([4]'s headline result);
/// synthesized with this library's annealer, 0-1-verified in tests.
[[nodiscard]] ComparatorNetwork optimal_9();
[[nodiscard]] ComparatorNetwork size_optimal_10();
[[nodiscard]] ComparatorNetwork depth_optimal_10();

/// Batcher's odd-even merge sort for arbitrary n >= 1 (ascending
/// comparators only).
[[nodiscard]] ComparatorNetwork batcher_odd_even(int channels);

/// Batcher's odd-even *merging* network: given both halves of `channels`
/// (a power of two) already sorted, produces the fully sorted sequence in
/// depth log2(channels). Validated with merges_sorted_halves().
[[nodiscard]] ComparatorNetwork odd_even_merger(int channels);

/// n layers of alternating adjacent comparators ("brick wall").
[[nodiscard]] ComparatorNetwork odd_even_transposition(int channels);

/// Insertion sort as a network (size n(n-1)/2, depth 2n-3).
[[nodiscard]] ComparatorNetwork insertion_network(int channels);

/// The paper's Table 8 selection: {4-sort, 7-sort, 10-sort#, 10-sortd}.
[[nodiscard]] std::vector<ComparatorNetwork> paper_networks();

}  // namespace mcsn
