#pragma once
// Ternary (Kleene) logic values for worst-case metastability modeling.
//
// The paper (Bund/Lenzen/Medina, DATE 2018) models a metastable signal by a
// third value M. Basic gates (AND, OR, inverter) compute the *metastable
// closure* of their Boolean function (paper Table 3), which coincides with
// Kleene's strong three-valued logic: M behaves as "could be 0 or 1, possibly
// a time-varying voltage in between".

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace mcsn {

/// One ternary signal value: stable 0, stable 1, or metastable M.
enum class Trit : std::uint8_t {
  zero = 0,
  one = 1,
  meta = 2,
};

/// Number of distinct Trit values (used to size lookup tables).
inline constexpr int kTritCount = 3;

/// All trits in canonical order {0, 1, M}; handy for exhaustive loops.
inline constexpr Trit kAllTrits[kTritCount] = {Trit::zero, Trit::one,
                                               Trit::meta};

[[nodiscard]] constexpr bool is_stable(Trit t) noexcept {
  return t != Trit::meta;
}

[[nodiscard]] constexpr bool is_meta(Trit t) noexcept {
  return t == Trit::meta;
}

/// Converts a stable trit to bool. Precondition: is_stable(t).
[[nodiscard]] constexpr bool to_bool(Trit t) noexcept {
  return t == Trit::one;
}

[[nodiscard]] constexpr Trit to_trit(bool b) noexcept {
  return b ? Trit::one : Trit::zero;
}

/// Index in [0,3) for table lookups.
[[nodiscard]] constexpr int index(Trit t) noexcept {
  return static_cast<int>(t);
}

[[nodiscard]] constexpr Trit trit_from_index(int i) noexcept {
  return static_cast<Trit>(i);
}

// --- Gate semantics (paper Table 3) ---------------------------------------
//
// AND: a 0 on either input forces 0 (suppresses metastability), otherwise any
// M propagates. OR dually. The inverter maps M to M.

[[nodiscard]] constexpr Trit trit_and(Trit a, Trit b) noexcept {
  if (a == Trit::zero || b == Trit::zero) return Trit::zero;
  if (a == Trit::one && b == Trit::one) return Trit::one;
  return Trit::meta;
}

[[nodiscard]] constexpr Trit trit_or(Trit a, Trit b) noexcept {
  if (a == Trit::one || b == Trit::one) return Trit::one;
  if (a == Trit::zero && b == Trit::zero) return Trit::zero;
  return Trit::meta;
}

[[nodiscard]] constexpr Trit trit_not(Trit a) noexcept {
  switch (a) {
    case Trit::zero: return Trit::one;
    case Trit::one: return Trit::zero;
    default: return Trit::meta;
  }
}

/// XOR under the closure: any metastable input makes the output metastable
/// (flipping either input always flips the output).
[[nodiscard]] constexpr Trit trit_xor(Trit a, Trit b) noexcept {
  if (is_meta(a) || is_meta(b)) return Trit::meta;
  return to_trit(to_bool(a) != to_bool(b));
}

/// Metastability-containing multiplexer behavior ("cmux" of Friedrichs et
/// al.): with a metastable select but equal stable data inputs, the output is
/// that data value. This is the closure of the Boolean mux:
///   mux(d0, d1, s) = s ? d1 : d0.
[[nodiscard]] constexpr Trit trit_mux(Trit d0, Trit d1, Trit s) noexcept {
  if (s == Trit::zero) return d0;
  if (s == Trit::one) return d1;
  return d0 == d1 ? d0 : Trit::meta;
}

/// The * ("superposition") operator of Def. 2.1, on single trits:
/// equal values stay, differing values become M.
[[nodiscard]] constexpr Trit trit_star(Trit a, Trit b) noexcept {
  return a == b ? a : Trit::meta;
}

/// '0', '1', or 'M'.
[[nodiscard]] char to_char(Trit t) noexcept;

/// Parses '0', '1', 'M' (also accepts 'm', 'X', 'x' for M). Returns nullopt
/// on any other character.
[[nodiscard]] std::optional<Trit> trit_from_char(char c) noexcept;

std::ostream& operator<<(std::ostream& os, Trit t);

}  // namespace mcsn
