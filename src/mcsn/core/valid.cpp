#include "mcsn/core/valid.hpp"

#include <cassert>
#include <stdexcept>

#include "mcsn/core/gray.hpp"

namespace mcsn {

Word valid_from_rank(std::uint64_t rank, std::size_t bits) {
  assert(rank < valid_count(bits));
  const std::uint64_t x = rank / 2;
  if (rank % 2 == 0) return gray_encode(x, bits);
  Word w = gray_encode(x, bits);
  w[gray_flip_index(x, bits)] = Trit::meta;
  return w;
}

std::optional<std::uint64_t> valid_rank(const Word& w) {
  if (w.empty() || w.size() > 63) return std::nullopt;
  const std::size_t metas = w.meta_count();
  if (metas == 0) return 2 * gray_decode(w);
  if (metas > 1) return std::nullopt;

  // One metastable bit: both resolutions must decode to consecutive values.
  Word lo = w, hi = w;
  const std::size_t pos = *w.first_meta();
  lo[pos] = Trit::zero;
  hi[pos] = Trit::one;
  std::uint64_t a = gray_decode(lo);
  std::uint64_t b = gray_decode(hi);
  if (a > b) std::swap(a, b);
  if (b != a + 1) return std::nullopt;
  return 2 * a + 1;
}

bool is_valid_string(const Word& w) { return valid_rank(w).has_value(); }

std::vector<Word> all_valid_strings(std::size_t bits) {
  if (bits == 0 || bits > 20) {
    throw std::length_error("all_valid_strings: bits out of range");
  }
  std::vector<Word> out;
  const std::uint64_t n = valid_count(bits);
  out.reserve(n);
  for (std::uint64_t r = 0; r < n; ++r) out.push_back(valid_from_rank(r, bits));
  return out;
}

Word valid_max(const Word& g, const Word& h) {
  const auto rg = valid_rank(g);
  const auto rh = valid_rank(h);
  assert(rg && rh);
  return *rg >= *rh ? g : h;
}

Word valid_min(const Word& g, const Word& h) {
  const auto rg = valid_rank(g);
  const auto rh = valid_rank(h);
  assert(rg && rh);
  return *rg <= *rh ? g : h;
}

}  // namespace mcsn
