#pragma once
// Packed dual-rail representation of 64 independent ternary values.
//
// Each lane (bit position) of a PackedTrit carries one ternary value encoded
// on two rails:
//   can0 bit set  -> the value can resolve to 0
//   can1 bit set  -> the value can resolve to 1
// 0 = (1,0), 1 = (0,1), M = (1,1). (0,0) is invalid and never produced.
//
// Kleene gate semantics become plain bitwise ops, giving 64-way parallel
// netlist evaluation for property sweeps and throughput benchmarks.

#include <array>
#include <cstdint>

#include "mcsn/core/trit.hpp"

namespace mcsn {

struct PackedTrit {
  std::uint64_t can0 = ~std::uint64_t{0};  // default: all lanes 0
  std::uint64_t can1 = 0;

  friend bool operator==(const PackedTrit&, const PackedTrit&) = default;

  /// All 64 lanes set to the same value.
  [[nodiscard]] static constexpr PackedTrit splat(Trit t) noexcept {
    switch (t) {
      case Trit::zero: return {~std::uint64_t{0}, 0};
      case Trit::one: return {0, ~std::uint64_t{0}};
      default: return {~std::uint64_t{0}, ~std::uint64_t{0}};
    }
  }

  /// Reads one lane back as a Trit.
  [[nodiscard]] constexpr Trit lane(int i) const noexcept {
    const bool c0 = ((can0 >> i) & 1u) != 0;
    const bool c1 = ((can1 >> i) & 1u) != 0;
    if (c0 && c1) return Trit::meta;
    return c1 ? Trit::one : Trit::zero;
  }

  /// Writes one lane.
  constexpr void set_lane(int i, Trit t) noexcept {
    const std::uint64_t bit = std::uint64_t{1} << i;
    can0 &= ~bit;
    can1 &= ~bit;
    if (t != Trit::one) can0 |= bit;
    if (t != Trit::zero) can1 |= bit;
  }
};

// An AND output can be 1 only if both inputs can be 1; it can be 0 if either
// input can be 0. OR dually; NOT swaps rails. These are exactly the closure
// (Kleene) semantics of Table 3, lane-parallel.

[[nodiscard]] constexpr PackedTrit packed_and(PackedTrit a,
                                              PackedTrit b) noexcept {
  return {a.can0 | b.can0, a.can1 & b.can1};
}

[[nodiscard]] constexpr PackedTrit packed_or(PackedTrit a,
                                             PackedTrit b) noexcept {
  return {a.can0 & b.can0, a.can1 | b.can1};
}

[[nodiscard]] constexpr PackedTrit packed_not(PackedTrit a) noexcept {
  return {a.can1, a.can0};
}

[[nodiscard]] constexpr PackedTrit packed_xor(PackedTrit a,
                                              PackedTrit b) noexcept {
  // can be 0: (a can0 & b can0) | (a can1 & b can1); can be 1 dually.
  return {(a.can0 & b.can0) | (a.can1 & b.can1),
          (a.can0 & b.can1) | (a.can1 & b.can0)};
}

/// Closure of mux(d0, d1, s) = s ? d1 : d0, lane-parallel.
[[nodiscard]] constexpr PackedTrit packed_mux(PackedTrit d0, PackedTrit d1,
                                              PackedTrit s) noexcept {
  return {(s.can0 & d0.can0) | (s.can1 & d1.can0),
          (s.can0 & d0.can1) | (s.can1 & d1.can1)};
}

// --- Multi-word wide packing ------------------------------------------------
//
// WidePackedTrit<W> glues W 64-lane words into one 64*W-lane value. The
// per-word rail ops are independent, so the loops below auto-vectorize; with
// W = 4 (256 lanes) one gate evaluation becomes two 256-bit bitwise ops per
// rail on AVX2-class hardware.

template <int W>
struct WidePackedTrit {
  static_assert(W >= 1, "WidePackedTrit needs at least one word");
  static constexpr int kLanes = 64 * W;

  std::array<PackedTrit, W> word{};  // default: all lanes 0

  friend bool operator==(const WidePackedTrit&,
                         const WidePackedTrit&) = default;

  /// All kLanes lanes set to the same value.
  [[nodiscard]] static constexpr WidePackedTrit splat(Trit t) noexcept {
    WidePackedTrit r;
    for (auto& w : r.word) w = PackedTrit::splat(t);
    return r;
  }

  /// Reads lane i in [0, kLanes).
  [[nodiscard]] constexpr Trit lane(int i) const noexcept {
    return word[static_cast<std::size_t>(i / 64)].lane(i % 64);
  }

  /// Writes lane i in [0, kLanes).
  constexpr void set_lane(int i, Trit t) noexcept {
    word[static_cast<std::size_t>(i / 64)].set_lane(i % 64, t);
  }
};

/// 256-lane packed value — the widest backend shipped by default.
using PackedTrit256 = WidePackedTrit<4>;

template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> wide_and(
    const WidePackedTrit<W>& a, const WidePackedTrit<W>& b) noexcept {
  WidePackedTrit<W> r;
  for (int w = 0; w < W; ++w) r.word[w] = packed_and(a.word[w], b.word[w]);
  return r;
}

template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> wide_or(
    const WidePackedTrit<W>& a, const WidePackedTrit<W>& b) noexcept {
  WidePackedTrit<W> r;
  for (int w = 0; w < W; ++w) r.word[w] = packed_or(a.word[w], b.word[w]);
  return r;
}

template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> wide_not(
    const WidePackedTrit<W>& a) noexcept {
  WidePackedTrit<W> r;
  for (int w = 0; w < W; ++w) r.word[w] = packed_not(a.word[w]);
  return r;
}

template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> wide_xor(
    const WidePackedTrit<W>& a, const WidePackedTrit<W>& b) noexcept {
  WidePackedTrit<W> r;
  for (int w = 0; w < W; ++w) r.word[w] = packed_xor(a.word[w], b.word[w]);
  return r;
}

template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> wide_mux(
    const WidePackedTrit<W>& d0, const WidePackedTrit<W>& d1,
    const WidePackedTrit<W>& s) noexcept {
  WidePackedTrit<W> r;
  for (int w = 0; w < W; ++w) {
    r.word[w] = packed_mux(d0.word[w], d1.word[w], s.word[w]);
  }
  return r;
}

}  // namespace mcsn
