#pragma once
// Valid strings S^B_rg (paper Def. 2.3, Table 2) and their total order.
//
// A valid string is either a stable Gray codeword rg(x) or the superposition
// rg(x) * rg(x+1), which has exactly one metastable bit (consecutive Gray
// codewords differ in one position). The natural total order interleaves
// them:
//
//   rg(0) < rg(0)*rg(1) < rg(1) < rg(1)*rg(2) < ... < rg(N-1)
//
// We assign each valid string a *rank*: rank(rg(x)) = 2x and
// rank(rg(x)*rg(x+1)) = 2x+1, so comparisons become integer comparisons.
// max^rg_M / min^rg_M on valid strings coincide with max/min of ranks
// (shown in [2]; we verify against the brute-force closure in tests).

#include <cstdint>
#include <optional>
#include <vector>

#include "mcsn/core/word.hpp"

namespace mcsn {

/// Number of valid strings of width `bits`: 2^{B+1} - 1.
[[nodiscard]] constexpr std::uint64_t valid_count(std::size_t bits) noexcept {
  return (std::uint64_t{2} << bits) - 1;
}

/// The valid string with the given rank in [0, valid_count(bits)).
[[nodiscard]] Word valid_from_rank(std::uint64_t rank, std::size_t bits);

/// Rank of a valid string, or nullopt if `w` is not in S^B_rg.
[[nodiscard]] std::optional<std::uint64_t> valid_rank(const Word& w);

[[nodiscard]] bool is_valid_string(const Word& w);

/// All valid strings of width `bits` in ascending rank order.
/// Guarded to bits <= 20.
[[nodiscard]] std::vector<Word> all_valid_strings(std::size_t bits);

/// max/min w.r.t. the total order on valid strings (rank comparison).
/// Preconditions: both arguments valid, equal width.
[[nodiscard]] Word valid_max(const Word& g, const Word& h);
[[nodiscard]] Word valid_min(const Word& g, const Word& h);

}  // namespace mcsn
