#pragma once
// Binary reflected Gray code (paper Sec. 2, Table 1).
//
// rg_B : [2^B] -> {0,1}^B with the recursive definition
//   rg_1(0) = 0, rg_1(1) = 1,
//   rg_B(x) = 0 rg_{B-1}(x)              for x in [2^{B-1}],
//   rg_B(x) = 1 rg_{B-1}(2^B - 1 - x)    otherwise.
//
// This equals the classic x ^ (x >> 1) encoding, MSB first; we implement
// both and test them against each other. Word index 0 carries g_1.

#include <cstdint>

#include "mcsn/core/word.hpp"

namespace mcsn {

/// Gray-encodes `x` into a stable B-bit word. Precondition: x < 2^bits.
[[nodiscard]] Word gray_encode(std::uint64_t x, std::size_t bits);

/// Decodes a *stable* Gray code word (the paper's <g>).
[[nodiscard]] std::uint64_t gray_decode(const Word& g);

/// Direct bit-twiddling encoder on integers: g = x ^ (x >> 1).
[[nodiscard]] constexpr std::uint64_t gray_encode_uint(
    std::uint64_t x) noexcept {
  return x ^ (x >> 1);
}

/// Inverse of gray_encode_uint.
[[nodiscard]] constexpr std::uint64_t gray_decode_uint(
    std::uint64_t g) noexcept {
  std::uint64_t x = g;
  for (int shift = 1; shift < 64; shift <<= 1) x ^= x >> shift;
  return x;
}

/// Index of the single bit in which rg(x) and rg(x+1) differ (0 = MSB/g_1).
/// Precondition: x + 1 < 2^bits.
[[nodiscard]] std::size_t gray_flip_index(std::uint64_t x, std::size_t bits);

}  // namespace mcsn
