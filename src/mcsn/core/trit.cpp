#include "mcsn/core/trit.hpp"

#include <ostream>

namespace mcsn {

char to_char(Trit t) noexcept {
  switch (t) {
    case Trit::zero: return '0';
    case Trit::one: return '1';
    default: return 'M';
  }
}

std::optional<Trit> trit_from_char(char c) noexcept {
  switch (c) {
    case '0': return Trit::zero;
    case '1': return Trit::one;
    case 'M':
    case 'm':
    case 'X':
    case 'x': return Trit::meta;
    default: return std::nullopt;
  }
}

std::ostream& operator<<(std::ostream& os, Trit t) { return os << to_char(t); }

}  // namespace mcsn
