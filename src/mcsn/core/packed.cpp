// packed.hpp is header-only; this translation unit only anchors the target.
#include "mcsn/core/packed.hpp"
