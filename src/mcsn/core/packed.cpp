#include "mcsn/core/packed.hpp"

namespace mcsn {

// packed.hpp is otherwise header-only; explicitly instantiating the shipped
// wide width here anchors the translation unit and surfaces template compile
// errors in the library build rather than at first use.
template struct WidePackedTrit<4>;

static_assert(PackedTrit256::kLanes == 256);
static_assert(PackedTrit256::splat(Trit::meta).lane(255) == Trit::meta);

}  // namespace mcsn
