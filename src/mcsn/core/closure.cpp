#include "mcsn/core/closure.hpp"

#include <cassert>
#include <optional>

namespace mcsn {

Word closure_unary(const std::function<Word(const Word&)>& f, const Word& x) {
  std::optional<Word> acc;
  x.for_each_resolution([&](const Word& xr) {
    const Word y = f(xr);
    acc = acc ? Word::star(*acc, y) : y;
  });
  assert(acc);
  return *acc;
}

Word closure_binary(const std::function<Word(const Word&, const Word&)>& f,
                    const Word& x, const Word& y) {
  std::optional<Word> acc;
  x.for_each_resolution([&](const Word& xr) {
    y.for_each_resolution([&](const Word& yr) {
      const Word z = f(xr, yr);
      acc = acc ? Word::star(*acc, z) : z;
    });
  });
  assert(acc);
  return *acc;
}

std::pair<Word, Word> closure_binary_pair(
    const std::function<std::pair<Word, Word>(const Word&, const Word&)>& f,
    const Word& x, const Word& y) {
  std::optional<Word> first, second;
  x.for_each_resolution([&](const Word& xr) {
    y.for_each_resolution([&](const Word& yr) {
      const auto [a, b] = f(xr, yr);
      first = first ? Word::star(*first, a) : a;
      second = second ? Word::star(*second, b) : b;
    });
  });
  assert(first && second);
  return {*first, *second};
}

}  // namespace mcsn
