#pragma once
// Behavioral specification of the 2-sort(B) primitive (paper Def. 2.8):
//
//   inputs  g, h in S^B_rg,
//   outputs (max^rg_M{g,h}, min^rg_M{g,h}).
//
// Three independent reference implementations are provided; the test suite
// proves them equal on their common domain, and all gate-level circuits are
// verified against them:
//
//  1. sort2_spec_closure  — literally Def. 2.7/2.8: enumerate resolutions,
//                           sort by decoded value, superpose. Works for any
//                           ternary input, not only valid strings.
//  2. sort2_spec_rank     — max/min w.r.t. the total order (Table 2 ranks);
//                           valid strings only.
//  3. GrayCompareFsm::sort2 (fsm.hpp) — sequential diamond_m/out_m model.

#include <utility>

#include "mcsn/core/word.hpp"

namespace mcsn {

/// (max, min) by brute-force metastable closure of the stable Gray-code
/// comparison. Inputs may be arbitrary ternary words of equal width
/// (resolution count guarded by Word::for_each_resolution).
[[nodiscard]] std::pair<Word, Word> sort2_spec_closure(const Word& g,
                                                       const Word& h);

/// (max, min) via rank order. Preconditions: g, h valid strings.
[[nodiscard]] std::pair<Word, Word> sort2_spec_rank(const Word& g,
                                                    const Word& h);

}  // namespace mcsn
