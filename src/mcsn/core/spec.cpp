#include "mcsn/core/spec.hpp"

#include <cassert>

#include "mcsn/core/closure.hpp"
#include "mcsn/core/gray.hpp"
#include "mcsn/core/valid.hpp"

namespace mcsn {

std::pair<Word, Word> sort2_spec_closure(const Word& g, const Word& h) {
  assert(g.size() == h.size());
  return closure_binary_pair(
      [](const Word& a, const Word& b) -> std::pair<Word, Word> {
        return gray_decode(a) >= gray_decode(b) ? std::pair{a, b}
                                                : std::pair{b, a};
      },
      g, h);
}

std::pair<Word, Word> sort2_spec_rank(const Word& g, const Word& h) {
  return {valid_max(g, h), valid_min(g, h)};
}

}  // namespace mcsn
