#include "mcsn/core/word.hpp"

#include <cassert>
#include <ostream>
#include <stdexcept>

namespace mcsn {

std::optional<Word> Word::parse(std::string_view s) {
  Word w(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto t = trit_from_char(s[i]);
    if (!t) return std::nullopt;
    w[i] = *t;
  }
  return w;
}

Word Word::from_uint(std::uint64_t value, std::size_t width) {
  assert(width <= 64);
  Word w(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::uint64_t bit = (value >> (width - 1 - i)) & 1u;
    w[i] = to_trit(bit != 0);
  }
  return w;
}

bool Word::is_stable() const noexcept {
  for (const Trit t : bits_) {
    if (is_meta(t)) return false;
  }
  return true;
}

std::size_t Word::meta_count() const noexcept {
  std::size_t n = 0;
  for (const Trit t : bits_) n += is_meta(t) ? 1 : 0;
  return n;
}

std::optional<std::size_t> Word::first_meta() const noexcept {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (is_meta(bits_[i])) return i;
  }
  return std::nullopt;
}

std::uint64_t Word::to_uint() const {
  assert(is_stable());
  assert(size() <= 64);
  std::uint64_t v = 0;
  for (const Trit t : bits_) v = (v << 1) | (to_bool(t) ? 1u : 0u);
  return v;
}

bool Word::parity() const {
  assert(is_stable());
  bool p = false;
  for (const Trit t : bits_) p ^= to_bool(t);
  return p;
}

Word Word::sub(std::size_t first, std::size_t last) const {
  assert(first <= last && last < size());
  Word w(last - first + 1);
  for (std::size_t i = first; i <= last; ++i) w[i - first] = bits_[i];
  return w;
}

Word Word::complement() const {
  Word w(size());
  for (std::size_t i = 0; i < size(); ++i) w[i] = trit_not(bits_[i]);
  return w;
}

std::string Word::str() const {
  std::string s;
  s.reserve(size());
  for (const Trit t : bits_) s.push_back(to_char(t));
  return s;
}

Word Word::star(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = trit_star(a[i], b[i]);
  return w;
}

Word Word::star(const std::vector<Word>& words) {
  assert(!words.empty());
  Word acc = words.front();
  for (std::size_t i = 1; i < words.size(); ++i) acc = star(acc, words[i]);
  return acc;
}

std::vector<Word> Word::resolutions() const {
  std::vector<Word> out;
  const std::size_t metas = meta_count();
  if (metas > 20) throw std::length_error("Word::resolutions: too many Ms");
  out.reserve(std::size_t{1} << metas);
  for_each_resolution([&out](const Word& w) { out.push_back(w); });
  return out;
}

void Word::for_each_resolution(
    const std::function<void(const Word&)>& fn) const {
  std::vector<std::size_t> meta_pos;
  for (std::size_t i = 0; i < size(); ++i) {
    if (is_meta(bits_[i])) meta_pos.push_back(i);
  }
  Word w = *this;
  const std::uint64_t combos = std::uint64_t{1} << meta_pos.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    for (std::size_t k = 0; k < meta_pos.size(); ++k) {
      w[meta_pos[k]] = to_trit(((mask >> k) & 1u) != 0);
    }
    fn(w);
  }
}

bool Word::matches_resolution(const Word& stable) const {
  if (stable.size() != size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (!is_meta(bits_[i]) && bits_[i] != stable[i]) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Word& w) {
  return os << w.str();
}

Word operator+(const Word& a, const Word& b) {
  Word w(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) w[a.size() + i] = b[i];
  return w;
}

}  // namespace mcsn
