#pragma once
// The Gray code comparison FSM (paper Fig. 2) and its transition/output
// operators (Tables 4 and 5), plus their metastable closures.
//
// States (encoding in brackets):
//   [00] prefixes equal, parity 0      [11] prefixes equal, parity 1
//   [01] <g> < <h>                     [10] <g> > <h>
//
// The transition operator `diamond` (the paper's squared-diamond) takes the
// current state and the next input bit pair g_i h_i and is *associative* on
// {0,1}^2 with identity 00, so prefix states can be computed by a parallel
// prefix network. Its closure `diamond_m` behaves associatively on inputs
// arising from valid strings (Theorem 4.1) but is NOT associative in general.
//
// The output operator `out_op` (Table 4/5) maps (s^{(i-1)}, g_i h_i) to
// (max^rg{g,h}_i, min^rg{g,h}_i); its closure gives the i-th output bits for
// valid inputs (Theorem 4.3).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "mcsn/core/trit.hpp"
#include "mcsn/core/word.hpp"

namespace mcsn {

/// A pair of trits; doubles as FSM state and as input symbol g_i h_i.
struct TritPair {
  Trit first = Trit::zero;
  Trit second = Trit::zero;

  friend bool operator==(const TritPair&, const TritPair&) = default;

  [[nodiscard]] constexpr bool is_stable() const noexcept {
    return mcsn::is_stable(first) && mcsn::is_stable(second);
  }

  /// Index in [0,9) for table lookups: 3*first + second.
  [[nodiscard]] constexpr int index() const noexcept {
    return 3 * mcsn::index(first) + mcsn::index(second);
  }

  [[nodiscard]] static constexpr TritPair from_index(int i) noexcept {
    return {trit_from_index(i / 3), trit_from_index(i % 3)};
  }

  /// Encodes a *stable* pair as 2-bit integer (first bit is the high bit).
  [[nodiscard]] constexpr unsigned to_bits() const noexcept {
    return (to_bool(first) ? 2u : 0u) | (to_bool(second) ? 1u : 0u);
  }

  [[nodiscard]] static constexpr TritPair from_bits(unsigned b) noexcept {
    return {to_trit((b & 2u) != 0), to_trit((b & 1u) != 0)};
  }

  /// The paper's N operator: invert the first component only.
  [[nodiscard]] constexpr TritPair n_transformed() const noexcept {
    return {trit_not(first), second};
  }

  [[nodiscard]] Word to_word() const;
  [[nodiscard]] std::string str() const;
};

inline constexpr int kPairCount = 9;

/// FSM initial state s^{(0)} = 00 (identity of diamond).
inline constexpr TritPair kFsmInit{Trit::zero, Trit::zero};

// --- Stable operators (Table 5) --------------------------------------------

/// Transition operator on stable 2-bit encodings: 00 is the identity,
/// 01 and 10 absorb, 11 complements the second operand.
[[nodiscard]] constexpr unsigned diamond_bits(unsigned s, unsigned b) noexcept {
  switch (s) {
    case 0u: return b;       // 00: pass
    case 1u: return 1u;      // 01: absorbed, <g> < <h>
    case 2u: return 2u;      // 10: absorbed, <g> > <h>
    default: return b ^ 3u;  // 11: parity-flipped pass
  }
}

/// Output operator on stable 2-bit encodings (Table 4 / Table 5 right):
/// result high bit = max^rg{g,h}_i, low bit = min^rg{g,h}_i.
[[nodiscard]] constexpr unsigned out_bits(unsigned s, unsigned b) noexcept {
  const unsigned b1 = (b >> 1) & 1u;
  const unsigned b2 = b & 1u;
  switch (s) {
    case 0u: return ((b1 | b2) << 1) | (b1 & b2);  // (max, min) of bits
    case 1u: return (b2 << 1) | b1;                // swap: (h_i, g_i)
    case 2u: return b;                             // keep: (g_i, h_i)
    default: return ((b1 & b2) << 1) | (b1 | b2);  // (min, max) of bits
  }
}

[[nodiscard]] TritPair diamond_stable(TritPair s, TritPair b);
[[nodiscard]] TritPair out_stable(TritPair s, TritPair b);

// --- Closures ---------------------------------------------------------------

/// diamond_m: metastable closure of the transition operator.
[[nodiscard]] TritPair diamond_m(TritPair s, TritPair b);

/// out_m: metastable closure of the output operator.
[[nodiscard]] TritPair out_m(TritPair s, TritPair b);

/// diamond_hat_m: the N-conjugated closure used by the hardware,
///   x ^⋄M y = N(Nx ⋄M Ny),
/// operating directly on N-encoded (inverted-first-bit) pairs.
[[nodiscard]] TritPair diamond_hat_m(TritPair x, TritPair y);

// --- FSM runner -------------------------------------------------------------

/// Sequential reference implementation: feeds bit pairs one by one through
/// diamond_m and collects outputs through out_m. On valid strings this equals
/// the paper's specification (Theorems 4.1/4.3); it is the golden model the
/// gate-level circuits are tested against, and is itself tested against the
/// brute-force closure spec.
class GrayCompareFsm {
 public:
  GrayCompareFsm() = default;

  [[nodiscard]] TritPair state() const noexcept { return state_; }

  /// Processes one bit pair; returns the output pair
  /// (max_i, min_i) = out_m(previous state, g_i h_i).
  TritPair step(Trit gi, Trit hi);

  void reset() noexcept { state_ = kFsmInit; }

  /// Runs the full FSM over two equal-width words; returns (max, min).
  [[nodiscard]] static std::pair<Word, Word> sort2(const Word& g,
                                                   const Word& h);

 private:
  TritPair state_ = kFsmInit;
};

/// Human-readable state label for tracing (Fig. 2), e.g. "eq,par=0".
[[nodiscard]] std::string_view fsm_state_label(TritPair stable_state);

std::ostream& operator<<(std::ostream& os, TritPair p);

}  // namespace mcsn
