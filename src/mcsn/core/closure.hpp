#pragma once
// Metastable closure of arbitrary word-level operators (paper Def. 2.7):
//
//   f_M(x) := * f(res(x))
//
// i.e. apply f to every resolution of the (possibly metastable) input and
// superpose the results. This is the *specification* device of the
// metastability-containment framework; circuits are verified against it.

#include <functional>
#include <utility>

#include "mcsn/core/word.hpp"

namespace mcsn {

/// Closure of a unary operator on stable words.
[[nodiscard]] Word closure_unary(const std::function<Word(const Word&)>& f,
                                 const Word& x);

/// Closure of a binary operator on stable words. res(xy) = res(x) x res(y).
[[nodiscard]] Word closure_binary(
    const std::function<Word(const Word&, const Word&)>& f, const Word& x,
    const Word& y);

/// Closure of a binary operator with a pair result; both components are
/// superposed independently (used for (max, min) style specifications).
[[nodiscard]] std::pair<Word, Word> closure_binary_pair(
    const std::function<std::pair<Word, Word>(const Word&, const Word&)>& f,
    const Word& x, const Word& y);

}  // namespace mcsn
