#include "mcsn/core/fsm.hpp"

#include <cassert>
#include <ostream>

namespace mcsn {

namespace {

// Resolutions of a TritPair as stable 2-bit encodings.
struct PairResolutions {
  std::array<unsigned, 4> bits{};
  int count = 0;
};

PairResolutions resolutions_of(TritPair p) {
  PairResolutions r;
  for (const Trit a : {Trit::zero, Trit::one}) {
    if (is_stable(p.first) && p.first != a) continue;
    for (const Trit b : {Trit::zero, Trit::one}) {
      if (is_stable(p.second) && p.second != b) continue;
      r.bits[r.count++] = TritPair{a, b}.to_bits();
    }
  }
  return r;
}

TritPair superpose(TritPair a, TritPair b) {
  return {trit_star(a.first, b.first), trit_star(a.second, b.second)};
}

using StableOp = unsigned (*)(unsigned, unsigned);

TritPair closure_of(StableOp op, TritPair s, TritPair b) {
  const PairResolutions rs = resolutions_of(s);
  const PairResolutions rb = resolutions_of(b);
  TritPair acc;
  bool have = false;
  for (int i = 0; i < rs.count; ++i) {
    for (int j = 0; j < rb.count; ++j) {
      const TritPair v = TritPair::from_bits(op(rs.bits[i], rb.bits[j]));
      acc = have ? superpose(acc, v) : v;
      have = true;
    }
  }
  assert(have);
  return acc;
}

// 9x9 lookup tables, built once.
struct PairTable {
  std::array<std::array<TritPair, kPairCount>, kPairCount> t{};
};

PairTable build_table(StableOp op) {
  PairTable tab;
  for (int i = 0; i < kPairCount; ++i) {
    for (int j = 0; j < kPairCount; ++j) {
      tab.t[i][j] =
          closure_of(op, TritPair::from_index(i), TritPair::from_index(j));
    }
  }
  return tab;
}

const PairTable& diamond_table() {
  static const PairTable tab = build_table(&diamond_bits);
  return tab;
}

const PairTable& out_table() {
  static const PairTable tab = build_table(&out_bits);
  return tab;
}

const PairTable& diamond_hat_table() {
  static const PairTable tab = [] {
    PairTable hat;
    for (int i = 0; i < kPairCount; ++i) {
      for (int j = 0; j < kPairCount; ++j) {
        const TritPair x = TritPair::from_index(i).n_transformed();
        const TritPair y = TritPair::from_index(j).n_transformed();
        hat.t[i][j] = diamond_m(x, y).n_transformed();
      }
    }
    return hat;
  }();
  return tab;
}

}  // namespace

Word TritPair::to_word() const { return Word{first, second}; }

std::string TritPair::str() const {
  return std::string{to_char(first), to_char(second)};
}

TritPair diamond_stable(TritPair s, TritPair b) {
  assert(s.is_stable() && b.is_stable());
  return TritPair::from_bits(diamond_bits(s.to_bits(), b.to_bits()));
}

TritPair out_stable(TritPair s, TritPair b) {
  assert(s.is_stable() && b.is_stable());
  return TritPair::from_bits(out_bits(s.to_bits(), b.to_bits()));
}

TritPair diamond_m(TritPair s, TritPair b) {
  return diamond_table().t[s.index()][b.index()];
}

TritPair out_m(TritPair s, TritPair b) {
  return out_table().t[s.index()][b.index()];
}

TritPair diamond_hat_m(TritPair x, TritPair y) {
  return diamond_hat_table().t[x.index()][y.index()];
}

TritPair GrayCompareFsm::step(Trit gi, Trit hi) {
  const TritPair in{gi, hi};
  const TritPair out = out_m(state_, in);
  state_ = diamond_m(state_, in);
  return out;
}

std::pair<Word, Word> GrayCompareFsm::sort2(const Word& g, const Word& h) {
  assert(g.size() == h.size());
  GrayCompareFsm fsm;
  Word mx(g.size()), mn(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const TritPair o = fsm.step(g[i], h[i]);
    mx[i] = o.first;
    mn[i] = o.second;
  }
  return {mx, mn};
}

std::string_view fsm_state_label(TritPair s) {
  if (!s.is_stable()) return "(superposed)";
  switch (s.to_bits()) {
    case 0u: return "eq,par=0";
    case 1u: return "g<h";
    case 2u: return "g>h";
    default: return "eq,par=1";
  }
}

std::ostream& operator<<(std::ostream& os, TritPair p) {
  return os << to_char(p.first) << to_char(p.second);
}

}  // namespace mcsn
