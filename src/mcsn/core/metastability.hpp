#pragma once
// Quantitative synchronizer model (Ginosar's tutorial, the paper's ref [8]),
// used to put numbers on the paper's motivation: a synchronizer trades
// *time* for failure probability, while an MC sorting network costs zero
// extra settling time and never fails (in the model).
//
// Standard exponential resolution model: a flip-flop that samples a changing
// input goes metastable with a window of T_w seconds per transition; once
// metastable, the probability it has not resolved after time t is
// exp(-t / tau). With clock frequency f_c and data transition rate f_d,
//
//   MTBF(t) = exp(t / tau) / (T_w * f_c * f_d).
//
// All times in seconds, rates in Hz.

#include <cstdint>

namespace mcsn {

struct SynchronizerParams {
  double tau = 20e-12;       // metastability resolution constant [s]
  double window = 50e-12;    // susceptibility window T_w [s]
  double clock_hz = 1e9;     // sampling clock f_c
  double data_hz = 100e6;    // data transition rate f_d
};

/// Mean time between synchronizer failures given `settle` seconds of
/// resolution time.
[[nodiscard]] double synchronizer_mtbf(const SynchronizerParams& p,
                                       double settle_seconds);

/// Resolution time needed to reach a target MTBF (inverse of the above).
[[nodiscard]] double settle_time_for_mtbf(const SynchronizerParams& p,
                                          double target_mtbf_seconds);

/// Number of full clock cycles a brute-force flop-chain synchronizer needs
/// to reach the target MTBF (each stage contributes one clock period of
/// resolution time). Always >= 1.
[[nodiscard]] int synchronizer_stages_for_mtbf(const SynchronizerParams& p,
                                               double target_mtbf_seconds);

/// Probability that at least one of `elements` independent sampled bits is
/// still metastable after `settle` seconds (union bound, per sample).
[[nodiscard]] double failure_probability(const SynchronizerParams& p,
                                         double settle_seconds,
                                         std::uint64_t elements);

}  // namespace mcsn
