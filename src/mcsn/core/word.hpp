#pragma once
// Ternary words (fixed-width strings over {0,1,M}) with the resolution and
// superposition operators of the metastability-containment framework
// (Friedrichs/Fuegger/Lenzen; paper Defs. 2.1, 2.5).
//
// Bit order convention: index 0 holds the paper's g_1, i.e. the *first* /
// most significant Gray code bit. word[i] is g_{i+1}.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mcsn/core/trit.hpp"

namespace mcsn {

/// A fixed-width ternary word. Thin wrapper around std::vector<Trit> with
/// the framework's operators. Value-semantic and cheap to copy at the sizes
/// used here (B <= 64 in practice).
class Word {
 public:
  Word() = default;

  /// Word of `width` trits, all initialized to `fill`.
  explicit Word(std::size_t width, Trit fill = Trit::zero)
      : bits_(width, fill) {}

  Word(std::initializer_list<Trit> bits) : bits_(bits) {}

  /// Parses e.g. "0M10". Returns nullopt if any character is invalid.
  [[nodiscard]] static std::optional<Word> parse(std::string_view s);

  /// Builds a stable word from the bottom `width` bits of `value`,
  /// most significant bit first (index 0 = MSB).
  [[nodiscard]] static Word from_uint(std::uint64_t value, std::size_t width);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }

  [[nodiscard]] Trit operator[](std::size_t i) const { return bits_[i]; }
  [[nodiscard]] Trit& operator[](std::size_t i) { return bits_[i]; }

  [[nodiscard]] auto begin() const noexcept { return bits_.begin(); }
  [[nodiscard]] auto end() const noexcept { return bits_.end(); }

  bool operator==(const Word&) const = default;

  /// True iff no bit is metastable.
  [[nodiscard]] bool is_stable() const noexcept;

  /// Number of metastable bits.
  [[nodiscard]] std::size_t meta_count() const noexcept;

  /// Index of the first metastable bit, or nullopt.
  [[nodiscard]] std::optional<std::size_t> first_meta() const noexcept;

  /// Interprets a *stable* word as an unsigned integer, index 0 = MSB.
  /// Precondition: is_stable().
  [[nodiscard]] std::uint64_t to_uint() const;

  /// Parity (sum of bits mod 2) of a *stable* word. Precondition: stable.
  [[nodiscard]] bool parity() const;

  /// Substring g_{i..j} in the paper's 1-based inclusive notation translated
  /// to 0-based [first, last] inclusive.
  [[nodiscard]] Word sub(std::size_t first, std::size_t last) const;

  /// Bitwise complement (M stays M).
  [[nodiscard]] Word complement() const;

  [[nodiscard]] std::string str() const;

  /// The * operator of Def. 2.1: bitwise superposition. Both words must have
  /// equal width.
  [[nodiscard]] static Word star(const Word& a, const Word& b);

  /// Superposition of a whole set (Obs. 2.2). Precondition: non-empty.
  [[nodiscard]] static Word star(const std::vector<Word>& words);

  /// res(x) of Def. 2.5: all stable words obtained by replacing each M with
  /// 0 or 1, in lexicographic order of the substitution. Size is
  /// 2^meta_count(); guarded to <= 2^20 resolutions.
  [[nodiscard]] std::vector<Word> resolutions() const;

  /// Calls `fn` for every resolution without materializing the set.
  void for_each_resolution(const std::function<void(const Word&)>& fn) const;

  /// True iff `stable` is an element of res(*this).
  [[nodiscard]] bool matches_resolution(const Word& stable) const;

 private:
  std::vector<Trit> bits_;
};

std::ostream& operator<<(std::ostream& os, const Word& w);

/// Concatenation.
[[nodiscard]] Word operator+(const Word& a, const Word& b);

}  // namespace mcsn
