#include "mcsn/core/gray.hpp"

#include <cassert>

namespace mcsn {

Word gray_encode(std::uint64_t x, std::size_t bits) {
  assert(bits > 0 && bits <= 64);
  assert(bits == 64 || x < (std::uint64_t{1} << bits));
  return Word::from_uint(gray_encode_uint(x), bits);
}

std::uint64_t gray_decode(const Word& g) {
  assert(g.is_stable());
  return gray_decode_uint(g.to_uint());
}

std::size_t gray_flip_index(std::uint64_t x, std::size_t bits) {
  const std::uint64_t a = gray_encode_uint(x);
  const std::uint64_t b = gray_encode_uint(x + 1);
  const std::uint64_t diff = a ^ b;
  assert(diff != 0 && (diff & (diff - 1)) == 0);
  std::size_t lsb = 0;
  while (((diff >> lsb) & 1u) == 0) ++lsb;
  assert(lsb < bits);
  return bits - 1 - lsb;
}

}  // namespace mcsn
