#include "mcsn/core/metastability.hpp"

#include <algorithm>
#include <cmath>

namespace mcsn {

double synchronizer_mtbf(const SynchronizerParams& p, double settle_seconds) {
  return std::exp(settle_seconds / p.tau) /
         (p.window * p.clock_hz * p.data_hz);
}

double settle_time_for_mtbf(const SynchronizerParams& p,
                            double target_mtbf_seconds) {
  // Invert MTBF(t) = exp(t/tau) / (Tw fc fd).
  const double x = target_mtbf_seconds * p.window * p.clock_hz * p.data_hz;
  return x <= 1.0 ? 0.0 : p.tau * std::log(x);
}

int synchronizer_stages_for_mtbf(const SynchronizerParams& p,
                                 double target_mtbf_seconds) {
  const double t = settle_time_for_mtbf(p, target_mtbf_seconds);
  const double period = 1.0 / p.clock_hz;
  return std::max(1, static_cast<int>(std::ceil(t / period)));
}

double failure_probability(const SynchronizerParams& p, double settle_seconds,
                           std::uint64_t elements) {
  const double per_bit =
      p.window * p.data_hz * std::exp(-settle_seconds / p.tau);
  const double total = per_bit * static_cast<double>(elements);
  return std::min(1.0, total);
}

}  // namespace mcsn
