#pragma once
// Status codes for the public sorting API. Every hot-path entry point
// (flat batch sorts, service submission, wire decoding) reports failure
// through a Status or StatusOr<T> value instead of throwing — exceptions
// are reserved for construction and programmer errors (bad McSorter
// shapes, misuse of a moved-from object). A Status is cheap to pass by
// value: one enum plus an (almost always empty) message string.

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mcsn {

/// Canonical error space of the SortRequest/SortResponse API. Values are
/// fixed — they travel inside wire frames (see serve/wire.hpp), so new
/// codes must be appended, never renumbered.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< malformed request/flag/shape
  kDeadlineExceeded = 2,  ///< request expired before its batch flushed
  kUnavailable = 3,       ///< service stopped / queue closed
  kResourceExhausted = 4, ///< bound exceeded (inflight, frame size)
  kFailedPrecondition = 5,///< e.g. decoding metastable output as integers
  kDataLoss = 6,          ///< wire frame corrupt / truncated
  kUnimplemented = 7,     ///< unknown wire version or frame type
  kInternal = 8,          ///< engine failure surfaced as a response
};

/// Stable lowercase name of a code ("ok", "invalid_argument", ...).
[[nodiscard]] std::string_view status_code_name(StatusCode code) noexcept;

/// One result code plus an (almost always empty) human-readable message.
/// A Status is a plain value: cheap to copy, safe to read concurrently
/// through const access, moved/assigned freely. Thread confinement is per
/// instance — two threads may not mutate the same Status, but each can
/// own its own.
class [[nodiscard]] Status {
 public:
  /// OK by default, so `Status s; ... return s;` reads naturally.
  Status() noexcept = default;

  /// An explicit code + message; prefer the named factories below (they
  /// read better at call sites and can't transpose arguments).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status deadline_exceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status data_loss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  [[nodiscard]] static Status unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the code is kOk. Check this before trusting any result the
  /// Status guards.
  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  /// The diagnostic text (empty for kOk). Valid while this Status lives.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// "ok" or "invalid_argument: ragged round".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence. Minimal by design: the
/// API needs exactly "did it work, and if so hand me the result".
template <class T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (the common return path).
  StatusOr(T value) : value_(std::move(value)) {}

  /// Implicit from a non-OK status. An OK status without a value is a
  /// programmer error.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK without a value");
    if (status_.ok()) {
      status_ = Status::internal("StatusOr: OK status without a value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Pointer-style access to the value. Precondition: ok() — same
  /// contract as value(), asserted in debug builds.
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace mcsn
