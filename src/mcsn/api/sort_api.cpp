#include "mcsn/api/sort_api.hpp"

#include <string>

#include "mcsn/core/gray.hpp"

namespace mcsn {

namespace {

std::string shape_str(SortShape s) {
  return std::to_string(s.channels) + "x" + std::to_string(s.bits);
}

}  // namespace

Status SortShape::validate() const {
  if (channels < 1 || bits < 1) {
    return Status::invalid_argument("shape " + shape_str(*this) +
                                    ": channels and bits must be >= 1");
  }
  if (channels > kMaxChannels || bits > kMaxBits) {
    return Status::invalid_argument("shape " + shape_str(*this) +
                                    ": exceeds channel/bit bounds");
  }
  return Status();
}

StatusOr<SortRequest> SortRequest::view(SortShape shape,
                                        std::span<const Trit> flat) {
  return view_batch(shape, 1, flat);
}

StatusOr<SortRequest> SortRequest::own(SortShape shape,
                                       std::vector<Trit> flat) {
  return own_batch(shape, 1, std::move(flat));
}

StatusOr<SortRequest> SortRequest::view_batch(SortShape shape,
                                              std::size_t rounds,
                                              std::span<const Trit> flat) {
  if (Status s = shape.validate(); !s.ok()) return s;
  if (rounds < 1) {
    return Status::invalid_argument("batch of zero rounds");
  }
  // A single round is bounded by the shape limits alone (legacy wide
  // shapes may exceed kMaxBatchTrits); only true batches take the bound.
  if (rounds > 1 &&
      (rounds > kMaxBatchRounds || rounds * shape.trits() > kMaxBatchTrits)) {
    return Status::invalid_argument(
        "batch of " + std::to_string(rounds) + " rounds at " +
        shape_str(shape) + " exceeds the batch bounds");
  }
  if (flat.size() != rounds * shape.trits()) {
    return Status::invalid_argument(
        "payload of " + std::to_string(flat.size()) + " trits does not match " +
        std::to_string(rounds) + " x " + shape_str(shape) + " (" +
        std::to_string(rounds * shape.trits()) + ")");
  }
  SortRequest req;
  req.shape = shape;
  req.rounds = rounds;
  req.payload = flat;
  return req;
}

StatusOr<SortRequest> SortRequest::own_batch(SortShape shape,
                                             std::size_t rounds,
                                             std::vector<Trit> flat) {
  auto storage = std::make_shared<const std::vector<Trit>>(std::move(flat));
  StatusOr<SortRequest> req = view_batch(shape, rounds, *storage);
  if (req.ok()) req->storage = std::move(storage);
  return req;
}

StatusOr<SortRequest> SortRequest::from_values(
    SortShape shape, std::span<const std::uint64_t> values) {
  if (Status s = shape.validate(); !s.ok()) return s;
  if (shape.bits > 64) {
    // Values are uint64_t: Gray-encoding them at > 64 bits would silently
    // zero-pad the high bits (or shift out of range). Reject loudly; raw
    // trit payloads remain the way to sort wider words.
    return Status::invalid_argument(
        "integer payloads require bits <= 64, got " +
        std::to_string(shape.bits) + " (use a raw trit payload instead)");
  }
  if (values.size() != static_cast<std::size_t>(shape.channels)) {
    return Status::invalid_argument(
        std::to_string(values.size()) + " values for " + shape_str(shape));
  }
  const std::uint64_t limit =
      shape.bits == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << shape.bits) - 1;
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const std::uint64_t v : values) {
    if (v > limit) {
      return Status::invalid_argument("value " + std::to_string(v) +
                                      " needs more than " +
                                      std::to_string(shape.bits) + " bits");
    }
    const Word w = gray_encode(v, shape.bits);
    flat.insert(flat.end(), w.begin(), w.end());
  }
  StatusOr<SortRequest> req = own(shape, std::move(flat));
  if (req.ok()) req->values_requested = true;
  return req;
}

StatusOr<SortRequest> SortRequest::from_words(const std::vector<Word>& round) {
  if (round.empty()) {
    return Status::invalid_argument("empty round");
  }
  const SortShape shape{static_cast<int>(round.size()), round.front().size()};
  if (Status s = shape.validate(); !s.ok()) return s;
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const Word& w : round) {
    if (w.size() != shape.bits) {
      return Status::invalid_argument("ragged round: word of " +
                                      std::to_string(w.size()) +
                                      " bits in a " + shape_str(shape) +
                                      " round");
    }
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return own(shape, std::move(flat));
}

Status SortRequest::validate() const {
  if (Status s = shape.validate(); !s.ok()) return s;
  if (rounds < 1) {
    return Status::invalid_argument("batch of zero rounds");
  }
  if (rounds > 1 &&
      (rounds > kMaxBatchRounds || rounds * shape.trits() > kMaxBatchTrits)) {
    return Status::invalid_argument(
        "batch of " + std::to_string(rounds) + " rounds at " +
        shape_str(shape) + " exceeds the batch bounds");
  }
  if (payload.size() != rounds * shape.trits()) {
    return Status::invalid_argument(
        "payload of " + std::to_string(payload.size()) +
        " trits does not match " + std::to_string(rounds) + " x " +
        shape_str(shape));
  }
  return Status();
}

std::vector<Word> SortResponse::words() const {
  const std::size_t n =
      rounds * static_cast<std::size_t>(shape.channels);
  std::vector<Word> out;
  out.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    Word w(shape.bits);
    for (std::size_t b = 0; b < shape.bits; ++b) {
      w[b] = payload[c * shape.bits + b];
    }
    out.push_back(std::move(w));
  }
  return out;
}

StatusOr<std::vector<std::uint64_t>> SortResponse::values() const {
  if (!status.ok()) return status;
  return decode_flat_values(shape, payload);
}

StatusOr<std::vector<std::uint64_t>> decode_flat_values(
    SortShape shape, std::span<const Trit> payload) {
  if (payload.empty() || shape.trits() == 0 ||
      payload.size() % shape.trits() != 0) {
    return Status::invalid_argument(
        "payload of " + std::to_string(payload.size()) +
        " trits is not a whole number of " + shape_str(shape) + " rounds");
  }
  if (shape.bits > 64) {
    return Status::invalid_argument(
        "cannot decode integers at bits > 64; read the trit payload");
  }
  const std::size_t words = payload.size() / shape.bits;
  std::vector<std::uint64_t> out;
  out.reserve(words);
  for (std::size_t c = 0; c < words; ++c) {
    Word w(shape.bits);
    for (std::size_t b = 0; b < shape.bits; ++b) {
      const Trit t = payload[c * shape.bits + b];
      if (is_meta(t)) {
        return Status::failed_precondition(
            "channel " + std::to_string(c % static_cast<std::size_t>(
                                                shape.channels)) +
            " is metastable; integers cannot represent M");
      }
      w[b] = t;
    }
    out.push_back(gray_decode(w));
  }
  return out;
}

}  // namespace mcsn
