#pragma once
// The unified request/response object model for every sorting path.
//
// A SortRequest is one or more measurement rounds in the shape
// {channels, bits}: a *flat, contiguous* trit payload of
// rounds x channels x bits trits (round-major, round r channel c's word
// occupying [(r*channels + c)*bits, (r*channels + c + 1)*bits)), viewed
// through a std::span. The span either aliases caller memory (zero-copy:
// the caller guarantees the buffer outlives completion) or points into
// storage the request owns. Intent flags ride along: whether the caller
// thinks in raw Gray-coded trits or plain integers, and an optional
// deadline after which the service fails the request with
// kDeadlineExceeded instead of sorting it late. `rounds` defaults to 1 —
// the single-round request every existing caller builds; batch callers
// (wire BATCH frames, SortClient::sort_batch) set it higher and the whole
// batch completes as one response.
//
// A SortResponse carries the sorted payload back with a Status and the
// measured submit-to-completion latency. All validation errors surface as
// Status values; nothing on this path throws.
//
// Requests and responses are plain values with no internal locking:
// confine each instance to one thread at a time (copies are independent —
// a copied SortRequest shares only the immutable payload storage, which
// is safe to read concurrently). Ownership contract: a request built with
// `view` aliases caller memory and the caller must keep that buffer alive
// until the request completes; every other factory makes the request
// self-contained.
//
//   auto req = SortRequest::from_values({.channels = 4, .bits = 8},
//                                       std::array{5u, 2u, 7u, 1u});
//   SortResponse rsp = service.submit(std::move(*req)).get();
//   if (rsp.status.ok()) { auto sorted = rsp.values(); ... }

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mcsn/api/status.hpp"
#include "mcsn/core/word.hpp"

namespace mcsn {

/// The shape of a measurement round: how many channels (words) of how many
/// bits each. Keys sorter pools, micro-batcher shards and wire frames.
struct SortShape {
  int channels = 0;
  std::size_t bits = 0;

  /// Flat payload length: channels x bits trits.
  [[nodiscard]] std::size_t trits() const noexcept {
    return static_cast<std::size_t>(channels) * bits;
  }

  /// Non-degenerate and small enough that trits() cannot overflow or
  /// describe an absurd netlist (also the bound wire decoding enforces).
  [[nodiscard]] Status validate() const;

  bool operator==(const SortShape&) const = default;
  auto operator<=>(const SortShape&) const = default;
};

/// Upper bounds validate() enforces; generous for real TDC workloads while
/// keeping shape arithmetic and wire-frame sizes trivially safe.
inline constexpr int kMaxChannels = 1 << 16;
inline constexpr std::size_t kMaxBits = 1 << 16;

/// Upper bound on rounds carried by one batched request. Together with the
/// per-batch trit bound below it keeps batch arithmetic overflow-free and
/// every encodable batch frame under the wire codec's body cap.
inline constexpr std::size_t kMaxBatchRounds = std::size_t{1} << 20;
/// Upper bound on rounds * shape.trits() for a batched (rounds > 1)
/// request — 2^20 trits packs to 256 KiB on the wire, and even the worst
/// value-encoded layout (bits == 1) stays under wire::kMaxBody.
inline constexpr std::size_t kMaxBatchTrits = std::size_t{1} << 20;

struct SortRequest {
  SortShape shape;

  /// Same-shape measurement rounds in `payload`; 1 for the ordinary
  /// single-round request. The whole batch sorts together and completes as
  /// one SortResponse carrying rounds x shape.trits() output trits.
  std::size_t rounds = 1;

  /// Flat payload, rounds x shape.trits() long. May alias caller memory
  /// (factory `view`) or point into `storage` (all other factories).
  std::span<const Trit> payload;

  /// Optional backing buffer; shared so requests stay cheap to copy.
  std::shared_ptr<const std::vector<Trit>> storage;

  /// Caller-intent flag: true when the round was given as integers and the
  /// response should read back as integers (SortResponse::values(), wire
  /// value frames). The engine always works on the Gray-coded trits.
  bool values_requested = false;

  /// If set, the request is failed with kDeadlineExceeded when its batch
  /// flushes after this instant (checked at flush time, not admission).
  std::optional<std::chrono::steady_clock::time_point> deadline;

  // --- factories (each validates; non-OK means no request was built) ------

  /// Zero-copy: `flat` must stay alive until the request completes.
  [[nodiscard]] static StatusOr<SortRequest> view(SortShape shape,
                                                  std::span<const Trit> flat);

  /// Takes ownership of the flat payload.
  [[nodiscard]] static StatusOr<SortRequest> own(SortShape shape,
                                                 std::vector<Trit> flat);

  /// Gray-encodes `values` (one per channel) at shape.bits wide. Rejects
  /// bits > 64 (values are uint64_t) and out-of-range values.
  [[nodiscard]] static StatusOr<SortRequest> from_values(
      SortShape shape, std::span<const std::uint64_t> values);

  /// Bridges the legacy vector-of-Words round (flattens once).
  [[nodiscard]] static StatusOr<SortRequest> from_words(
      const std::vector<Word>& round);

  /// Zero-copy batch: `flat` holds `rounds` consecutive rounds
  /// (rounds x shape.trits() trits) and must stay alive until the request
  /// completes. Rejects rounds < 1 and batches over the kMaxBatchRounds /
  /// kMaxBatchTrits bounds.
  [[nodiscard]] static StatusOr<SortRequest> view_batch(
      SortShape shape, std::size_t rounds, std::span<const Trit> flat);

  /// Batch variant of `own`: takes ownership of the flat payload.
  [[nodiscard]] static StatusOr<SortRequest> own_batch(SortShape shape,
                                                       std::size_t rounds,
                                                       std::vector<Trit> flat);

  /// Re-checks the invariants the factories establish (payload length,
  /// shape bounds) — for requests decoded from the wire or hand-built.
  [[nodiscard]] Status validate() const;

  /// Convenience: deadline = now + budget.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline = std::chrono::steady_clock::now() + budget;
  }
};

struct SortResponse {
  /// kOk iff `payload` holds the sorted round(s).
  Status status;
  SortShape shape;

  /// Rounds in `payload` — echoed from the request (1 for single-round).
  std::size_t rounds = 1;

  /// Flat sorted payload (rounds x shape.trits() trits); empty unless
  /// status.ok(). Round r occupies [r*trits, (r+1)*trits).
  std::vector<Trit> payload;

  /// Echoed from the request (drives wire encoding and values()).
  bool values_requested = false;

  /// Submit-to-completion time as measured by the service; zero for
  /// synchronous paths that don't time themselves.
  std::chrono::nanoseconds latency{0};

  /// The sorted rounds as per-channel Words (rounds x channels of them,
  /// round-major). Precondition: status.ok().
  [[nodiscard]] std::vector<Word> words() const;

  /// Gray-decodes the sorted round(s) to integers (rounds x channels of
  /// them, round-major). Fails with kFailedPrecondition if any output trit
  /// is metastable (M cannot be decoded) and kInvalidArgument if
  /// bits > 64.
  [[nodiscard]] StatusOr<std::vector<std::uint64_t>> values() const;

  /// A payload-less response reporting `status` (which must not be OK) —
  /// the uniform way every layer answers a request it could not sort.
  [[nodiscard]] static SortResponse failure(Status status, SortShape shape,
                                            bool values_requested = false,
                                            std::size_t rounds = 1) {
    SortResponse r;
    r.status = std::move(status);
    r.shape = shape;
    r.values_requested = values_requested;
    r.rounds = rounds;
    return r;
  }
};

/// Gray-decodes a flat payload (a whole number of rounds: any multiple of
/// shape.trits() trits, round- then channel-major) to one integer per
/// channel per round — the one decode loop SortResponse::values() and the
/// wire codec share. Fails with kInvalidArgument when the payload is not a
/// positive multiple of shape.trits() or bits > 64, kFailedPrecondition if
/// any trit is metastable (M has no integer form).
[[nodiscard]] StatusOr<std::vector<std::uint64_t>> decode_flat_values(
    SortShape shape, std::span<const Trit> payload);

}  // namespace mcsn
