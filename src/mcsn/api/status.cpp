#include "mcsn/api/status.hpp"

namespace mcsn {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string s(status_code_name(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace mcsn
