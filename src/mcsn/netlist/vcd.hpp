#pragma once
// Minimal VCD (value change dump) writer for EventSimulator waveforms;
// metastable M is emitted as the VCD unknown value 'x'.

#include <iosfwd>
#include <string>

#include "mcsn/netlist/eventsim.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Dumps the waveforms of all primary inputs and outputs (1 ps timescale).
void write_vcd(std::ostream& os, const Netlist& nl, const EventSimulator& sim);

[[nodiscard]] std::string to_vcd(const Netlist& nl, const EventSimulator& sim);

}  // namespace mcsn
