#pragma once
// Combinational equivalence checking between two netlists with the same
// interface, in two semantics:
//
//   * Boolean  — inputs range over {0,1}. Classical synthesis equivalence.
//   * Ternary  — inputs range over {0,1,M}. This is the semantics that
//                matters for metastability-containment.
//
// Two circuits can be Boolean-equivalent yet ternary-INEQUIVALENT (that is
// exactly why the paper's flow disables Boolean optimization); the checker
// distinguishes the two and returns a witness input on mismatch.
//
// Exhaustive up to a guarded input count (using the 64-lane packed evaluator
// to cover 64 vectors per pass); randomized sampling above that.

#include <optional>
#include <string>

#include "mcsn/core/word.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

enum class EquivSemantics { boolean_only, ternary };

struct EquivMismatch {
  Word input;
  Word output_a;
  Word output_b;
  [[nodiscard]] std::string describe() const;
};

struct EquivOptions {
  EquivSemantics semantics = EquivSemantics::ternary;
  /// Exhaustive when semantics-space size (2^n or 3^n) <= this bound;
  /// randomized sampling otherwise.
  std::uint64_t exhaustive_bound = 1u << 22;
  std::uint64_t random_samples = 100'000;
  std::uint64_t seed = 1;
};

/// Checks a and b produce identical outputs. Preconditions: same input
/// count and same output count. Returns a witness on mismatch, nullopt if
/// equivalent (up to sampling, when beyond the exhaustive bound).
[[nodiscard]] std::optional<EquivMismatch> check_equivalence(
    const Netlist& a, const Netlist& b, const EquivOptions& opt = {});

// --- Formal (BDD-based) checking -------------------------------------------

struct FormalEquivOptions {
  EquivSemantics semantics = EquivSemantics::ternary;
  /// Optional variable order: rank per input index (lower rank = closer to
  /// the BDD root). Interleaving the two operand buses of a comparator
  /// keeps its BDDs small. Empty = input order.
  std::vector<int> var_order;
  std::size_t node_limit = 2'000'000;
};

struct FormalEquivResult {
  bool equivalent = false;
  /// Inequivalence witness (ternary word under ternary semantics, 0/1 word
  /// under Boolean semantics).
  std::optional<Word> witness;
  std::size_t bdd_nodes = 0;  // peak unique-table size
};

/// Formal combinational equivalence via ROBDDs. Under ternary semantics the
/// circuits are encoded dual-rail (two Boolean variables per input), so the
/// verdict covers ALL ternary inputs — a proof, not a sample. Throws
/// std::length_error if the BDDs exceed `node_limit`.
[[nodiscard]] FormalEquivResult check_equivalence_formal(
    const Netlist& a, const Netlist& b, const FormalEquivOptions& opt = {});

}  // namespace mcsn
