#include "mcsn/netlist/timing.hpp"

#include <algorithm>
#include <cassert>

namespace mcsn {

TimingReport analyze_timing(const Netlist& nl, const CellLibrary& lib) {
  const auto& nodes = nl.nodes();
  const std::size_t n = nodes.size();

  // Load per node: sum of input caps of driven pins + port cap if it feeds a
  // primary output.
  std::vector<double> load(n, 0.0);
  for (const GateNode& g : nodes) {
    const double cap = lib.params(g.kind).input_cap;
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) load[g.in[pin]] += cap;
  }
  for (const OutputPort& o : nl.outputs()) load[o.node] += lib.port_cap();

  TimingReport rep;
  rep.arrival.assign(n, 0.0);
  std::vector<NodeId> pred(n, 0);

  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nodes[id];
    if (!is_gate(g.kind)) continue;  // inputs/constants arrive at t=0
    double in_arr = 0.0;
    NodeId worst = g.in[0];
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      if (rep.arrival[g.in[pin]] >= in_arr) {
        in_arr = rep.arrival[g.in[pin]];
        worst = g.in[pin];
      }
    }
    const CellParams& p = lib.params(g.kind);
    rep.arrival[id] = in_arr + p.intrinsic + p.slope * load[id];
    pred[id] = worst;
  }

  NodeId crit = 0;
  for (const OutputPort& o : nl.outputs()) {
    if (rep.arrival[o.node] >= rep.critical_delay) {
      rep.critical_delay = rep.arrival[o.node];
      crit = o.node;
    }
  }

  // Walk the critical path back to an input.
  if (!nl.outputs().empty()) {
    std::vector<NodeId> path;
    NodeId cur = crit;
    path.push_back(cur);
    while (is_gate(nodes[cur].kind)) {
      cur = pred[cur];
      path.push_back(cur);
    }
    std::reverse(path.begin(), path.end());
    rep.critical_path = std::move(path);
  }
  return rep;
}

std::size_t logic_depth(const Netlist& nl) {
  const auto& nodes = nl.nodes();
  std::vector<std::size_t> level(nodes.size(), 0);
  std::size_t depth = 0;
  for (NodeId id = 0; id < nodes.size(); ++id) {
    const GateNode& g = nodes[id];
    if (!is_gate(g.kind)) continue;
    std::size_t in_level = 0;
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      in_level = std::max(in_level, level[g.in[pin]]);
    }
    level[id] = in_level + 1;
  }
  for (const OutputPort& o : nl.outputs()) depth = std::max(depth, level[o.node]);
  return depth;
}

double total_area(const Netlist& nl, const CellLibrary& lib) {
  double area = 0.0;
  for (const GateNode& g : nl.nodes()) {
    if (is_gate(g.kind)) area += lib.params(g.kind).area;
  }
  return area;
}

double resolution_latency(const Netlist& nl, const CellLibrary& lib,
                          std::size_t input_idx) {
  assert(input_idx < nl.inputs().size());
  const auto& nodes = nl.nodes();
  const std::size_t n = nodes.size();

  std::vector<double> load(n, 0.0);
  for (const GateNode& g : nodes) {
    const double cap = lib.params(g.kind).input_cap;
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) load[g.in[pin]] += cap;
  }
  for (const OutputPort& o : nl.outputs()) load[o.node] += lib.port_cap();

  // Longest path from the chosen input only: nodes not in its fanout cone
  // carry -inf so they cannot contribute.
  constexpr double kUnreached = -1.0;
  std::vector<double> arrival(n, kUnreached);
  arrival[nl.inputs()[input_idx]] = 0.0;
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nodes[id];
    if (!is_gate(g.kind)) continue;
    double in_arr = kUnreached;
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      in_arr = std::max(in_arr, arrival[g.in[pin]]);
    }
    if (in_arr == kUnreached) continue;
    const CellParams& p = lib.params(g.kind);
    arrival[id] = in_arr + p.intrinsic + p.slope * load[id];
  }
  double worst = 0.0;
  for (const OutputPort& o : nl.outputs()) {
    worst = std::max(worst, arrival[o.node]);
  }
  return worst;
}

double worst_resolution_latency(const Netlist& nl, const CellLibrary& lib) {
  double worst = 0.0;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    worst = std::max(worst, resolution_latency(nl, lib, i));
  }
  return worst;
}

}  // namespace mcsn
