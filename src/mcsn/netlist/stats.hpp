#pragma once
// One-stop circuit report: gate counts, area, depth, delay.

#include <iosfwd>
#include <string>

#include "mcsn/netlist/library.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct CircuitStats {
  std::string name;
  std::size_t gates = 0;       // logic gates (inputs excluded)
  std::size_t inverters = 0;
  std::size_t and_gates = 0;
  std::size_t or_gates = 0;
  std::size_t other_gates = 0;
  std::size_t depth = 0;       // unit logic levels
  double area = 0.0;           // um^2 under lib
  double delay = 0.0;          // ps under lib STA
  bool mc_safe = false;
};

[[nodiscard]] CircuitStats compute_stats(
    const Netlist& nl, const CellLibrary& lib = CellLibrary::paper_calibrated());

std::ostream& operator<<(std::ostream& os, const CircuitStats& s);

}  // namespace mcsn
