#include "mcsn/netlist/stats.hpp"

#include <ostream>

#include "mcsn/netlist/timing.hpp"

namespace mcsn {

CircuitStats compute_stats(const Netlist& nl, const CellLibrary& lib) {
  CircuitStats s;
  s.name = nl.name();
  const auto hist = nl.gate_histogram();
  auto count = [&hist](CellKind k) { return hist[static_cast<int>(k)]; };
  s.gates = nl.gate_count();
  s.inverters = count(CellKind::inv);
  s.and_gates = count(CellKind::and2);
  s.or_gates = count(CellKind::or2);
  s.other_gates = s.gates - s.inverters - s.and_gates - s.or_gates;
  s.depth = logic_depth(nl);
  s.area = total_area(nl, lib);
  s.delay = analyze_timing(nl, lib).critical_delay;
  s.mc_safe = nl.mc_safe();
  return s;
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& s) {
  os << s.name << ": " << s.gates << " gates (" << s.and_gates << " AND, "
     << s.or_gates << " OR, " << s.inverters << " INV";
  if (s.other_gates > 0) os << ", " << s.other_gates << " other";
  os << "), depth " << s.depth << ", area " << s.area << " um^2, delay "
     << s.delay << " ps" << (s.mc_safe ? " [MC]" : " [non-MC]");
  return os;
}

}  // namespace mcsn
