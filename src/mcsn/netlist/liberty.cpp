#include "mcsn/netlist/liberty.hpp"

#include <array>
#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <vector>

namespace mcsn {

namespace {

struct Token {
  enum class Kind { ident, number, string, punct, end };
  Kind kind = Kind::end;
  std::string text;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      t.kind = Token::Kind::ident;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      const std::size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '-' || text_[pos_] == '+')) {
        // Only allow +/- right after an exponent marker.
        if ((text_[pos_] == '-' || text_[pos_] == '+') &&
            !(text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
          break;
        }
        ++pos_;
      }
      t.kind = Token::Kind::number;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    if (c == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      t.kind = Token::Kind::string;
      t.text = std::string(text_.substr(start, pos_ - start));
      if (pos_ < text_.size()) ++pos_;  // closing quote
      return t;
    }
    t.kind = Token::Kind::punct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else if (c == '\\') {
        ++pos_;  // line continuations
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

std::optional<CellKind> kind_from_lib_name(std::string_view name) {
  for (int k = 0; k < kCellKindCount; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (is_gate(kind) && cell_lib_name(kind) == name) return kind;
  }
  return std::nullopt;
}

// Recursive-descent parser over the token stream. Grammar:
//   group     := ident '(' args? ')' ( '{' statement* '}' | ';' )
//   statement := group | attribute
//   attribute := ident ':' value ';'
class Parser {
 public:
  Parser(std::string_view text, LibertyError* error)
      : lex_(text), error_(error) {
    advance();
  }

  std::optional<CellLibrary> parse() {
    if (!expect_ident("library")) return std::nullopt;
    std::string libname;
    if (!parse_group_args(&libname)) return std::nullopt;
    if (libname.empty()) libname = "liberty";
    if (!expect_punct("{")) return std::nullopt;
    while (!at_punct("}")) {
      if (cur_.kind == Token::Kind::end) {
        fail("unexpected EOF");
        return std::nullopt;
      }
      if (!parse_library_item()) return std::nullopt;
    }
    advance();  // '}'
    return CellLibrary(libname, cells_, port_cap_);
  }

 private:
  bool parse_library_item() {
    if (cur_.kind != Token::Kind::ident) return fail("expected identifier");
    const std::string name = cur_.text;
    advance();
    if (at_punct(":")) {
      if (name == "default_output_pin_cap") {
        return attribute_number(&port_cap_);
      }
      return skip_attribute_value();
    }
    std::string arg;
    if (!parse_group_args(&arg)) return false;
    if (name == "cell") return parse_cell(arg);
    return skip_group_or_semi();
  }

  bool parse_cell(const std::string& cellname) {
    const std::optional<CellKind> kind = kind_from_lib_name(cellname);
    if (!expect_punct("{")) return false;
    CellParams params{};
    double cap_sum = 0.0;
    int cap_count = 0;
    while (!at_punct("}")) {
      if (cur_.kind == Token::Kind::end) return fail("unexpected EOF in cell");
      if (cur_.kind != Token::Kind::ident) return fail("expected identifier");
      const std::string name = cur_.text;
      advance();
      if (at_punct(":")) {
        if (name == "area") {
          if (!attribute_number(&params.area)) return false;
        } else if (!skip_attribute_value()) {
          return false;
        }
        continue;
      }
      std::string arg;
      if (!parse_group_args(&arg)) return false;
      if (name == "pin") {
        if (!parse_pin(&params, &cap_sum, &cap_count)) return false;
      } else if (!skip_group_or_semi()) {
        return false;
      }
    }
    advance();  // '}'
    if (cap_count > 0) params.input_cap = cap_sum / cap_count;
    if (kind) cells_[static_cast<int>(*kind)] = params;
    return true;
  }

  bool parse_pin(CellParams* params, double* cap_sum, int* cap_count) {
    if (!expect_punct("{")) return false;
    bool is_input = false;
    double cap = 0.0;
    bool has_cap = false;
    while (!at_punct("}")) {
      if (cur_.kind == Token::Kind::end) return fail("unexpected EOF in pin");
      if (cur_.kind != Token::Kind::ident) return fail("expected identifier");
      const std::string name = cur_.text;
      advance();
      if (at_punct(":")) {
        if (name == "direction") {
          advance();  // ':'
          if (cur_.kind != Token::Kind::ident) return fail("bad direction");
          is_input = cur_.text == "input";
          advance();
          if (!expect_punct(";")) return false;
        } else if (name == "capacitance") {
          if (!attribute_number(&cap)) return false;
          has_cap = true;
        } else if (!skip_attribute_value()) {
          return false;
        }
        continue;
      }
      std::string arg;
      if (!parse_group_args(&arg)) return false;
      if (name == "timing") {
        if (!parse_timing(params)) return false;
      } else if (!skip_group_or_semi()) {
        return false;
      }
    }
    advance();  // '}'
    if (is_input && has_cap) {
      *cap_sum += cap;
      ++*cap_count;
    }
    return true;
  }

  bool parse_timing(CellParams* params) {
    if (!expect_punct("{")) return false;
    while (!at_punct("}")) {
      if (cur_.kind == Token::Kind::end) {
        return fail("unexpected EOF in timing");
      }
      if (cur_.kind != Token::Kind::ident) return fail("expected identifier");
      const std::string name = cur_.text;
      advance();
      const bool intrinsic =
          name == "intrinsic_rise" || name == "intrinsic_fall";
      const bool resistance =
          name == "rise_resistance" || name == "fall_resistance";
      if (at_punct(":") && (intrinsic || resistance)) {
        double v = 0.0;
        if (!attribute_number(&v)) return false;
        if (intrinsic) params->intrinsic = std::max(params->intrinsic, v);
        if (resistance) params->slope = std::max(params->slope, v);
      } else if (at_punct(":")) {
        if (!skip_attribute_value()) return false;
      } else {
        // Nested group (e.g. cell_rise tables): skip wholesale.
        std::string arg;
        if (!parse_group_args(&arg)) return false;
        if (!skip_group_or_semi()) return false;
      }
    }
    advance();  // '}'
    return true;
  }

  // --- token plumbing ---------------------------------------------------

  void advance() { cur_ = lex_.next(); }

  bool at_punct(std::string_view p) const {
    return cur_.kind == Token::Kind::punct && cur_.text == p;
  }

  bool expect_punct(std::string_view p) {
    if (!at_punct(p)) {
      return fail("expected '" + std::string(p) + "'");
    }
    advance();
    return true;
  }

  bool expect_ident(std::string_view name) {
    if (cur_.kind != Token::Kind::ident || cur_.text != name) {
      return fail("expected '" + std::string(name) + "'");
    }
    advance();
    return true;
  }

  // '(' tok* ')'; concatenates the argument tokens (so names containing
  // '-' survive, e.g. "nangate45-mc-calibrated").
  bool parse_group_args(std::string* args) {
    if (!expect_punct("(")) return false;
    while (!at_punct(")")) {
      if (cur_.kind == Token::Kind::end) return fail("unexpected EOF in args");
      args->append(cur_.text);
      advance();
    }
    advance();
    return true;
  }

  // After 'ident :', consume the value and ';'.
  bool skip_attribute_value() {
    if (!expect_punct(":")) return false;
    while (!at_punct(";")) {
      if (cur_.kind == Token::Kind::end) {
        return fail("unexpected EOF in attribute");
      }
      advance();
    }
    advance();
    return true;
  }

  bool attribute_number(double* out) {
    if (!expect_punct(":")) return false;
    if (cur_.kind != Token::Kind::number) return fail("expected number");
    *out = std::strtod(cur_.text.c_str(), nullptr);
    advance();
    return expect_punct(";");
  }

  // Skips '{ ... }' (nested) or ';'.
  bool skip_group_or_semi() {
    if (at_punct(";")) {
      advance();
      return true;
    }
    if (!expect_punct("{")) return false;
    int depth = 1;
    while (depth > 0) {
      if (cur_.kind == Token::Kind::end) return fail("unexpected EOF");
      if (at_punct("{")) ++depth;
      if (at_punct("}")) --depth;
      advance();
    }
    return true;
  }

  bool fail(std::string msg) {
    if (error_) *error_ = LibertyError{cur_.line, std::move(msg)};
    return false;
  }

  Lexer lex_;
  Token cur_;
  LibertyError* error_;
  std::array<CellParams, kCellKindCount> cells_{};
  double port_cap_ = 1.0;
};

}  // namespace

std::optional<CellLibrary> parse_liberty(std::string_view text,
                                         LibertyError* error) {
  Parser parser(text, error);
  return parser.parse();
}

void write_liberty(std::ostream& os, const CellLibrary& lib) {
  os << "/* generated by mcsn; legacy linear delay model */\n";
  os << "library (" << (lib.name().empty() ? "mcsn" : lib.name()) << ") {\n";
  os << "  default_output_pin_cap : " << lib.port_cap() << ";\n";
  for (int k = 0; k < kCellKindCount; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (!is_gate(kind)) continue;
    const CellParams& p = lib.params(kind);
    if (p.area == 0.0) continue;
    os << "  cell (" << cell_lib_name(kind) << ") {\n";
    os << "    area : " << p.area << ";\n";
    const int arity = cell_arity(kind);
    static const char* const pins2[] = {"A1", "A2", "A3"};
    for (int pin = 0; pin < arity; ++pin) {
      const char* pname = arity == 1 ? "A" : pins2[pin];
      os << "    pin (" << pname << ") { direction : input; capacitance : "
         << p.input_cap << "; }\n";
    }
    os << "    pin (Z) {\n      direction : output;\n      timing () {\n"
       << "        intrinsic_rise : " << p.intrinsic << ";\n"
       << "        intrinsic_fall : " << p.intrinsic << ";\n"
       << "        rise_resistance : " << p.slope << ";\n"
       << "        fall_resistance : " << p.slope << ";\n      }\n    }\n";
    os << "  }\n";
  }
  os << "}\n";
}

std::string to_liberty(const CellLibrary& lib) {
  std::ostringstream ss;
  write_liberty(ss, lib);
  return ss.str();
}

}  // namespace mcsn
