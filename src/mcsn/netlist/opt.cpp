#include "mcsn/netlist/opt.hpp"

#include <map>
#include <optional>
#include <tuple>
#include <vector>

namespace mcsn {

namespace {

bool is_commutative(CellKind k) {
  switch (k) {
    case CellKind::and2:
    case CellKind::or2:
    case CellKind::nand2:
    case CellKind::nor2:
    case CellKind::xor2:
    case CellKind::xnor2: return true;
    default: return false;
  }
}

// One forward rebuild with folding + CSE. Because nodes are processed in
// topological order and rewrites apply immediately, a single pass reaches
// the fixed point of these local rules.
struct Rebuilder {
  const Netlist& src;
  const OptOptions& opt;
  Netlist out;
  std::vector<NodeId> remap;
  // Constant value of a new node, if known.
  std::vector<std::optional<bool>> const_of;
  std::map<std::tuple<CellKind, NodeId, NodeId, NodeId>, NodeId> cse_map;
  std::optional<NodeId> const_node[2];
  std::size_t folded = 0;
  std::size_t merged = 0;

  explicit Rebuilder(const Netlist& nl, const OptOptions& o)
      : src(nl), opt(o), out(nl.name()) {
    remap.resize(nl.node_count());
  }

  void note_const(NodeId id, bool v) {
    if (const_of.size() <= id) const_of.resize(id + 1);
    const_of[id] = v;
  }

  std::optional<bool> const_val(NodeId id) const {
    return id < const_of.size() ? const_of[id] : std::nullopt;
  }

  NodeId constant(bool v) {
    if (!const_node[v ? 1 : 0]) {
      const NodeId id = out.constant(v);
      const_node[v ? 1 : 0] = id;
      note_const(id, v);
    }
    return *const_node[v ? 1 : 0];
  }

  bool is_inv_of(NodeId id, NodeId& input) const {
    const GateNode& g = out.node(id);
    if (g.kind != CellKind::inv) return false;
    input = g.in[0];
    return true;
  }

  // Returns the replacement node for `kind(a, b, c)` if a folding rule
  // applies.
  std::optional<NodeId> fold(CellKind kind, NodeId a, NodeId b, NodeId c) {
    const auto ca = const_val(a);
    const auto cb = const_val(b);
    const auto cc = const_val(c);
    const int arity = cell_arity(kind);

    // Fully constant: evaluate.
    if ((arity < 1 || ca) && (arity < 2 || cb) && (arity < 3 || cc)) {
      return constant(cell_eval_bool(kind, ca.value_or(false),
                                     cb.value_or(false),
                                     cc.value_or(false)));
    }
    switch (kind) {
      case CellKind::inv: {
        NodeId inner = 0;
        if (is_inv_of(a, inner)) return inner;  // inv(inv(x)) = x
        break;
      }
      case CellKind::and2:
        if (a == b) return a;                           // idempotent
        if (ca) return *ca ? b : constant(false);       // 1&x=x, 0&x=0
        if (cb) return *cb ? a : constant(false);
        break;
      case CellKind::or2:
        if (a == b) return a;
        if (ca) return *ca ? constant(true) : b;        // 1|x=1, 0|x=x
        if (cb) return *cb ? constant(true) : a;
        break;
      case CellKind::xor2:
        if (ca && !*ca) return b;  // 0^x = x
        if (cb && !*cb) return a;
        break;
      case CellKind::mux2:
        if (cc) return *cc ? b : a;  // constant select
        if (a == b) return a;        // mux(x, x, s) = x (also for s = M)
        break;
      default: break;
    }
    return std::nullopt;
  }

  Netlist run() {
    std::size_t next_input = 0;
    for (NodeId id = 0; id < src.node_count(); ++id) {
      const GateNode& g = src.node(id);
      switch (g.kind) {
        case CellKind::input:
          remap[id] = out.add_input(src.input_name(next_input++));
          continue;
        case CellKind::const0:
          remap[id] = constant(false);
          continue;
        case CellKind::const1:
          remap[id] = constant(true);
          continue;
        default: break;
      }
      NodeId a = remap[g.in[0]];
      NodeId b = cell_arity(g.kind) > 1 ? remap[g.in[1]] : 0;
      NodeId c = cell_arity(g.kind) > 2 ? remap[g.in[2]] : 0;

      if (opt.constant_fold) {
        if (const auto repl = fold(g.kind, a, b, c)) {
          remap[id] = *repl;
          ++folded;
          continue;
        }
      }
      if (is_commutative(g.kind) && a > b) std::swap(a, b);
      if (opt.cse) {
        const auto key = std::make_tuple(g.kind, a, b, c);
        const auto it = cse_map.find(key);
        if (it != cse_map.end()) {
          remap[id] = it->second;
          ++merged;
          continue;
        }
        remap[id] = out.add_gate(g.kind, a, b, c);
        cse_map.emplace(key, remap[id]);
      } else {
        remap[id] = out.add_gate(g.kind, a, b, c);
      }
    }
    for (const OutputPort& o : src.outputs()) {
      out.mark_output(remap[o.node], o.name);
    }
    return std::move(out);
  }
};

// Removes gates not reachable from any output (inputs are always kept to
// preserve the interface).
Netlist sweep_dead(const Netlist& nl, std::size_t& removed) {
  std::vector<bool> live(nl.node_count(), false);
  for (const OutputPort& o : nl.outputs()) live[o.node] = true;
  for (NodeId id = nl.node_count(); id-- > 0;) {
    if (!live[id]) continue;
    const GateNode& g = nl.node(id);
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) live[g.in[pin]] = true;
  }

  Netlist out(nl.name());
  std::vector<NodeId> remap(nl.node_count());
  std::size_t next_input = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateNode& g = nl.node(id);
    if (g.kind == CellKind::input) {
      remap[id] = out.add_input(nl.input_name(next_input++));
      continue;
    }
    if (!live[id]) {
      if (is_gate(g.kind)) ++removed;
      continue;
    }
    switch (g.kind) {
      case CellKind::const0: remap[id] = out.constant(false); break;
      case CellKind::const1: remap[id] = out.constant(true); break;
      default:
        remap[id] = out.add_gate(
            g.kind, remap[g.in[0]],
            cell_arity(g.kind) > 1 ? remap[g.in[1]] : 0,
            cell_arity(g.kind) > 2 ? remap[g.in[2]] : 0);
    }
  }
  for (const OutputPort& o : nl.outputs()) {
    out.mark_output(remap[o.node], o.name);
  }
  return out;
}

}  // namespace

OptResult optimize(const Netlist& nl, const OptOptions& opt) {
  OptResult res{Netlist(nl.name()), 0, 0, 0};
  Rebuilder rb(nl, opt);
  res.netlist = rb.run();
  res.folded = rb.folded;
  res.merged = rb.merged;
  if (opt.dce) {
    res.netlist = sweep_dead(res.netlist, res.removed);
  }
  return res;
}

}  // namespace mcsn
