#include "mcsn/netlist/eventsim.hpp"

#include <cassert>

namespace mcsn {

EventSimulator::EventSimulator(const Netlist& nl, const CellLibrary& lib)
    : nl_(&nl) {
  const std::size_t n = nl.node_count();
  fanout_.resize(n);
  gate_delay_.assign(n, 0.0);
  values_.assign(n, Trit::zero);
  waves_.resize(n);
  pending_time_.assign(n, 0.0);
  pending_value_.assign(n, Trit::zero);
  has_pending_.assign(n, false);

  // Static per-gate delay: intrinsic + slope * load (same model as STA).
  std::vector<double> load(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nl.node(id);
    const double cap = lib.params(g.kind).input_cap;
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      load[g.in[pin]] += cap;
      fanout_[g.in[pin]].push_back(id);
    }
  }
  for (const OutputPort& o : nl.outputs()) load[o.node] += lib.port_cap();
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nl.node(id);
    if (is_gate(g.kind)) {
      const CellParams& p = lib.params(g.kind);
      gate_delay_[id] = p.intrinsic + p.slope * load[id];
    }
  }

  // Initialize: inputs at 0, constants at their value, gates evaluated in
  // topological order so the circuit starts settled.
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nl.node(id);
    switch (g.kind) {
      case CellKind::input: values_[id] = Trit::zero; break;
      case CellKind::const0: values_[id] = Trit::zero; break;
      case CellKind::const1: values_[id] = Trit::one; break;
      default:
        values_[id] = cell_eval(g.kind, values_[g.in[0]], values_[g.in[1]],
                                values_[g.in[2]]);
    }
    waves_[id].push_back(WaveEvent{0.0, values_[id]});
  }
}

void EventSimulator::set_input(std::size_t input_idx, Trit value,
                               double time) {
  assert(input_idx < nl_->inputs().size());
  schedule(nl_->inputs()[input_idx], value, time);
}

void EventSimulator::schedule(NodeId node, Trit value, double time) {
  // Inertial delay: a newer scheduled value supersedes the pending one.
  pending_time_[node] = time;
  pending_value_[node] = value;
  if (!has_pending_[node]) {
    has_pending_[node] = true;
  }
  queue_.emplace(time, node);
}

void EventSimulator::commit(NodeId node, Trit value, double time) {
  if (values_[node] == value) return;
  values_[node] = value;
  waves_[node].push_back(WaveEvent{time, value});
  for (const NodeId f : fanout_[node]) {
    const GateNode& g = nl_->node(f);
    const Trit next = cell_eval(g.kind, values_[g.in[0]], values_[g.in[1]],
                                values_[g.in[2]]);
    schedule(f, next, time + gate_delay_[f]);
  }
}

double EventSimulator::run() {
  double last_change = 0.0;
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    const double t = it->first;
    const NodeId node = it->second;
    queue_.erase(it);
    if (!has_pending_[node] || pending_time_[node] != t) {
      continue;  // superseded by a later (inertial) event
    }
    has_pending_[node] = false;
    const Trit v = pending_value_[node];
    if (values_[node] != v) last_change = t;
    commit(node, v, t);
  }
  return last_change;
}

std::size_t EventSimulator::transition_count(NodeId id) const {
  return waves_[id].size() - 1;
}

void EventSimulator::clear_waveforms(double time) {
  for (NodeId id = 0; id < waves_.size(); ++id) {
    waves_[id].assign(1, WaveEvent{time, values_[id]});
  }
}

bool EventSimulator::glitch_free() const {
  for (const Waveform& w : waves_) {
    // Accept waveforms of the form v* M* u* (values may start at M after a
    // baseline reset): at most two value changes, and if there are two, the
    // middle value must be M. Excludes stable->stable->stable bounces and
    // repeated excursions through M.
    std::size_t changes = 0;
    Trit middle = Trit::meta;
    for (std::size_t i = 1; i < w.size(); ++i) {
      if (w[i].value == w[i - 1].value) continue;
      ++changes;
      if (changes == 1) middle = w[i].value;
    }
    if (changes > 2) return false;
    if (changes == 2 && !is_meta(middle)) return false;
  }
  return true;
}

}  // namespace mcsn
