#pragma once
// Netlist optimization passes.
//
// IMPORTANT MC CAVEAT (paper Sec. 6): general Boolean optimization can
// DESTROY metastability-containment — two Boolean-equivalent circuits need
// not be ternary-equivalent (e.g. dropping the consensus term of a cmux, or
// the paper's footnote-2 formula). The passes here are therefore restricted
// to rewrites that preserve the circuit function *per node over the ternary
// domain*:
//
//   * constant folding incl. Kleene-valid identities
//     (x & 1 = x, x & 0 = 0, x | 0 = x, x | 1 = 1 — valid for x = M too),
//   * common subexpression elimination by structural hashing (commutative
//     inputs normalized),
//   * double-inverter elimination (inv(inv(x)) = x, exact in Kleene logic),
//   * dead node elimination.
//
// Whole-circuit ternary equivalence after optimization is verified in the
// test suite (and the "Boolean-equivalent but ternary-different" trap is
// demonstrated in equiv_test.cpp).

#include <cstddef>

#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct OptOptions {
  bool constant_fold = true;
  bool cse = true;
  bool dce = true;
};

struct OptResult {
  Netlist netlist;
  std::size_t folded = 0;   // gates replaced by constants/identities
  std::size_t merged = 0;   // duplicates merged by CSE
  std::size_t removed = 0;  // dead gates eliminated
};

/// Applies the enabled passes (iterating folding+CSE to a fixed point,
/// then one DCE sweep). Input order and output order/names are preserved.
[[nodiscard]] OptResult optimize(const Netlist& nl, const OptOptions& opt = {});

}  // namespace mcsn
