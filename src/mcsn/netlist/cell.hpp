#pragma once
// Standard-cell vocabulary for gate-level netlists.
//
// The paper's metastability-containing circuits are restricted to INV, AND2,
// OR2 — cells whose silicon behavior provably equals the metastable closure
// of their Boolean function (NanGate 45 nm documentation; paper Sec. 6).
// The extended cells are provided for the *non-containing* Bin-comp baseline
// and for "transistor-level optimization" ablations; their ternary semantics
// are likewise the closure of their Boolean function, which holds for
// single-stage CMOS gates (AOI/OAI) and is the standard modeling assumption.

#include <array>
#include <cstdint>
#include <string_view>

#include "mcsn/core/packed.hpp"
#include "mcsn/core/trit.hpp"

namespace mcsn {

enum class CellKind : std::uint8_t {
  input,   // primary input (no fanin)
  const0,  // tie-low
  const1,  // tie-high
  inv,     // !a
  and2,    // a & b
  or2,     // a | b
  nand2,   // !(a & b)
  nor2,    // !(a | b)
  xor2,    // a ^ b
  xnor2,   // !(a ^ b)
  mux2,    // s ? b : a      (inputs a, b, s)
  aoi21,   // !((a & b) | c)
  oai21,   // !((a | b) & c)
  ao21,    // (a & b) | c
  oa21,    // (a | b) & c
};

inline constexpr int kCellKindCount = 15;

/// Number of fanin pins (0 for input/constants).
[[nodiscard]] constexpr int cell_arity(CellKind k) noexcept {
  switch (k) {
    case CellKind::input:
    case CellKind::const0:
    case CellKind::const1: return 0;
    case CellKind::inv: return 1;
    case CellKind::mux2:
    case CellKind::aoi21:
    case CellKind::oai21:
    case CellKind::ao21:
    case CellKind::oa21: return 3;
    default: return 2;
  }
}

/// True for cells the MC design style may use (metastable closure verified
/// gate behavior in the model of [6]).
[[nodiscard]] constexpr bool is_mc_safe(CellKind k) noexcept {
  switch (k) {
    case CellKind::input:
    case CellKind::const0:
    case CellKind::const1:
    case CellKind::inv:
    case CellKind::and2:
    case CellKind::or2: return true;
    default: return false;
  }
}

/// True for logic cells (anything with fanin).
[[nodiscard]] constexpr bool is_gate(CellKind k) noexcept {
  return cell_arity(k) > 0;
}

[[nodiscard]] std::string_view cell_name(CellKind k) noexcept;

/// NanGate-style library cell name (e.g. "AND2_X1").
[[nodiscard]] std::string_view cell_lib_name(CellKind k) noexcept;

/// Ternary evaluation: the metastable closure of the cell's Boolean function.
/// For every cell here the closure equals the simple composition of Kleene
/// operators because each input pin is read exactly once.
[[nodiscard]] constexpr Trit cell_eval(CellKind k, Trit a, Trit b,
                                       Trit c) noexcept {
  switch (k) {
    case CellKind::const0: return Trit::zero;
    case CellKind::const1: return Trit::one;
    case CellKind::input: return Trit::meta;  // unresolved; callers override
    case CellKind::inv: return trit_not(a);
    case CellKind::and2: return trit_and(a, b);
    case CellKind::or2: return trit_or(a, b);
    case CellKind::nand2: return trit_not(trit_and(a, b));
    case CellKind::nor2: return trit_not(trit_or(a, b));
    case CellKind::xor2: return trit_xor(a, b);
    case CellKind::xnor2: return trit_not(trit_xor(a, b));
    case CellKind::mux2: return trit_mux(a, b, c);
    case CellKind::aoi21: return trit_not(trit_or(trit_and(a, b), c));
    case CellKind::oai21: return trit_not(trit_and(trit_or(a, b), c));
    case CellKind::ao21: return trit_or(trit_and(a, b), c);
    case CellKind::oa21: return trit_and(trit_or(a, b), c);
  }
  return Trit::meta;
}

/// Boolean evaluation on stable inputs.
[[nodiscard]] constexpr bool cell_eval_bool(CellKind k, bool a, bool b,
                                            bool c) noexcept {
  return to_bool(
      cell_eval(k, to_trit(a), to_trit(b), to_trit(c)));
}

/// 64-lane packed evaluation; semantics identical to cell_eval per lane.
[[nodiscard]] constexpr PackedTrit cell_eval_packed(CellKind k, PackedTrit a,
                                                    PackedTrit b,
                                                    PackedTrit c) noexcept {
  switch (k) {
    case CellKind::const0: return PackedTrit::splat(Trit::zero);
    case CellKind::const1: return PackedTrit::splat(Trit::one);
    case CellKind::input: return PackedTrit::splat(Trit::meta);
    case CellKind::inv: return packed_not(a);
    case CellKind::and2: return packed_and(a, b);
    case CellKind::or2: return packed_or(a, b);
    case CellKind::nand2: return packed_not(packed_and(a, b));
    case CellKind::nor2: return packed_not(packed_or(a, b));
    case CellKind::xor2: return packed_xor(a, b);
    case CellKind::xnor2: return packed_not(packed_xor(a, b));
    case CellKind::mux2: return packed_mux(a, b, c);
    case CellKind::aoi21: return packed_not(packed_or(packed_and(a, b), c));
    case CellKind::oai21: return packed_not(packed_and(packed_or(a, b), c));
    case CellKind::ao21: return packed_or(packed_and(a, b), c);
    case CellKind::oa21: return packed_and(packed_or(a, b), c);
  }
  return PackedTrit::splat(Trit::meta);
}

/// 64*W-lane wide evaluation; semantics identical to cell_eval per lane.
/// The switch happens once per gate; the per-word rail loops vectorize.
template <int W>
[[nodiscard]] constexpr WidePackedTrit<W> cell_eval_wide(
    CellKind k, const WidePackedTrit<W>& a, const WidePackedTrit<W>& b,
    const WidePackedTrit<W>& c) noexcept {
  switch (k) {
    case CellKind::const0: return WidePackedTrit<W>::splat(Trit::zero);
    case CellKind::const1: return WidePackedTrit<W>::splat(Trit::one);
    case CellKind::input: return WidePackedTrit<W>::splat(Trit::meta);
    case CellKind::inv: return wide_not(a);
    case CellKind::and2: return wide_and(a, b);
    case CellKind::or2: return wide_or(a, b);
    case CellKind::nand2: return wide_not(wide_and(a, b));
    case CellKind::nor2: return wide_not(wide_or(a, b));
    case CellKind::xor2: return wide_xor(a, b);
    case CellKind::xnor2: return wide_not(wide_xor(a, b));
    case CellKind::mux2: return wide_mux(a, b, c);
    case CellKind::aoi21: return wide_not(wide_or(wide_and(a, b), c));
    case CellKind::oai21: return wide_not(wide_and(wide_or(a, b), c));
    case CellKind::ao21: return wide_or(wide_and(a, b), c);
    case CellKind::oa21: return wide_and(wide_or(a, b), c);
  }
  return WidePackedTrit<W>::splat(Trit::meta);
}

}  // namespace mcsn
