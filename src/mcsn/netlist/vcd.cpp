#include "mcsn/netlist/vcd.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace mcsn {

namespace {

char vcd_char(Trit t) {
  switch (t) {
    case Trit::zero: return '0';
    case Trit::one: return '1';
    default: return 'x';
  }
}

std::string vcd_id(std::size_t i) {
  // Printable short identifiers: base-94 over '!'..'~'.
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + (i % 94)));
    i /= 94;
  } while (i != 0);
  return s;
}

}  // namespace

void write_vcd(std::ostream& os, const Netlist& nl,
               const EventSimulator& sim) {
  struct Signal {
    NodeId node;
    std::string name;
    std::string id;
  };
  std::vector<Signal> sigs;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    sigs.push_back(Signal{nl.inputs()[i], nl.input_name(i), ""});
  }
  for (const OutputPort& o : nl.outputs()) {
    sigs.push_back(Signal{o.node, o.name, ""});
  }
  for (std::size_t i = 0; i < sigs.size(); ++i) sigs[i].id = vcd_id(i);

  os << "$timescale 1ps $end\n$scope module "
     << (nl.name().empty() ? "netlist" : nl.name()) << " $end\n";
  for (const Signal& s : sigs) {
    os << "$var wire 1 " << s.id << " " << s.name << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Merge events by time.
  std::map<double, std::vector<std::pair<std::string, Trit>>> timeline;
  for (const Signal& s : sigs) {
    for (const WaveEvent& e : sim.waveform(s.node)) {
      timeline[e.time].push_back({s.id, e.value});
    }
  }
  for (const auto& [time, changes] : timeline) {
    os << "#" << static_cast<long long>(time + 0.5) << "\n";
    for (const auto& [id, v] : changes) os << vcd_char(v) << id << "\n";
  }
}

std::string to_vcd(const Netlist& nl, const EventSimulator& sim) {
  std::ostringstream ss;
  write_vcd(ss, nl, sim);
  return ss.str();
}

}  // namespace mcsn
