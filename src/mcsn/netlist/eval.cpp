#include "mcsn/netlist/eval.hpp"

#include <cassert>

namespace mcsn {

namespace {

template <typename V, V (*EvalFn)(CellKind, V, V, V), V (*Splat)(Trit)>
void eval_pass(const Netlist& nl, std::span<const V> inputs,
               std::vector<V>& values) {
  assert(inputs.size() == nl.inputs().size());
  values.resize(nl.node_count());
  std::size_t next_input = 0;
  const auto& nodes = nl.nodes();
  for (NodeId id = 0; id < nodes.size(); ++id) {
    const GateNode& g = nodes[id];
    switch (g.kind) {
      case CellKind::input: values[id] = inputs[next_input++]; break;
      case CellKind::const0: values[id] = Splat(Trit::zero); break;
      case CellKind::const1: values[id] = Splat(Trit::one); break;
      default:
        values[id] =
            EvalFn(g.kind, values[g.in[0]], values[g.in[1]], values[g.in[2]]);
    }
  }
}

Trit splat_trit(Trit t) { return t; }

constexpr CompileOptions retain_all() {
  CompileOptions opt;
  opt.retain_all_nodes = true;
  // Creation order matches the NodeId-indexed slot layout, keeping operand
  // locality for the narrow scalar/64-lane replay these wrappers serve.
  opt.levelize = false;
  return opt;
}

}  // namespace

std::vector<Trit> evaluate_nodes(const Netlist& nl,
                                 std::span<const Trit> inputs) {
  std::vector<Trit> values;
  eval_pass<Trit, &cell_eval, &splat_trit>(nl, inputs, values);
  return values;
}

Word evaluate(const Netlist& nl, std::span<const Trit> inputs) {
  const std::vector<Trit> values = evaluate_nodes(nl, inputs);
  Word out(nl.outputs().size());
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    out[i] = values[nl.outputs()[i].node];
  }
  return out;
}

Word evaluate(const Netlist& nl, const Word& inputs) {
  std::vector<Trit> in(inputs.begin(), inputs.end());
  return evaluate(nl, in);
}

NodeWalkEvaluator::NodeWalkEvaluator(const Netlist& nl) : nl_(&nl) {
  values_.reserve(nl.node_count());
}

std::span<const Trit> NodeWalkEvaluator::run(std::span<const Trit> inputs) {
  eval_pass<Trit, &cell_eval, &splat_trit>(*nl_, inputs, values_);
  return values_;
}

void NodeWalkEvaluator::run_outputs(std::span<const Trit> inputs, Word& out) {
  run(inputs);
  const auto& outs = nl_->outputs();
  if (out.size() != outs.size()) out = Word(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out[i] = values_[outs[i].node];
  }
}

Evaluator::Evaluator(const Netlist& nl)
    : nl_(&nl),
      prog_(std::make_shared<const CompiledProgram>(
          CompiledProgram::compile(nl, retain_all()))),
      exec_(*prog_) {}

std::span<const Trit> Evaluator::run(std::span<const Trit> inputs) {
  return exec_.run(inputs);
}

void Evaluator::run_outputs(std::span<const Trit> inputs, Word& out) {
  const std::span<const Trit> values = exec_.run(inputs);
  const auto& outs = nl_->outputs();
  if (out.size() != outs.size()) out = Word(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out[i] = values[outs[i].node];
  }
}

PackedEvaluator::PackedEvaluator(const Netlist& nl)
    : nl_(&nl),
      prog_(std::make_shared<const CompiledProgram>(
          CompiledProgram::compile(nl, retain_all()))),
      exec_(*prog_) {}

std::span<const PackedTrit> PackedEvaluator::run(
    std::span<const PackedTrit> inputs) {
  return exec_.run(inputs);
}

Trit PackedEvaluator::output_lane(std::size_t o, int lane) const {
  return exec_.values()[nl_->outputs()[o].node].lane(lane);
}

}  // namespace mcsn
