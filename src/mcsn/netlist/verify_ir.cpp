#include "mcsn/netlist/verify_ir.hpp"

#include <cstddef>
#include <string>

#include "mcsn/netlist/cell.hpp"

namespace mcsn {
namespace {

std::string slot_str(std::uint32_t slot) { return std::to_string(slot); }

Status fail(const char* token, std::string detail) {
  return Status::internal(std::string("verify_ir: ") + token + ": " +
                          std::move(detail));
}

/// Who wrote a slot, for double-write diagnostics. Encoded as:
/// kUnwritten, kInput + i, kConst + i, or kOp + i.
constexpr std::size_t kUnwritten = static_cast<std::size_t>(-1);

std::string writer_str(std::size_t tag, const IrImage& ir) {
  if (tag < ir.input_slots.size()) {
    return "input #" + std::to_string(tag);
  }
  tag -= ir.input_slots.size();
  if (tag < ir.const_inits.size()) {
    return "const init #" + std::to_string(tag);
  }
  tag -= ir.const_inits.size();
  return "op #" + std::to_string(tag);
}

}  // namespace

IrImage ir_image_of(const CompiledProgram& prog) {
  IrImage ir;
  ir.slot_count = prog.slot_count();
  ir.ops.assign(prog.ops().begin(), prog.ops().end());
  for (std::size_t l = 0; l + 1 <= prog.level_count(); ++l) {
    if (ir.level_offsets.empty()) ir.level_offsets.push_back(0);
    ir.level_offsets.push_back(ir.level_offsets.back() +
                               prog.level_ops(l).size());
  }
  ir.input_slots.assign(prog.input_slots().begin(), prog.input_slots().end());
  ir.output_slots.assign(prog.output_slots().begin(),
                         prog.output_slots().end());
  ir.const_inits.assign(prog.const_inits().begin(), prog.const_inits().end());
  return ir;
}

Status verify_ir(const IrImage& ir, const VerifyIrOptions& opt) {
  const std::size_t n_ops = ir.ops.size();

  // --- level-structure: level_offsets is a monotone partition of ops.
  if (ir.level_offsets.empty()) {
    if (opt.require_levelized) {
      return fail("level-structure",
                  "program is not levelized but a levelized schedule was "
                  "required");
    }
  } else {
    if (ir.level_offsets.front() != 0) {
      return fail("level-structure",
                  "level_offsets[0] = " +
                      std::to_string(ir.level_offsets.front()) + ", want 0");
    }
    if (ir.level_offsets.back() != n_ops) {
      return fail("level-structure",
                  "level_offsets.back() = " +
                      std::to_string(ir.level_offsets.back()) + ", want " +
                      std::to_string(n_ops) + " (the op count)");
    }
    for (std::size_t l = 0; l + 1 < ir.level_offsets.size(); ++l) {
      if (ir.level_offsets[l] > ir.level_offsets[l + 1]) {
        return fail("level-structure",
                    "level_offsets not monotone at level " +
                        std::to_string(l));
      }
    }
  }

  // --- slot-bounds: every slot index anyone will dereference is in range.
  // Note the executors read all three operand pins regardless of arity
  // (branch-free replay), so even unused pins must be in bounds.
  for (std::size_t i = 0; i < ir.input_slots.size(); ++i) {
    const std::uint32_t s = ir.input_slots[i];
    if (s != CompiledProgram::kNoSlot && s >= ir.slot_count) {
      return fail("slot-bounds", "input #" + std::to_string(i) + " slot " +
                                     slot_str(s) + " >= slot_count " +
                                     std::to_string(ir.slot_count));
    }
  }
  for (std::size_t i = 0; i < ir.const_inits.size(); ++i) {
    if (ir.const_inits[i].slot >= ir.slot_count) {
      return fail("slot-bounds",
                  "const init #" + std::to_string(i) + " slot " +
                      slot_str(ir.const_inits[i].slot) + " >= slot_count " +
                      std::to_string(ir.slot_count));
    }
  }
  for (std::size_t o = 0; o < ir.output_slots.size(); ++o) {
    if (ir.output_slots[o] >= ir.slot_count) {
      return fail("slot-bounds", "output #" + std::to_string(o) + " slot " +
                                     slot_str(ir.output_slots[o]) +
                                     " >= slot_count " +
                                     std::to_string(ir.slot_count));
    }
  }
  for (std::size_t k = 0; k < n_ops; ++k) {
    const CompiledOp& op = ir.ops[k];
    if (op.out >= ir.slot_count) {
      return fail("slot-bounds", "op #" + std::to_string(k) + " out slot " +
                                     slot_str(op.out) + " >= slot_count " +
                                     std::to_string(ir.slot_count));
    }
    for (int j = 0; j < 3; ++j) {
      if (op.in[j] >= ir.slot_count) {
        return fail("slot-bounds",
                    "op #" + std::to_string(k) + " operand pin " +
                        std::to_string(j) + " slot " + slot_str(op.in[j]) +
                        " >= slot_count " + std::to_string(ir.slot_count));
      }
    }
  }

  // --- bad-op: the instruction stream holds gates only — input/const
  // kinds have no evaluation rule in the backends.
  for (std::size_t k = 0; k < n_ops; ++k) {
    if (!is_gate(ir.ops[k].kind)) {
      return fail("bad-op", "op #" + std::to_string(k) +
                                " has non-gate kind " +
                                std::string(cell_name(ir.ops[k].kind)));
    }
  }

  // --- double-write: each slot has at most one writer across live
  // inputs, const inits and op destinations.
  std::vector<std::size_t> writer(ir.slot_count, kUnwritten);
  const auto record_write = [&](std::uint32_t slot,
                                std::size_t tag) -> Status {
    if (writer[slot] != kUnwritten) {
      return fail("double-write", "slot " + slot_str(slot) + " written by " +
                                      writer_str(writer[slot], ir) +
                                      " and " + writer_str(tag, ir));
    }
    writer[slot] = tag;
    return Status();
  };
  for (std::size_t i = 0; i < ir.input_slots.size(); ++i) {
    if (ir.input_slots[i] == CompiledProgram::kNoSlot) continue;
    if (Status s = record_write(ir.input_slots[i], i); !s.ok()) return s;
  }
  for (std::size_t i = 0; i < ir.const_inits.size(); ++i) {
    if (Status s = record_write(ir.const_inits[i].slot,
                                ir.input_slots.size() + i);
        !s.ok()) {
      return s;
    }
  }
  for (std::size_t k = 0; k < n_ops; ++k) {
    if (Status s = record_write(
            ir.ops[k].out, ir.input_slots.size() + ir.const_inits.size() + k);
        !s.ok()) {
      return s;
    }
  }

  // --- dangling-read / operand-order: walking the stream in schedule
  // order, every operand an op actually reads (per cell_arity) must
  // already hold a value — written by an input, a const init, or an
  // earlier op. A read of a slot nobody ever writes is a dangling read; a
  // read of a slot written only later is a schedule-order violation.
  std::vector<char> written(ir.slot_count, 0);
  for (const std::uint32_t s : ir.input_slots) {
    if (s != CompiledProgram::kNoSlot) written[s] = 1;
  }
  for (const CompiledProgram::ConstInit& c : ir.const_inits) {
    written[c.slot] = 1;
  }
  for (std::size_t k = 0; k < n_ops; ++k) {
    const CompiledOp& op = ir.ops[k];
    const int arity = cell_arity(op.kind);
    for (int j = 0; j < arity; ++j) {
      if (written[op.in[j]]) continue;
      if (writer[op.in[j]] == kUnwritten) {
        return fail("dangling-read",
                    "op #" + std::to_string(k) + " reads slot " +
                        slot_str(op.in[j]) + ", which is never written");
      }
      return fail("operand-order",
                  "op #" + std::to_string(k) + " reads slot " +
                      slot_str(op.in[j]) + " before its writer " +
                      writer_str(writer[op.in[j]], ir) + " runs");
    }
    written[op.out] = 1;
  }

  // --- operand-level: in a levelized schedule, an op's operands must come
  // from strictly earlier levels (inputs/consts count as level 0, ops in
  // bucket l produce level l + 1). Same-level reads can pass the stream-
  // order check above yet still break level_ops() parallel slicing, which
  // assumes ops within one level are mutually independent.
  if (!ir.level_offsets.empty()) {
    std::vector<std::size_t> slot_level(ir.slot_count, 0);
    for (std::size_t l = 0; l + 1 < ir.level_offsets.size(); ++l) {
      for (std::size_t k = ir.level_offsets[l]; k < ir.level_offsets[l + 1];
           ++k) {
        slot_level[ir.ops[k].out] = l + 1;
      }
    }
    for (std::size_t l = 0; l + 1 < ir.level_offsets.size(); ++l) {
      for (std::size_t k = ir.level_offsets[l]; k < ir.level_offsets[l + 1];
           ++k) {
        const CompiledOp& op = ir.ops[k];
        const int arity = cell_arity(op.kind);
        for (int j = 0; j < arity; ++j) {
          if (slot_level[op.in[j]] > l) {
            return fail("operand-level",
                        "op #" + std::to_string(k) + " in level " +
                            std::to_string(l) + " reads slot " +
                            slot_str(op.in[j]) + " written in level " +
                            std::to_string(slot_level[op.in[j]]) +
                            " (want a strictly earlier level)");
          }
        }
      }
    }
  }

  // --- unwritten-output / unwritten-slot: declared outputs must carry a
  // value, and dense renumbering means every slot has a writer — a
  // writer-less slot is a renumbering bug (or a mutation).
  for (std::size_t o = 0; o < ir.output_slots.size(); ++o) {
    if (writer[ir.output_slots[o]] == kUnwritten) {
      return fail("unwritten-output",
                  "output #" + std::to_string(o) + " slot " +
                      slot_str(ir.output_slots[o]) + " has no writer");
    }
  }
  for (std::size_t s = 0; s < ir.slot_count; ++s) {
    if (writer[s] == kUnwritten) {
      return fail("unwritten-slot",
                  "slot " + std::to_string(s) +
                      " has no writer (dense renumbering left a hole)");
    }
  }

  // --- orphan-op: with dead-node elimination on, every op must be
  // transitively reachable from a declared output. One reverse pass
  // suffices — the stream is a topological order, so an op's readers all
  // come later.
  if (opt.require_reachable) {
    std::vector<char> needed(ir.slot_count, 0);
    for (const std::uint32_t s : ir.output_slots) needed[s] = 1;
    for (std::size_t k = n_ops; k-- > 0;) {
      const CompiledOp& op = ir.ops[k];
      if (!needed[op.out]) continue;
      const int arity = cell_arity(op.kind);
      for (int j = 0; j < arity; ++j) needed[op.in[j]] = 1;
    }
    for (std::size_t k = 0; k < n_ops; ++k) {
      if (!needed[ir.ops[k].out]) {
        return fail("orphan-op",
                    "op #" + std::to_string(k) + " (out slot " +
                        slot_str(ir.ops[k].out) +
                        ") is unreachable from every declared output, but "
                        "dead-node elimination was enabled");
      }
    }
  }

  return Status();
}

Status verify_ir(const CompiledProgram& prog, const VerifyIrOptions& opt) {
  return verify_ir(ir_image_of(prog), opt);
}

}  // namespace mcsn
