#pragma once
// Static timing analysis over a netlist with the linear load-dependent delay
// model of CellLibrary, plus simple unit-depth computation.

#include <vector>

#include "mcsn/netlist/library.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct TimingReport {
  double critical_delay = 0.0;          // ps (max arrival over outputs)
  std::vector<double> arrival;          // per node, ps
  std::vector<NodeId> critical_path;    // input ... output node ids
};

/// Full STA: arrival(gate) = max over fanins + intrinsic + slope*load, where
/// load sums the input caps of driven pins (+ port cap per driven output).
[[nodiscard]] TimingReport analyze_timing(const Netlist& nl,
                                          const CellLibrary& lib);

/// Logic depth in gate levels (inputs at level 0); equals analyze_timing
/// with the unit library but cheaper.
[[nodiscard]] std::size_t logic_depth(const Netlist& nl);

/// Total cell area under `lib`.
[[nodiscard]] double total_area(const Netlist& nl, const CellLibrary& lib);

/// Resolution latency: the worst-case time from a *late change of one
/// primary input* (e.g. a metastable bit finally resolving) to the last
/// affected output settling — i.e. the longest path from that input to any
/// output under the library's delay model. In the clock-synchronization
/// application this bounds how close to the deadline a marginal TDC bit may
/// resolve and still yield stable sorted outputs.
[[nodiscard]] double resolution_latency(const Netlist& nl,
                                        const CellLibrary& lib,
                                        std::size_t input_idx);

/// Maximum resolution latency over all inputs (== critical delay).
[[nodiscard]] double worst_resolution_latency(const Netlist& nl,
                                              const CellLibrary& lib);

}  // namespace mcsn
