#include "mcsn/netlist/library.hpp"

namespace mcsn {

namespace {

std::array<CellParams, kCellKindCount> make_unit_cells() {
  std::array<CellParams, kCellKindCount> cells{};
  for (int k = 0; k < kCellKindCount; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (is_gate(kind)) cells[k] = CellParams{1.0, 0.0, 1.0, 0.0};
  }
  return cells;
}

std::array<CellParams, kCellKindCount> make_paper_cells() {
  std::array<CellParams, kCellKindCount> cells{};
  auto set = [&cells](CellKind k, double area, double cap, double intrinsic,
                      double slope) {
    cells[static_cast<int>(k)] = CellParams{area, cap, intrinsic, slope};
  };
  // MC subset: areas derived exactly from the paper's Table 7 (see DESIGN.md);
  // delay parameters fitted by tools/calibrate_delay --sweep against the
  // four published Table 7 delays (119/362/516/805 ps); the fit reproduces
  // them within 2.9% maximum relative error.
  set(CellKind::inv, 0.8703, 1.0, 4.0, 2.0);
  set(CellKind::and2, 1.4875, 1.0, 36.0, 2.0);
  set(CellKind::or2, 1.4875, 1.0, 36.0, 2.0);
  // Extended cells (Bin-comp baseline and AOI ablations). Areas roughly match
  // NanGate 45 nm relative sizes; delays scaled by logical effort relative to
  // the fitted AND2/OR2 point.
  set(CellKind::nand2, 1.064, 1.0, 26.0, 2.0);
  set(CellKind::nor2, 1.064, 1.2, 28.0, 2.2);
  set(CellKind::xor2, 2.128, 1.6, 44.0, 2.4);
  set(CellKind::xnor2, 2.128, 1.6, 44.0, 2.4);
  set(CellKind::mux2, 2.128, 1.4, 42.0, 2.4);
  set(CellKind::aoi21, 1.596, 1.3, 32.0, 2.2);
  set(CellKind::oai21, 1.596, 1.3, 32.0, 2.2);
  set(CellKind::ao21, 1.862, 1.2, 40.0, 2.2);
  set(CellKind::oa21, 1.862, 1.2, 40.0, 2.2);
  return cells;
}

}  // namespace

const CellLibrary& CellLibrary::paper_calibrated() {
  static const CellLibrary lib("nangate45-mc-calibrated", make_paper_cells(),
                               1.5);
  return lib;
}

const CellLibrary& CellLibrary::unit() {
  static const CellLibrary lib("unit", make_unit_cells(), 0.0);
  return lib;
}

}  // namespace mcsn
