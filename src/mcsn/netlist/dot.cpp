#include "mcsn/netlist/dot.hpp"

#include <ostream>
#include <sstream>

namespace mcsn {

void write_dot(std::ostream& os, const Netlist& nl) {
  os << "digraph \"" << (nl.name().empty() ? "netlist" : nl.name())
     << "\" {\n  rankdir=LR;\n";
  std::size_t next_input = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateNode& g = nl.node(id);
    os << "  n" << id;
    if (g.kind == CellKind::input) {
      os << " [shape=diamond,label=\"" << nl.input_name(next_input++)
         << "\"];\n";
    } else {
      os << " [shape=box,label=\"" << cell_name(g.kind) << "\"];\n";
    }
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      os << "  n" << g.in[pin] << " -> n" << id << ";\n";
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const OutputPort& o = nl.outputs()[i];
    os << "  o" << i << " [shape=doublecircle,label=\"" << o.name << "\"];\n";
    os << "  n" << o.node << " -> o" << i << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const Netlist& nl) {
  std::ostringstream ss;
  write_dot(ss, nl);
  return ss.str();
}

}  // namespace mcsn
