#include "mcsn/netlist/equiv.hpp"

#include <cassert>
#include <cmath>

#include "mcsn/netlist/compile.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {

namespace {

// Decodes combination index `v` into an input word over the given radix
// alphabet (radix 2: {0,1}; radix 3: {0,1,M}).
Word decode_input(std::uint64_t v, std::size_t width, int radix) {
  Word w(width);
  for (std::size_t i = 0; i < width; ++i) {
    w[i] = trit_from_index(static_cast<int>(v % static_cast<unsigned>(radix)));
    v /= static_cast<unsigned>(radix);
  }
  return w;
}

}  // namespace

std::string EquivMismatch::describe() const {
  return "input=" + input.str() + " a=" + output_a.str() +
         " b=" + output_b.str();
}

std::optional<EquivMismatch> check_equivalence(const Netlist& a,
                                               const Netlist& b,
                                               const EquivOptions& opt) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  const std::size_t width = a.inputs().size();
  const std::size_t outs = a.outputs().size();
  const int radix = opt.semantics == EquivSemantics::boolean_only ? 2 : 3;

  // Total combination count, saturating.
  std::uint64_t total = 1;
  bool overflow = false;
  for (std::size_t i = 0; i < width && !overflow; ++i) {
    if (total > opt.exhaustive_bound) overflow = true;
    total *= static_cast<unsigned>(radix);
  }
  const bool exhaustive = !overflow && total <= opt.exhaustive_bound;

  // Both netlists compile to dense, dead-node-eliminated programs executed
  // 256 vectors per pass by the wide compiled engine.
  const CompiledProgram pa = CompiledProgram::compile(a);
  const CompiledProgram pb = CompiledProgram::compile(b);
  CompiledExecutor<Packed256Backend> eva(pa);
  CompiledExecutor<Packed256Backend> evb(pb);
  constexpr int kLanes = Packed256Backend::kLanes;
  std::vector<PackedTrit256> inputs(width);
  std::vector<Word> lane_words(kLanes, Word(width));

  Xoshiro256 rng(opt.seed);
  const std::uint64_t n_vectors = exhaustive ? total : opt.random_samples;

  std::uint64_t done = 0;
  while (done < n_vectors) {
    const int lanes = static_cast<int>(
        std::min<std::uint64_t>(kLanes, n_vectors - done));
    for (int lane = 0; lane < lanes; ++lane) {
      Word w(width);
      if (exhaustive) {
        w = decode_input(done + static_cast<std::uint64_t>(lane), width,
                         radix);
      } else {
        for (std::size_t i = 0; i < width; ++i) {
          w[i] = trit_from_index(
              static_cast<int>(rng.below(static_cast<unsigned>(radix))));
        }
      }
      lane_words[static_cast<std::size_t>(lane)] = w;
      for (std::size_t i = 0; i < width; ++i) {
        inputs[i].set_lane(lane, w[i]);
      }
    }
    eva.run(inputs);
    evb.run(inputs);
    for (int lane = 0; lane < lanes; ++lane) {
      for (std::size_t o = 0; o < outs; ++o) {
        if (eva.output_lane(o, lane) != evb.output_lane(o, lane)) {
          Word oa(outs), ob(outs);
          for (std::size_t k = 0; k < outs; ++k) {
            oa[k] = eva.output_lane(k, lane);
            ob[k] = evb.output_lane(k, lane);
          }
          return EquivMismatch{lane_words[static_cast<std::size_t>(lane)], oa,
                               ob};
        }
      }
    }
    done += static_cast<std::uint64_t>(lanes);
  }
  return std::nullopt;
}

}  // namespace mcsn
