#include "mcsn/netlist/verilog_in.hpp"

#include <cctype>
#include <map>
#include <vector>

namespace mcsn {

namespace {

struct Token {
  std::string text;
  std::size_t line = 1;
  bool is_end = false;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.is_end = true;
      return t;
    }
    const char c = text_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\'') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '\'')) {
        ++pos_;
      }
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void skip() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

std::optional<CellKind> kind_from_lib_name(std::string_view name) {
  for (int k = 0; k < kCellKindCount; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (is_gate(kind) && cell_lib_name(kind) == name) return kind;
  }
  return std::nullopt;
}

// Pin name -> fanin slot for each cell family; output pins return -1.
std::optional<int> pin_slot(CellKind kind, const std::string& pin,
                            bool* is_output) {
  *is_output = pin == "Z" || pin == "ZN";
  if (*is_output) return -1;
  switch (cell_arity(kind)) {
    case 1:
      if (pin == "A") return 0;
      return std::nullopt;
    case 2:
      if (pin == "A1") return 0;
      if (pin == "A2") return 1;
      return std::nullopt;
    default:
      if (kind == CellKind::mux2) {
        if (pin == "A") return 0;
        if (pin == "B") return 1;
        if (pin == "S") return 2;
        return std::nullopt;
      }
      if (pin == "B1") return 0;
      if (pin == "B2") return 1;
      if (pin == "A") return 2;
      return std::nullopt;
  }
}

struct Instance {
  CellKind kind = CellKind::inv;
  std::array<std::string, 3> in;
  std::string out;
  std::size_t line = 0;
};

struct Document {
  std::string module_name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;                  // declaration order
  std::map<std::string, bool> const_wires;           // wire x = 1'bV
  std::vector<Instance> instances;
  std::map<std::string, std::string> output_assign;  // output -> wire
};

class Parser {
 public:
  Parser(std::string_view text, VerilogError* error)
      : lex_(text), error_(error) {
    advance();
  }

  std::optional<Document> parse() {
    if (!expect("module")) return std::nullopt;
    doc_.module_name = cur_.text;
    advance();
    if (!expect("(")) return std::nullopt;
    while (cur_.text != ")") {
      if (cur_.is_end) {
        fail("unexpected EOF in port list");
        return std::nullopt;
      }
      advance();  // port names re-appear in input/output decls
    }
    advance();
    if (!expect(";")) return std::nullopt;

    while (cur_.text != "endmodule") {
      if (cur_.is_end) {
        fail("unexpected EOF in module body");
        return std::nullopt;
      }
      if (!statement()) return std::nullopt;
    }
    return doc_;
  }

 private:
  bool statement() {
    if (cur_.text == "input" || cur_.text == "output") {
      const bool is_input = cur_.text == "input";
      advance();
      const std::string name = cur_.text;
      advance();
      if (is_input) {
        doc_.inputs.push_back(name);
      } else {
        doc_.outputs.push_back(name);
      }
      return expect(";");
    }
    if (cur_.text == "wire") {
      advance();
      const std::string name = cur_.text;
      advance();
      if (cur_.text == "=") {
        advance();
        if (cur_.text == "1'b0") {
          doc_.const_wires[name] = false;
        } else if (cur_.text == "1'b1") {
          doc_.const_wires[name] = true;
        } else {
          return fail("expected 1'b0 or 1'b1");
        }
        advance();
      }
      return expect(";");
    }
    if (cur_.text == "assign") {
      advance();
      const std::string lhs = cur_.text;
      advance();
      if (!expect("=")) return false;
      doc_.output_assign[lhs] = cur_.text;
      advance();
      return expect(";");
    }
    // Cell instance: CELLNAME instname ( .PIN(net), ... );
    const auto kind = kind_from_lib_name(cur_.text);
    if (!kind) return fail("unknown cell '" + cur_.text + "'");
    Instance inst;
    inst.kind = *kind;
    inst.line = cur_.line;
    advance();  // cell name
    advance();  // instance name
    if (!expect("(")) return false;
    while (cur_.text != ")") {
      if (!expect(".")) return false;
      const std::string pin = cur_.text;
      advance();
      if (!expect("(")) return false;
      const std::string net = cur_.text;
      advance();
      if (!expect(")")) return false;
      if (cur_.text == ",") advance();
      bool is_output = false;
      const auto slot = pin_slot(inst.kind, pin, &is_output);
      if (is_output) {
        inst.out = net;
      } else if (slot) {
        inst.in[static_cast<std::size_t>(*slot)] = net;
      } else {
        return fail("unknown pin '" + pin + "'");
      }
    }
    advance();  // ')'
    if (!expect(";")) return false;
    if (inst.out.empty()) return fail("instance without output pin");
    doc_.instances.push_back(std::move(inst));
    return true;
  }

  void advance() { cur_ = lex_.next(); }

  bool expect(std::string_view text) {
    if (cur_.is_end || cur_.text != text) {
      return fail("expected '" + std::string(text) + "', got '" + cur_.text +
                  "'");
    }
    advance();
    return true;
  }

  bool fail(std::string msg) {
    if (error_) *error_ = VerilogError{cur_.line, std::move(msg)};
    return false;
  }

  Lexer lex_;
  Token cur_;
  VerilogError* error_;
  Document doc_;
};

}  // namespace

std::optional<Netlist> parse_verilog(std::string_view text,
                                     VerilogError* error) {
  Parser parser(text, error);
  const auto doc = parser.parse();
  if (!doc) return std::nullopt;

  Netlist nl(doc->module_name);
  std::map<std::string, NodeId> net;
  for (const std::string& in : doc->inputs) {
    net[in] = nl.add_input(in);
  }
  for (const auto& [name, value] : doc->const_wires) {
    net[name] = nl.constant(value);
  }

  // Topological emission of instances (Kahn-style worklist).
  std::vector<bool> done(doc->instances.size(), false);
  std::size_t remaining = doc->instances.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < doc->instances.size(); ++i) {
      if (done[i]) continue;
      const Instance& inst = doc->instances[i];
      const int arity = cell_arity(inst.kind);
      bool ready = true;
      for (int pin = 0; pin < arity; ++pin) {
        if (!net.count(inst.in[static_cast<std::size_t>(pin)])) ready = false;
      }
      if (!ready) continue;
      const NodeId a = net[inst.in[0]];
      const NodeId b = arity > 1 ? net[inst.in[1]] : 0;
      const NodeId c = arity > 2 ? net[inst.in[2]] : 0;
      net[inst.out] = nl.add_gate(inst.kind, a, b, c);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    if (error) {
      *error = VerilogError{0,
                            "combinational cycle or undriven net among "
                            "instances"};
    }
    return std::nullopt;
  }

  for (const std::string& out : doc->outputs) {
    const auto it = doc->output_assign.find(out);
    const std::string& src = it != doc->output_assign.end() ? it->second : out;
    const auto n = net.find(src);
    if (n == net.end()) {
      if (error) *error = VerilogError{0, "undriven output '" + out + "'"};
      return std::nullopt;
    }
    nl.mark_output(n->second, out);
  }
  return nl;
}

}  // namespace mcsn
