#pragma once
// Structural Verilog export, mirroring the paper's design flow: the MC
// circuits must be instantiated as hand-mapped standard cells (INV_X1,
// AND2_X1, OR2_X1, ...) with synthesis optimization disabled, because
// Boolean resynthesis can destroy metastability-containment. The writer
// therefore emits one cell instance per gate — no behavioral constructs.

#include <iosfwd>
#include <string>

#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Writes a synthesizable structural module. Port names are sanitized
/// ("g[3]" -> "g_3"). Cell pin conventions follow NanGate 45 nm
/// (A/A1/A2/.., ZN for inverting cells, Z otherwise).
void write_verilog(std::ostream& os, const Netlist& nl);

[[nodiscard]] std::string to_verilog(const Netlist& nl);

}  // namespace mcsn
