#pragma once
// Standard-cell library model: per-cell area, pin capacitance, and a linear
// delay model
//
//   gate delay = intrinsic + slope * (sum of driven pin caps + wire/port cap)
//
// The default library ("paper-calibrated") reproduces the paper's NanGate
// 45 nm post-layout areas exactly for the AND2/OR2/INV subset: the paper's
// own four (gate count, area) points for 2-sort(B) determine
// area(AND2)+area(OR2) = 2.975 um^2 and area(INV) = 0.8703 um^2 (see
// DESIGN.md / EXPERIMENTS.md). Delay parameters are calibrated once against
// the four pre-layout delay points of Table 7, row "This paper".

#include <array>
#include <string>

#include "mcsn/netlist/cell.hpp"

namespace mcsn {

struct CellParams {
  double area = 0.0;       // um^2
  double input_cap = 0.0;  // normalized cap units per input pin
  double intrinsic = 0.0;  // ps
  double slope = 0.0;      // ps per cap unit of load
};

class CellLibrary {
 public:
  CellLibrary() = default;
  CellLibrary(std::string name, std::array<CellParams, kCellKindCount> cells,
              double port_cap)
      : name_(std::move(name)), cells_(cells), port_cap_(port_cap) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] const CellParams& params(CellKind k) const noexcept {
    return cells_[static_cast<int>(k)];
  }

  /// Extra load seen by nodes that drive a primary output port.
  [[nodiscard]] double port_cap() const noexcept { return port_cap_; }

  /// Library calibrated against the paper's reported area/delay (default).
  [[nodiscard]] static const CellLibrary& paper_calibrated();

  /// area = 1, delay = 1 per gate, no load dependence: pure gate count /
  /// logic depth accounting.
  [[nodiscard]] static const CellLibrary& unit();

 private:
  std::string name_ = "unit";
  std::array<CellParams, kCellKindCount> cells_{};
  double port_cap_ = 0.0;
};

}  // namespace mcsn
