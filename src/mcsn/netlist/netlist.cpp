#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

NodeId Netlist::add_input(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(GateNode{CellKind::input, {0, 0, 0}});
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

Bus Netlist::add_input_bus(const std::string& prefix, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = add_input(prefix + "[" + std::to_string(i) + "]");
  }
  return bus;
}

NodeId Netlist::constant(bool value) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(
      GateNode{value ? CellKind::const1 : CellKind::const0, {0, 0, 0}});
  return id;
}

NodeId Netlist::add_gate(CellKind kind, NodeId a, NodeId b, NodeId c) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const int arity = cell_arity(kind);
  assert(arity >= 1 && "use add_input/constant for sources");
  assert(a < id);
  assert(arity < 2 || b < id);
  assert(arity < 3 || c < id);
  GateNode g{kind, {a, b, c}};
  if (arity < 2) g.in[1] = 0;
  if (arity < 3) g.in[2] = 0;
  nodes_.push_back(g);
  return id;
}

void Netlist::mark_output(NodeId node, std::string name) {
  assert(node < nodes_.size());
  outputs_.push_back(OutputPort{node, std::move(name)});
}

void Netlist::mark_output_bus(const Bus& bus, const std::string& prefix) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    mark_output(bus[i], prefix + "[" + std::to_string(i) + "]");
  }
}

std::size_t Netlist::gate_count() const noexcept {
  std::size_t n = 0;
  for (const GateNode& g : nodes_) n += is_gate(g.kind) ? 1 : 0;
  return n;
}

std::array<std::size_t, kCellKindCount> Netlist::gate_histogram()
    const noexcept {
  std::array<std::size_t, kCellKindCount> h{};
  for (const GateNode& g : nodes_) ++h[static_cast<int>(g.kind)];
  return h;
}

bool Netlist::mc_safe() const noexcept {
  for (const GateNode& g : nodes_) {
    if (!is_mc_safe(g.kind)) return false;
  }
  return true;
}

std::vector<std::uint32_t> Netlist::fanouts() const {
  std::vector<std::uint32_t> f(nodes_.size(), 0);
  for (const GateNode& g : nodes_) {
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) ++f[g.in[pin]];
  }
  return f;
}

bool Netlist::validate() const noexcept {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const GateNode& g = nodes_[id];
    for (int pin = 0; pin < cell_arity(g.kind); ++pin) {
      if (g.in[pin] >= id) return false;  // topological order violated
    }
  }
  for (const OutputPort& o : outputs_) {
    if (o.node >= nodes_.size()) return false;
  }
  return true;
}

}  // namespace mcsn
