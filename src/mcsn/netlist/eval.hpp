#pragma once
// Netlist evaluation under the ternary (metastable closure) semantics of the
// paper's computational model, plus a 64-lane packed variant.

#include <span>
#include <vector>

#include "mcsn/core/packed.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Evaluates every node; `inputs` are assigned to the primary inputs in
/// creation order. Returns values of all nodes (indexable by NodeId).
[[nodiscard]] std::vector<Trit> evaluate_nodes(const Netlist& nl,
                                               std::span<const Trit> inputs);

/// Evaluates and extracts the outputs (in mark_output order) as a Word.
[[nodiscard]] Word evaluate(const Netlist& nl, std::span<const Trit> inputs);

/// Convenience: input vector given as a Word.
[[nodiscard]] Word evaluate(const Netlist& nl, const Word& inputs);

/// Reusable evaluator that amortizes allocation across calls — preferred in
/// exhaustive test sweeps and benchmarks.
class Evaluator {
 public:
  explicit Evaluator(const Netlist& nl);

  /// Returns node values; valid until the next run().
  std::span<const Trit> run(std::span<const Trit> inputs);

  /// Runs and copies outputs into `out` (resized as needed).
  void run_outputs(std::span<const Trit> inputs, Word& out);

 private:
  const Netlist* nl_;
  std::vector<Trit> values_;
};

/// 64-lane packed evaluator: lane k of every input PackedTrit forms one
/// independent input vector; outputs come back lane-aligned.
class PackedEvaluator {
 public:
  explicit PackedEvaluator(const Netlist& nl);

  std::span<const PackedTrit> run(std::span<const PackedTrit> inputs);

  [[nodiscard]] std::span<const PackedTrit> last_values() const {
    return values_;
  }

  /// Extracts output `o`, lane `lane` from the last run.
  [[nodiscard]] Trit output_lane(std::size_t o, int lane) const;

 private:
  const Netlist* nl_;
  std::vector<PackedTrit> values_;
};

}  // namespace mcsn
