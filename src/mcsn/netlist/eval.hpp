#pragma once
// Netlist evaluation under the ternary (metastable closure) semantics of the
// paper's computational model.
//
// Evaluator and PackedEvaluator are thin instantiations of the compiled,
// levelized engine in compile.hpp (one templated executor, different lane
// backends); their node-value API is unchanged from the original
// pointer-chasing implementation, which survives as NodeWalkEvaluator — the
// differential-testing baseline and benchmark comparator.

#include <memory>
#include <span>
#include <vector>

#include "mcsn/core/packed.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Evaluates every node; `inputs` are assigned to the primary inputs in
/// creation order. Returns values of all nodes (indexable by NodeId).
[[nodiscard]] std::vector<Trit> evaluate_nodes(const Netlist& nl,
                                               std::span<const Trit> inputs);

/// Evaluates and extracts the outputs (in mark_output order) as a Word.
[[nodiscard]] Word evaluate(const Netlist& nl, std::span<const Trit> inputs);

/// Convenience: input vector given as a Word.
[[nodiscard]] Word evaluate(const Netlist& nl, const Word& inputs);

/// The legacy node-walking evaluator: dispatches on CellKind per node on
/// every call, no dead-node elimination. Kept as the reference
/// implementation the compiled engine is differentially tested (and
/// benchmarked) against.
class NodeWalkEvaluator {
 public:
  explicit NodeWalkEvaluator(const Netlist& nl);

  /// Returns node values (indexable by NodeId); valid until the next run().
  std::span<const Trit> run(std::span<const Trit> inputs);

  /// Runs and copies outputs into `out` (resized as needed).
  void run_outputs(std::span<const Trit> inputs, Word& out);

 private:
  const Netlist* nl_;
  std::vector<Trit> values_;
};

/// Reusable evaluator that amortizes compilation and allocation across
/// calls — preferred in exhaustive test sweeps and benchmarks. Backed by the
/// compiled engine (scalar backend, all nodes retained so run() stays
/// NodeId-indexable).
class Evaluator {
 public:
  explicit Evaluator(const Netlist& nl);

  /// Returns node values (indexable by NodeId); valid until the next run().
  std::span<const Trit> run(std::span<const Trit> inputs);

  /// Runs and copies outputs into `out` (resized as needed).
  void run_outputs(std::span<const Trit> inputs, Word& out);

 private:
  const Netlist* nl_;
  // shared_ptr keeps the program address stable across moves (the executor
  // holds a pointer into it); vector<Evaluator> must stay movable.
  std::shared_ptr<const CompiledProgram> prog_;
  CompiledExecutor<ScalarBackend> exec_;
};

/// 64-lane packed evaluator: lane k of every input PackedTrit forms one
/// independent input vector; outputs come back lane-aligned. Backed by the
/// compiled engine (64-lane backend).
class PackedEvaluator {
 public:
  explicit PackedEvaluator(const Netlist& nl);

  std::span<const PackedTrit> run(std::span<const PackedTrit> inputs);

  [[nodiscard]] std::span<const PackedTrit> last_values() const {
    return exec_.values();
  }

  /// Extracts output `o`, lane `lane` from the last run.
  [[nodiscard]] Trit output_lane(std::size_t o, int lane) const;

 private:
  const Netlist* nl_;
  std::shared_ptr<const CompiledProgram> prog_;
  CompiledExecutor<Packed64Backend> exec_;
};

}  // namespace mcsn
