#pragma once
// Reduced ordered binary decision diagrams (ROBDDs), used for *formal*
// combinational equivalence checking — including formal TERNARY equivalence
// via a dual-rail encoding (each ternary signal becomes two Boolean rails
// (can0, can1); Kleene gates become monotone rail algebra, cf. core/packed).
//
// Classic implementation: unique table for canonicity, ITE with a computed
// table, no complement edges (kept simple and auditable). Canonicity makes
// equivalence a pointer comparison; counterexamples come from any-SAT path
// extraction.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace mcsn {

class Bdd {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// `var_count` Boolean variables, ordered by index (0 = root-most).
  /// `node_limit` bounds memory; exceeded -> std::length_error.
  explicit Bdd(int var_count, std::size_t node_limit = 4'000'000);

  [[nodiscard]] int var_count() const noexcept { return var_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  [[nodiscard]] Ref var(int i);
  [[nodiscard]] Ref nvar(int i);

  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }
  [[nodiscard]] Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref bdd_xor(Ref f, Ref g) { return ite(f, bdd_not(g), g); }
  [[nodiscard]] Ref bdd_xnor(Ref f, Ref g) { return ite(f, g, bdd_not(g)); }
  [[nodiscard]] Ref bdd_implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  [[nodiscard]] bool is_tautology(Ref f) const noexcept { return f == kTrue; }
  [[nodiscard]] bool is_contradiction(Ref f) const noexcept {
    return f == kFalse;
  }

  /// One satisfying assignment (true iff f != kFalse). Variables not on the
  /// extracted path are left unset (nullopt).
  [[nodiscard]] std::optional<std::vector<std::optional<bool>>> satisfy_one(
      Ref f) const;

  /// Number of satisfying assignments over all var_count variables.
  [[nodiscard]] double sat_count(Ref f) const;

 private:
  struct Node {
    int var;  // kTerminalVar for leaves
    Ref lo, hi;
  };
  static constexpr int kTerminalVar = INT32_MAX;

  [[nodiscard]] Ref mk(int var, Ref lo, Ref hi);
  [[nodiscard]] int top_var(Ref f, Ref g, Ref h) const;
  [[nodiscard]] Ref cofactor(Ref f, int var, bool positive) const;

  int var_count_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> ite_cache_;
};

}  // namespace mcsn
