#pragma once
// Combinational gate-level netlist.
//
// Nodes are stored in topological order by construction: a gate may only
// reference already-existing nodes, so a single forward pass evaluates the
// circuit. This matches the paper's setting (purely combinational circuits;
// no registers, no cycles).

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "mcsn/netlist/cell.hpp"

namespace mcsn {

using NodeId = std::uint32_t;

struct GateNode {
  CellKind kind = CellKind::input;
  std::array<NodeId, 3> in{0, 0, 0};
};

struct OutputPort {
  NodeId node = 0;
  std::string name;
};

/// A bus is an ordered list of nodes; index 0 is the paper's bit 1 (MSB).
using Bus = std::vector<NodeId>;

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction ---------------------------------------------------

  NodeId add_input(std::string name);

  /// Bus of `width` fresh inputs named <prefix>[0..width).
  Bus add_input_bus(const std::string& prefix, std::size_t width);

  NodeId constant(bool value);

  /// Generic gate; fanins must already exist (enforces topological order).
  NodeId add_gate(CellKind kind, NodeId a = 0, NodeId b = 0, NodeId c = 0);

  NodeId inv(NodeId a) { return add_gate(CellKind::inv, a); }
  NodeId and2(NodeId a, NodeId b) { return add_gate(CellKind::and2, a, b); }
  NodeId or2(NodeId a, NodeId b) { return add_gate(CellKind::or2, a, b); }
  NodeId nand2(NodeId a, NodeId b) { return add_gate(CellKind::nand2, a, b); }
  NodeId nor2(NodeId a, NodeId b) { return add_gate(CellKind::nor2, a, b); }
  NodeId xor2(NodeId a, NodeId b) { return add_gate(CellKind::xor2, a, b); }
  NodeId xnor2(NodeId a, NodeId b) { return add_gate(CellKind::xnor2, a, b); }
  /// mux2(a, b, s) = s ? b : a.
  NodeId mux2(NodeId a, NodeId b, NodeId s) {
    return add_gate(CellKind::mux2, a, b, s);
  }
  /// ao21(a, b, c) = (a & b) | c.
  NodeId ao21(NodeId a, NodeId b, NodeId c) {
    return add_gate(CellKind::ao21, a, b, c);
  }

  void mark_output(NodeId node, std::string name);
  void mark_output_bus(const Bus& bus, const std::string& prefix);

  // --- inspection -----------------------------------------------------

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const GateNode& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] const std::vector<GateNode>& nodes() const noexcept {
    return nodes_;
  }

  [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<OutputPort>& outputs() const noexcept {
    return outputs_;
  }

  [[nodiscard]] const std::string& input_name(std::size_t i) const {
    return input_names_[i];
  }

  /// Number of logic gates (excludes inputs and constants).
  [[nodiscard]] std::size_t gate_count() const noexcept;

  /// Gate count per cell kind.
  [[nodiscard]] std::array<std::size_t, kCellKindCount> gate_histogram()
      const noexcept;

  /// True iff the netlist uses only MC-safe cells (INV/AND2/OR2).
  [[nodiscard]] bool mc_safe() const noexcept;

  /// Fanout count per node (number of gate pins each node drives).
  [[nodiscard]] std::vector<std::uint32_t> fanouts() const;

  /// Structural sanity: fanin ids in range and topologically ordered,
  /// outputs reference existing nodes. Returns true if well-formed.
  [[nodiscard]] bool validate() const noexcept;

 private:
  std::string name_;
  std::vector<GateNode> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<OutputPort> outputs_;
};

}  // namespace mcsn
