// Formal equivalence checking over ROBDDs (see equiv.hpp). Boolean semantics
// builds one BDD per output; ternary semantics builds the dual-rail pair
// (can0, can1) per node — the same algebra the 64-lane packed evaluator
// uses, lifted from 64-bit words to BDDs.

#include <cassert>

#include "mcsn/netlist/bdd.hpp"
#include "mcsn/netlist/equiv.hpp"

namespace mcsn {

namespace {

// --- Boolean single-rail ----------------------------------------------------

Bdd::Ref cell_bdd(Bdd& m, CellKind k, Bdd::Ref a, Bdd::Ref b, Bdd::Ref c) {
  switch (k) {
    case CellKind::inv: return m.bdd_not(a);
    case CellKind::and2: return m.bdd_and(a, b);
    case CellKind::or2: return m.bdd_or(a, b);
    case CellKind::nand2: return m.bdd_not(m.bdd_and(a, b));
    case CellKind::nor2: return m.bdd_not(m.bdd_or(a, b));
    case CellKind::xor2: return m.bdd_xor(a, b);
    case CellKind::xnor2: return m.bdd_xnor(a, b);
    case CellKind::mux2: return m.ite(c, b, a);
    case CellKind::aoi21: return m.bdd_not(m.bdd_or(m.bdd_and(a, b), c));
    case CellKind::oai21: return m.bdd_not(m.bdd_and(m.bdd_or(a, b), c));
    case CellKind::ao21: return m.bdd_or(m.bdd_and(a, b), c);
    case CellKind::oa21: return m.bdd_and(m.bdd_or(a, b), c);
    default: return Bdd::kFalse;
  }
}

// --- Ternary dual-rail -------------------------------------------------------

struct Rail {
  Bdd::Ref can0 = Bdd::kTrue;
  Bdd::Ref can1 = Bdd::kFalse;
};

Rail rail_const(bool v) {
  return v ? Rail{Bdd::kFalse, Bdd::kTrue} : Rail{Bdd::kTrue, Bdd::kFalse};
}

Rail rail_not(Rail a) { return {a.can1, a.can0}; }

Rail rail_and(Bdd& m, Rail a, Rail b) {
  return {m.bdd_or(a.can0, b.can0), m.bdd_and(a.can1, b.can1)};
}

Rail rail_or(Bdd& m, Rail a, Rail b) {
  return {m.bdd_and(a.can0, b.can0), m.bdd_or(a.can1, b.can1)};
}

Rail rail_xor(Bdd& m, Rail a, Rail b) {
  return {m.bdd_or(m.bdd_and(a.can0, b.can0), m.bdd_and(a.can1, b.can1)),
          m.bdd_or(m.bdd_and(a.can0, b.can1), m.bdd_and(a.can1, b.can0))};
}

Rail rail_mux(Bdd& m, Rail d0, Rail d1, Rail s) {
  return {m.bdd_or(m.bdd_and(s.can0, d0.can0), m.bdd_and(s.can1, d1.can0)),
          m.bdd_or(m.bdd_and(s.can0, d0.can1), m.bdd_and(s.can1, d1.can1))};
}

Rail cell_rail(Bdd& m, CellKind k, Rail a, Rail b, Rail c) {
  switch (k) {
    case CellKind::inv: return rail_not(a);
    case CellKind::and2: return rail_and(m, a, b);
    case CellKind::or2: return rail_or(m, a, b);
    case CellKind::nand2: return rail_not(rail_and(m, a, b));
    case CellKind::nor2: return rail_not(rail_or(m, a, b));
    case CellKind::xor2: return rail_xor(m, a, b);
    case CellKind::xnor2: return rail_not(rail_xor(m, a, b));
    case CellKind::mux2: return rail_mux(m, a, b, c);
    case CellKind::aoi21: return rail_not(rail_or(m, rail_and(m, a, b), c));
    case CellKind::oai21: return rail_not(rail_and(m, rail_or(m, a, b), c));
    case CellKind::ao21: return rail_or(m, rail_and(m, a, b), c);
    case CellKind::oa21: return rail_and(m, rail_or(m, a, b), c);
    default: return rail_const(false);
  }
}

std::vector<int> effective_order(const Netlist& nl,
                                 const std::vector<int>& requested) {
  const std::size_t width = nl.inputs().size();
  std::vector<int> order(width);
  if (requested.size() == width) {
    order = requested;
  } else {
    for (std::size_t i = 0; i < width; ++i) order[i] = static_cast<int>(i);
  }
  return order;
}

std::vector<Bdd::Ref> build_boolean(Bdd& m, const Netlist& nl,
                                    const std::vector<int>& order) {
  std::vector<Bdd::Ref> value(nl.node_count(), Bdd::kFalse);
  std::size_t next_input = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateNode& g = nl.node(id);
    switch (g.kind) {
      case CellKind::input:
        value[id] = m.var(order[next_input++]);
        break;
      case CellKind::const0: value[id] = Bdd::kFalse; break;
      case CellKind::const1: value[id] = Bdd::kTrue; break;
      default:
        value[id] = cell_bdd(m, g.kind, value[g.in[0]], value[g.in[1]],
                             value[g.in[2]]);
    }
  }
  std::vector<Bdd::Ref> outs;
  outs.reserve(nl.outputs().size());
  for (const OutputPort& o : nl.outputs()) outs.push_back(value[o.node]);
  return outs;
}

std::vector<Rail> build_ternary(Bdd& m, const Netlist& nl,
                                const std::vector<int>& order) {
  std::vector<Rail> value(nl.node_count());
  std::size_t next_input = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateNode& g = nl.node(id);
    switch (g.kind) {
      case CellKind::input: {
        const int rank = order[next_input++];
        value[id] = Rail{m.var(2 * rank), m.var(2 * rank + 1)};
        break;
      }
      case CellKind::const0: value[id] = rail_const(false); break;
      case CellKind::const1: value[id] = rail_const(true); break;
      default:
        value[id] = cell_rail(m, g.kind, value[g.in[0]], value[g.in[1]],
                              value[g.in[2]]);
    }
  }
  std::vector<Rail> outs;
  outs.reserve(nl.outputs().size());
  for (const OutputPort& o : nl.outputs()) outs.push_back(value[o.node]);
  return outs;
}

}  // namespace

FormalEquivResult check_equivalence_formal(const Netlist& a, const Netlist& b,
                                           const FormalEquivOptions& opt) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  const std::size_t width = a.inputs().size();
  const std::vector<int> order = effective_order(a, opt.var_order);

  FormalEquivResult res;
  if (opt.semantics == EquivSemantics::boolean_only) {
    Bdd m(static_cast<int>(width), opt.node_limit);
    const auto oa = build_boolean(m, a, order);
    const auto ob = build_boolean(m, b, order);
    Bdd::Ref diff = Bdd::kFalse;
    for (std::size_t o = 0; o < oa.size(); ++o) {
      diff = m.bdd_or(diff, m.bdd_xor(oa[o], ob[o]));
    }
    res.bdd_nodes = m.node_count();
    res.equivalent = m.is_contradiction(diff);
    if (!res.equivalent) {
      const auto assign = m.satisfy_one(diff);
      Word w(width);
      for (std::size_t i = 0; i < width; ++i) {
        const auto v = (*assign)[static_cast<std::size_t>(order[i])];
        w[i] = to_trit(v.value_or(false));
      }
      res.witness = w;
    }
    return res;
  }

  // Ternary: two rails per input; rail pair (0,0) is outside the care space.
  Bdd m(static_cast<int>(2 * width), opt.node_limit);
  const auto oa = build_ternary(m, a, order);
  const auto ob = build_ternary(m, b, order);
  Bdd::Ref care = Bdd::kTrue;
  for (std::size_t i = 0; i < width; ++i) {
    const int rank = order[i];
    care = m.bdd_and(care, m.bdd_or(m.var(2 * rank), m.var(2 * rank + 1)));
  }
  Bdd::Ref diff = Bdd::kFalse;
  for (std::size_t o = 0; o < oa.size(); ++o) {
    diff = m.bdd_or(diff, m.bdd_xor(oa[o].can0, ob[o].can0));
    diff = m.bdd_or(diff, m.bdd_xor(oa[o].can1, ob[o].can1));
  }
  const Bdd::Ref bad = m.bdd_and(care, diff);
  res.bdd_nodes = m.node_count();
  res.equivalent = m.is_contradiction(bad);
  if (!res.equivalent) {
    const auto assign = m.satisfy_one(bad);
    Word w(width);
    for (std::size_t i = 0; i < width; ++i) {
      const int rank = order[i];
      auto c0 = (*assign)[static_cast<std::size_t>(2 * rank)];
      auto c1 = (*assign)[static_cast<std::size_t>(2 * rank + 1)];
      // Unassigned rails are don't-care for `bad`; fill keeping the pair in
      // the care space.
      if (!c0 && !c1) {
        c0 = true;
        c1 = false;
      } else if (!c0) {
        c0 = !*c1;
      } else if (!c1) {
        c1 = !*c0;
      }
      if (*c0 && *c1) {
        w[i] = Trit::meta;
      } else {
        w[i] = *c1 ? Trit::one : Trit::zero;
      }
    }
    res.witness = w;
  }
  return res;
}

}  // namespace mcsn
