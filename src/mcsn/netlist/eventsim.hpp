#pragma once
// Event-driven ternary simulation with per-gate propagation delays.
//
// Used to visualize containment dynamics: a rising input that violates a
// sampling window is modeled as 0 -> M -> 1 (the M phase is the interval in
// which the signal is out-of-spec). Because every cell computes the closure
// of its Boolean function, the simulation demonstrates that MC circuits are
// glitch-free in this model: once the inputs settle, each node settles and
// no node oscillates between stable values.

#include <cstdint>
#include <map>
#include <vector>

#include "mcsn/core/trit.hpp"
#include "mcsn/netlist/library.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct WaveEvent {
  double time = 0.0;
  Trit value = Trit::meta;
};

/// Per-node waveform: the value at time t is the value of the latest event
/// with time <= t (initial value = first event at t=0).
using Waveform = std::vector<WaveEvent>;

class EventSimulator {
 public:
  EventSimulator(const Netlist& nl, const CellLibrary& lib);

  /// Schedules a primary-input change (input index, not NodeId).
  void set_input(std::size_t input_idx, Trit value, double time);

  /// Runs until the event queue drains (combinational circuits always
  /// converge). Returns the time of the last value change.
  double run();

  [[nodiscard]] const Waveform& waveform(NodeId id) const {
    return waves_[id];
  }
  [[nodiscard]] Trit value(NodeId id) const { return values_[id]; }

  /// Number of value-change events on `id`, excluding the initial value.
  [[nodiscard]] std::size_t transition_count(NodeId id) const;

  /// Truncates all waveform history to the current settled values (new
  /// baseline at `time`). Glitch analysis is per stimulus phase: the initial
  /// application from the power-up state is not a refinement and may bounce,
  /// but after clear_waveforms() any *refinement* of the inputs (resolving
  /// or un-resolving single bits) must be glitch-free in an MC circuit.
  void clear_waveforms(double time = 0.0);

  /// True iff no node ever changed between the two stable values without
  /// passing through M, and no node left M more than once — i.e. every
  /// waveform is of the (glitch-free) form  v* M* w*.
  [[nodiscard]] bool glitch_free() const;

 private:
  void schedule(NodeId node, Trit value, double time);
  void commit(NodeId node, Trit value, double time);

  const Netlist* nl_;
  std::vector<double> gate_delay_;       // per node
  std::vector<std::vector<NodeId>> fanout_;
  std::vector<Trit> values_;
  std::vector<Waveform> waves_;
  // (time, node) -> scheduled value; inertial: rescheduling a node overwrites
  // any pending event for it.
  std::multimap<double, NodeId> queue_;
  std::vector<double> pending_time_;
  std::vector<Trit> pending_value_;
  std::vector<bool> has_pending_;
};

}  // namespace mcsn
