#include "mcsn/netlist/cell.hpp"

namespace mcsn {

std::string_view cell_name(CellKind k) noexcept {
  switch (k) {
    case CellKind::input: return "input";
    case CellKind::const0: return "const0";
    case CellKind::const1: return "const1";
    case CellKind::inv: return "inv";
    case CellKind::and2: return "and2";
    case CellKind::or2: return "or2";
    case CellKind::nand2: return "nand2";
    case CellKind::nor2: return "nor2";
    case CellKind::xor2: return "xor2";
    case CellKind::xnor2: return "xnor2";
    case CellKind::mux2: return "mux2";
    case CellKind::aoi21: return "aoi21";
    case CellKind::oai21: return "oai21";
    case CellKind::ao21: return "ao21";
    case CellKind::oa21: return "oa21";
  }
  return "?";
}

std::string_view cell_lib_name(CellKind k) noexcept {
  switch (k) {
    case CellKind::input: return "PIN";
    case CellKind::const0: return "LOGIC0";
    case CellKind::const1: return "LOGIC1";
    case CellKind::inv: return "INV_X1";
    case CellKind::and2: return "AND2_X1";
    case CellKind::or2: return "OR2_X1";
    case CellKind::nand2: return "NAND2_X1";
    case CellKind::nor2: return "NOR2_X1";
    case CellKind::xor2: return "XOR2_X1";
    case CellKind::xnor2: return "XNOR2_X1";
    case CellKind::mux2: return "MUX2_X1";
    case CellKind::aoi21: return "AOI21_X1";
    case CellKind::oai21: return "OAI21_X1";
    case CellKind::ao21: return "AO21_X1";
    case CellKind::oa21: return "OA21_X1";
  }
  return "?";
}

}  // namespace mcsn
