#pragma once
// Verification helpers: equivalence against a specification function and the
// refinement-monotonicity ("containment") property of ternary circuits.

#include <functional>
#include <optional>
#include <string>

#include "mcsn/core/word.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct CheckFailure {
  Word input;
  Word expected;
  Word actual;
  [[nodiscard]] std::string describe() const;
};

/// Checks circuit(input) == spec(input) for every input produced by
/// `generator` (call it until it returns nullopt). Returns the first failure.
[[nodiscard]] std::optional<CheckFailure> check_against_spec(
    const Netlist& nl, const std::function<Word(const Word&)>& spec,
    const std::function<std::optional<Word>()>& generator);

/// Containment/monotonicity property: for a ternary input x and any stable
/// refinement y in res(x), circuit(y) must lie in res(circuit(x)). Every
/// closure-semantics circuit satisfies this; it is the "no surprise after
/// resolution" guarantee. Checks all resolutions of each generated input.
[[nodiscard]] std::optional<CheckFailure> check_refinement_monotone(
    const Netlist& nl, const std::function<std::optional<Word>()>& generator);

/// Exhaustively enumerates all ternary input vectors of the netlist's input
/// width (3^width combinations; width guarded <= 12) and checks against spec.
[[nodiscard]] std::optional<CheckFailure> check_exhaustive_ternary(
    const Netlist& nl, const std::function<Word(const Word&)>& spec);

}  // namespace mcsn
