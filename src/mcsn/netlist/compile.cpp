#include "mcsn/netlist/compile.hpp"

#include <algorithm>

#if !defined(NDEBUG) || defined(MCSN_VERIFY)
#include <cstdio>
#include <cstdlib>

#include "mcsn/netlist/verify_ir.hpp"
#endif

namespace mcsn {

CompiledProgram CompiledProgram::compile(const Netlist& nl,
                                         const CompileOptions& opt) {
  const std::vector<GateNode>& nodes = nl.nodes();
  const std::size_t n = nodes.size();
  CompiledProgram p;
  p.slot_of_node_.assign(n, kNoSlot);

  // 1. Liveness: reverse reachability from the outputs (unless disabled).
  std::vector<char> live(n, 0);
  if (opt.retain_all_nodes || !opt.eliminate_dead) {
    std::fill(live.begin(), live.end(), 1);
  } else {
    std::vector<NodeId> stack;
    stack.reserve(nl.outputs().size());
    for (const OutputPort& out : nl.outputs()) {
      if (!live[out.node]) {
        live[out.node] = 1;
        stack.push_back(out.node);
      }
    }
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      const GateNode& g = nodes[id];
      const int arity = cell_arity(g.kind);
      for (int j = 0; j < arity; ++j) {
        if (!live[g.in[j]]) {
          live[g.in[j]] = 1;
          stack.push_back(g.in[j]);
        }
      }
    }
  }

  // 2. Logic levels. Nodes are stored in topological order, so one forward
  // pass suffices: inputs and constants sit at level 0, a gate one past its
  // deepest live fanin.
  std::vector<std::uint32_t> level(n, 0);
  std::uint32_t max_level = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (!live[id]) continue;
    const GateNode& g = nodes[id];
    const int arity = cell_arity(g.kind);
    if (arity == 0) continue;
    std::uint32_t lv = 0;
    for (int j = 0; j < arity; ++j) lv = std::max(lv, level[g.in[j]]);
    level[id] = lv + 1;
    max_level = std::max(max_level, level[id]);
  }

  // 3. Slot assignment. retain_all_nodes keeps the identity mapping; the
  // dense mode numbers live inputs first (in creation order), then live
  // constants, then gates in (level, creation) order — exactly the order
  // the executor writes them, which keeps the working set contiguous.
  std::vector<NodeId> gate_order;
  gate_order.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    if (live[id] && is_gate(nodes[id].kind)) gate_order.push_back(id);
  }
  if (opt.levelize) {
    std::stable_sort(
        gate_order.begin(), gate_order.end(),
        [&level](NodeId a, NodeId b) { return level[a] < level[b]; });
  }

  if (opt.retain_all_nodes) {
    for (NodeId id = 0; id < n; ++id) p.slot_of_node_[id] = id;
    p.slot_count_ = n;
  } else {
    std::uint32_t next = 0;
    for (const NodeId id : nl.inputs()) {
      if (live[id]) p.slot_of_node_[id] = next++;
    }
    for (NodeId id = 0; id < n; ++id) {
      const CellKind k = nodes[id].kind;
      if (live[id] && (k == CellKind::const0 || k == CellKind::const1)) {
        p.slot_of_node_[id] = next++;
      }
    }
    for (const NodeId id : gate_order) p.slot_of_node_[id] = next++;
    p.slot_count_ = next;
  }

  // 4. Constant initializers.
  for (NodeId id = 0; id < n; ++id) {
    if (!live[id]) continue;
    const CellKind k = nodes[id].kind;
    if (k == CellKind::const0 || k == CellKind::const1) {
      p.const_inits_.push_back(
          {p.slot_of_node_[id],
           k == CellKind::const1 ? Trit::one : Trit::zero});
    }
  }

  // 5. Instruction stream. Unused fanin pins point at slot 0; the cell
  // evaluators ignore operands beyond the cell's arity. Per-level offsets
  // only exist for levelized schedules (creation order interleaves levels).
  p.ops_.reserve(gate_order.size());
  if (opt.levelize) p.level_offsets_.assign(max_level + 1, 0);
  for (const NodeId id : gate_order) {
    const GateNode& g = nodes[id];
    const int arity = cell_arity(g.kind);
    CompiledOp op;
    op.kind = g.kind;
    op.out = p.slot_of_node_[id];
    for (int j = 0; j < 3; ++j) {
      op.in[static_cast<std::size_t>(j)] =
          j < arity ? p.slot_of_node_[g.in[j]] : 0;
    }
    // Gate levels are 1-based; bucket l holds ops of level l+1.
    if (opt.levelize) ++p.level_offsets_[level[id] - 1 + 1];
    p.ops_.push_back(op);
  }
  for (std::size_t l = 1; l < p.level_offsets_.size(); ++l) {
    p.level_offsets_[l] += p.level_offsets_[l - 1];
  }

  // 6. Outputs (always live by construction).
  p.output_slots_.reserve(nl.outputs().size());
  for (const OutputPort& out : nl.outputs()) {
    p.output_slots_.push_back(p.slot_of_node_[out.node]);
  }
  p.input_slots_.reserve(nl.inputs().size());
  for (const NodeId id : nl.inputs()) {
    p.input_slots_.push_back(p.slot_of_node_[id]);
  }

#if !defined(NDEBUG) || defined(MCSN_VERIFY)
  // Debug and sanitizer builds re-check every structural invariant of the
  // freshly lowered program (see verify_ir.hpp). A failure here is a
  // compiler bug, not a caller error — abort loudly instead of handing an
  // unchecked instruction stream to the branch-free executors.
  if (const Status s = verify_ir(p, verify_options_for(opt)); !s.ok()) {
    std::fprintf(stderr, "CompiledProgram::compile: %s\n",
                 s.to_string().c_str());
    std::abort();
  }
#endif
  return p;
}

BatchEvaluator::BatchEvaluator(const Netlist& nl, const BatchOptions& opt)
    : prog_(CompiledProgram::compile(nl, opt.compile)),
      opt_(opt),
      parallel_(opt.threads > 0
                    ? opt.threads
                    : (opt.pool
                           ? static_cast<int>(opt.pool->parallelism())
                           : static_cast<int>(
                                 ThreadPool::hardware_parallelism()))),
      pool_(opt.pool) {}

BatchEvaluator::BatchEvaluator(BatchEvaluator&& other) noexcept
    : prog_(std::move(other.prog_)),
      opt_(std::move(other.opt_)),
      parallel_(other.parallel_) {
  std::lock_guard lock(other.pool_mu_);
  pool_ = std::move(other.pool_);
}

BatchEvaluator& BatchEvaluator::operator=(BatchEvaluator&& other) noexcept {
  if (this != &other) {
    prog_ = std::move(other.prog_);
    opt_ = std::move(other.opt_);
    parallel_ = other.parallel_;
    std::scoped_lock lock(pool_mu_, other.pool_mu_);
    pool_ = std::move(other.pool_);
  }
  return *this;
}

ThreadPool* BatchEvaluator::acquire_pool() const {
  std::lock_guard lock(pool_mu_);
  if (!pool_ && parallel_ > 1) {
    // Lazily owned, created once and kept: construction cost (the only
    // thread spawns this evaluator ever performs) is paid on the first
    // parallel run(), never per call.
    pool_ = std::make_shared<ThreadPool>(
        static_cast<std::size_t>(parallel_ - 1));
  }
  return pool_.get();
}

template <class Pack, class Unpack>
void BatchEvaluator::run_grouped(std::size_t n, Pack&& pack,
                                 Unpack&& unpack) const {
  using Backend = Packed256Backend;
  constexpr std::size_t kLanes = Backend::kLanes;
  const std::size_t width = prog_.input_count();
  if (n == 0) return;
  const std::size_t groups = (n + kLanes - 1) / kLanes;

  if (opt_.level_parallel) {
    // Intra-vector mode: lane groups run sequentially; each evaluation is
    // sliced across wide levels on the pool. Effective even at one group.
    LevelParallelExecutor<Backend> exec(
        prog_, parallel_ > 1 ? acquire_pool() : nullptr,
        LevelParallelOptions{parallel_, opt_.level_min_ops});
    std::vector<typename Backend::Value> packed(width);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t base = g * kLanes;
      const int active = static_cast<int>(std::min(kLanes, n - base));
      pack(std::span<typename Backend::Value>(packed), base, active);
      exec.run(packed);
      unpack(exec, base, active);
    }
    return;
  }

  const auto shard = [&](std::size_t first_group, std::size_t stride) {
    CompiledExecutor<Backend> exec(prog_);
    std::vector<typename Backend::Value> packed(width);
    for (std::size_t g = first_group; g < groups; g += stride) {
      const std::size_t base = g * kLanes;
      const int active = static_cast<int>(std::min(kLanes, n - base));
      pack(std::span<typename Backend::Value>(packed), base, active);
      exec.run(packed);
      unpack(exec, base, active);
    }
  };

  const std::size_t shards =
      std::min(static_cast<std::size_t>(parallel_), groups);
  if (shards <= 1) {
    shard(0, 1);
  } else {
    acquire_pool()->run_and_wait(
        shards, [&](std::size_t t) { shard(t, shards); });
  }
}

std::vector<Word> BatchEvaluator::run(std::span<const Word> inputs) const {
  using Backend = Packed256Backend;
  const std::size_t width = prog_.input_count();
  const std::size_t outs = prog_.output_count();
  std::vector<Word> results(inputs.size());
  run_grouped(
      inputs.size(),
      [&](std::span<Backend::Value> packed, std::size_t base, int active) {
        for (std::size_t i = 0; i < width; ++i) {
          Backend::Value& v = packed[i];
          for (int lane = 0; lane < active; ++lane) {
            assert(inputs[base + static_cast<std::size_t>(lane)].size() ==
                   width);
            v.set_lane(lane, inputs[base + static_cast<std::size_t>(lane)][i]);
          }
        }
      },
      [&](const auto& exec, std::size_t base, int active) {
        for (int lane = 0; lane < active; ++lane) {
          Word w(outs);
          for (std::size_t o = 0; o < outs; ++o) {
            w[o] = exec.output_lane(o, lane);
          }
          results[base + static_cast<std::size_t>(lane)] = std::move(w);
        }
      });
  return results;
}

void BatchEvaluator::run_flat(std::span<const Trit> inputs,
                              std::span<Trit> outputs) const {
  using Backend = Packed256Backend;
  const std::size_t width = prog_.input_count();
  const std::size_t outs = prog_.output_count();
  assert(width > 0 && inputs.size() % width == 0);
  const std::size_t n = width == 0 ? 0 : inputs.size() / width;
  assert(outputs.size() == n * outs);
  run_grouped(
      n,
      [&](std::span<Backend::Value> packed, std::size_t base, int active) {
        for (std::size_t i = 0; i < width; ++i) {
          Backend::Value& v = packed[i];
          for (int lane = 0; lane < active; ++lane) {
            v.set_lane(
                lane,
                inputs[(base + static_cast<std::size_t>(lane)) * width + i]);
          }
        }
      },
      [&](const auto& exec, std::size_t base, int active) {
        for (int lane = 0; lane < active; ++lane) {
          Trit* const row =
              outputs.data() + (base + static_cast<std::size_t>(lane)) * outs;
          for (std::size_t o = 0; o < outs; ++o) {
            row[o] = exec.output_lane(o, lane);
          }
        }
      });
}

}  // namespace mcsn
