#include "mcsn/netlist/check.hpp"

#include <stdexcept>

#include "mcsn/netlist/eval.hpp"

namespace mcsn {

std::string CheckFailure::describe() const {
  return "input=" + input.str() + " expected=" + expected.str() +
         " actual=" + actual.str();
}

std::optional<CheckFailure> check_against_spec(
    const Netlist& nl, const std::function<Word(const Word&)>& spec,
    const std::function<std::optional<Word>()>& generator) {
  Evaluator ev(nl);
  Word out;
  std::vector<Trit> in;
  while (auto w = generator()) {
    in.assign(w->begin(), w->end());
    ev.run_outputs(in, out);
    const Word want = spec(*w);
    if (!(out == want)) return CheckFailure{*w, want, out};
  }
  return std::nullopt;
}

std::optional<CheckFailure> check_refinement_monotone(
    const Netlist& nl, const std::function<std::optional<Word>()>& generator) {
  Evaluator ev(nl);
  Word base_out, res_out;
  std::vector<Trit> in;
  std::optional<CheckFailure> fail;
  while (auto w = generator()) {
    in.assign(w->begin(), w->end());
    ev.run_outputs(in, base_out);
    w->for_each_resolution([&](const Word& r) {
      if (fail) return;
      in.assign(r.begin(), r.end());
      ev.run_outputs(in, res_out);
      if (!base_out.matches_resolution(res_out)) {
        fail = CheckFailure{*w, base_out, res_out};
      }
    });
    if (fail) return fail;
  }
  return std::nullopt;
}

std::optional<CheckFailure> check_exhaustive_ternary(
    const Netlist& nl, const std::function<Word(const Word&)>& spec) {
  const std::size_t width = nl.inputs().size();
  if (width > 12) {
    throw std::length_error("check_exhaustive_ternary: too many inputs");
  }
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < width; ++i) total *= 3;

  std::uint64_t next = 0;
  auto gen = [&]() -> std::optional<Word> {
    if (next >= total) return std::nullopt;
    Word w(width);
    std::uint64_t v = next++;
    for (std::size_t i = 0; i < width; ++i) {
      w[i] = trit_from_index(static_cast<int>(v % 3));
      v /= 3;
    }
    return w;
  };
  return check_against_spec(nl, spec, gen);
}

}  // namespace mcsn
