#pragma once
// Structural verifier for the compiled netlist IR.
//
// CompiledProgram is the trusted core of every execution path — the lane
// backends replay its instruction stream with zero per-op checking, so a
// malformed program (an out-of-range slot, an operand scheduled after its
// reader, a double-written slot) is silent memory corruption or a wrong
// sort, not an error message. verify_ir() makes those invariants checked
// instead of assumed:
//
//   * bounds         — every slot index (inputs, outputs, const inits, op
//                      operands and destinations) is < slot_count(), and
//                      level_offsets is a monotone partition of the ops;
//   * gate stream    — the instruction stream contains only real gates
//                      (no input/const kinds) with in-arity operands;
//   * single write   — each slot has exactly one writer (a live input, a
//                      const init, or one op destination): no double
//                      writes and no never-written slots;
//   * schedule order — every operand an op actually reads (per
//                      cell_arity) was written strictly earlier in the
//                      stream, and — for levelized programs — in a
//                      strictly earlier level;
//   * reachability   — every declared output has a writer, and (when the
//                      program was compiled with dead-node elimination)
//                      every op is transitively reachable from an output,
//                      i.e. elimination left no orphan ops.
//
// Each violated invariant produces a distinct, greppable diagnostic token
// in the Status message ("slot-bounds", "level-structure", "bad-op",
// "double-write", "unwritten-slot", "dangling-read", "operand-order",
// "operand-level", "unwritten-output", "orphan-op") with the offending
// indices — precise enough that a failed CI sweep names the broken op.
//
// The pass runs automatically at the end of CompiledProgram::compile() in
// debug builds and in sanitizer builds (MCSN_VERIFY, defined by CMake
// whenever MCSN_SANITIZE is set); release builds pay nothing. It is also
// exposed as `tool_mcsverify`, which sweeps the whole catalog plus
// composed/PPC-elaborated networks under every compile-option combination.
//
// IrImage exists for negative testing: CompiledProgram's fields are
// private and compile() only ever produces valid programs, so the
// mutation suite (tests/verify_ir_test.cpp) perturbs an owning snapshot
// instead — one mutator per invariant class proves each check actually
// fires, with its own diagnostic.

#include <cstdint>
#include <vector>

#include "mcsn/api/status.hpp"
#include "mcsn/netlist/compile.hpp"

namespace mcsn {

/// An owning, mutable snapshot of a CompiledProgram's structure — same
/// fields, public. Extract with ir_image_of(), perturb freely, verify.
struct IrImage {
  std::size_t slot_count = 0;
  std::vector<CompiledOp> ops;
  /// Level l's ops are [level_offsets[l], level_offsets[l + 1]); empty
  /// means the program is not levelized (creation-order schedule).
  std::vector<std::size_t> level_offsets;
  std::vector<std::uint32_t> input_slots;   // kNoSlot = dead input
  std::vector<std::uint32_t> output_slots;
  std::vector<CompiledProgram::ConstInit> const_inits;
};

/// Snapshot of `prog` for mutation testing / standalone verification.
[[nodiscard]] IrImage ir_image_of(const CompiledProgram& prog);

struct VerifyIrOptions {
  /// Require every op to be transitively reachable from a declared output
  /// (dead-node elimination left no orphans). Turn off for programs
  /// compiled with eliminate_dead = false or retain_all_nodes = true,
  /// which intentionally keep dead gates.
  bool require_reachable = true;
  /// Require a levelized schedule (non-empty, consistent level_offsets
  /// with every operand in a strictly earlier level). Turn off for
  /// programs compiled with levelize = false; the strict
  /// written-before-read stream order is checked either way.
  bool require_levelized = true;
};

/// Matching options for how `opt` compiled the program.
[[nodiscard]] constexpr VerifyIrOptions verify_options_for(
    const CompileOptions& opt) noexcept {
  return VerifyIrOptions{
      .require_reachable = opt.eliminate_dead && !opt.retain_all_nodes,
      .require_levelized = opt.levelize,
  };
}

/// Checks every invariant above; OK, or the first violation found with a
/// precise diagnostic. Runs in O(slots + ops) time and memory.
[[nodiscard]] Status verify_ir(const IrImage& ir,
                               const VerifyIrOptions& opt = {});

/// Convenience overload over a live program (snapshots internally).
[[nodiscard]] Status verify_ir(const CompiledProgram& prog,
                               const VerifyIrOptions& opt = {});

}  // namespace mcsn
