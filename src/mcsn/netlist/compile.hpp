#pragma once
// Compiled netlist evaluation: lowers a Netlist into a flat, levelized
// instruction stream executed by one templated engine over pluggable lane
// backends.
//
// The node-walking evaluators in eval.hpp re-dispatch on CellKind per node
// and chase GateNode fanins through the full node array on every call.
// CompiledProgram pays those costs once:
//
//   * dead-node elimination  — gates no output depends on are dropped;
//   * dense operand slots    — live values are renumbered into a compact
//                              buffer (inputs, then constants, then gates in
//                              schedule order) so the working set is minimal;
//   * levelization           — gates are scheduled by logic level; ops within
//                              one level are mutually independent, which
//                              level_ops() exposes for parallel execution;
//   * constant folding into initialization — tie cells are materialized once
//                              per executor, not re-evaluated per run.
//
// One CompiledProgram serves every backend width: the scalar Trit backend,
// the 64-lane PackedTrit backend, and the 256-lane PackedTrit256 backend.
// BatchEvaluator packs arbitrary numbers of input vectors into wide lane
// groups and optionally shards groups across a persistent ThreadPool
// (injected or lazily owned — never a std::thread spawn per run()).
// LevelParallelExecutor exploits the other axis: all ops within one level
// of the schedule are independent, so a single evaluation of a huge
// netlist can be sliced level-by-level across the same pool.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "mcsn/core/packed.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/netlist/cell.hpp"
#include "mcsn/netlist/netlist.hpp"
#include "mcsn/util/thread_pool.hpp"

namespace mcsn {

/// One lowered gate: dst/src are dense slot indices, not NodeIds.
struct CompiledOp {
  CellKind kind = CellKind::inv;
  std::uint32_t out = 0;
  std::array<std::uint32_t, 3> in{0, 0, 0};
};

struct CompileOptions {
  /// Drop gates that no output transitively depends on.
  bool eliminate_dead = true;
  /// Keep slot == NodeId for every node (implies no dead-node elimination).
  /// Used by the eval.hpp compatibility wrappers, whose API exposes values
  /// for all nodes indexable by NodeId.
  bool retain_all_nodes = false;
  /// Group the instruction stream by logic level (enables level_ops()
  /// parallel slicing). Creation order (false) can have better operand
  /// locality for narrow scalar replay; level order is the default for the
  /// wide batch backends. Either order is a valid topological schedule.
  bool levelize = true;
};

class CompiledProgram {
 public:
  /// Slot index marking a dead (eliminated) input.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct ConstInit {
    std::uint32_t slot = 0;
    Trit value = Trit::zero;
  };

  [[nodiscard]] static CompiledProgram compile(const Netlist& nl,
                                               const CompileOptions& opt = {});

  /// Size of the value buffer an executor must provide.
  [[nodiscard]] std::size_t slot_count() const noexcept { return slot_count_; }

  [[nodiscard]] std::size_t input_count() const noexcept {
    return input_slots_.size();
  }
  [[nodiscard]] std::size_t output_count() const noexcept {
    return output_slots_.size();
  }

  /// Lowered gates in schedule (level, creation) order.
  [[nodiscard]] std::span<const CompiledOp> ops() const noexcept {
    return ops_;
  }

  /// Number of logic levels (depth of the scheduled gate DAG). Zero when
  /// the program was compiled with levelize = false.
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  }

  /// Ops of one level (0-based). All ops within a level are independent of
  /// each other — safe to execute concurrently.
  [[nodiscard]] std::span<const CompiledOp> level_ops(
      std::size_t level) const {
    assert(level + 1 < level_offsets_.size());
    return std::span<const CompiledOp>(ops_).subspan(
        level_offsets_[level], level_offsets_[level + 1] - level_offsets_[level]);
  }

  /// Slot of primary input i (creation order); kNoSlot if the input is dead.
  [[nodiscard]] std::span<const std::uint32_t> input_slots() const noexcept {
    return input_slots_;
  }

  /// Slot of output o (mark_output order).
  [[nodiscard]] std::span<const std::uint32_t> output_slots() const noexcept {
    return output_slots_;
  }

  /// Constant cells, materialized once per executor.
  [[nodiscard]] std::span<const ConstInit> const_inits() const noexcept {
    return const_inits_;
  }

  /// Slot holding the value of `id`, or kNoSlot if eliminated.
  [[nodiscard]] std::uint32_t slot_of_node(NodeId id) const {
    return slot_of_node_[id];
  }

  /// Gates surviving dead-node elimination.
  [[nodiscard]] std::size_t live_gate_count() const noexcept {
    return ops_.size();
  }

 private:
  std::size_t slot_count_ = 0;
  std::vector<CompiledOp> ops_;
  std::vector<std::size_t> level_offsets_;  // level l ops: [l], [l+1])
  std::vector<std::uint32_t> input_slots_;
  std::vector<std::uint32_t> output_slots_;
  std::vector<ConstInit> const_inits_;
  std::vector<std::uint32_t> slot_of_node_;
};

// --- Lane backends ----------------------------------------------------------
//
// A backend supplies the value type for one executor lane group plus splat /
// eval / lane accessors. kLanes is the number of independent input vectors
// one run evaluates.

struct ScalarBackend {
  using Value = Trit;
  static constexpr int kLanes = 1;
  [[nodiscard]] static constexpr Value splat(Trit t) noexcept { return t; }
  [[nodiscard]] static constexpr Value eval(CellKind k, Value a, Value b,
                                            Value c) noexcept {
    return cell_eval(k, a, b, c);
  }
  [[nodiscard]] static constexpr Trit get_lane(const Value& v, int) noexcept {
    return v;
  }
  static constexpr void set_lane(Value& v, int, Trit t) noexcept { v = t; }
};

struct Packed64Backend {
  using Value = PackedTrit;
  static constexpr int kLanes = 64;
  [[nodiscard]] static constexpr Value splat(Trit t) noexcept {
    return PackedTrit::splat(t);
  }
  [[nodiscard]] static constexpr Value eval(CellKind k, Value a, Value b,
                                            Value c) noexcept {
    return cell_eval_packed(k, a, b, c);
  }
  [[nodiscard]] static constexpr Trit get_lane(const Value& v,
                                               int lane) noexcept {
    return v.lane(lane);
  }
  static constexpr void set_lane(Value& v, int lane, Trit t) noexcept {
    v.set_lane(lane, t);
  }
};

struct Packed256Backend {
  using Value = PackedTrit256;
  static constexpr int kLanes = PackedTrit256::kLanes;
  [[nodiscard]] static constexpr Value splat(Trit t) noexcept {
    return PackedTrit256::splat(t);
  }
  [[nodiscard]] static constexpr Value eval(CellKind k, const Value& a,
                                            const Value& b,
                                            const Value& c) noexcept {
    return cell_eval_wide(k, a, b, c);
  }
  [[nodiscard]] static constexpr Trit get_lane(const Value& v,
                                               int lane) noexcept {
    return v.lane(lane);
  }
  static constexpr void set_lane(Value& v, int lane, Trit t) noexcept {
    v.set_lane(lane, t);
  }
};

// --- Templated executor -----------------------------------------------------

/// Executes a CompiledProgram over one lane backend. Non-owning: the program
/// must outlive the executor. Reusable; the slot buffer is allocated once.
template <class Backend>
class CompiledExecutor {
 public:
  using Value = typename Backend::Value;

  explicit CompiledExecutor(const CompiledProgram& prog)
      : prog_(&prog), slots_(prog.slot_count()) {
    for (const CompiledProgram::ConstInit& c : prog_->const_inits()) {
      slots_[c.slot] = Backend::splat(c.value);
    }
  }

  /// `inputs` are assigned to primary inputs in creation order (one Value
  /// per input, each carrying Backend::kLanes independent vectors). Returns
  /// the full slot buffer; valid until the next run().
  std::span<const Value> run(std::span<const Value> inputs) {
    const std::span<const std::uint32_t> in_slots = prog_->input_slots();
    assert(inputs.size() == in_slots.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (in_slots[i] != CompiledProgram::kNoSlot) {
        slots_[in_slots[i]] = inputs[i];
      }
    }
    Value* const s = slots_.data();
    for (const CompiledOp& op : prog_->ops()) {
      s[op.out] = Backend::eval(op.kind, s[op.in[0]], s[op.in[1]], s[op.in[2]]);
    }
    return slots_;
  }

  /// Full slot buffer from the last run (same span run() returned).
  [[nodiscard]] std::span<const Value> values() const noexcept {
    return slots_;
  }

  /// Value of output o (mark_output order) from the last run.
  [[nodiscard]] const Value& output(std::size_t o) const {
    return slots_[prog_->output_slots()[o]];
  }

  /// Lane `lane` of output o from the last run.
  [[nodiscard]] Trit output_lane(std::size_t o, int lane) const {
    return Backend::get_lane(output(o), lane);
  }

  [[nodiscard]] const CompiledProgram& program() const noexcept {
    return *prog_;
  }

  /// Re-points the executor at `prog` — for owners that hold the program and
  /// an executor by value and need to fix the pointer up after a move. The
  /// new program must have the same shape (slot layout) as the one the
  /// executor was constructed with; slot contents carry over, so constants
  /// stay materialized.
  void rebind(const CompiledProgram& prog) noexcept {
    assert(prog.slot_count() == slots_.size());
    prog_ = &prog;
  }

 private:
  const CompiledProgram* prog_;
  std::vector<Value> slots_;
};

// --- Level-parallel execution -----------------------------------------------

struct LevelParallelOptions {
  /// Slices one level is split into: 0 = the pool's parallelism
  /// (workers + caller), 1 = serial.
  int tasks = 0;
  /// Levels with fewer ops than this run serially on the calling thread —
  /// the pool handoff costs more than it buys on narrow levels.
  std::size_t min_level_ops = 512;
};

/// Executes a CompiledProgram with intra-vector parallelism: every level's
/// ops are mutually independent (they read only earlier levels and write
/// disjoint slots), so wide levels are sliced into contiguous chunks that
/// run concurrently on a ThreadPool, with a barrier between levels. This
/// speeds up a single evaluation of one huge netlist (e.g. an elaborated
/// 10-channel/16-bit network) even at batch size 1 — the axis
/// BatchEvaluator's across-vector sharding cannot reach.
///
/// Requires a levelized program; with a null pool, tasks <= 1, or a
/// non-levelized schedule it degrades to the plain serial replay.
template <class Backend>
class LevelParallelExecutor {
 public:
  using Value = typename Backend::Value;

  LevelParallelExecutor(const CompiledProgram& prog, ThreadPool* pool,
                        const LevelParallelOptions& opt = {})
      : prog_(&prog),
        pool_(pool),
        opt_(opt),
        tasks_(pool == nullptr
                   ? 1
                   : (opt.tasks > 0 ? static_cast<std::size_t>(opt.tasks)
                                    : pool->parallelism())),
        slots_(prog.slot_count()) {
    for (const CompiledProgram::ConstInit& c : prog_->const_inits()) {
      slots_[c.slot] = Backend::splat(c.value);
    }
  }

  /// Same contract as CompiledExecutor::run. Safe to call from one thread
  /// at a time per executor; distinct executors over the same program can
  /// share one pool concurrently.
  std::span<const Value> run(std::span<const Value> inputs) {
    const std::span<const std::uint32_t> in_slots = prog_->input_slots();
    assert(inputs.size() == in_slots.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (in_slots[i] != CompiledProgram::kNoSlot) {
        slots_[in_slots[i]] = inputs[i];
      }
    }
    Value* const s = slots_.data();
    const auto eval_range = [s](std::span<const CompiledOp> ops) {
      for (const CompiledOp& op : ops) {
        s[op.out] =
            Backend::eval(op.kind, s[op.in[0]], s[op.in[1]], s[op.in[2]]);
      }
    };
    const std::size_t levels = prog_->level_count();
    if (pool_ == nullptr || tasks_ <= 1 || levels == 0) {
      eval_range(prog_->ops());
      return slots_;
    }
    for (std::size_t l = 0; l < levels; ++l) {
      const std::span<const CompiledOp> ops = prog_->level_ops(l);
      if (ops.size() < opt_.min_level_ops) {
        eval_range(ops);
        continue;
      }
      const std::size_t n = std::min(tasks_, ops.size());
      pool_->run_and_wait(n, [&](std::size_t t) {
        eval_range(ops.subspan(ops.size() * t / n,
                               ops.size() * (t + 1) / n - ops.size() * t / n));
      });
    }
    return slots_;
  }

  [[nodiscard]] std::span<const Value> values() const noexcept {
    return slots_;
  }
  [[nodiscard]] const Value& output(std::size_t o) const {
    return slots_[prog_->output_slots()[o]];
  }
  [[nodiscard]] Trit output_lane(std::size_t o, int lane) const {
    return Backend::get_lane(output(o), lane);
  }
  [[nodiscard]] const CompiledProgram& program() const noexcept {
    return *prog_;
  }

 private:
  const CompiledProgram* prog_;
  ThreadPool* pool_;
  LevelParallelOptions opt_;
  std::size_t tasks_;
  std::vector<Value> slots_;
};

// --- Batch evaluation -------------------------------------------------------

struct BatchOptions {
  /// Parallelism target: 0 = auto (hardware concurrency), 1 = serial.
  /// Across-vector mode shards 256-lane groups (capped by group count);
  /// level_parallel mode slices each group's levels this many ways.
  int threads = 0;
  /// Executor pool shared with other owners (e.g. one pool for a whole
  /// SortService). When null and the effective parallelism exceeds 1, the
  /// evaluator lazily creates a private pool on first parallel run() and
  /// keeps it — run() never constructs threads per call either way.
  std::shared_ptr<ThreadPool> pool;
  /// Intra-vector mode: instead of sharding lane groups across threads,
  /// run groups sequentially and parallelize *inside* each evaluation by
  /// slicing wide levels (LevelParallelExecutor). Wins on huge netlists at
  /// small batch sizes, where across-vector sharding has nothing to shard.
  bool level_parallel = false;
  /// Levels narrower than this stay serial in level_parallel mode.
  std::size_t level_min_ops = 512;
  CompileOptions compile;
};

/// High-throughput evaluation of many input vectors: packs them into
/// 256-lane groups, runs the compiled program per group, and unpacks the
/// outputs, distributing work over a persistent ThreadPool when profitable
/// (across lane groups by default, across level slices in level_parallel
/// mode). Thread-safe: concurrent run() calls share the pool.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const Netlist& nl, const BatchOptions& opt = {});

  BatchEvaluator(BatchEvaluator&& other) noexcept;
  BatchEvaluator& operator=(BatchEvaluator&& other) noexcept;

  [[nodiscard]] std::size_t input_width() const noexcept {
    return prog_.input_count();
  }
  [[nodiscard]] std::size_t output_width() const noexcept {
    return prog_.output_count();
  }
  [[nodiscard]] const CompiledProgram& program() const noexcept {
    return prog_;
  }

  /// Effective parallelism target (threads knob resolved against hardware).
  [[nodiscard]] int parallelism() const noexcept { return parallel_; }

  /// The pool run() distributes onto, or nullptr while still serial (no
  /// parallel run() happened yet and none was injected).
  [[nodiscard]] const ThreadPool* pool() const noexcept {
    std::lock_guard lock(pool_mu_);
    return pool_.get();
  }

  /// Each element of `inputs` is one input vector of width input_width().
  /// Returns one output Word (width output_width()) per input vector, in
  /// order. A trailing partial lane group is handled transparently.
  [[nodiscard]] std::vector<Word> run(std::span<const Word> inputs) const;

  /// Zero-copy variant: `inputs` holds N input vectors back to back
  /// (N x input_width() trits, vector-major) and results are written into
  /// `outputs` (N x output_width() trits) — no Word construction anywhere
  /// on the path. Packing reads and unpacking writes go straight between
  /// the flat buffers and the wide lanes. Preconditions (asserted):
  /// inputs.size() divisible by input_width(), outputs sized to match.
  /// Thread-safe like run(); parallel sharding and level_parallel mode
  /// apply identically.
  void run_flat(std::span<const Trit> inputs, std::span<Trit> outputs) const;

 private:
  /// The shared pool, creating the lazily-owned one on first need.
  [[nodiscard]] ThreadPool* acquire_pool() const;

  /// Shared orchestration behind run()/run_flat(): walks `n` input vectors
  /// in 256-lane groups, calling `pack(packed, base, active)` to fill a
  /// group and `unpack(executor, base, active)` to read it back — serially,
  /// sharded across the pool, or per-level in level_parallel mode, per the
  /// options. pack/unpack may run concurrently from pool threads and must
  /// write disjoint rows.
  template <class Pack, class Unpack>
  void run_grouped(std::size_t n, Pack&& pack, Unpack&& unpack) const;

  CompiledProgram prog_;
  BatchOptions opt_;
  int parallel_ = 1;
  // Lazily-created owned pool (when opt_.pool is null): guarded so that
  // concurrent const run() calls race safely on first use.
  mutable std::mutex pool_mu_;
  mutable std::shared_ptr<ThreadPool> pool_;
};

}  // namespace mcsn
