#include "mcsn/netlist/bdd.hpp"
#include <functional>

#include <cassert>
#include <cmath>

namespace mcsn {

namespace {

constexpr std::uint64_t kFieldBits = 21;
constexpr std::uint64_t kFieldMask = (std::uint64_t{1} << kFieldBits) - 1;

std::uint64_t pack3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return (a << (2 * kFieldBits)) | (b << kFieldBits) | c;
}

}  // namespace

Bdd::Bdd(int var_count, std::size_t node_limit)
    : var_count_(var_count),
      node_limit_(std::min<std::size_t>(node_limit, kFieldMask)) {
  if (var_count < 0 || static_cast<std::uint64_t>(var_count) >= kFieldMask) {
    throw std::length_error("Bdd: variable count out of range");
  }
  nodes_.push_back(Node{kTerminalVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back(Node{kTerminalVar, kTrue, kTrue});    // 1 = true
}

Bdd::Ref Bdd::var(int i) {
  assert(i >= 0 && i < var_count_);
  return mk(i, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(int i) {
  assert(i >= 0 && i < var_count_);
  return mk(i, kTrue, kFalse);
}

Bdd::Ref Bdd::mk(int var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const std::uint64_t key =
      pack3(static_cast<std::uint64_t>(var), lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) {
    throw std::length_error("Bdd: node limit exceeded");
  }
  const Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

int Bdd::top_var(Ref f, Ref g, Ref h) const {
  int v = nodes_[f].var;
  v = std::min(v, nodes_[g].var);
  v = std::min(v, nodes_[h].var);
  return v;
}

Bdd::Ref Bdd::cofactor(Ref f, int var, bool positive) const {
  const Node& n = nodes_[f];
  if (n.var != var) return f;  // ordered: var < n.var or terminal
  return positive ? n.hi : n.lo;
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = pack3(f, g, h);
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int v = top_var(f, g, h);
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref hi = ite(cofactor(f, v, true), cofactor(g, v, true),
                     cofactor(h, v, true));
  const Ref res = mk(v, lo, hi);
  ite_cache_.emplace(key, res);
  return res;
}

std::optional<std::vector<std::optional<bool>>> Bdd::satisfy_one(
    Ref f) const {
  if (f == kFalse) return std::nullopt;
  std::vector<std::optional<bool>> assign(
      static_cast<std::size_t>(var_count_));
  Ref cur = f;
  while (cur != kTrue) {
    const Node& n = nodes_[cur];
    // Every non-false ROBDD node has a path to true; prefer the hi branch.
    if (n.hi != kFalse) {
      assign[static_cast<std::size_t>(n.var)] = true;
      cur = n.hi;
    } else {
      assign[static_cast<std::size_t>(n.var)] = false;
      cur = n.lo;
    }
  }
  return assign;
}

double Bdd::sat_count(Ref f) const {
  std::unordered_map<Ref, double> memo;
  // count(node) = number of assignments of variables var(node)..n-1
  // (inclusive) satisfying the function.
  const std::function<double(Ref)> count = [&](Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    const auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    const auto level = [this](Ref x) {
      return nodes_[x].var == kTerminalVar ? var_count_ : nodes_[x].var;
    };
    const double lo =
        count(n.lo) * std::exp2(level(n.lo) - n.var - 1);
    const double hi =
        count(n.hi) * std::exp2(level(n.hi) - n.var - 1);
    const double total = lo + hi;
    memo.emplace(r, total);
    return total;
  };
  if (f == kFalse) return 0.0;
  if (f == kTrue) return std::exp2(var_count_);
  return count(f) * std::exp2(nodes_[f].var);
}

}  // namespace mcsn
