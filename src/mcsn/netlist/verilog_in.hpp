#pragma once
// Structural Verilog reader for the subset this library emits (and any
// equivalent hand-written netlist): module header, input/output/wire
// declarations, constant wire assignments (1'b0 / 1'b1), NanGate-style cell
// instances with named pin connections, and output `assign`s. Instances may
// appear in any order; the reader topologically sorts them.
//
// Together with write_verilog this gives a round trip:
//   parse_verilog(to_verilog(nl))  ==  nl   (same cells, same function —
// the test suite checks formal ternary equivalence).

#include <optional>
#include <string>
#include <string_view>

#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct VerilogError {
  std::size_t line = 0;
  std::string message;
};

[[nodiscard]] std::optional<Netlist> parse_verilog(
    std::string_view text, VerilogError* error = nullptr);

}  // namespace mcsn
