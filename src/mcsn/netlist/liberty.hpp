#pragma once
// Liberty (.lib) subset reader/writer for cell libraries.
//
// Supports the legacy CMOS *linear* delay model, which matches this
// library's STA exactly:
//
//   library (name) {
//     cell (AND2_X1) {
//       area : 1.4875;
//       pin (A1) { direction : input;  capacitance : 1.0; }
//       pin (Z)  { direction : output;
//         timing () {
//           intrinsic_rise : 36.0;  intrinsic_fall : 36.0;
//           rise_resistance : 2.0;  fall_resistance : 2.0;
//         }
//       }
//     }
//   }
//
// intrinsic = max(intrinsic_rise/fall), slope = max(rise/fall resistance);
// input capacitance is averaged over input pins. Cells are matched to
// CellKind via cell_lib_name() (INV_X1, AND2_X1, ...); unknown cells are
// ignored. Comments (/* */ and //), multi-valued attributes and unknown
// groups/attributes are tolerated and skipped.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "mcsn/netlist/library.hpp"

namespace mcsn {

struct LibertyError {
  std::size_t line = 0;
  std::string message;
};

/// Parses a Liberty subset document. Returns nullopt and fills `error` on
/// malformed input. Cells missing from the document keep zeroed parameters.
[[nodiscard]] std::optional<CellLibrary> parse_liberty(
    std::string_view text, LibertyError* error = nullptr);

/// Writes the library in the subset format above (only cells with nonzero
/// area). parse_liberty(to_liberty(lib)) reproduces lib exactly.
void write_liberty(std::ostream& os, const CellLibrary& lib);

[[nodiscard]] std::string to_liberty(const CellLibrary& lib);

}  // namespace mcsn
