#pragma once
// Graphviz export for netlists (debugging and documentation figures).

#include <iosfwd>
#include <string>

#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Writes a `digraph` with inputs as diamonds, gates as boxes labeled with
/// the cell name, and outputs as double circles.
void write_dot(std::ostream& os, const Netlist& nl);

[[nodiscard]] std::string to_dot(const Netlist& nl);

}  // namespace mcsn
