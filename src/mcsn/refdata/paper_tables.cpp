#include "mcsn/refdata/paper_tables.hpp"

#include <array>

namespace mcsn::refdata {

std::string_view circuit_label(Circuit c) noexcept {
  switch (c) {
    case Circuit::here: return "This paper";
    case Circuit::date17: return "[2] (DATE'17)";
    case Circuit::bincomp: return "Bin-comp";
  }
  return "?";
}

namespace {

constexpr std::array<Sort2Row, 12> kTable7{{
    {Circuit::here, 2, 13, 17.486, 119},
    {Circuit::date17, 2, 34, 49.42, 268},
    {Circuit::bincomp, 2, 8, 15.582, 145},
    {Circuit::here, 4, 55, 73.752, 362},
    {Circuit::date17, 4, 160, 230.3, 498},
    {Circuit::bincomp, 4, 19, 34.58, 288},
    {Circuit::here, 8, 169, 227.29, 516},
    {Circuit::date17, 8, 504, 723.52, 827},
    {Circuit::bincomp, 8, 41, 73.752, 477},
    {Circuit::here, 16, 407, 548.016, 805},
    {Circuit::date17, 16, 1344, 1928.262, 1233},
    {Circuit::bincomp, 16, 81, 151.648, 422},
}};

constexpr std::array<NetworkRow, 48> kTable8{{
    // B = 2
    {Circuit::here, "4-sort", 2, 65, 87.402, 357},
    {Circuit::here, "7-sort", 2, 208, 279.741, 714},
    {Circuit::here, "10-sort#", 2, 377, 506.912, 912},
    {Circuit::here, "10-sortd", 2, 403, 541.968, 833},
    {Circuit::date17, "4-sort", 2, 170, 247.016, 846},
    {Circuit::date17, "7-sort", 2, 544, 790.44, 1715},
    {Circuit::date17, "10-sort#", 2, 986, 1432.62, 2285},
    {Circuit::date17, "10-sortd", 2, 1054, 1531.467, 2010},
    {Circuit::bincomp, "4-sort", 2, 40, 77.91, 478},
    {Circuit::bincomp, "7-sort", 2, 128, 249.326, 953},
    {Circuit::bincomp, "10-sort#", 2, 232, 451.815, 1284},
    {Circuit::bincomp, "10-sortd", 2, 248, 483.0, 1145},
    // B = 4
    {Circuit::here, "4-sort", 4, 275, 368.641, 640},
    {Circuit::here, "7-sort", 4, 880, 1179.528, 1014},
    {Circuit::here, "10-sort#", 4, 1595, 2137.905, 1235},
    {Circuit::here, "10-sortd", 4, 1705, 2285.514, 1133},
    {Circuit::date17, "4-sort", 4, 800, 1151.472, 1558},
    {Circuit::date17, "7-sort", 4, 2560, 3684.541, 3147},
    {Circuit::date17, "10-sort#", 4, 4640, 6678.294, 4207},
    {Circuit::date17, "10-sortd", 4, 4960, 7138.74, 3681},
    {Circuit::bincomp, "4-sort", 4, 95, 172.935, 906},
    {Circuit::bincomp, "7-sort", 4, 304, 553.28, 1810},
    {Circuit::bincomp, "10-sort#", 4, 551, 1002.848, 2429},
    {Circuit::bincomp, "10-sortd", 4, 589, 1072.099, 2143},
    // B = 8
    {Circuit::here, "4-sort", 8, 845, 1136.184, 1396},
    {Circuit::here, "7-sort", 8, 2704, 3636.08, 1921},
    {Circuit::here, "10-sort#", 8, 4901, 6590.283, 2179},
    {Circuit::here, "10-sortd", 8, 5239, 7044.541, 2059},
    {Circuit::date17, "4-sort", 8, 2520, 3617.67, 2394},
    {Circuit::date17, "7-sort", 8, 8064, 11576.32, 4715},
    {Circuit::date17, "10-sort#", 8, 14616, 20982.542, 6252},
    {Circuit::date17, "10-sortd", 8, 15624, 22429.176, 5481},
    {Circuit::bincomp, "4-sort", 8, 205, 368.641, 1475},
    {Circuit::bincomp, "7-sort", 8, 656, 1179.528, 2948},
    {Circuit::bincomp, "10-sort#", 8, 1189, 2137.905, 3945},
    {Circuit::bincomp, "10-sortd", 8, 1271, 2285.514, 3470},
    // B = 16
    {Circuit::here, "4-sort", 16, 2035, 2739.961, 2069},
    {Circuit::here, "7-sort", 16, 6512, 8767.374, 3396},
    {Circuit::here, "10-sort#", 16, 11803, 15891.12, 4030},
    {Circuit::here, "10-sortd", 16, 12617, 16987.194, 3844},
    {Circuit::date17, "4-sort", 16, 6720, 9640.75, 3396},
    {Circuit::date17, "7-sort", 16, 21504, 30849.875, 6415},
    {Circuit::date17, "10-sort#", 16, 38976, 55916.448, 8437},
    {Circuit::date17, "10-sortd", 16, 41664, 59772.132, 7458},
    {Circuit::bincomp, "4-sort", 16, 405, 530.67, 1298},
    {Circuit::bincomp, "7-sort", 16, 1296, 2425.99, 2600},
    {Circuit::bincomp, "10-sort#", 16, 2349, 4397.085, 3474},
    {Circuit::bincomp, "10-sortd", 16, 2511, 4700.304, 3050},
}};

}  // namespace

std::span<const Sort2Row> table7() { return kTable7; }

std::optional<Sort2Row> table7_row(Circuit c, int bits) {
  for (const Sort2Row& r : kTable7) {
    if (r.circuit == c && r.bits == bits) return r;
  }
  return std::nullopt;
}

std::span<const NetworkRow> table8() { return kTable8; }

std::optional<NetworkRow> table8_row(Circuit c, std::string_view network,
                                     int bits) {
  for (const NetworkRow& r : kTable8) {
    if (r.circuit == c && r.network == network && r.bits == bits) return r;
  }
  return std::nullopt;
}

}  // namespace mcsn::refdata
