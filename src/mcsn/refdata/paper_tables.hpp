#pragma once
// Published evaluation numbers from the paper (Tables 7 and 8), kept as
// reference data so every bench can print measured-vs-published side by
// side. "here" = the paper's circuit, "date17" = the DATE 2017 state of the
// art [2], "bincomp" = the non-containing binary comparator.
//
// Area is post-layout [um^2], delay pre-layout [ps], as reported.

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace mcsn::refdata {

enum class Circuit { here, date17, bincomp };

[[nodiscard]] std::string_view circuit_label(Circuit c) noexcept;

struct Sort2Row {
  Circuit circuit;
  int bits;
  std::size_t gates;
  double area;
  double delay;
};

/// Table 7: 2-sort(B) for B in {2,4,8,16}, all three designs.
[[nodiscard]] std::span<const Sort2Row> table7();

[[nodiscard]] std::optional<Sort2Row> table7_row(Circuit c, int bits);

struct NetworkRow {
  Circuit circuit;
  std::string_view network;  // "4-sort", "7-sort", "10-sort#", "10-sortd"
  int bits;
  std::size_t gates;
  double area;
  double delay;
};

/// Table 8: n-sort networks, n in {4, 7, 10#, 10d} x B in {2,4,8,16}.
[[nodiscard]] std::span<const NetworkRow> table8();

[[nodiscard]] std::optional<NetworkRow> table8_row(Circuit c,
                                                   std::string_view network,
                                                   int bits);

}  // namespace mcsn::refdata
