#include "mcsn/serve/metrics.hpp"

#include <locale>
#include <sstream>

namespace mcsn {

double MetricsSnapshot::mean_occupancy() const {
  if (batches == 0 || max_lanes == 0) return 0.0;
  return static_cast<double>(completed + failed + expired) /
         (static_cast<double>(batches) * static_cast<double>(max_lanes));
}

std::string MetricsSnapshot::json() const {
  std::ostringstream os;
  // Locale-independent output: this JSON is parsed by CI artifact tooling,
  // so a grouping/comma global locale must not leak into it.
  os.imbue(std::locale::classic());
  os << "{\"submitted\": " << submitted << ", \"completed\": " << completed
     << ", \"rejected\": " << rejected << ", \"failed\": " << failed
     << ", \"expired\": " << expired
     << ", \"batches\": " << batches << ", \"flush\": {\"lane_full\": "
     << flush_full << ", \"window\": " << flush_window
     << ", \"drain\": " << flush_drain << "}"
     << ", \"max_lanes\": " << max_lanes
     << ", \"mean_occupancy\": " << mean_occupancy()
     << ", \"batch_lanes\": " << batch_lanes.json()
     << ", \"latency_us\": " << latency_ns.json(1000.0) << "}";
  return os.str();
}

void ServiceMetrics::on_batch(std::size_t lanes, FlushCause cause,
                              const Histogram& latencies_ns,
                              std::uint64_t failed, std::uint64_t expired) {
  std::lock_guard lock(mu_);
  ++snap_.batches;
  switch (cause) {
    case FlushCause::lane_full: ++snap_.flush_full; break;
    case FlushCause::window: ++snap_.flush_window; break;
    case FlushCause::drain: ++snap_.flush_drain; break;
  }
  snap_.batch_lanes.record(lanes);
  snap_.failed += failed;
  snap_.expired += expired;
  snap_.completed += lanes - failed - expired;
  snap_.latency_ns.merge(latencies_ns);
}

}  // namespace mcsn
