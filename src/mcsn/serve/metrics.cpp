#include "mcsn/serve/metrics.hpp"

#include <algorithm>
#include <locale>
#include <sstream>

namespace mcsn {

double MetricsSnapshot::mean_occupancy() const {
  if (batches == 0 || max_lanes == 0) return 0.0;
  return static_cast<double>(completed + failed + expired) /
         (static_cast<double>(batches) * static_cast<double>(max_lanes));
}

std::string MetricsSnapshot::json() const {
  std::ostringstream os;
  // Locale-independent output: this JSON is parsed by CI artifact tooling,
  // so a grouping/comma global locale must not leak into it.
  os.imbue(std::locale::classic());
  os << "{\"submitted\": " << submitted << ", \"completed\": " << completed
     << ", \"rejected\": " << rejected << ", \"failed\": " << failed
     << ", \"expired\": " << expired
     << ", \"batches\": " << batches << ", \"flush\": {\"lane_full\": "
     << flush_full << ", \"window\": " << flush_window
     << ", \"drain\": " << flush_drain << "}"
     << ", \"max_lanes\": " << max_lanes
     << ", \"mean_occupancy\": " << mean_occupancy()
     << ", \"batch_lanes\": " << batch_lanes.json()
     << ", \"latency_us\": " << latency_ns.json(1000.0) << "}";
  return os.str();
}

void SlowRequestRing::offer(const SlowRequest& r) noexcept {
  if (capacity_ == 0) return;
  // Fast path: the ring is full and this request is not slower than its
  // floor — one relaxed load, no lock. The floor only rises, so a stale
  // read can at worst admit a request that then loses inside the lock.
  if (r.total_ns <= floor_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mu_);
  if (items_.size() < capacity_) {
    items_.push_back(r);
    if (items_.size() < capacity_) return;  // floor stays 0: still room
  } else {
    auto slowest_min =
        std::min_element(items_.begin(), items_.end(),
                         [](const SlowRequest& a, const SlowRequest& b) {
                           return a.total_ns < b.total_ns;
                         });
    if (slowest_min->total_ns >= r.total_ns) return;  // lost the re-check
    *slowest_min = r;
  }
  const auto new_min =
      std::min_element(items_.begin(), items_.end(),
                       [](const SlowRequest& a, const SlowRequest& b) {
                         return a.total_ns < b.total_ns;
                       });
  floor_.store(new_min->total_ns, std::memory_order_relaxed);
}

std::vector<SlowRequest> SlowRequestRing::snapshot() const {
  std::vector<SlowRequest> out;
  {
    std::lock_guard lock(mu_);
    out = items_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::string SlowRequestRing::json() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "[";
  bool first = true;
  for (const SlowRequest& r : snapshot()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"channels\": " << r.channels << ", \"bits\": " << r.bits
       << ", \"rounds\": " << r.rounds << ", \"total_ns\": " << r.total_ns
       << ", \"queue_ns\": " << r.queue_ns
       << ", \"execute_ns\": " << r.execute_ns
       << ", \"status\": " << static_cast<int>(r.code) << "}";
  }
  os << "]";
  return os.str();
}

ServiceMetrics::ServiceMetrics(MetricsRegistry& registry,
                               std::size_t max_lanes)
    : max_lanes_(max_lanes),
      submitted_(registry.counter("serve_submitted_total")),
      completed_(registry.counter("serve_completed_total")),
      rejected_(registry.counter("serve_rejected_total")),
      failed_(registry.counter("serve_failed_total")),
      expired_(registry.counter("serve_expired_total")),
      batches_(registry.counter("serve_batches_total")),
      flush_full_(registry.counter("serve_flush_total",
                                   {{"cause", "lane_full"}})),
      flush_window_(registry.counter("serve_flush_total",
                                     {{"cause", "window"}})),
      flush_drain_(registry.counter("serve_flush_total",
                                    {{"cause", "drain"}})),
      latency_ns_(registry.histogram("serve_latency_ns")),
      batch_lanes_(registry.histogram("serve_batch_lanes")),
      queue_ns_(registry.histogram("stage_queue_ns")),
      execute_ns_(registry.histogram("stage_execute_ns")) {}

void ServiceMetrics::on_batch(std::size_t lanes, FlushCause cause,
                              std::uint64_t failed,
                              std::uint64_t expired) noexcept {
  batches_.add();
  switch (cause) {
    case FlushCause::lane_full: flush_full_.add(); break;
    case FlushCause::window: flush_window_.add(); break;
    case FlushCause::drain: flush_drain_.add(); break;
  }
  batch_lanes_.record(lanes);
  if (failed > 0) failed_.add(failed);
  if (expired > 0) expired_.add(expired);
  completed_.add(lanes - failed - expired);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.max_lanes = max_lanes_;
  // Completion-side series first, submitted last: increments to submitted
  // happen-before the matching completion-side increments (the request
  // rides the batcher's mutex between them), so reading in the reverse
  // order keeps completed <= submitted plausible in every interleaving.
  snap.completed = completed_.value();
  snap.failed = failed_.value();
  snap.expired = expired_.value();
  snap.batches = batches_.value();
  snap.flush_full = flush_full_.value();
  snap.flush_window = flush_window_.value();
  snap.flush_drain = flush_drain_.value();
  snap.latency_ns = latency_ns_.snapshot();
  snap.batch_lanes = batch_lanes_.snapshot();
  snap.rejected = rejected_.value();
  snap.submitted = submitted_.value();
  return snap;
}

}  // namespace mcsn
