#include "mcsn/serve/sorter_pool.hpp"

namespace mcsn {

std::shared_ptr<const McSorter> SorterPool::acquire(int channels,
                                                    std::size_t bits) {
  const Key key{channels, bits};
  std::promise<std::shared_ptr<const McSorter>> building;
  Entry entry;
  bool builder = false;
  {
    std::lock_guard lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      entry = it->second;
    } else {
      entry = building.get_future().share();
      cache_.emplace(key, entry);
      builder = true;
    }
  }
  if (builder) {
    try {
      building.set_value(
          std::make_shared<const McSorter>(channels, bits, opt_));
    } catch (...) {
      building.set_exception(std::current_exception());
      std::lock_guard lock(mu_);
      cache_.erase(key);  // don't cache the failure; waiters still see it
    }
  }
  return entry.get();
}

std::size_t SorterPool::size() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace mcsn
