#include "mcsn/serve/sorter_pool.hpp"

#include <chrono>
#include <exception>
#include <new>
#include <stdexcept>
#include <string>

namespace mcsn {

namespace {

MetricsRegistry::Labels shape_labels(int channels, std::size_t bits) {
  return {{"channels", std::to_string(channels)},
          {"bits", std::to_string(bits)}};
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

SorterPool::SorterPool(McSorterOptions opt, MetricsRegistry* registry,
                       std::size_t capacity)
    : opt_(std::move(opt)), registry_(registry), capacity_(capacity) {
  if (registry_ != nullptr) {
    // Registered eagerly so the cache series exist (at zero) from the
    // first scrape — check_metrics.py asserts their presence.
    hits_ = &registry_->counter("pool_hits_total");
    misses_ = &registry_->counter("pool_misses_total");
    eviction_counter_ = &registry_->counter("pool_evictions_total");
    registry_->gauge("pool_capacity")
        .set(static_cast<std::int64_t>(capacity_));
  }
}

SorterPool::Result SorterPool::build_sorter(int channels,
                                            std::size_t bits) const {
  if (channels < 1 || bits < 1) {
    return Status::invalid_argument(
        "sorter build failed: channels and bits must be >= 1 (got " +
        std::to_string(channels) + "x" + std::to_string(bits) + ")");
  }
  // Construction first: cheap (comparator-level) and carries the
  // kInvalidArgument/kUnimplemented distinction the serve path maps to
  // wire error frames.
  StatusOr<BuiltNetwork> built =
      NetworkBuilder(builder_options(opt_)).build(channels);
  if (!built.ok()) return built.status();
  try {
    return std::make_shared<const McSorter>(std::move(*built), bits, opt_);
  } catch (const std::bad_alloc&) {
    // A legal-but-huge shape can exhaust memory during elaboration; that
    // is a resource condition (possibly transient), not a caller error.
    return Status::resource_exhausted("sorter build failed: out of memory");
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(std::string("sorter build failed: ") +
                                    e.what());
  } catch (const std::exception& e) {
    return Status::internal(std::string("sorter build failed: ") + e.what());
  }
}

StatusOr<std::shared_ptr<const McSorter>> SorterPool::acquire(
    int channels, std::size_t bits) {
  const Key key{channels, bits};
  std::promise<Result> building;
  std::shared_future<Result> fut;
  bool builder = false;
  {
    std::lock_guard lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Touch: move to the hot end of the LRU order.
      lru_.splice(lru_.end(), lru_, it->second.lru);
      if (hits_ != nullptr) hits_->add();
      fut = it->second.future;
    } else {
      if (misses_ != nullptr) misses_->add();
      fut = building.get_future().share();
      CacheEntry entry;
      entry.future = fut;
      lru_.push_back(key);
      entry.lru = std::prev(lru_.end());
      cache_.emplace(key, std::move(entry));
      builder = true;
    }
  }
  if (!builder) return fut.get();

  // Build outside the lock: concurrent requests for this shape wait on
  // the future; other shapes proceed unimpeded.
  const auto start = std::chrono::steady_clock::now();
  Result result = build_sorter(channels, bits);
  const std::uint64_t build_ns = elapsed_ns(start);
  building.set_value(result);

  if (result.ok() && registry_ != nullptr) {
    const auto labels = shape_labels(channels, bits);
    registry_->gauge("pool_build_ns", labels)
        .set(static_cast<std::int64_t>(build_ns));
    ShapeSeries series;
    series.batches = &registry_->counter("pool_batches_total", labels);
    series.rounds = &registry_->counter("pool_rounds_total", labels);
    series.execute_ns = &registry_->histogram("pool_execute_ns", labels);
    std::lock_guard lock(mu_);
    series_.emplace(key, series);
  }

  std::lock_guard lock(mu_);
  const auto it = cache_.find(key);
  if (!result.ok()) {
    // Don't cache the failure; waiters still see it through the future.
    if (it != cache_.end()) {
      lru_.erase(it->second.lru);
      cache_.erase(it);
    }
    return result;
  }
  if (it != cache_.end()) {
    it->second.ready = true;
    it->second.sorter = *result;
  }
  evict_idle_locked();
  if (registry_ != nullptr) {
    registry_->gauge("pool_shapes")
        .set(static_cast<std::int64_t>(cache_.size()));
  }
  return result;
}

void SorterPool::evict_idle_locked() {
  if (capacity_ == 0) return;
  auto it = lru_.begin();
  while (cache_.size() > capacity_ && it != lru_.end()) {
    const auto entry = cache_.find(*it);
    // Skip entries still building and entries whose sorter is referenced
    // outside the cache. The cache holds exactly two references — the
    // entry's shared_ptr and the copy stored inside the future's shared
    // state — so use_count() > 2 means a batch group, shard, or caller
    // still holds the program.
    if (entry == cache_.end() || !entry->second.ready ||
        entry->second.sorter.use_count() > 2) {
      ++it;
      continue;
    }
    cache_.erase(entry);
    it = lru_.erase(it);
    ++evictions_;
    if (eviction_counter_ != nullptr) eviction_counter_->add();
  }
}

Status SorterPool::warmup(std::span<const SortShape> shapes,
                          const WarmupObserver& observe) {
  Status first;
  for (const SortShape& shape : shapes) {
    const auto start = std::chrono::steady_clock::now();
    const Result result = acquire(shape.channels, shape.bits);
    const std::uint64_t build_ns = elapsed_ns(start);
    const Status status = result.ok() ? Status() : result.status();
    if (observe) observe(shape, status, build_ns);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

void SorterPool::record_batch(int channels, std::size_t bits,
                              std::size_t rounds,
                              std::uint64_t execute_ns) noexcept {
  if (registry_ == nullptr) return;
  ShapeSeries series;
  {
    std::lock_guard lock(mu_);
    const auto it = series_.find(Key{channels, bits});
    if (it == series_.end()) return;
    series = it->second;
  }
  series.batches->add();
  series.rounds->add(rounds);
  series.execute_ns->record(execute_ns);
}

std::size_t SorterPool::size() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

std::uint64_t SorterPool::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

}  // namespace mcsn
