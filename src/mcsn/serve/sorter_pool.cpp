#include "mcsn/serve/sorter_pool.hpp"

#include <chrono>
#include <string>

namespace mcsn {

namespace {

MetricsRegistry::Labels shape_labels(int channels, std::size_t bits) {
  return {{"channels", std::to_string(channels)},
          {"bits", std::to_string(bits)}};
}

}  // namespace

std::shared_ptr<const McSorter> SorterPool::acquire(int channels,
                                                    std::size_t bits) {
  const Key key{channels, bits};
  std::promise<std::shared_ptr<const McSorter>> building;
  Entry entry;
  bool builder = false;
  {
    std::lock_guard lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      entry = it->second;
    } else {
      entry = building.get_future().share();
      cache_.emplace(key, entry);
      builder = true;
    }
  }
  if (builder) {
    const auto start = std::chrono::steady_clock::now();
    try {
      building.set_value(
          std::make_shared<const McSorter>(channels, bits, opt_));
    } catch (...) {
      building.set_exception(std::current_exception());
      std::lock_guard lock(mu_);
      cache_.erase(key);  // don't cache the failure; waiters still see it
      return entry.get();
    }
    if (registry_ != nullptr) {
      const auto build_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count();
      const auto labels = shape_labels(channels, bits);
      registry_->gauge("pool_build_ns", labels).set(build_ns);
      ShapeSeries series;
      series.batches = &registry_->counter("pool_batches_total", labels);
      series.rounds = &registry_->counter("pool_rounds_total", labels);
      series.execute_ns = &registry_->histogram("pool_execute_ns", labels);
      std::lock_guard lock(mu_);
      series_.emplace(key, series);
      registry_->gauge("pool_shapes")
          .set(static_cast<std::int64_t>(series_.size()));
    }
  }
  return entry.get();
}

void SorterPool::record_batch(int channels, std::size_t bits,
                              std::size_t rounds,
                              std::uint64_t execute_ns) noexcept {
  if (registry_ == nullptr) return;
  ShapeSeries series;
  {
    std::lock_guard lock(mu_);
    const auto it = series_.find(Key{channels, bits});
    if (it == series_.end()) return;
    series = it->second;
  }
  series.batches->add();
  series.rounds->add(rounds);
  series.execute_ns->record(execute_ns);
}

std::size_t SorterPool::size() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace mcsn
