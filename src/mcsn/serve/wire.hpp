#pragma once
// Versioned, length-prefixed binary wire codec for SortRequest/SortResponse
// frames — the serialization layer every byte-stream front-end (the
// tool_sortd --framed pipe today, sockets tomorrow) shares.
//
// Frame layout (all multi-byte integers little-endian):
//
//   offset size  field
//   0      2     magic "MC" (0x4D 0x43)
//   2      1     version (1 or 2; see the versioning note below)
//   3      1     frame type (1 = request, 2 = response,
//                3 = batch request, 4 = batch response)
//   4      4     body length N
//   8      N     body
//
// Request body (type 1):
//   0      4     channels
//   4      4     bits
//   8      4     flags (bit 0: payload is u64 values, not trits)
//   12     8     deadline budget in ns (0 = no deadline), relative to
//                receipt — steady-clock instants don't cross processes.
//                Decoders clamp the budget at 2^60 ns (~36 years): beyond
//                that it is effectively "none", and re-anchoring an
//                arbitrary u64 at receipt would overflow the signed clock
//   20     ...   payload: either ceil(channels*bits/4) bytes of trits
//                packed 2 bits each (00=0, 01=1, 10=M, 11=invalid, trit i
//                in byte i/4 at bit 2*(i%4)), or channels x u64 values
//
// Response body (type 2):
//   0      4     status code (StatusCode numeric value)
//   4      4     flags (bit 0: payload is u64 values)
//   8      4     channels
//   12     4     bits
//   16     8     latency in ns
//   24     4     status message length M
//   28     M     status message (UTF-8)
//   28+M   ...   payload (same encodings; empty unless status == ok)
//
// Batch request body (type 3, version >= 2) — R same-shape rounds behind
// one header, amortizing header + syscall cost and feeding the server's
// lane engine whole groups at a time:
//   0      4     channels
//   4      4     bits
//   8      4     flags (bit 0: payload is u64 values)
//   12     8     deadline budget in ns for the whole batch (0 = none)
//   20     4     round count R (>= 1)
//   24     ...   payload: all R rounds contiguous, round-major — either
//                ceil(R*channels*bits/4) bytes of packed trits (one
//                canonical-padding tail byte for the whole batch), or
//                R x channels u64 values
//
// Batch response body (type 4, version >= 2):
//   0      4     status code
//   4      4     flags (bit 0: payload is u64 values)
//   8      4     channels
//   12     4     bits
//   16     8     latency in ns
//   24     4     round count R
//   28     4     status message length M
//   32     M     status message (UTF-8)
//   32+M   ...   payload for all R rounds (same encodings as the batch
//                request; empty unless status == ok)
//
// Stats request body (type 5, version >= 2) — admin frame asking the
// server for its live observability document; answered from the event
// loop without a trip through the batcher:
//   0      4     format (0 = JSON, 1 = Prometheus text)
//   (exactly 4 bytes; anything else is kDataLoss)
//
// Stats response body (type 6, version >= 2):
//   0      4     status code
//   4      4     format (echo of the request's)
//   8      4     status message length M
//   12     M     status message (UTF-8)
//   12+M   ...   stats document (UTF-8 text in the requested format;
//                empty unless status == ok)
//
// Versioning: encoders emit the lowest version that can represent the
// frame — single-round frames (types 1/2) stay version 1, byte-identical
// to what a v1 peer produces and accepts; batch frames (types 3/4) carry
// version 2. Decoders accept versions 1..kVersion, with batch types
// rejected under a version-1 header.
//
// Decoding is defensive end to end: bad magic, unsupported versions,
// unknown frame types/flags, corrupt length prefixes, truncated bodies,
// invalid packed trits and out-of-bounds shapes all come back as Status
// values (kDataLoss / kUnimplemented / kResourceExhausted /
// kInvalidArgument) — never exceptions, never a read past the buffer.

#include <chrono>
#include <cstdint>
#include <istream>
#include <optional>
#include <span>
#include <vector>

#include "mcsn/api/sort_api.hpp"

namespace mcsn::wire {

// The full byte-level contract (normative field tables, canonical-form
// rules, versioning policy, a worked hex example) lives in
// docs/WIRE_PROTOCOL.md; this header is the implementation's summary.

inline constexpr std::uint8_t kMagic0 = 0x4D;  // 'M'
inline constexpr std::uint8_t kMagic1 = 0x43;  // 'C'
/// Highest wire version this build speaks. Encoders emit the lowest
/// version that can represent a frame (single-round frames stay at
/// kVersionMin for v1 interop; batch frames need version 2); decoders
/// accept kVersionMin..kVersion and reject everything else.
inline constexpr std::uint8_t kVersion = 2;
/// Oldest wire version decoders still accept.
inline constexpr std::uint8_t kVersionMin = 1;
/// First version with batch frame types (3/4).
inline constexpr std::uint8_t kVersionBatch = 2;
/// First version with stats admin frame types (5/6).
inline constexpr std::uint8_t kVersionStats = 2;
/// Fixed frame header: magic(2) + version(1) + type(1) + body length(4).
inline constexpr std::size_t kHeaderSize = 8;
/// Upper bound on a body a decoder will accept; a corrupt length prefix
/// must not turn into a multi-gigabyte allocation.
inline constexpr std::size_t kMaxBody = std::size_t{1} << 24;

/// Header byte 3. Values are wire-stable: append, never renumber. The
/// batch types require a version >= kVersionBatch header; the stats
/// admin types a version >= kVersionStats header.
enum class FrameType : std::uint8_t {
  request = 1,
  response = 2,
  batch_request = 3,
  batch_response = 4,
  stats_request = 5,
  stats_response = 6,
};

/// Exposition format carried by stats frames (body field, wire-stable).
enum class StatsFormat : std::uint32_t {
  json = 0,
  prometheus = 1,
};

/// Body flag bit 0: the payload carries u64 integer values (bits <= 64)
/// instead of packed trits. All other bits must be zero in versions 1-2.
inline constexpr std::uint32_t kFlagValues = 1u << 0;

// --- encoding ---------------------------------------------------------------

/// One self-delimiting request frame. A deadline is carried as the budget
/// remaining relative to `now` (floored at 1 ns so an already-expired
/// deadline survives the trip). Requests built by from_values travel as
/// value payloads; everything else as packed trits.
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const SortRequest& request,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// One self-delimiting response frame. The payload is value-encoded only
/// when the response requested values AND every output trit is stable
/// (metastable results fall back to packed trits with the flag clear, so
/// nothing is silently mis-decoded).
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const SortResponse& response);

/// One version-2 batch request frame carrying request.rounds same-shape
/// rounds (>= 1; the request must satisfy SortRequest::validate()). The
/// deadline budget applies to the batch as a whole.
[[nodiscard]] std::vector<std::uint8_t> encode_batch_request(
    const SortRequest& request,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// One version-2 batch response frame (response.rounds rounds). Same
/// value-encoding fallback rules as encode_response.
[[nodiscard]] std::vector<std::uint8_t> encode_batch_response(
    const SortResponse& response);

/// A decoded stats response: the status of the scrape, the echoed format,
/// and (on ok) the stats document text.
struct StatsReply {
  Status status;
  StatsFormat format = StatsFormat::json;
  std::string text;
};

/// One version-2 stats request frame asking for `format`.
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request(
    StatsFormat format);

/// One version-2 stats response frame. On a non-ok status the document
/// text is omitted (an error response never carries a payload).
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(
    const StatsReply& reply);

// --- decoding ---------------------------------------------------------------

/// A validated frame header plus its body, viewing the input buffer.
struct FrameView {
  FrameType type = FrameType::request;
  std::span<const std::uint8_t> body;
  /// Total frame length (header + body) — the offset of the next frame.
  std::size_t frame_size = 0;
};

/// Validates the frame at the start of `bytes` (magic, version, type,
/// length prefix within bounds and within the buffer).
[[nodiscard]] StatusOr<FrameView> parse_frame(
    std::span<const std::uint8_t> bytes);

/// Incremental variant for non-blocking byte streams, where "not enough
/// bytes yet" is normal progress, not corruption:
///   * a complete frame at the start of `bytes` -> FrameView (consume
///     view.frame_size bytes and call again);
///   * a valid-so-far prefix (short header, or short body under an intact
///     header) -> nullopt (keep the bytes, read more);
///   * anything provably corrupt (bad magic, unsupported version, unknown
///     type, length prefix beyond kMaxBody) -> the same Status values
///     parse_frame reports. The stream is unrecoverable past this point.
/// The returned view aliases `bytes`; it is invalidated by any mutation of
/// the underlying buffer.
[[nodiscard]] StatusOr<std::optional<FrameView>> try_parse_frame(
    std::span<const std::uint8_t> bytes);

/// Decodes a request body. Deadline budgets are re-anchored at `now`.
[[nodiscard]] StatusOr<SortRequest> decode_request(
    std::span<const std::uint8_t> body,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// Decodes a response body.
[[nodiscard]] StatusOr<SortResponse> decode_response(
    std::span<const std::uint8_t> body);

/// Decodes a batch request body (frame type batch_request). Rejects a
/// zero round count (kInvalidArgument), a round count inconsistent with
/// the body length (kDataLoss), and batches over the API bounds
/// (kResourceExhausted). Deadline budgets are re-anchored at `now`.
[[nodiscard]] StatusOr<SortRequest> decode_batch_request(
    std::span<const std::uint8_t> body,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// Decodes a batch response body (frame type batch_response).
[[nodiscard]] StatusOr<SortResponse> decode_batch_response(
    std::span<const std::uint8_t> body);

/// Decodes a stats request body (frame type stats_request). Rejects any
/// body that is not exactly the 4-byte format field (kDataLoss) and
/// formats this build doesn't know (kUnimplemented).
[[nodiscard]] StatusOr<StatsFormat> decode_stats_request(
    std::span<const std::uint8_t> body);

/// Decodes a stats response body (frame type stats_response). A non-ok
/// reply carrying document text is kDataLoss, mirroring the sort
/// responses' error-payload rule.
[[nodiscard]] StatusOr<StatsReply> decode_stats_response(
    std::span<const std::uint8_t> body);

// --- stream framing ---------------------------------------------------------

/// One frame read off a byte stream.
struct Frame {
  FrameType type = FrameType::request;
  std::vector<std::uint8_t> body;
};

/// Reads exactly one frame. Returns nullopt on clean EOF (stream ended
/// before the first header byte); kDataLoss when the stream ends mid-frame
/// or the header is corrupt.
[[nodiscard]] StatusOr<std::optional<Frame>> read_frame(std::istream& in);

/// Writes one encoded frame (as produced by encode_*).
void write_frame(std::ostream& out, std::span<const std::uint8_t> frame);

}  // namespace mcsn::wire
