#pragma once
// Versioned, length-prefixed binary wire codec for SortRequest/SortResponse
// frames — the serialization layer every byte-stream front-end (the
// tool_sortd --framed pipe today, sockets tomorrow) shares.
//
// Frame layout (all multi-byte integers little-endian):
//
//   offset size  field
//   0      2     magic "MC" (0x4D 0x43)
//   2      1     version (currently 1)
//   3      1     frame type (1 = request, 2 = response)
//   4      4     body length N
//   8      N     body
//
// Request body:
//   0      4     channels
//   4      4     bits
//   8      4     flags (bit 0: payload is u64 values, not trits)
//   12     8     deadline budget in ns (0 = no deadline), relative to
//                receipt — steady-clock instants don't cross processes
//   20     ...   payload: either ceil(channels*bits/4) bytes of trits
//                packed 2 bits each (00=0, 01=1, 10=M, 11=invalid, trit i
//                in byte i/4 at bit 2*(i%4)), or channels x u64 values
//
// Response body:
//   0      4     status code (StatusCode numeric value)
//   4      4     flags (bit 0: payload is u64 values)
//   8      4     channels
//   12     4     bits
//   16     8     latency in ns
//   24     4     status message length M
//   28     M     status message (UTF-8)
//   28+M   ...   payload (same encodings; empty unless status == ok)
//
// Decoding is defensive end to end: bad magic, unsupported versions,
// unknown frame types/flags, corrupt length prefixes, truncated bodies,
// invalid packed trits and out-of-bounds shapes all come back as Status
// values (kDataLoss / kUnimplemented / kResourceExhausted /
// kInvalidArgument) — never exceptions, never a read past the buffer.

#include <chrono>
#include <cstdint>
#include <istream>
#include <optional>
#include <span>
#include <vector>

#include "mcsn/api/sort_api.hpp"

namespace mcsn::wire {

// The full byte-level contract (normative field tables, canonical-form
// rules, versioning policy, a worked hex example) lives in
// docs/WIRE_PROTOCOL.md; this header is the implementation's summary.

inline constexpr std::uint8_t kMagic0 = 0x4D;  // 'M'
inline constexpr std::uint8_t kMagic1 = 0x43;  // 'C'
/// Wire version this build speaks; decoders reject all others.
inline constexpr std::uint8_t kVersion = 1;
/// Fixed frame header: magic(2) + version(1) + type(1) + body length(4).
inline constexpr std::size_t kHeaderSize = 8;
/// Upper bound on a body a decoder will accept; a corrupt length prefix
/// must not turn into a multi-gigabyte allocation.
inline constexpr std::size_t kMaxBody = std::size_t{1} << 24;

/// Header byte 3. Values are wire-stable: append, never renumber.
enum class FrameType : std::uint8_t { request = 1, response = 2 };

/// Body flag bit 0: the payload carries u64 integer values (bits <= 64)
/// instead of packed trits. All other bits must be zero in version 1.
inline constexpr std::uint32_t kFlagValues = 1u << 0;

// --- encoding ---------------------------------------------------------------

/// One self-delimiting request frame. A deadline is carried as the budget
/// remaining relative to `now` (floored at 1 ns so an already-expired
/// deadline survives the trip). Requests built by from_values travel as
/// value payloads; everything else as packed trits.
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const SortRequest& request,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// One self-delimiting response frame. The payload is value-encoded only
/// when the response requested values AND every output trit is stable
/// (metastable results fall back to packed trits with the flag clear, so
/// nothing is silently mis-decoded).
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const SortResponse& response);

// --- decoding ---------------------------------------------------------------

/// A validated frame header plus its body, viewing the input buffer.
struct FrameView {
  FrameType type = FrameType::request;
  std::span<const std::uint8_t> body;
  /// Total frame length (header + body) — the offset of the next frame.
  std::size_t frame_size = 0;
};

/// Validates the frame at the start of `bytes` (magic, version, type,
/// length prefix within bounds and within the buffer).
[[nodiscard]] StatusOr<FrameView> parse_frame(
    std::span<const std::uint8_t> bytes);

/// Incremental variant for non-blocking byte streams, where "not enough
/// bytes yet" is normal progress, not corruption:
///   * a complete frame at the start of `bytes` -> FrameView (consume
///     view.frame_size bytes and call again);
///   * a valid-so-far prefix (short header, or short body under an intact
///     header) -> nullopt (keep the bytes, read more);
///   * anything provably corrupt (bad magic, unsupported version, unknown
///     type, length prefix beyond kMaxBody) -> the same Status values
///     parse_frame reports. The stream is unrecoverable past this point.
/// The returned view aliases `bytes`; it is invalidated by any mutation of
/// the underlying buffer.
[[nodiscard]] StatusOr<std::optional<FrameView>> try_parse_frame(
    std::span<const std::uint8_t> bytes);

/// Decodes a request body. Deadline budgets are re-anchored at `now`.
[[nodiscard]] StatusOr<SortRequest> decode_request(
    std::span<const std::uint8_t> body,
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now());

/// Decodes a response body.
[[nodiscard]] StatusOr<SortResponse> decode_response(
    std::span<const std::uint8_t> body);

// --- stream framing ---------------------------------------------------------

/// One frame read off a byte stream.
struct Frame {
  FrameType type = FrameType::request;
  std::vector<std::uint8_t> body;
};

/// Reads exactly one frame. Returns nullopt on clean EOF (stream ended
/// before the first header byte); kDataLoss when the stream ends mid-frame
/// or the header is corrupt.
[[nodiscard]] StatusOr<std::optional<Frame>> read_frame(std::istream& in);

/// Writes one encoded frame (as produced by encode_*).
void write_frame(std::ostream& out, std::span<const std::uint8_t> frame);

}  // namespace mcsn::wire
