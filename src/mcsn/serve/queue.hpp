#pragma once
// Bounded MPMC queue for the streaming sort service: blocking push gives
// producers backpressure, timed pop lets consumers double as flush timers,
// and close() drains gracefully — items already queued are still handed out,
// then pop returns nullopt.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mcsn {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (and drops `item`) if the
  /// queue is or becomes closed before space frees up. Prefer
  /// push_or_reclaim when the item must not be lost on refusal.
  [[nodiscard]] bool push(T item) {
    return !push_or_reclaim(std::move(item)).has_value();
  }

  /// Blocking push that hands `item` back instead of destroying it when the
  /// queue is (or becomes) closed: nullopt on success, the unconsumed item
  /// on refusal — so the caller can fail promises, log, or retry elsewhere.
  [[nodiscard]] std::optional<T> push_or_reclaim(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return std::optional<T>(std::move(item));
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return std::nullopt;
  }

  /// Non-blocking push: false when full or closed (item dropped).
  bool try_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    return take(lock);
  }

  /// Like pop(), but gives up at `deadline`; nullopt on timeout too.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return !items_.empty() || closed_; });
    return take(lock);
  }

  /// Stops producers (push returns false) and unblocks everyone. Consumers
  /// still drain items queued before the close.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;  // timed out, or closed + drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace mcsn
