#pragma once
// Service observability: counters, lane-occupancy, and latency quantiles,
// snapshotted into a plain struct and exported as JSON. The live recorder
// (ServiceMetrics) is internally synchronized; the snapshot is a value.

#include <cstdint>
#include <mutex>
#include <string>

#include "mcsn/util/histogram.hpp"

namespace mcsn {

/// Why a lane group left the micro-batcher.
enum class FlushCause { lane_full, window, drain };

struct MetricsSnapshot {
  std::uint64_t submitted = 0;  ///< requests admitted by submit()
  std::uint64_t completed = 0;  ///< requests completed successfully
  std::uint64_t rejected = 0;   ///< submits refused at admission (malformed
                                ///< request, service stopped, queue closed)
  std::uint64_t failed = 0;     ///< requests completed with an error status
  std::uint64_t expired = 0;    ///< requests past deadline at flush time
  std::uint64_t batches = 0;    ///< sort_batch executions
  std::uint64_t flush_full = 0;    ///< batches flushed on lane-full
  std::uint64_t flush_window = 0;  ///< batches flushed on window expiry
  std::uint64_t flush_drain = 0;   ///< batches flushed by stop()/drain
  std::size_t max_lanes = 0;       ///< configured lane-group target
  Histogram latency_ns;            ///< submit -> future fulfilled
  Histogram batch_lanes;           ///< requests per executed batch

  /// Mean fraction of the lane-group target actually filled, in [0, 1].
  [[nodiscard]] double mean_occupancy() const;

  /// One JSON object; latencies reported in microseconds.
  [[nodiscard]] std::string json() const;
};

class ServiceMetrics {
 public:
  explicit ServiceMetrics(std::size_t max_lanes) { snap_.max_lanes = max_lanes; }

  void on_submitted() {
    std::lock_guard lock(mu_);
    ++snap_.submitted;
  }
  void on_rejected() {
    std::lock_guard lock(mu_);
    ++snap_.rejected;
  }

  /// Records one executed batch: `lanes` requests, flushed for `cause`,
  /// each completed request's latency in `latencies_ns`; `failed` of them
  /// carried an error status and `expired` (counted separately, not part
  /// of `failed`) were past their deadline at flush time.
  void on_batch(std::size_t lanes, FlushCause cause,
                const Histogram& latencies_ns, std::uint64_t failed,
                std::uint64_t expired = 0);

  [[nodiscard]] MetricsSnapshot snapshot() const {
    std::lock_guard lock(mu_);
    return snap_;
  }

 private:
  mutable std::mutex mu_;
  MetricsSnapshot snap_;
};

}  // namespace mcsn
