#pragma once
// Service observability, backed by the shared MetricsRegistry
// (util/metrics_registry.hpp): admission counters are relaxed atomics
// (no lock on the per-request hot path), latency/occupancy histograms
// record lock-free, and MetricsSnapshot/json() remain as the historical
// compatibility view assembled from the registry handles. Also home of
// the slow-request ring: the top-K slowest requests with per-stage
// breakdowns, kept with one relaxed load per fast request.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mcsn/api/status.hpp"
#include "mcsn/util/histogram.hpp"
#include "mcsn/util/metrics_registry.hpp"

namespace mcsn {

/// Why a lane group left the micro-batcher.
enum class FlushCause { lane_full, window, drain };

struct MetricsSnapshot {
  std::uint64_t submitted = 0;  ///< requests admitted by submit()
  std::uint64_t completed = 0;  ///< requests completed successfully
  std::uint64_t rejected = 0;   ///< submits refused at admission (malformed
                                ///< request, service stopped, queue closed)
  std::uint64_t failed = 0;     ///< requests completed with an error status
  std::uint64_t expired = 0;    ///< requests past deadline at flush time
  std::uint64_t batches = 0;    ///< sort_batch executions
  std::uint64_t flush_full = 0;    ///< batches flushed on lane-full
  std::uint64_t flush_window = 0;  ///< batches flushed on window expiry
  std::uint64_t flush_drain = 0;   ///< batches flushed by stop()/drain
  std::size_t max_lanes = 0;       ///< configured lane-group target
  Histogram latency_ns;            ///< submit -> future fulfilled
  Histogram batch_lanes;           ///< requests per executed batch

  /// Mean fraction of the lane-group target actually filled, in [0, 1].
  [[nodiscard]] double mean_occupancy() const;

  /// One JSON object; latencies reported in microseconds.
  [[nodiscard]] std::string json() const;
};

/// One slow request as captured by the ring: its shape, size, and where
/// its latency went (queue = enqueue -> batch flush, execute = flush ->
/// responses built; the difference to total is completion overhead).
struct SlowRequest {
  int channels = 0;
  std::size_t bits = 0;
  std::size_t rounds = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t execute_ns = 0;
  StatusCode code = StatusCode::kOk;
};

/// Fixed-size top-K ring of the slowest requests, by total latency.
/// offer() is designed for the completion path: a request slower than the
/// current floor takes a mutex; everything else costs one relaxed load.
/// snapshot() returns the entries sorted slowest-first.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(std::size_t capacity = 16) : capacity_(capacity) {}

  void offer(const SlowRequest& r) noexcept;

  [[nodiscard]] std::vector<SlowRequest> snapshot() const;

  /// JSON array of entry objects, slowest first; locale-independent.
  [[nodiscard]] std::string json() const;

 private:
  const std::size_t capacity_;
  /// Smallest total_ns currently held once the ring is full: the cheap
  /// pre-filter. 0 while the ring has room (every request qualifies).
  std::atomic<std::uint64_t> floor_{0};
  mutable std::mutex mu_;
  std::vector<SlowRequest> items_;
};

/// The service's recorder: thin, stable handles into a MetricsRegistry.
/// on_submitted/on_rejected are single relaxed atomic adds — they sit on
/// every request admission, where the old mutex showed up in profiles.
class ServiceMetrics {
 public:
  ServiceMetrics(MetricsRegistry& registry, std::size_t max_lanes);

  void on_submitted() noexcept { submitted_.add(); }
  void on_rejected() noexcept { rejected_.add(); }

  /// Records one executed batch of `lanes` rounds flushed for `cause`;
  /// `failed` of its requests carried an error status and `expired`
  /// (counted separately, not part of `failed`) were past their deadline
  /// at flush time.
  void on_batch(std::size_t lanes, FlushCause cause, std::uint64_t failed,
                std::uint64_t expired = 0) noexcept;

  /// Per-request submit -> response latency, in ns.
  void record_latency(std::uint64_t ns) noexcept { latency_ns_.record(ns); }
  /// Per-request enqueue -> batch-flush wait, in ns (stage histogram).
  void record_queue(std::uint64_t ns) noexcept { queue_ns_.record(ns); }
  /// Per-batch flush -> engine-done time, in ns (stage histogram).
  void record_execute(std::uint64_t ns) noexcept { execute_ns_.record(ns); }

  /// Compatibility view assembled from the registry handles. Counters are
  /// read completion-side first, so after a client observed its response
  /// the snapshot never shows completed ahead of submitted.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::size_t max_lanes_;
  Counter& submitted_;
  Counter& completed_;
  Counter& rejected_;
  Counter& failed_;
  Counter& expired_;
  Counter& batches_;
  Counter& flush_full_;
  Counter& flush_window_;
  Counter& flush_drain_;
  AtomicHistogram& latency_ns_;
  AtomicHistogram& batch_lanes_;
  AtomicHistogram& queue_ns_;
  AtomicHistogram& execute_ns_;
};

}  // namespace mcsn
