#include "mcsn/serve/batcher.hpp"

namespace mcsn {

BatchGroup MicroBatcher::drain_shard(Shard& shard, FlushCause cause) {
  BatchGroup group;
  // Move, don't copy: an empty shard must not pin the compiled program — a
  // lingering reference would make the sorter pool's LRU see the shape as
  // busy forever and never evict it. add() re-pins on the next request.
  group.sorter = std::move(shard.sorter);
  group.requests = std::move(shard.requests);
  group.flat = std::move(shard.flat);
  group.cause = cause;
  shard.requests.clear();  // moved-from: guarantee a valid empty state
  shard.flat.clear();
  if (pending_rounds_ != nullptr) {
    std::size_t rounds = 0;
    for (const PendingSort& p : group.requests) rounds += p.request.rounds;
    pending_rounds_->sub(static_cast<std::int64_t>(rounds));
    open_shards_->sub(1);
  }
  return group;
}

MicroBatcher::AddResult MicroBatcher::add(
    std::shared_ptr<const McSorter> sorter, PendingSort pending,
    std::chrono::steady_clock::time_point now) {
  const std::pair<int, std::size_t> key{sorter->channels(), sorter->bits()};
  AddResult result;
  std::lock_guard lock(mu_);
  Shard& shard = shards_[key];
  if (shard.requests.empty()) {
    shard.sorter = std::move(sorter);
    shard.oldest = now;
    shard.requests.reserve(max_lanes_);
    shard.flat.reserve(max_lanes_ * pending.request.shape.trits());
    result.window_started = true;
  }
  // Stage the payload contiguously; from here on the group owns the trits,
  // so a view request's backing buffer is released before the caller even
  // sees its future. A batched request stages all of its rounds at once
  // and counts as that many lanes toward the flush threshold.
  const std::size_t round_trits = pending.request.shape.trits();
  const std::size_t rounds = pending.request.rounds;
  shard.flat.insert(shard.flat.end(), pending.request.payload.begin(),
                    pending.request.payload.end());
  pending.request.payload = {};
  pending.request.storage.reset();
  shard.requests.push_back(std::move(pending));
  if (pending_rounds_ != nullptr) {
    pending_rounds_->add(static_cast<std::int64_t>(rounds));
    if (result.window_started) open_shards_->add(1);
    staged_total_->add(rounds);
  }
  if (round_trits == 0 || shard.flat.size() / round_trits >= max_lanes_) {
    result.full = drain_shard(shard, FlushCause::lane_full);
    result.window_started = false;  // the window closed with the group
  }
  return result;
}

std::vector<BatchGroup> MicroBatcher::take_expired(
    std::chrono::steady_clock::time_point now) {
  std::vector<BatchGroup> groups;
  std::lock_guard lock(mu_);
  for (auto& [key, shard] : shards_) {
    if (!shard.requests.empty() && shard.oldest + window_ <= now) {
      groups.push_back(drain_shard(shard, FlushCause::window));
    }
  }
  return groups;
}

std::vector<BatchGroup> MicroBatcher::take_all() {
  std::vector<BatchGroup> groups;
  std::lock_guard lock(mu_);
  for (auto& [key, shard] : shards_) {
    if (!shard.requests.empty()) {
      groups.push_back(drain_shard(shard, FlushCause::drain));
    }
  }
  return groups;
}

std::optional<std::chrono::steady_clock::time_point>
MicroBatcher::next_deadline() const {
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::lock_guard lock(mu_);
  for (const auto& [key, shard] : shards_) {
    if (shard.requests.empty()) continue;
    const auto d = shard.oldest + window_;
    if (!deadline || d < *deadline) deadline = d;
  }
  return deadline;
}

bool MicroBatcher::empty() const { return pending() == 0; }

std::size_t MicroBatcher::pending() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, shard] : shards_) n += shard.requests.size();
  return n;
}

}  // namespace mcsn
