#include "mcsn/serve/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "mcsn/core/gray.hpp"

namespace mcsn {

namespace {

ServeOptions sanitize(ServeOptions opt) {
  opt.workers = std::max(1, opt.workers);
  opt.max_lanes = std::max<std::size_t>(1, opt.max_lanes);
  opt.max_inflight = std::max<std::size_t>(1, opt.max_inflight);
  opt.ready_capacity = std::max<std::size_t>(1, opt.ready_capacity);
  if (opt.flush_window < std::chrono::microseconds(0)) {
    opt.flush_window = std::chrono::microseconds(0);
  }
  // Engine parallelism is one persistent pool shared by every worker and
  // every pooled sorter (see ServeOptions::sorter), so thread count is
  // additive (workers + pool), never multiplicative. With no pool and no
  // explicit thread count the engine stays serial inside a worker — the
  // workers knob remains the service's parallelism unit.
  BatchOptions& batch = opt.sorter.batch;
  if (batch.pool) {
    if (batch.threads <= 0) {
      batch.threads = static_cast<int>(batch.pool->parallelism());
    }
  } else if (batch.threads > 1) {
    batch.pool =
        std::make_shared<ThreadPool>(static_cast<std::size_t>(batch.threads - 1));
  } else {
    batch.threads = 1;
  }
  return opt;
}

}  // namespace

SortService::SortService(ServeOptions opt)
    : opt_(sanitize(std::move(opt))),
      pool_(opt_.sorter),
      batcher_(opt_.max_lanes, opt_.flush_window),
      ready_(opt_.ready_capacity),
      metrics_(opt_.max_lanes) {
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back(&SortService::worker_loop, this);
  }
}

SortService::~SortService() { stop(); }

std::future<std::vector<Word>> SortService::submit(std::vector<Word> round) {
  if (round.empty()) {
    throw std::invalid_argument("SortService::submit: empty round");
  }
  const std::size_t bits = round.front().size();
  if (bits == 0) {
    throw std::invalid_argument("SortService::submit: zero-width words");
  }
  for (const Word& w : round) {
    if (w.size() != bits) {
      throw std::invalid_argument("SortService::submit: ragged round");
    }
  }
  const int channels = static_cast<int>(round.size());

  // Early, non-authoritative rejection (the shared-lock check below is the
  // real one): don't compile a novel shape's sorter for a stopped service.
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.on_rejected();
    throw std::runtime_error("SortService: stopped");
  }

  // Compiles the shape's sorter on first sight (milliseconds); later
  // requests hit the pool. Deliberately outside the lifecycle lock.
  std::shared_ptr<const McSorter> sorter = pool_.acquire(channels, bits);

  // Backpressure: wait for an inflight slot (workers free them as batches
  // complete); stop() aborts the wait.
  {
    std::unique_lock lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] {
      return inflight_ < opt_.max_inflight ||
             !accepting_.load(std::memory_order_relaxed);
    });
    if (!accepting_.load(std::memory_order_relaxed)) {
      metrics_.on_rejected();
      throw std::runtime_error("SortService: stopped");
    }
    ++inflight_;
  }

  std::shared_lock lifecycle(lifecycle_mu_);
  if (!accepting_.load(std::memory_order_relaxed)) {
    release_inflight(1);
    metrics_.on_rejected();
    throw std::runtime_error("SortService: stopped");
  }

  const auto now = std::chrono::steady_clock::now();
  SortRequest request;
  request.round = std::move(round);
  request.enqueued = now;
  std::future<std::vector<Word>> future = request.result.get_future();

  // Counted before the batcher sees the request: once it's in a shard, a
  // concurrent flush may complete it, and completed must never outrun
  // submitted in a snapshot.
  metrics_.on_submitted();
  MicroBatcher::AddResult added =
      batcher_.add(std::move(sorter), std::move(request), now);
  if (added.full) {
    // A refused push must not drop the group: its promises (including the
    // one whose future this call returns) would die unfulfilled and its
    // inflight slots would leak, wedging every later submitter at the
    // backpressure gate. publish_ready fails the group explicitly instead;
    // this caller then sees the failure through its own future.
    publish_ready(std::move(*added.full));
  } else if (added.window_started) {
    // Wake a worker so it tracks the fresh shard's flush deadline; an empty
    // group is the kick (workers skip it and recompute their deadline).
    // Best-effort: with the queue full the workers are awake anyway.
    ready_.try_push(BatchGroup{});
  }
  return future;
}

std::vector<Word> SortService::sort(std::vector<Word> round) {
  return submit(std::move(round)).get();
}

std::vector<std::uint64_t> SortService::sort_values(
    const std::vector<std::uint64_t>& values, std::size_t bits) {
  std::vector<Word> round;
  round.reserve(values.size());
  for (const std::uint64_t v : values) round.push_back(gray_encode(v, bits));
  const std::vector<Word> sorted = sort(std::move(round));
  std::vector<std::uint64_t> out;
  out.reserve(sorted.size());
  for (const Word& w : sorted) out.push_back(gray_decode(w));
  return out;
}

void SortService::stop() {
  {
    std::unique_lock lifecycle(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_relaxed);
  }
  inflight_cv_.notify_all();  // abort submitters blocked on backpressure
  for (BatchGroup& group : batcher_.take_all()) {
    // Blocks while full (workers are still draining). The queue isn't
    // closed yet so the push should succeed, but a refusal must still fail
    // the group's promises rather than strand every waiter.
    publish_ready(std::move(group));
  }
  ready_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void SortService::worker_loop() {
  for (;;) {
    // Sweep expired shards every iteration — not only when the ready queue
    // runs dry — so sustained full-group traffic of one shape can't starve
    // another shape's window flush past its deadline.
    for (BatchGroup& expired :
         batcher_.take_expired(std::chrono::steady_clock::now())) {
      execute(std::move(expired));
    }
    const std::optional<std::chrono::steady_clock::time_point> deadline =
        batcher_.next_deadline();
    std::optional<BatchGroup> group =
        deadline ? ready_.pop_until(*deadline) : ready_.pop();
    if (group) {
      execute(std::move(*group));
      continue;
    }
    if (ready_.closed() && ready_.empty()) {
      // The queue only closes during shutdown: nothing in the batcher can
      // gain lane-mates anymore, so drain it now instead of spinning on an
      // instantly-returning pop until a flush window (which may be hours)
      // expires. Concurrent workers split the groups via take_all's lock.
      for (BatchGroup& leftover : batcher_.take_all()) {
        execute(std::move(leftover));
      }
      return;
    }
  }
}

void SortService::execute(BatchGroup group) {
  if (group.requests.empty()) return;  // wake-up kick, not work
  const std::size_t n = group.requests.size();
  std::vector<std::vector<Word>> rounds;
  rounds.reserve(n);
  for (SortRequest& r : group.requests) rounds.push_back(std::move(r.round));

  // Metrics are recorded *before* the promises resolve, so a client that
  // observed its future complete also observes the batch in the metrics.
  try {
    std::vector<std::vector<Word>> sorted = group.sorter->sort_batch(rounds);
    const auto now = std::chrono::steady_clock::now();
    Histogram latencies;
    for (const SortRequest& r : group.requests) {
      latencies.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                               r.enqueued)
              .count()));
    }
    metrics_.on_batch(n, group.cause, latencies, 0);
    for (std::size_t i = 0; i < n; ++i) {
      group.requests[i].result.set_value(std::move(sorted[i]));
    }
  } catch (...) {
    metrics_.on_batch(n, group.cause, Histogram{}, n);
    const std::exception_ptr ex = std::current_exception();
    for (SortRequest& r : group.requests) r.result.set_exception(ex);
  }
  release_inflight(n);
}

void SortService::publish_ready(BatchGroup group) {
  if (std::optional<BatchGroup> refused =
          ready_.push_or_reclaim(std::move(group))) {
    fail_group(std::move(*refused), "SortService: batch queue closed");
  }
}

void SortService::fail_group(BatchGroup group, const char* reason) {
  const std::size_t n = group.requests.size();
  if (n == 0) return;
  const std::exception_ptr ex =
      std::make_exception_ptr(std::runtime_error(reason));
  for (SortRequest& r : group.requests) {
    metrics_.on_rejected();
    r.result.set_exception(ex);
  }
  release_inflight(n);
}

void SortService::release_inflight(std::size_t n) {
  {
    std::lock_guard lock(inflight_mu_);
    inflight_ -= std::min(n, inflight_);
  }
  inflight_cv_.notify_all();
}

}  // namespace mcsn
