#include "mcsn/serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcsn {

namespace {

using Clock = std::chrono::steady_clock;

ServeOptions sanitize(ServeOptions opt) {
  opt.workers = std::max(1, opt.workers);
  opt.max_lanes = std::max<std::size_t>(1, opt.max_lanes);
  opt.max_inflight = std::max<std::size_t>(1, opt.max_inflight);
  opt.ready_capacity = std::max<std::size_t>(1, opt.ready_capacity);
  if (opt.flush_window < std::chrono::microseconds(0)) {
    opt.flush_window = std::chrono::microseconds(0);
  }
  // Engine parallelism is one persistent pool shared by every worker and
  // every pooled sorter (see ServeOptions::sorter), so thread count is
  // additive (workers + pool), never multiplicative. With no pool and no
  // explicit thread count the engine stays serial inside a worker — the
  // workers knob remains the service's parallelism unit.
  BatchOptions& batch = opt.sorter.batch;
  if (batch.pool) {
    if (batch.threads <= 0) {
      batch.threads = static_cast<int>(batch.pool->parallelism());
    }
  } else if (batch.threads > 1) {
    batch.pool =
        std::make_shared<ThreadPool>(static_cast<std::size_t>(batch.threads - 1));
  } else {
    batch.threads = 1;
  }
  if (!opt.registry) opt.registry = std::make_shared<MetricsRegistry>();
  return opt;
}

}  // namespace

Status ServeOptions::validate() const {
  std::string bad;
  const auto complain = [&bad](const std::string& msg) {
    if (!bad.empty()) bad += "; ";
    bad += msg;
  };
  if (workers < 1) {
    complain("workers must be >= 1 (got " + std::to_string(workers) + ")");
  }
  if (max_lanes < 1) complain("max_lanes must be >= 1 (got 0)");
  if (flush_window < std::chrono::microseconds(0)) {
    complain("flush_window must be >= 0 (got " +
             std::to_string(flush_window.count()) + "us)");
  }
  if (max_inflight < 1) complain("max_inflight must be >= 1 (got 0)");
  if (ready_capacity < 1) complain("ready_capacity must be >= 1 (got 0)");
  if (sorter.batch.threads < 0) {
    complain("sorter.batch.threads must be >= 0 (got " +
             std::to_string(sorter.batch.threads) + ")");
  }
  if (sorter.max_channels < 1) {
    complain("sorter.max_channels must be >= 1 (got " +
             std::to_string(sorter.max_channels) + ")");
  }
  for (const SortShape& shape : warmup_shapes) {
    const std::string name = std::to_string(shape.channels) + "x" +
                             std::to_string(shape.bits);
    if (Status s = shape.validate(); !s.ok()) {
      complain("warmup shape " + name + ": " + s.message());
    } else if (shape.channels > sorter.max_channels) {
      complain("warmup shape " + name + " exceeds sorter.max_channels (" +
               std::to_string(sorter.max_channels) + ")");
    }
  }
  if (pool_capacity > 0 && warmup_shapes.size() > pool_capacity) {
    complain("warmup_shapes lists " + std::to_string(warmup_shapes.size()) +
             " shapes but pool_capacity is " + std::to_string(pool_capacity) +
             " — warmed shapes would be evicted immediately");
  }
  if (!bad.empty()) return Status::invalid_argument("ServeOptions: " + bad);
  return Status();
}

SortService::SortService(ServeOptions opt)
    : opt_(sanitize(std::move(opt))),
      pool_(opt_.sorter, opt_.registry.get(), opt_.pool_capacity),
      batcher_(opt_.max_lanes, opt_.flush_window, opt_.registry.get()),
      ready_(opt_.ready_capacity),
      metrics_(*opt_.registry, opt_.max_lanes),
      proc_stats_(*opt_.registry) {
  // Warm the pool before traffic: first requests for the listed shapes
  // hit compiled programs. Failures reach warmup_observer; the service
  // still starts (a bad warmup shape must not take serving down).
  if (!opt_.warmup_shapes.empty()) {
    (void)pool_.warmup(opt_.warmup_shapes, opt_.warmup_observer);
  }
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back(&SortService::worker_loop, this);
  }
}

SortService::~SortService() { stop(); }

Status SortService::try_admit(SortRequest& request, SortCompletion& done) {
  if (Status s = request.validate(); !s.ok()) return s;

  // Early, non-authoritative rejection (the shared-lock check below is the
  // real one): don't compile a novel shape's sorter for a stopped service.
  if (!accepting_.load(std::memory_order_relaxed)) {
    return Status::unavailable("SortService: stopped");
  }

  // Compiles the shape's sorter on first sight (milliseconds); later
  // requests hit the pool cache. Deliberately outside the lifecycle lock.
  // The pool maps every construction failure to a Status — degenerate
  // shapes come back kInvalidArgument, shapes beyond the configured
  // construction bound kUnimplemented, allocation failure
  // kResourceExhausted — so unbuildable shapes become proper error
  // responses (wire error frames) instead of exceptions in a worker.
  StatusOr<std::shared_ptr<const McSorter>> sorter =
      pool_.acquire(request.shape.channels, request.shape.bits);
  if (!sorter.ok()) return sorter.status();

  // Backpressure: wait for an inflight slot (workers free them as batches
  // complete); stop() aborts the wait. Inflight is counted in rounds, so a
  // batched request takes as many slots as the work it carries (a batch
  // may overshoot the cap by its own size, same soft bound as before).
  const std::size_t weight = request.rounds;
  {
    std::unique_lock lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] {
      return inflight_ < opt_.max_inflight ||
             !accepting_.load(std::memory_order_relaxed);
    });
    if (!accepting_.load(std::memory_order_relaxed)) {
      return Status::unavailable("SortService: stopped");
    }
    inflight_ += weight;
  }

  std::shared_lock lifecycle(lifecycle_mu_);
  if (!accepting_.load(std::memory_order_relaxed)) {
    release_inflight(weight);
    return Status::unavailable("SortService: stopped");
  }

  const auto now = Clock::now();
  PendingSort pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending.enqueued = now;

  // Counted before the batcher sees the request: once it's in a shard, a
  // concurrent flush may complete it, and completed must never outrun
  // submitted in a snapshot.
  metrics_.on_submitted();
  MicroBatcher::AddResult added =
      batcher_.add(std::move(*sorter), std::move(pending), now);
  if (added.full) {
    // A refused push must not drop the group: its completions (including
    // the one this call admitted) would die uninvoked and its inflight
    // slots would leak, wedging every later submitter at the backpressure
    // gate. publish_ready fails the group explicitly instead; this caller
    // then sees the failure through its own completion.
    publish_ready(std::move(*added.full));
  } else if (added.window_started) {
    // Wake a worker so it tracks the fresh shard's flush deadline; an empty
    // group is the kick (workers skip it and recompute their deadline).
    // Best-effort: with the queue full the workers are awake anyway.
    ready_.try_push(BatchGroup{});
  }
  return Status();
}

void SortService::submit(SortRequest request, SortCompletion done) {
  Status admitted = try_admit(request, done);
  if (!admitted.ok()) {
    // try_admit left both untouched: complete inline with the failure.
    metrics_.on_rejected();
    done(SortResponse::failure(std::move(admitted), request.shape,
                               request.values_requested,
                               std::max<std::size_t>(request.rounds, 1)));
  }
}

std::future<SortResponse> SortService::submit(SortRequest request) {
  std::promise<SortResponse> promise;
  std::future<SortResponse> future = promise.get_future();
  submit(std::move(request),
         [promise = std::move(promise)](SortResponse response) mutable {
           promise.set_value(std::move(response));
         });
  return future;
}

std::future<std::vector<Word>> SortService::submit(std::vector<Word> round) {
  // from_words performs the historical validation (empty round, zero-width
  // words, ragged rounds) and its failures keep surfacing as the
  // historical synchronous std::invalid_argument.
  StatusOr<SortRequest> request = SortRequest::from_words(round);
  if (!request.ok()) {
    throw std::invalid_argument("SortService::submit: " +
                                request.status().to_string());
  }
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.on_rejected();
    throw std::runtime_error("SortService: stopped");
  }
  // Historical contract: results arrive as Words and failures as exceptions
  // on the future, so adapt the response inside the completion.
  std::promise<std::vector<Word>> promise;
  std::future<std::vector<Word>> future = promise.get_future();
  submit(std::move(*request),
         [promise = std::move(promise)](SortResponse response) mutable {
           if (response.status.ok()) {
             promise.set_value(response.words());
           } else if (response.status.code() == StatusCode::kInvalidArgument) {
             promise.set_exception(std::make_exception_ptr(
                 std::invalid_argument(response.status.to_string())));
           } else {
             promise.set_exception(std::make_exception_ptr(
                 std::runtime_error(response.status.to_string())));
           }
         });
  return future;
}

std::vector<Word> SortService::sort(std::vector<Word> round) {
  return submit(std::move(round)).get();
}

std::vector<std::uint64_t> SortService::sort_values(
    const std::vector<std::uint64_t>& values, std::size_t bits) {
  StatusOr<SortRequest> request = SortRequest::from_values(
      SortShape{static_cast<int>(values.size()), bits}, values);
  if (!request.ok()) {
    // Covers bits > 64 (uint64_t values cannot fill wider words) and
    // out-of-range values, with the Status message naming the culprit.
    throw std::invalid_argument("SortService::sort_values: " +
                                request.status().to_string());
  }
  const SortResponse response = submit(std::move(*request)).get();
  if (!response.status.ok()) {
    throw std::runtime_error("SortService::sort_values: " +
                             response.status.to_string());
  }
  StatusOr<std::vector<std::uint64_t>> decoded = response.values();
  if (!decoded.ok()) {
    throw std::runtime_error("SortService::sort_values: " +
                             decoded.status().to_string());
  }
  return std::move(*decoded);
}

void SortService::stop() {
  {
    std::unique_lock lifecycle(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_relaxed);
  }
  inflight_cv_.notify_all();  // abort submitters blocked on backpressure
  for (BatchGroup& group : batcher_.take_all()) {
    // Blocks while full (workers are still draining). The queue isn't
    // closed yet so the push should succeed, but a refusal must still fail
    // the group's completions rather than strand every waiter.
    publish_ready(std::move(group));
  }
  ready_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void SortService::worker_loop() {
  for (;;) {
    // Sweep expired shards every iteration — not only when the ready queue
    // runs dry — so sustained full-group traffic of one shape can't starve
    // another shape's window flush past its deadline.
    for (BatchGroup& expired :
         batcher_.take_expired(std::chrono::steady_clock::now())) {
      execute(std::move(expired));
    }
    const std::optional<std::chrono::steady_clock::time_point> deadline =
        batcher_.next_deadline();
    std::optional<BatchGroup> group =
        deadline ? ready_.pop_until(*deadline) : ready_.pop();
    if (group) {
      execute(std::move(*group));
      continue;
    }
    if (ready_.closed() && ready_.empty()) {
      // The queue only closes during shutdown: nothing in the batcher can
      // gain lane-mates anymore, so drain it now instead of spinning on an
      // instantly-returning pop until a flush window (which may be hours)
      // expires. Concurrent workers split the groups via take_all's lock.
      for (BatchGroup& leftover : batcher_.take_all()) {
        execute(std::move(leftover));
      }
      return;
    }
  }
}

void SortService::execute(BatchGroup group) {
  if (group.requests.empty()) return;  // wake-up kick, not work
  const std::size_t n = group.requests.size();
  const std::size_t round_trits = group.sorter->shape().trits();
  // Request i occupies rounds(i) consecutive rounds of `flat`; all-single
  // groups reduce to the historical one-row-per-request layout.
  const auto rounds_of = [&group](std::size_t i) {
    return group.requests[i].request.rounds;
  };

  // Deadline policy: expiry is judged once, at flush time. A request whose
  // deadline passed while it waited for lane-mates is failed with
  // kDeadlineExceeded instead of being sorted late (a batched request
  // expires as a whole); the rest of the group is compacted and still
  // sorted.
  const auto flushed_at = Clock::now();
  std::vector<char> expired(n, 0);
  std::size_t n_expired = 0;
  std::size_t total_rounds = 0;
  std::size_t live_rounds = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& deadline = group.requests[i].request.deadline;
    total_rounds += rounds_of(i);
    if (deadline && *deadline < flushed_at) {
      expired[i] = 1;
      ++n_expired;
    } else {
      live_rounds += rounds_of(i);
    }
  }
  const std::size_t n_live = n - n_expired;

  Status run_status;
  std::vector<Trit> out(live_rounds * round_trits);
  if (n_live > 0) {
    std::span<const Trit> in(group.flat);
    std::vector<Trit> compacted;
    if (n_expired > 0) {
      compacted.reserve(live_rounds * round_trits);
      std::size_t offset = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t width = rounds_of(i) * round_trits;
        if (!expired[i]) {
          const auto row =
              group.flat.begin() + static_cast<std::ptrdiff_t>(offset);
          compacted.insert(compacted.end(), row,
                           row + static_cast<std::ptrdiff_t>(width));
        }
        offset += width;
      }
      in = compacted;
    }
    try {
      run_status = group.sorter->sort_batch_flat(in, out);
    } catch (const std::exception& e) {
      run_status = Status::internal(e.what());
    } catch (...) {
      run_status = Status::internal("sort_batch_flat threw");
    }
  }

  // Metrics are recorded *before* the completions run, so a client that
  // observed its response also observes the batch in the metrics. Lane
  // occupancy is measured in rounds (what actually fills engine lanes);
  // failed/expired stay per-request.
  const auto done_at = Clock::now();
  const auto since_ns = [](Clock::time_point from, Clock::time_point to) {
    return static_cast<std::uint64_t>(
        std::max<std::int64_t>(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                   .count()));
  };
  const std::uint64_t execute_ns = since_ns(flushed_at, done_at);
  if (n_live > 0) metrics_.record_execute(execute_ns);
  for (std::size_t i = 0; i < n; ++i) {
    const PendingSort& pending = group.requests[i];
    const std::uint64_t queue_ns = since_ns(pending.enqueued, flushed_at);
    const std::uint64_t total_ns = since_ns(pending.enqueued, done_at);
    metrics_.record_queue(queue_ns);
    if (!expired[i] && run_status.ok()) metrics_.record_latency(total_ns);
    SlowRequest slow;
    slow.channels = pending.request.shape.channels;
    slow.bits = pending.request.shape.bits;
    slow.rounds = pending.request.rounds;
    slow.total_ns = total_ns;
    slow.queue_ns = queue_ns;
    slow.execute_ns = expired[i] ? 0 : execute_ns;
    slow.code = expired[i] ? StatusCode::kDeadlineExceeded
                           : run_status.code();
    slow_ring_.offer(slow);
  }
  metrics_.on_batch(total_rounds, group.cause, run_status.ok() ? 0 : n_live,
                    n_expired);
  if (n_live > 0 && run_status.ok()) {
    pool_.record_batch(group.sorter->channels(), group.sorter->bits(),
                       live_rounds, execute_ns);
  }

  std::size_t live_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PendingSort& pending = group.requests[i];
    const std::size_t width = rounds_of(i) * round_trits;
    SortResponse response;
    response.shape = pending.request.shape;
    response.rounds = pending.request.rounds;
    response.values_requested = pending.request.values_requested;
    response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
        done_at - pending.enqueued);
    if (expired[i]) {
      response.status = Status::deadline_exceeded(
          "request expired before its batch flushed");
    } else {
      response.status = run_status;
      if (run_status.ok()) {
        const auto row =
            out.begin() + static_cast<std::ptrdiff_t>(live_offset);
        response.payload.assign(row,
                                row + static_cast<std::ptrdiff_t>(width));
      }
      live_offset += width;
    }
    pending.done(std::move(response));
  }
  release_inflight(total_rounds);
}

std::string SortService::stats_json() const {
  proc_stats_.refresh();
  std::string out = "{\"metrics\": ";
  out += opt_.registry->json();
  out += ", \"slow_requests\": ";
  out += slow_ring_.json();
  out += "}";
  return out;
}

std::string SortService::stats_prometheus() const {
  proc_stats_.refresh();
  return opt_.registry->prometheus();
}

void SortService::publish_ready(BatchGroup group) {
  if (std::optional<BatchGroup> refused =
          ready_.push_or_reclaim(std::move(group))) {
    fail_group(std::move(*refused), "SortService: batch queue closed");
  }
}

void SortService::fail_group(BatchGroup group, const char* reason) {
  if (group.requests.empty()) return;
  std::size_t total_rounds = 0;
  for (PendingSort& pending : group.requests) {
    total_rounds += pending.request.rounds;
    metrics_.on_rejected();
    pending.done(SortResponse::failure(Status::unavailable(reason),
                                       pending.request.shape,
                                       pending.request.values_requested,
                                       pending.request.rounds));
  }
  release_inflight(total_rounds);
}

void SortService::release_inflight(std::size_t n) {
  {
    std::lock_guard lock(inflight_mu_);
    inflight_ -= std::min(n, inflight_);
  }
  inflight_cv_.notify_all();
}

}  // namespace mcsn
