#pragma once
// SortService — the streaming front door to the compiled batch engine.
//
// Many producer threads submit() individual measurement rounds; the service
// coalesces them into full 256-lane groups per (channels, bits) shape
// (MicroBatcher + SorterPool), executes groups on worker shards through the
// flat zero-copy engine path, and completes each submitter's future or
// callback. Small requests ride the wide engine at high occupancy instead
// of paying a full netlist evaluation each:
//
//   SortService svc({.workers = 2});
//   auto f = svc.submit(*SortRequest::from_values({4, 8}, values));
//   SortResponse rsp = f.get();              // rsp.status, rsp.payload
//
//   svc.submit(std::move(request), [](SortResponse rsp) { ... });
//
// The SortRequest path never throws: malformed requests, a stopped
// service, and deadline-expired work all come back as a SortResponse with
// the corresponding Status (the callback/future always completes exactly
// once). A request with a deadline that passed before its batch flushed is
// failed with kDeadlineExceeded instead of being sorted late. The legacy
// vector<Word> signatures remain as thin wrappers with their historical
// exception behavior.
//
// Latency/throughput trade-off is one knob: flush_window. A shard flushes
// the moment it fills max_lanes lanes (no added latency under load); a
// partial group waits at most ~2x flush_window before a worker sweeps it.
// Backpressure: at most max_inflight admitted-but-unfinished requests;
// beyond that submit() blocks. stop() (or the destructor) stops admission,
// drains every pending request, completes all futures/callbacks, and joins
// workers.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/api/sort_api.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/serve/batcher.hpp"
#include "mcsn/serve/metrics.hpp"
#include "mcsn/serve/queue.hpp"
#include "mcsn/serve/sorter_pool.hpp"
#include "mcsn/util/proc_stats.hpp"

namespace mcsn {

struct ServeOptions {
  /// Worker threads draining the batcher and executing lane groups.
  int workers = 1;
  /// Lane-group target per batch; 256 fills one wide engine pass. Larger
  /// values span several lane groups per flush, smaller trade throughput
  /// for latency.
  std::size_t max_lanes = 256;
  /// Max time a request waits for lane-mates before a partial flush.
  std::chrono::microseconds flush_window{200};
  /// Backpressure bound: admitted-but-unfinished requests before submit()
  /// blocks.
  std::size_t max_inflight = 4096;
  /// Bound on flushed-but-not-yet-executed lane groups.
  std::size_t ready_capacity = 64;
  /// Knobs for pooled sorters (network choice, sort2 style, engine).
  ///
  /// Engine threading composes with the service's workers through one
  /// shared ThreadPool instead of nesting thread sets per worker:
  ///   * sorter.batch.pool set      — every pooled sorter shards onto that
  ///     pool (inject one pool to share it across services and other
  ///     BatchEvaluator owners);
  ///   * sorter.batch.threads > 1   — the service creates one pool of
  ///     threads - 1 workers shared by all shapes and all workers;
  ///   * sorter.batch.threads == 0  — engine stays serial inside a worker
  ///     (the workers knob is the service's parallelism unit by default).
  /// Total thread count is workers + pool size — never workers x threads.
  /// sorter.batch.level_parallel rides the same pool for intra-vector
  /// slicing of huge netlists.
  McSorterOptions sorter;

  /// Bound on compiled shapes kept resident in the sorter pool (0 =
  /// unbounded). With arbitrary-shape serving the shape space is
  /// unbounded, so production deployments should set this: the pool
  /// LRU-evicts idle shapes beyond the bound (see serve/sorter_pool.hpp)
  /// and re-compiles on the next request for an evicted shape.
  std::size_t pool_capacity = 0;

  /// Shapes compiled before the service accepts traffic, so first
  /// requests for them never pay the build cost. Validated by validate();
  /// build failures are reported through warmup_observer and do not stop
  /// the service from starting.
  std::vector<SortShape> warmup_shapes;

  /// Optional per-shape warmup observer: (shape, build status, build
  /// nanoseconds). tool_sortd uses it to log per-shape build time.
  SorterPool::WarmupObserver warmup_observer;

  /// The metrics registry every serving layer (service, batcher, sorter
  /// pool, and a socket front-end built on this service) registers into.
  /// The constructor creates one when left null; set it to share a
  /// registry across services or to scrape it independently. Shared
  /// registries share same-named series (counters merge).
  std::shared_ptr<MetricsRegistry> registry;

  /// Checks every knob and reports *all* out-of-range values in one
  /// kInvalidArgument status instead of silently clamping them. CLI
  /// front-ends call this so bad flags error out; the SortService
  /// constructor still sanitizes (documented clamps) for programmatic
  /// callers that rely on the old forgiving behavior.
  [[nodiscard]] Status validate() const;
};

class SortService {
 public:
  /// Sanitizes `opt` (documented clamps; call opt.validate() first to
  /// reject instead) and starts the worker threads. The service is ready
  /// for submit() when the constructor returns.
  ///
  /// Thread-safety: every public member is safe to call from any number
  /// of threads concurrently; submissions racing stop() complete with
  /// kUnavailable rather than being dropped.
  explicit SortService(ServeOptions opt = {});
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  // --- primary (SortRequest/SortResponse) API -------------------------------

  /// Submits one request; the future completes with a SortResponse whose
  /// Status reports validation failures (kInvalidArgument), shutdown
  /// (kUnavailable), expired deadlines (kDeadlineExceeded) or engine
  /// failures (kInternal). Never throws; blocks while the service is at
  /// max_inflight.
  [[nodiscard]] std::future<SortResponse> submit(SortRequest request);

  /// Callback-completion overload: `done` is invoked exactly once with the
  /// response — inline (from this thread) on synchronous rejection, from a
  /// worker thread otherwise. Skips the promise/shared-state allocation of
  /// the futures path; the completion must not block the worker for long.
  void submit(SortRequest request, SortCompletion done);

  // --- legacy wrappers ------------------------------------------------------

  /// Submits one measurement round (channels = round.size() words of equal
  /// width) and returns the future of its sorted result. Blocks while the
  /// service is at max_inflight. Throws std::invalid_argument on a
  /// malformed round and std::runtime_error after stop(); async failures
  /// surface as exceptions on the future.
  [[nodiscard]] std::future<std::vector<Word>> submit(std::vector<Word> round);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] std::vector<Word> sort(std::vector<Word> round);

  /// Synchronous convenience over integers: Gray-encodes `values` at
  /// `bits` wide, sorts, decodes. Throws std::invalid_argument for
  /// malformed input — including bits > 64, which uint64_t values cannot
  /// fill.
  [[nodiscard]] std::vector<std::uint64_t> sort_values(
      const std::vector<std::uint64_t>& values, std::size_t bits);

  /// Stops admission, flushes and executes everything pending (every
  /// future/callback completes), then joins the workers. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Consistent point-in-time counters/histograms; safe to call from any
  /// thread, concurrently with traffic and with stop().
  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  /// metrics() rendered as locale-independent JSON.
  [[nodiscard]] std::string metrics_json() const {
    return metrics_.snapshot().json();
  }
  /// The registry this service records into (options().registry; never
  /// null after construction). Scrape it directly or register additional
  /// series — handles stay valid for the service's lifetime.
  [[nodiscard]] MetricsRegistry& registry() const noexcept {
    return *opt_.registry;
  }
  /// Top-K slowest requests with per-stage breakdowns; snapshot any time.
  [[nodiscard]] const SlowRequestRing& slow_requests() const noexcept {
    return slow_ring_;
  }
  /// Full observability document: {"metrics": <registry JSON>,
  /// "slow_requests": [...]} — what the wire stats frame and tool_sortd
  /// dumps serve. Locale-independent.
  [[nodiscard]] std::string stats_json() const;
  /// Registry in Prometheus text exposition (the slow-request ring is
  /// JSON-only; it has no natural Prometheus shape).
  [[nodiscard]] std::string stats_prometheus() const;
  /// The sanitized options this service actually runs with (clamps
  /// applied); const and safe from any thread.
  [[nodiscard]] const ServeOptions& options() const noexcept { return opt_; }
  /// Distinct request shapes seen (compiled sorters in the pool); safe
  /// from any thread.
  [[nodiscard]] std::size_t shapes() const { return pool_.size(); }

 private:
  friend struct SortServiceTestPeer;  // white-box fault injection in tests

  /// Validates, applies backpressure and enqueues. On a non-OK return the
  /// request and completion are untouched (the caller invokes `done` with
  /// the failure); on OK the batcher owns both.
  [[nodiscard]] Status try_admit(SortRequest& request, SortCompletion& done);

  void worker_loop();
  void execute(BatchGroup group);
  /// Hands a flushed group to the workers; if the ready queue refuses it
  /// (closed), fails every completion in the group instead of dropping it.
  void publish_ready(BatchGroup group);
  /// Fails all completions of a group that can no longer execute, counting
  /// each request as rejected and releasing its inflight slot.
  void fail_group(BatchGroup group, const char* reason);
  void release_inflight(std::size_t n);

  ServeOptions opt_;
  SorterPool pool_;
  MicroBatcher batcher_;
  BoundedQueue<BatchGroup> ready_;
  ServiceMetrics metrics_;
  SlowRequestRing slow_ring_;
  /// process_rss_bytes / process_open_fds gauges, refreshed on every
  /// stats_json()/stats_prometheus() render so scrapes carry live values.
  ProcStatsGauges proc_stats_;

  // Guards the submit-vs-stop race: submit holds it shared across
  // admission-check + batcher add + ready push; stop takes it exclusive to
  // flip accepting_, so no request can slip into the batcher after the
  // shutdown drain.
  std::shared_mutex lifecycle_mu_;
  std::atomic<bool> accepting_{true};
  bool stopped_ = false;  // guarded by lifecycle_mu_

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace mcsn
