#pragma once
// SortService — the streaming front door to the compiled batch engine.
//
// Many producer threads submit() individual measurement rounds; the service
// coalesces them into full 256-lane groups per (channels, bits) shape
// (MicroBatcher + SorterPool), executes groups on worker shards, and
// fulfills each submitter's future. Small requests ride the wide engine at
// high occupancy instead of paying a full netlist evaluation each:
//
//   SortService svc({.workers = 2});
//   auto f1 = svc.submit(round_a);            // returns immediately
//   auto f2 = svc.submit(round_b);
//   std::vector<Word> sorted = f1.get();      // blocks until the batch ran
//
// Latency/throughput trade-off is one knob: flush_window. A shard flushes
// the moment it fills max_lanes lanes (no added latency under load); a
// partial group waits at most ~2x flush_window before a worker sweeps it.
// Backpressure: at most max_inflight admitted-but-unfinished requests;
// beyond that submit() blocks. stop() (or the destructor) stops admission,
// drains every pending request, fulfills all futures, and joins workers.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/core/word.hpp"
#include "mcsn/serve/batcher.hpp"
#include "mcsn/serve/metrics.hpp"
#include "mcsn/serve/queue.hpp"
#include "mcsn/serve/sorter_pool.hpp"

namespace mcsn {

struct ServeOptions {
  /// Worker threads draining the batcher and executing lane groups.
  int workers = 1;
  /// Lane-group target per batch; 256 fills one wide engine pass. Larger
  /// values span several lane groups per flush, smaller trade throughput
  /// for latency.
  std::size_t max_lanes = 256;
  /// Max time a request waits for lane-mates before a partial flush.
  std::chrono::microseconds flush_window{200};
  /// Backpressure bound: admitted-but-unfinished requests before submit()
  /// blocks.
  std::size_t max_inflight = 4096;
  /// Bound on flushed-but-not-yet-executed lane groups.
  std::size_t ready_capacity = 64;
  /// Knobs for pooled sorters (network choice, sort2 style, engine).
  ///
  /// Engine threading composes with the service's workers through one
  /// shared ThreadPool instead of nesting thread sets per worker:
  ///   * sorter.batch.pool set      — every pooled sorter shards onto that
  ///     pool (inject one pool to share it across services and other
  ///     BatchEvaluator owners);
  ///   * sorter.batch.threads > 1   — the service creates one pool of
  ///     threads - 1 workers shared by all shapes and all workers;
  ///   * sorter.batch.threads == 0  — engine stays serial inside a worker
  ///     (the workers knob is the service's parallelism unit by default).
  /// Total thread count is workers + pool size — never workers x threads.
  /// sorter.batch.level_parallel rides the same pool for intra-vector
  /// slicing of huge netlists.
  McSorterOptions sorter;
};

class SortService {
 public:
  explicit SortService(ServeOptions opt = {});
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Submits one measurement round (channels = round.size() words of equal
  /// width) and returns the future of its sorted result. Blocks while the
  /// service is at max_inflight. Throws std::invalid_argument on a
  /// malformed round and std::runtime_error after stop().
  [[nodiscard]] std::future<std::vector<Word>> submit(std::vector<Word> round);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] std::vector<Word> sort(std::vector<Word> round);

  /// Synchronous convenience over integers: Gray-encodes `values` at
  /// `bits` wide, sorts, decodes.
  [[nodiscard]] std::vector<std::uint64_t> sort_values(
      const std::vector<std::uint64_t>& values, std::size_t bits);

  /// Stops admission, flushes and executes everything pending (every future
  /// completes), then joins the workers. Idempotent; the destructor calls
  /// it.
  void stop();

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  [[nodiscard]] std::string metrics_json() const {
    return metrics_.snapshot().json();
  }
  [[nodiscard]] const ServeOptions& options() const noexcept { return opt_; }
  /// Distinct request shapes seen (compiled sorters in the pool).
  [[nodiscard]] std::size_t shapes() const { return pool_.size(); }

 private:
  friend struct SortServiceTestPeer;  // white-box fault injection in tests

  void worker_loop();
  void execute(BatchGroup group);
  /// Hands a flushed group to the workers; if the ready queue refuses it
  /// (closed), fails every promise in the group instead of dropping it.
  void publish_ready(BatchGroup group);
  /// Fails all promises of a group that can no longer execute, counting
  /// each request as rejected and releasing its inflight slot.
  void fail_group(BatchGroup group, const char* reason);
  void release_inflight(std::size_t n);

  ServeOptions opt_;
  SorterPool pool_;
  MicroBatcher batcher_;
  BoundedQueue<BatchGroup> ready_;
  ServiceMetrics metrics_;

  // Guards the submit-vs-stop race: submit holds it shared across
  // admission-check + batcher add + ready push; stop takes it exclusive to
  // flip accepting_, so no request can slip into the batcher after the
  // shutdown drain.
  std::shared_mutex lifecycle_mu_;
  std::atomic<bool> accepting_{true};
  bool stopped_ = false;  // guarded by lifecycle_mu_

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace mcsn
