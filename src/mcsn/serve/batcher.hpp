#pragma once
// Adaptive micro-batcher: coalesces individual sort requests into lane
// groups for the 256-lane batch engine. Requests are sharded by shape
// (channels, bits) so heterogeneous traffic never mixes inside one group;
// a shard flushes when it fills max_lanes lanes (returned straight to the
// caller, zero added latency) or when its oldest request has waited one
// flush window (collected by take_expired, driven from the worker loop).
//
// Payloads are gathered eagerly: add() copies each request's flat trits
// into the shard's contiguous staging buffer, so a flushed BatchGroup is
// already in the exact layout McSorter::sort_batch_flat consumes — the
// executor never repacks rounds. That copy is the only one between the
// submitter's buffer and the engine lanes.
//
// Internally synchronized; time is always passed in, so tests can drive
// the window deterministically with fake clocks.

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mcsn/api/sort_api.hpp"
#include "mcsn/serve/metrics.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/util/metrics_registry.hpp"
#include "mcsn/util/unique_function.hpp"

namespace mcsn {

/// Invoked exactly once with the finished response — a promise-fulfilling
/// adapter for the futures API, or the caller's own callback.
using SortCompletion = UniqueFunction<void(SortResponse)>;

/// One admitted request waiting for lane-mates: the API request (payload
/// already staged into the shard buffer) plus its completion.
struct PendingSort {
  SortRequest request;
  SortCompletion done;
  std::chrono::steady_clock::time_point enqueued{};
};

/// A flushed group of same-shape requests, ready for one sort_batch_flat
/// call: `flat` holds each request's rounds contiguously in request order
/// (request i starts at sum of rounds of requests [0, i) times trits and
/// spans requests[i].request.rounds rounds — i*trits for all-single-round
/// groups).
struct BatchGroup {
  std::shared_ptr<const McSorter> sorter;
  std::vector<PendingSort> requests;
  std::vector<Trit> flat;
  FlushCause cause = FlushCause::lane_full;
};

class MicroBatcher {
 public:
  /// With a registry, the batcher publishes its live state as
  /// batcher_pending_rounds / batcher_open_shards gauges and a
  /// batcher_staged_rounds_total counter (all updated under the mutex it
  /// already holds).
  MicroBatcher(std::size_t max_lanes, std::chrono::nanoseconds window,
               MetricsRegistry* registry = nullptr)
      : max_lanes_(max_lanes == 0 ? 1 : max_lanes), window_(window) {
    if (registry != nullptr) {
      pending_rounds_ = &registry->gauge("batcher_pending_rounds");
      open_shards_ = &registry->gauge("batcher_open_shards");
      staged_total_ = &registry->counter("batcher_staged_rounds_total");
    }
  }

  struct AddResult {
    /// The full group, when this request topped its shard up to max_lanes.
    std::optional<BatchGroup> full;
    /// True when this request opened a fresh shard window — the caller must
    /// make sure some worker wakes by that shard's deadline.
    bool window_started = false;
  };

  /// Adds a request to its shape's shard, staging its payload into the
  /// shard's flat buffer (the request's own payload/storage are released —
  /// a zero-copy view's backing buffer is no longer referenced after this
  /// returns). `sorter` pins the compiled program the eventual group runs
  /// on; its shape must match the request's.
  [[nodiscard]] AddResult add(std::shared_ptr<const McSorter> sorter,
                              PendingSort pending,
                              std::chrono::steady_clock::time_point now);

  /// Shards whose oldest request has waited >= window at `now`.
  [[nodiscard]] std::vector<BatchGroup> take_expired(
      std::chrono::steady_clock::time_point now);

  /// Everything still pending, regardless of age (shutdown drain).
  [[nodiscard]] std::vector<BatchGroup> take_all();

  /// Earliest flush deadline over non-empty shards; nullopt when idle.
  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point>
  next_deadline() const;

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t max_lanes() const noexcept { return max_lanes_; }
  [[nodiscard]] std::chrono::nanoseconds window() const noexcept {
    return window_;
  }

 private:
  struct Shard {
    std::shared_ptr<const McSorter> sorter;
    std::vector<PendingSort> requests;
    std::vector<Trit> flat;
    std::chrono::steady_clock::time_point oldest{};
  };

  [[nodiscard]] BatchGroup drain_shard(Shard& shard, FlushCause cause);

  const std::size_t max_lanes_;
  const std::chrono::nanoseconds window_;
  /// Registry handles (null when constructed without a registry).
  Gauge* pending_rounds_ = nullptr;
  Gauge* open_shards_ = nullptr;
  Counter* staged_total_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::pair<int, std::size_t>, Shard> shards_;
};

}  // namespace mcsn
