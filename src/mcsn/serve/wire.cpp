#include "mcsn/serve/wire.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "mcsn/core/gray.hpp"

namespace mcsn::wire {

namespace {

using Clock = std::chrono::steady_clock;

// Explicit little-endian byte shuffling, portable across host endianness.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::size_t packed_trit_bytes(std::size_t trits) { return (trits + 3) / 4; }

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

void pack_trits(std::vector<std::uint8_t>& out, std::span<const Trit> trits) {
  const std::size_t base = out.size();
  out.resize(base + packed_trit_bytes(trits.size()), 0);
  for (std::size_t i = 0; i < trits.size(); ++i) {
    out[base + i / 4] |= static_cast<std::uint8_t>(
        static_cast<unsigned>(trits[i]) << (2 * (i % 4)));
  }
}

Status unpack_trits(std::span<const std::uint8_t> bytes, std::size_t count,
                    std::vector<Trit>& out) {
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned v = (bytes[i / 4] >> (2 * (i % 4))) & 3u;
    if (v > 2u) {
      return Status::data_loss("invalid packed trit at index " +
                               std::to_string(i));
    }
    out[i] = static_cast<Trit>(v);
  }
  // Canonical form: padding bits of the final byte must be zero, so every
  // payload has exactly one byte representation (and flipped garbage in
  // the tail is caught, not ignored).
  const std::size_t used = count % 4;
  if (used != 0 && (bytes[count / 4] >> (2 * used)) != 0) {
    return Status::data_loss("nonzero padding in packed trit payload");
  }
  return Status();
}

/// The payload as integers, when the intent flag is set and the trits can
/// actually be decoded (size matches the shape, bits <= 64, every trit
/// stable) — the size check doubles as the guard that keeps encoding a
/// hand-built request with a short payload from reading past its span.
std::optional<std::vector<std::uint64_t>> values_if_decodable(
    SortShape shape, std::span<const Trit> payload, bool values_requested) {
  if (!values_requested) return std::nullopt;
  StatusOr<std::vector<std::uint64_t>> values =
      decode_flat_values(shape, payload);
  if (!values.ok()) return std::nullopt;
  return std::move(*values);
}

/// The lowest version whose decoders understand `type` — what encoders
/// stamp into the header, so single-round frames stay byte-identical to
/// version 1 and only batch frames require an upgraded peer.
std::uint8_t version_for(FrameType type) {
  switch (type) {
    case FrameType::batch_request:
    case FrameType::batch_response:
      return kVersionBatch;
    case FrameType::stats_request:
    case FrameType::stats_response:
      return kVersionStats;
    case FrameType::request:
    case FrameType::response:
      break;
  }
  return kVersionMin;
}

std::vector<std::uint8_t> finish_frame(FrameType type,
                                       std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + body.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(version_for(type));
  frame.push_back(static_cast<std::uint8_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

struct Header {
  FrameType type = FrameType::request;
  std::size_t body_size = 0;
};

StatusOr<Header> parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::data_loss("truncated frame header (" +
                             std::to_string(bytes.size()) + " of " +
                             std::to_string(kHeaderSize) + " bytes)");
  }
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    return Status::data_loss("bad frame magic");
  }
  const std::uint8_t version = bytes[2];
  if (version < kVersionMin || version > kVersion) {
    return Status::unimplemented("unsupported wire version " +
                                 std::to_string(version));
  }
  const std::uint8_t type = bytes[3];
  if (type < static_cast<std::uint8_t>(FrameType::request) ||
      type > static_cast<std::uint8_t>(FrameType::stats_response)) {
    return Status::unimplemented("unknown frame type " + std::to_string(type));
  }
  if (version < version_for(static_cast<FrameType>(type))) {
    // A batch or stats type under a version-1 header: no v1 encoder
    // produces it, so it is corrupt or a confused peer — either way
    // unsupported.
    return Status::unimplemented(
        "frame type " + std::to_string(type) + " requires wire version " +
        std::to_string(version_for(static_cast<FrameType>(type))));
  }
  const std::uint32_t body_size = get_u32(bytes.data() + 4);
  if (body_size > kMaxBody) {
    return Status::resource_exhausted(
        "frame body of " + std::to_string(body_size) +
        " bytes exceeds the " + std::to_string(kMaxBody) + " byte bound");
  }
  return Header{static_cast<FrameType>(type), body_size};
}

/// Shared shape decoding + bounds checks for both body kinds.
StatusOr<SortShape> decode_shape(std::uint32_t channels, std::uint32_t bits) {
  if (channels < 1 || channels > static_cast<std::uint32_t>(kMaxChannels) ||
      bits < 1 || bits > static_cast<std::uint32_t>(kMaxBits)) {
    return Status::invalid_argument("wire shape " + std::to_string(channels) +
                                    "x" + std::to_string(bits) +
                                    " out of bounds");
  }
  return SortShape{static_cast<int>(channels), static_cast<std::size_t>(bits)};
}

/// Decoded deadline budgets are clamped here (~36 years). The wire field
/// is a full u64, but a budget is re-anchored as `now + nanoseconds(b)`
/// whose rep is a signed 64-bit count: an unclamped attacker-controlled
/// budget near 2^63 overflows that addition (undefined behavior), and one
/// above 2^63 wraps negative — turning "practically no deadline" into
/// "already expired". Found by the fuzz harness (fuzz/) under UBSan;
/// regression frames live in wire_test.
constexpr std::uint64_t kMaxDeadlineNs = std::uint64_t{1} << 60;

/// Same guard for decoded latency reports: nanoseconds' rep is signed, so
/// a u64 above 2^63 would convert to a negative latency.
constexpr std::uint64_t kMaxLatencyNs =
    static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());

constexpr std::size_t kRequestFixed = 20;   // channels..deadline
constexpr std::size_t kResponseFixed = 28;  // status..message length
constexpr std::size_t kBatchRequestFixed = 24;   // channels..round count
constexpr std::size_t kBatchResponseFixed = 32;  // status..message length
constexpr std::size_t kStatsRequestSize = 4;     // format — the whole body
constexpr std::size_t kStatsResponseFixed = 12;  // status..message length

/// Shared bound check for decoded batch round counts: nonzero and inside
/// the API batch limits (which also keep every encodable batch frame
/// under kMaxBody).
Status check_batch_rounds(std::uint32_t rounds, SortShape shape) {
  if (rounds == 0) {
    return Status::invalid_argument("zero-round batch frame");
  }
  if (rounds > kMaxBatchRounds ||
      static_cast<std::size_t>(rounds) * shape.trits() > kMaxBatchTrits) {
    return Status::resource_exhausted(
        "batch of " + std::to_string(rounds) + " rounds exceeds the " +
        std::to_string(kMaxBatchTrits) + " trit bound");
  }
  return Status();
}

/// Gray-encodes `words` u64 values (8 bytes each, caller-checked length)
/// into flat trits — the decode half both value-payload batch bodies
/// share. Fails with kDataLoss on a value out of range for shape.bits.
Status values_to_trits(SortShape shape, std::size_t words,
                       std::span<const std::uint8_t> payload,
                       std::vector<Trit>& out) {
  const std::uint64_t limit = shape.bits == 64
                                  ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << shape.bits) - 1;
  out.clear();
  out.reserve(words * shape.bits);
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t v = get_u64(payload.data() + i * 8);
    if (v > limit) {
      return Status::data_loss("payload value " + std::to_string(v) +
                               " out of range for " +
                               std::to_string(shape.bits) + " bits");
    }
    const Word w = gray_encode(v, shape.bits);
    out.insert(out.end(), w.begin(), w.end());
  }
  return Status();
}

}  // namespace

std::vector<std::uint8_t> encode_request(const SortRequest& request,
                                         Clock::time_point now) {
  std::vector<std::uint8_t> body;
  const std::optional<std::vector<std::uint64_t>> values = values_if_decodable(
      request.shape, request.payload, request.values_requested);
  put_u32(body, static_cast<std::uint32_t>(request.shape.channels));
  put_u32(body, static_cast<std::uint32_t>(request.shape.bits));
  put_u32(body, values ? kFlagValues : 0u);
  std::uint64_t deadline_ns = 0;
  if (request.deadline) {
    const auto budget = std::chrono::duration_cast<std::chrono::nanoseconds>(
        *request.deadline - now);
    // Floor at 1 ns: zero means "no deadline", and an already-expired
    // deadline must still arrive as a deadline.
    deadline_ns = budget.count() > 0
                      ? static_cast<std::uint64_t>(budget.count())
                      : 1;
  }
  put_u64(body, deadline_ns);
  if (values) {
    for (const std::uint64_t v : *values) put_u64(body, v);
  } else {
    pack_trits(body, request.payload);
  }
  return finish_frame(FrameType::request, std::move(body));
}

std::vector<std::uint8_t> encode_response(const SortResponse& response) {
  std::vector<std::uint8_t> body;
  const bool has_payload = response.status.ok();
  const std::optional<std::vector<std::uint64_t>> values =
      has_payload ? values_if_decodable(response.shape, response.payload,
                                        response.values_requested)
                  : std::nullopt;
  put_u32(body, static_cast<std::uint32_t>(response.status.code()));
  put_u32(body, values ? kFlagValues : 0u);
  put_u32(body, static_cast<std::uint32_t>(response.shape.channels));
  put_u32(body, static_cast<std::uint32_t>(response.shape.bits));
  put_u64(body, static_cast<std::uint64_t>(response.latency.count()));
  const std::string& message = response.status.message();
  put_u32(body, static_cast<std::uint32_t>(message.size()));
  body.insert(body.end(), message.begin(), message.end());
  if (has_payload) {
    if (values) {
      for (const std::uint64_t v : *values) put_u64(body, v);
    } else {
      pack_trits(body, response.payload);
    }
  }
  return finish_frame(FrameType::response, std::move(body));
}

std::vector<std::uint8_t> encode_batch_request(const SortRequest& request,
                                               Clock::time_point now) {
  std::vector<std::uint8_t> body;
  const std::optional<std::vector<std::uint64_t>> values = values_if_decodable(
      request.shape, request.payload, request.values_requested);
  put_u32(body, static_cast<std::uint32_t>(request.shape.channels));
  put_u32(body, static_cast<std::uint32_t>(request.shape.bits));
  put_u32(body, values ? kFlagValues : 0u);
  std::uint64_t deadline_ns = 0;
  if (request.deadline) {
    const auto budget = std::chrono::duration_cast<std::chrono::nanoseconds>(
        *request.deadline - now);
    deadline_ns = budget.count() > 0
                      ? static_cast<std::uint64_t>(budget.count())
                      : 1;
  }
  put_u64(body, deadline_ns);
  put_u32(body, static_cast<std::uint32_t>(request.rounds));
  if (values) {
    for (const std::uint64_t v : *values) put_u64(body, v);
  } else {
    pack_trits(body, request.payload);
  }
  return finish_frame(FrameType::batch_request, std::move(body));
}

std::vector<std::uint8_t> encode_batch_response(const SortResponse& response) {
  std::vector<std::uint8_t> body;
  const bool has_payload = response.status.ok();
  const std::optional<std::vector<std::uint64_t>> values =
      has_payload ? values_if_decodable(response.shape, response.payload,
                                        response.values_requested)
                  : std::nullopt;
  put_u32(body, static_cast<std::uint32_t>(response.status.code()));
  put_u32(body, values ? kFlagValues : 0u);
  put_u32(body, static_cast<std::uint32_t>(response.shape.channels));
  put_u32(body, static_cast<std::uint32_t>(response.shape.bits));
  put_u64(body, static_cast<std::uint64_t>(response.latency.count()));
  put_u32(body, static_cast<std::uint32_t>(response.rounds));
  const std::string& message = response.status.message();
  put_u32(body, static_cast<std::uint32_t>(message.size()));
  body.insert(body.end(), message.begin(), message.end());
  if (has_payload) {
    if (values) {
      for (const std::uint64_t v : *values) put_u64(body, v);
    } else {
      pack_trits(body, response.payload);
    }
  }
  return finish_frame(FrameType::batch_response, std::move(body));
}

std::vector<std::uint8_t> encode_stats_request(StatsFormat format) {
  std::vector<std::uint8_t> body;
  put_u32(body, static_cast<std::uint32_t>(format));
  return finish_frame(FrameType::stats_request, std::move(body));
}

std::vector<std::uint8_t> encode_stats_response(const StatsReply& reply) {
  std::vector<std::uint8_t> body;
  put_u32(body, static_cast<std::uint32_t>(reply.status.code()));
  put_u32(body, static_cast<std::uint32_t>(reply.format));
  const std::string& message = reply.status.message();
  put_u32(body, static_cast<std::uint32_t>(message.size()));
  body.insert(body.end(), message.begin(), message.end());
  if (reply.status.ok()) {
    body.insert(body.end(), reply.text.begin(), reply.text.end());
  }
  return finish_frame(FrameType::stats_response, std::move(body));
}

StatusOr<StatsFormat> decode_stats_request(std::span<const std::uint8_t> body) {
  if (body.size() != kStatsRequestSize) {
    return Status::data_loss("stats request body of " +
                             std::to_string(body.size()) +
                             " bytes, expected " +
                             std::to_string(kStatsRequestSize));
  }
  const std::uint32_t format = get_u32(body.data());
  if (format > static_cast<std::uint32_t>(StatsFormat::prometheus)) {
    return Status::unimplemented("unknown stats format " +
                                 std::to_string(format));
  }
  return static_cast<StatsFormat>(format);
}

StatusOr<StatsReply> decode_stats_response(
    std::span<const std::uint8_t> body) {
  if (body.size() < kStatsResponseFixed) {
    return Status::data_loss("stats response body truncated (" +
                             std::to_string(body.size()) + " bytes)");
  }
  const std::uint32_t code = get_u32(body.data());
  if (code > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return Status::unimplemented("unknown status code " + std::to_string(code));
  }
  const std::uint32_t format = get_u32(body.data() + 4);
  if (format > static_cast<std::uint32_t>(StatsFormat::prometheus)) {
    return Status::unimplemented("unknown stats format " +
                                 std::to_string(format));
  }
  const std::uint32_t message_len = get_u32(body.data() + 8);
  if (body.size() < kStatsResponseFixed + message_len) {
    return Status::data_loss("stats response message truncated");
  }
  StatsReply reply;
  reply.format = static_cast<StatsFormat>(format);
  reply.status = Status(
      static_cast<StatusCode>(code),
      std::string(
          reinterpret_cast<const char*>(body.data() + kStatsResponseFixed),
          message_len));
  const std::span<const std::uint8_t> text =
      body.subspan(kStatsResponseFixed + message_len);
  if (!reply.status.ok()) {
    if (!text.empty()) {
      return Status::data_loss("error stats response carries a document");
    }
    return reply;
  }
  reply.text.assign(reinterpret_cast<const char*>(text.data()), text.size());
  return reply;
}

StatusOr<FrameView> parse_frame(std::span<const std::uint8_t> bytes) {
  StatusOr<Header> header = parse_header(bytes);
  if (!header.ok()) return header.status();
  if (bytes.size() < kHeaderSize + header->body_size) {
    return Status::data_loss(
        "truncated frame body (" +
        std::to_string(bytes.size() - kHeaderSize) + " of " +
        std::to_string(header->body_size) + " bytes)");
  }
  FrameView view;
  view.type = header->type;
  view.body = bytes.subspan(kHeaderSize, header->body_size);
  view.frame_size = kHeaderSize + header->body_size;
  return view;
}

StatusOr<std::optional<FrameView>> try_parse_frame(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::optional<FrameView>(std::nullopt);
  StatusOr<Header> header = parse_header(bytes);
  if (!header.ok()) return header.status();
  if (bytes.size() < kHeaderSize + header->body_size) {
    return std::optional<FrameView>(std::nullopt);
  }
  FrameView view;
  view.type = header->type;
  view.body = bytes.subspan(kHeaderSize, header->body_size);
  view.frame_size = kHeaderSize + header->body_size;
  return std::optional<FrameView>(view);
}

StatusOr<SortRequest> decode_request(std::span<const std::uint8_t> body,
                                     Clock::time_point now) {
  if (body.size() < kRequestFixed) {
    return Status::data_loss("request body truncated (" +
                             std::to_string(body.size()) + " bytes)");
  }
  StatusOr<SortShape> shape =
      decode_shape(get_u32(body.data()), get_u32(body.data() + 4));
  if (!shape.ok()) return shape.status();
  const std::uint32_t flags = get_u32(body.data() + 8);
  if ((flags & ~kFlagValues) != 0) {
    return Status::unimplemented("unknown request flags " + hex32(flags));
  }
  const std::uint64_t deadline_ns = get_u64(body.data() + 12);
  const std::span<const std::uint8_t> payload = body.subspan(kRequestFixed);

  StatusOr<SortRequest> request = Status::internal("unreachable");
  if (flags & kFlagValues) {
    if (shape->bits > 64) {
      return Status::invalid_argument(
          "value-encoded request at bits > 64");
    }
    const std::size_t expect =
        static_cast<std::size_t>(shape->channels) * 8;
    if (payload.size() != expect) {
      return Status::data_loss("value payload of " +
                               std::to_string(payload.size()) +
                               " bytes, expected " + std::to_string(expect));
    }
    std::vector<std::uint64_t> values;
    values.reserve(static_cast<std::size_t>(shape->channels));
    for (int c = 0; c < shape->channels; ++c) {
      values.push_back(
          get_u64(payload.data() + static_cast<std::size_t>(c) * 8));
    }
    request = SortRequest::from_values(*shape, values);
  } else {
    const std::size_t expect = packed_trit_bytes(shape->trits());
    if (payload.size() != expect) {
      return Status::data_loss("trit payload of " +
                               std::to_string(payload.size()) +
                               " bytes, expected " + std::to_string(expect));
    }
    std::vector<Trit> trits;
    if (Status s = unpack_trits(payload, shape->trits(), trits); !s.ok()) {
      return s;
    }
    request = SortRequest::own(*shape, std::move(trits));
  }
  if (request.ok() && deadline_ns != 0) {
    request->deadline =
        now + std::chrono::nanoseconds(std::min(deadline_ns, kMaxDeadlineNs));
  }
  return request;
}

StatusOr<SortResponse> decode_response(std::span<const std::uint8_t> body) {
  if (body.size() < kResponseFixed) {
    return Status::data_loss("response body truncated (" +
                             std::to_string(body.size()) + " bytes)");
  }
  const std::uint32_t code = get_u32(body.data());
  if (code > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return Status::unimplemented("unknown status code " + std::to_string(code));
  }
  const std::uint32_t flags = get_u32(body.data() + 4);
  if ((flags & ~kFlagValues) != 0) {
    return Status::unimplemented("unknown response flags " + hex32(flags));
  }
  StatusOr<SortShape> shape =
      decode_shape(get_u32(body.data() + 8), get_u32(body.data() + 12));
  if (!shape.ok()) return shape.status();
  const std::uint64_t latency_ns = get_u64(body.data() + 16);
  const std::uint32_t message_len = get_u32(body.data() + 24);
  if (body.size() < kResponseFixed + message_len) {
    return Status::data_loss("response message truncated");
  }
  std::string message(
      reinterpret_cast<const char*>(body.data() + kResponseFixed),
      message_len);
  const std::span<const std::uint8_t> payload =
      body.subspan(kResponseFixed + message_len);

  SortResponse response;
  response.shape = *shape;
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.latency =
      std::chrono::nanoseconds(std::min(latency_ns, kMaxLatencyNs));
  response.values_requested = (flags & kFlagValues) != 0;
  if (!response.status.ok()) {
    if (!payload.empty()) {
      return Status::data_loss("error response carries a payload");
    }
    return response;
  }
  if (flags & kFlagValues) {
    if (shape->bits > 64) {
      return Status::invalid_argument("value-encoded response at bits > 64");
    }
    const std::size_t expect = static_cast<std::size_t>(shape->channels) * 8;
    if (payload.size() != expect) {
      return Status::data_loss("value payload of " +
                               std::to_string(payload.size()) +
                               " bytes, expected " + std::to_string(expect));
    }
    const std::uint64_t limit =
        shape->bits == 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << shape->bits) - 1;
    response.payload.reserve(shape->trits());
    for (int c = 0; c < shape->channels; ++c) {
      const std::uint64_t v =
          get_u64(payload.data() + static_cast<std::size_t>(c) * 8);
      if (v > limit) {
        return Status::data_loss("response value " + std::to_string(v) +
                                 " out of range for " +
                                 std::to_string(shape->bits) + " bits");
      }
      const Word w = gray_encode(v, shape->bits);
      response.payload.insert(response.payload.end(), w.begin(), w.end());
    }
  } else {
    const std::size_t expect = packed_trit_bytes(shape->trits());
    if (payload.size() != expect) {
      return Status::data_loss("trit payload of " +
                               std::to_string(payload.size()) +
                               " bytes, expected " + std::to_string(expect));
    }
    if (Status s = unpack_trits(payload, shape->trits(), response.payload);
        !s.ok()) {
      return s;
    }
  }
  return response;
}

StatusOr<SortRequest> decode_batch_request(std::span<const std::uint8_t> body,
                                           Clock::time_point now) {
  if (body.size() < kBatchRequestFixed) {
    return Status::data_loss("batch request body truncated (" +
                             std::to_string(body.size()) + " bytes)");
  }
  StatusOr<SortShape> shape =
      decode_shape(get_u32(body.data()), get_u32(body.data() + 4));
  if (!shape.ok()) return shape.status();
  const std::uint32_t flags = get_u32(body.data() + 8);
  if ((flags & ~kFlagValues) != 0) {
    return Status::unimplemented("unknown request flags " + hex32(flags));
  }
  const std::uint64_t deadline_ns = get_u64(body.data() + 12);
  const std::uint32_t rounds = get_u32(body.data() + 20);
  if (Status s = check_batch_rounds(rounds, *shape); !s.ok()) return s;
  const std::span<const std::uint8_t> payload =
      body.subspan(kBatchRequestFixed);
  const std::size_t total_trits = rounds * shape->trits();

  StatusOr<SortRequest> request = Status::internal("unreachable");
  if (flags & kFlagValues) {
    if (shape->bits > 64) {
      return Status::invalid_argument("value-encoded request at bits > 64");
    }
    const std::size_t words =
        rounds * static_cast<std::size_t>(shape->channels);
    if (payload.size() != words * 8) {
      return Status::data_loss(
          "value payload of " + std::to_string(payload.size()) +
          " bytes inconsistent with " + std::to_string(rounds) +
          " rounds (expected " + std::to_string(words * 8) + ")");
    }
    std::vector<Trit> trits;
    if (Status s = values_to_trits(*shape, words, payload, trits); !s.ok()) {
      return s;
    }
    request = SortRequest::own_batch(*shape, rounds, std::move(trits));
    if (request.ok()) request->values_requested = true;
  } else {
    const std::size_t expect = packed_trit_bytes(total_trits);
    if (payload.size() != expect) {
      return Status::data_loss(
          "trit payload of " + std::to_string(payload.size()) +
          " bytes inconsistent with " + std::to_string(rounds) +
          " rounds (expected " + std::to_string(expect) + ")");
    }
    std::vector<Trit> trits;
    if (Status s = unpack_trits(payload, total_trits, trits); !s.ok()) {
      return s;
    }
    request = SortRequest::own_batch(*shape, rounds, std::move(trits));
  }
  if (request.ok() && deadline_ns != 0) {
    request->deadline =
        now + std::chrono::nanoseconds(std::min(deadline_ns, kMaxDeadlineNs));
  }
  return request;
}

StatusOr<SortResponse> decode_batch_response(
    std::span<const std::uint8_t> body) {
  if (body.size() < kBatchResponseFixed) {
    return Status::data_loss("batch response body truncated (" +
                             std::to_string(body.size()) + " bytes)");
  }
  const std::uint32_t code = get_u32(body.data());
  if (code > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return Status::unimplemented("unknown status code " + std::to_string(code));
  }
  const std::uint32_t flags = get_u32(body.data() + 4);
  if ((flags & ~kFlagValues) != 0) {
    return Status::unimplemented("unknown response flags " + hex32(flags));
  }
  StatusOr<SortShape> shape =
      decode_shape(get_u32(body.data() + 8), get_u32(body.data() + 12));
  if (!shape.ok()) return shape.status();
  const std::uint64_t latency_ns = get_u64(body.data() + 16);
  const std::uint32_t rounds = get_u32(body.data() + 24);
  if (Status s = check_batch_rounds(rounds, *shape); !s.ok()) return s;
  const std::uint32_t message_len = get_u32(body.data() + 28);
  if (body.size() < kBatchResponseFixed + message_len) {
    return Status::data_loss("batch response message truncated");
  }
  std::string message(
      reinterpret_cast<const char*>(body.data() + kBatchResponseFixed),
      message_len);
  const std::span<const std::uint8_t> payload =
      body.subspan(kBatchResponseFixed + message_len);
  const std::size_t total_trits = rounds * shape->trits();

  SortResponse response;
  response.shape = *shape;
  response.rounds = rounds;
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.latency =
      std::chrono::nanoseconds(std::min(latency_ns, kMaxLatencyNs));
  response.values_requested = (flags & kFlagValues) != 0;
  if (!response.status.ok()) {
    if (!payload.empty()) {
      return Status::data_loss("error response carries a payload");
    }
    return response;
  }
  if (flags & kFlagValues) {
    if (shape->bits > 64) {
      return Status::invalid_argument("value-encoded response at bits > 64");
    }
    const std::size_t words =
        rounds * static_cast<std::size_t>(shape->channels);
    if (payload.size() != words * 8) {
      return Status::data_loss(
          "value payload of " + std::to_string(payload.size()) +
          " bytes inconsistent with " + std::to_string(rounds) +
          " rounds (expected " + std::to_string(words * 8) + ")");
    }
    if (Status s = values_to_trits(*shape, words, payload, response.payload);
        !s.ok()) {
      return s;
    }
  } else {
    const std::size_t expect = packed_trit_bytes(total_trits);
    if (payload.size() != expect) {
      return Status::data_loss(
          "trit payload of " + std::to_string(payload.size()) +
          " bytes inconsistent with " + std::to_string(rounds) +
          " rounds (expected " + std::to_string(expect) + ")");
    }
    if (Status s = unpack_trits(payload, total_trits, response.payload);
        !s.ok()) {
      return s;
    }
  }
  return response;
}

StatusOr<std::optional<Frame>> read_frame(std::istream& in) {
  std::uint8_t header[kHeaderSize];
  in.read(reinterpret_cast<char*>(header), kHeaderSize);
  const std::streamsize got = in.gcount();
  if (got == 0) return std::optional<Frame>(std::nullopt);  // clean EOF
  if (got < static_cast<std::streamsize>(kHeaderSize)) {
    return Status::data_loss("stream ended inside a frame header");
  }
  StatusOr<Header> parsed = parse_header(std::span(header, kHeaderSize));
  if (!parsed.ok()) return parsed.status();
  Frame frame;
  frame.type = parsed->type;
  frame.body.resize(parsed->body_size);
  if (parsed->body_size > 0) {
    in.read(reinterpret_cast<char*>(frame.body.data()),
            static_cast<std::streamsize>(parsed->body_size));
    if (in.gcount() < static_cast<std::streamsize>(parsed->body_size)) {
      return Status::data_loss("stream ended inside a frame body");
    }
  }
  return std::optional<Frame>(std::move(frame));
}

void write_frame(std::ostream& out, std::span<const std::uint8_t> frame) {
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
}

}  // namespace mcsn::wire
