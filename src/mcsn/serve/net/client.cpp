#include "mcsn/serve/net/client.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include "mcsn/serve/net/detail.hpp"
#include "mcsn/serve/wire.hpp"

namespace mcsn::net {

using detail::errno_text;
using detail::kReadChunk;

namespace {

using Clock = std::chrono::steady_clock;

/// Connects `fd` to `addr`, bounded by `timeout` when set. Always runs the
/// attempt non-blocking + poll(2): that is the only portable way to both
/// bound the wait and survive EINTR correctly (retrying a blocking
/// ::connect after a signal yields EALREADY/EISCONN races; poll simply
/// resumes with the recomputed remaining budget). Restores blocking mode
/// on success. Closes nothing — the caller owns the fd either way.
Status connect_bounded(int fd, const sockaddr* addr, socklen_t addr_len,
                       std::optional<std::chrono::milliseconds> timeout) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::unavailable(errno_text("fcntl(O_NONBLOCK)"));
  }
  const Clock::time_point deadline =
      timeout ? Clock::now() + *timeout : Clock::time_point::max();

  int rc;
  do {
    rc = ::connect(fd, addr, addr_len);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::unavailable(errno_text("connect"));
  }
  if (rc < 0) {
    // In progress: wait for writability, recomputing the remaining budget
    // after every EINTR so interrupted waits neither shorten nor extend it.
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int wait_ms = -1;
      if (timeout) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now());
        if (remaining.count() <= 0) {
          return Status::deadline_exceeded("connect timed out");
        }
        wait_ms = static_cast<int>(remaining.count());
      }
      const int n = ::poll(&pfd, 1, wait_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::unavailable(errno_text("poll(connect)"));
      }
      if (n == 0) {
        return Status::deadline_exceeded("connect timed out");
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return Status::unavailable(errno_text("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return Status::unavailable(
          "connect: " +
          std::error_code(err, std::generic_category()).message());
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::unavailable(errno_text("fcntl(restore blocking)"));
  }
  return Status();
}

}  // namespace

SortClient::~SortClient() { close(); }

SortClient::SortClient(SortClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rbuf_(std::move(other.rbuf_)),
      scratch_(std::move(other.scratch_)) {}

SortClient& SortClient::operator=(SortClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

StatusOr<SortClient> SortClient::connect(
    const std::string& host, std::uint16_t port,
    std::optional<std::chrono::milliseconds> timeout) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port_str = std::to_string(port);
  addrinfo* found = nullptr;
  if (const int rc =
          ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &found);
      rc != 0) {
    return Status::unavailable("getaddrinfo(" + host +
                               "): " + ::gai_strerror(rc));
  }
  Status last = Status::unavailable("no usable address for " + host);
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::unavailable(errno_text("socket"));
      continue;
    }
    last = connect_bounded(fd, ai->ai_addr, ai->ai_addrlen, timeout);
    if (last.ok()) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::freeaddrinfo(found);
      return SortClient(fd);
    }
    ::close(fd);
    if (last.code() == StatusCode::kDeadlineExceeded) break;  // budget spent
  }
  ::freeaddrinfo(found);
  return last;
}

StatusOr<SortClient> SortClient::connect_unix(
    const std::string& path,
    std::optional<std::chrono::milliseconds> timeout) {
  sockaddr_un sa{};
  if (path.empty() || path.size() >= sizeof sa.sun_path) {
    return Status::invalid_argument("bad unix socket path: \"" + path + "\"");
  }
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::unavailable(errno_text("socket(AF_UNIX)"));
  if (Status s = connect_bounded(fd, reinterpret_cast<const sockaddr*>(&sa),
                                 sizeof sa, timeout);
      !s.ok()) {
    ::close(fd);
    return s;
  }
  return SortClient(fd);
}

Status SortClient::write_frame(const std::vector<std::uint8_t>& frame) {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("send"));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status();
}

Status SortClient::send(const SortRequest& request) {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  return write_frame(wire::encode_request(request));
}

Status SortClient::send_batch(const SortRequest& request) {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  return write_frame(wire::encode_batch_request(request));
}

StatusOr<SortResponse> SortClient::receive() {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  for (;;) {
    StatusOr<std::optional<wire::FrameView>> parsed =
        wire::try_parse_frame(rbuf_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->has_value()) {
      const wire::FrameView view = **parsed;
      if (view.type != wire::FrameType::response &&
          view.type != wire::FrameType::batch_response) {
        return Status::unimplemented("expected a response frame");
      }
      StatusOr<SortResponse> response =
          view.type == wire::FrameType::response
              ? wire::decode_response(view.body)
              : wire::decode_batch_response(view.body);
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(view.frame_size));
      return response;
    }
    if (scratch_.empty()) scratch_.resize(kReadChunk);
    const ssize_t n = ::recv(fd_, scratch_.data(), scratch_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("recv"));
    }
    if (n == 0) {
      if (rbuf_.empty()) {
        return Status::unavailable("connection closed");
      }
      return Status::data_loss("connection closed mid-frame");
    }
    rbuf_.insert(rbuf_.end(), scratch_.begin(), scratch_.begin() + n);
  }
}

Status SortClient::send_stats(wire::StatsFormat format) {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  return write_frame(wire::encode_stats_request(format));
}

StatusOr<wire::StatsReply> SortClient::receive_stats() {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  for (;;) {
    StatusOr<std::optional<wire::FrameView>> parsed =
        wire::try_parse_frame(rbuf_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->has_value()) {
      const wire::FrameView view = **parsed;
      if (view.type != wire::FrameType::stats_response) {
        return Status::unimplemented("expected a stats response frame");
      }
      StatusOr<wire::StatsReply> reply = wire::decode_stats_response(view.body);
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(view.frame_size));
      return reply;
    }
    if (scratch_.empty()) scratch_.resize(kReadChunk);
    const ssize_t n = ::recv(fd_, scratch_.data(), scratch_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("recv"));
    }
    if (n == 0) {
      if (rbuf_.empty()) {
        return Status::unavailable("connection closed");
      }
      return Status::data_loss("connection closed mid-frame");
    }
    rbuf_.insert(rbuf_.end(), scratch_.begin(), scratch_.begin() + n);
  }
}

StatusOr<wire::StatsReply> SortClient::stats(wire::StatsFormat format) {
  if (Status s = send_stats(format); !s.ok()) return s;
  return receive_stats();
}

StatusOr<SortResponse> SortClient::sort(const SortRequest& request) {
  if (Status s = send(request); !s.ok()) return s;
  return receive();
}

StatusOr<SortResponse> SortClient::sort_batch(const SortRequest& request) {
  if (Status s = send_batch(request); !s.ok()) return s;
  return receive();
}

void SortClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mcsn::net
