#include "mcsn/serve/net/client.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "mcsn/serve/net/detail.hpp"
#include "mcsn/serve/wire.hpp"

namespace mcsn::net {

using detail::errno_text;
using detail::kReadChunk;

SortClient::~SortClient() { close(); }

SortClient::SortClient(SortClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rbuf_(std::move(other.rbuf_)),
      scratch_(std::move(other.scratch_)) {}

SortClient& SortClient::operator=(SortClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

StatusOr<SortClient> SortClient::connect(const std::string& host,
                                         std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port_str = std::to_string(port);
  addrinfo* found = nullptr;
  if (const int rc =
          ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &found);
      rc != 0) {
    return Status::unavailable("getaddrinfo(" + host +
                               "): " + ::gai_strerror(rc));
  }
  Status last = Status::unavailable("no usable address for " + host);
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::unavailable(errno_text("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      ::freeaddrinfo(found);
      return SortClient(fd);
    }
    last = Status::unavailable(errno_text("connect"));
    ::close(fd);
  }
  ::freeaddrinfo(found);
  return last;
}

Status SortClient::send(const SortRequest& request) {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  const std::vector<std::uint8_t> frame = wire::encode_request(request);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("send"));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status();
}

StatusOr<SortResponse> SortClient::receive() {
  if (fd_ < 0) {
    return Status::failed_precondition("SortClient: not connected");
  }
  for (;;) {
    StatusOr<std::optional<wire::FrameView>> parsed =
        wire::try_parse_frame(rbuf_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->has_value()) {
      const wire::FrameView view = **parsed;
      if (view.type != wire::FrameType::response) {
        return Status::unimplemented("expected a response frame");
      }
      StatusOr<SortResponse> response = wire::decode_response(view.body);
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(view.frame_size));
      return response;
    }
    if (scratch_.empty()) scratch_.resize(kReadChunk);
    const ssize_t n = ::recv(fd_, scratch_.data(), scratch_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("recv"));
    }
    if (n == 0) {
      if (rbuf_.empty()) {
        return Status::unavailable("connection closed");
      }
      return Status::data_loss("connection closed mid-frame");
    }
    rbuf_.insert(rbuf_.end(), scratch_.begin(), scratch_.begin() + n);
  }
}

StatusOr<SortResponse> SortClient::sort(const SortRequest& request) {
  if (Status s = send(request); !s.ok()) return s;
  return receive();
}

void SortClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mcsn::net
