#include "mcsn/serve/net/socket_server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include "mcsn/serve/net/conn_fsm.hpp"
#include "mcsn/serve/net/detail.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/util/metrics_registry.hpp"

namespace mcsn::net {

namespace {

using Clock = std::chrono::steady_clock;
using detail::errno_text;
using detail::kReadChunk;

/// Default poller timeout when no deadline is nearer: bounds how stale the
/// idle sweep can get without costing measurable wakeup load.
constexpr int kSweepMs = 100;

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::unavailable(errno_text("fcntl(O_NONBLOCK)"));
  }
  return Status();
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void set_nodelay(int fd) {
  // Request/response frames are latency-sensitive and tiny; Nagle would
  // serialize pipelined clients onto RTT boundaries. (A no-op failure on
  // AF_UNIX sockets, which have no Nagle to disable.)
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// --- poller abstraction -----------------------------------------------------

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup: handled through the read path (read() observes the
  /// failure or EOF), so it is folded into `readable`.
  bool error = false;
};

/// Readiness-notification backend: epoll where available, poll(2) as the
/// portable fallback. Level-triggered semantics in both (the loop re-reads
/// until EAGAIN anyway, and level-triggered EPOLLOUT is disarmed the moment
/// the write queue empties).
class Poller {
 public:
  virtual ~Poller() = default;
  [[nodiscard]] virtual Status add(int fd, bool rd, bool wr) = 0;
  virtual void set(int fd, bool rd, bool wr) = 0;
  virtual void remove(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = forever), appends ready fds to `out`.
  [[nodiscard]] virtual Status wait(int timeout_ms,
                                    std::vector<PollEvent>& out) = 0;
};

#if defined(__linux__)
class EpollPoller final : public Poller {
 public:
  [[nodiscard]] Status init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Status::unavailable(errno_text("epoll_create1"));
    return Status();
  }
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status add(int fd, bool rd, bool wr) override {
    epoll_event ev = make_event(fd, rd, wr);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::unavailable(errno_text("epoll_ctl(ADD)"));
    }
    return Status();
  }

  void set(int fd, bool rd, bool wr) override {
    epoll_event ev = make_event(fd, rd, wr);
    (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) override {
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  Status wait(int timeout_ms, std::vector<PollEvent>& out) override {
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status();
      return Status::unavailable(errno_text("epoll_wait"));
    }
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      e.readable = (events[i].events & EPOLLIN) != 0 || e.error;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      out.push_back(e);
    }
    return Status();
  }

 private:
  static epoll_event make_event(int fd, bool rd, bool wr) {
    epoll_event ev{};
    ev.events = (rd ? EPOLLIN : 0u) | (wr ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }

  int epfd_ = -1;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  [[nodiscard]] Status init() { return Status(); }

  Status add(int fd, bool rd, bool wr) override {
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, interest(rd, wr), 0});
    return Status();
  }

  void set(int fd, bool rd, bool wr) override {
    const auto it = index_.find(fd);
    if (it != index_.end()) fds_[it->second].events = interest(rd, wr);
  }

  void remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return;
    const std::size_t pos = it->second;
    index_.erase(it);
    if (pos + 1 != fds_.size()) {
      fds_[pos] = fds_.back();
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
  }

  Status wait(int timeout_ms, std::vector<PollEvent>& out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status();
      return Status::unavailable(errno_text("poll"));
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      e.readable = (p.revents & POLLIN) != 0 || e.error;
      e.writable = (p.revents & POLLOUT) != 0;
      out.push_back(e);
    }
    return Status();
  }

 private:
  static short interest(bool rd, bool wr) {
    return static_cast<short>((rd ? POLLIN : 0) | (wr ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

std::unique_ptr<Poller> make_poller(bool force_poll, Status& status) {
#if defined(__linux__)
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    status = epoll->init();
    return epoll;
  }
#else
  (void)force_poll;
#endif
  auto poll = std::make_unique<PollPoller>();
  status = poll->init();
  return poll;
}

// --- connection state -------------------------------------------------------

/// One encoded response frame owed to the peer, weighted by the rounds it
/// answers (1 for single-round frames) — the unit the per-connection
/// flow-control cap counts.
struct OwedFrame {
  std::vector<std::uint8_t> bytes;
  std::size_t rounds = 1;
  /// When the encoded frame was filed for writing — start of the write
  /// stage (stage_write_ns measures from here to the last byte sent).
  Clock::time_point enqueued{};
};

struct Connection : std::enable_shared_from_this<Connection> {
  explicit Connection(int fd_in) : fd(fd_in) {}

  int fd = -1;

  // Loop-thread-only state.
  std::vector<std::uint8_t> rbuf;  ///< accumulated, not-yet-parsed bytes
  std::deque<OwedFrame> wqueue;    ///< encoded frames owed, in order
  std::size_t woff = 0;        ///< bytes of wqueue.front() already written
  std::uint64_t next_seq = 0;  ///< sequence of the next decoded request
  std::uint64_t next_flush = 0;  ///< next sequence owed to the write queue
  std::uint64_t written = 0;     ///< response frames fully written
  /// Rounds decoded but not yet fully written back — the flow-control
  /// quantity (see pending()). Incremented at submit time, decremented as
  /// each owed frame finishes writing.
  std::size_t pending_rounds = 0;
  bool peer_eof = false;  ///< client half-closed; flush owed, then close
  bool teardown = false;  ///< protocol error; close once wqueue drains
  bool want_read = true;  ///< current poller read interest
  bool want_write = false;
  Clock::time_point last_activity = Clock::now();
  /// Checked lifecycle mirror of the booleans above (loop-thread-only,
  /// like them). Aborts on an illegal transition in debug/MCSN_VERIFY
  /// builds — see conn_fsm.hpp for the legal event table.
  ConnFsm fsm;

  /// Responses completed but not yet released in sequence order. The only
  /// cross-thread state: service completions insert, the loop drains.
  std::mutex mu;
  std::map<std::uint64_t, OwedFrame> done;

  /// Rounds decoded but not yet *fully written back* — the flow-control
  /// quantity. Counting only until release-to-write-queue would let a
  /// client that sends but never reads grow wqueue without bound; this
  /// way the backlog per connection is capped at max_inflight rounds'
  /// worth of encoded frames.
  [[nodiscard]] std::size_t pending() const { return pending_rounds; }
  [[nodiscard]] bool drained() const { return pending() == 0; }
};

/// Completion-side shared state, one per loop, kept alive by every
/// in-flight callback so a completion that outraces stop() still has
/// somewhere safe to land. Also the inbox for connection handoff: the
/// accepting loop parks dispatched fds in `adopted` and wakes the owner.
struct CompletionSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::shared_ptr<Connection>> dirty;
  std::vector<int> adopted;  ///< accepted fds awaiting adoption by this loop
  std::size_t outstanding = 0;
  int wake_fd = -1;  ///< write end of the loop's self-pipe; -1 once closed
};

void wake_locked(CompletionSink& sink) {
  if (sink.wake_fd < 0) return;
  const char byte = 1;
  // EAGAIN just means wakeups are already queued; either way the loop runs.
  [[maybe_unused]] ssize_t n = ::write(sink.wake_fd, &byte, 1);
}

}  // namespace

// --- server impl ------------------------------------------------------------

struct SocketServer::Impl {
  SortService& service;
  const SocketOptions opt;

  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  std::uint16_t bound_port = 0;
  std::string uds_bound_path;  ///< unlinked on stop()

  /// Connections alive (or reserved: accepted and in a handoff inbox)
  /// across all loops — the max_connections quantity.
  std::atomic<std::size_t> open_conns{0};

  /// Round-robin cursor for shared-acceptor dispatch. Only the loop
  /// owning a dispatch listener (always loop 0) touches it, so it needs
  /// no synchronization.
  std::size_t rr_next = 0;

  /// Stage-latency histograms in the service's registry (shared across
  /// loops; registered by start() before any loop thread spawns):
  /// decode = wire bytes -> SortRequest, encode = SortResponse -> wire
  /// bytes, write = frame filed -> last byte sent.
  AtomicHistogram* decode_ns = nullptr;
  AtomicHistogram* encode_ns = nullptr;
  AtomicHistogram* write_ns = nullptr;

  Impl(SortService& svc, SocketOptions options)
      : service(svc), opt(std::move(options)) {}

  // --- one event loop -------------------------------------------------------

  struct Listener {
    int fd = -1;
    /// Round-robin accepted fds across all loops instead of adopting them
    /// locally (shared-acceptor mode; always set for the UDS listener
    /// when loops > 1, never for per-loop SO_REUSEPORT listeners).
    bool dispatch = false;
  };

  struct Loop {
    Impl* srv = nullptr;
    std::size_t index = 0;

    std::unique_ptr<Poller> poller;
    int wake_rd = -1;
    std::vector<Listener> listeners;
    std::thread thread;

    std::unordered_map<int, std::shared_ptr<Connection>> conns;
    std::vector<int> pending_close;  ///< defer close to end of event batch
    /// Listener re-arm time after an fd/memory-exhausted accept (see
    /// accept_ready); unset while the listeners are armed normally.
    std::optional<Clock::time_point> listener_muted_until;
    /// Loop-thread recv staging: recv lands here and only the bytes
    /// actually read are appended to a connection's rbuf (resizing rbuf by
    /// kReadChunk up front would zero-fill 64 KiB per recv call).
    std::vector<std::uint8_t> read_scratch =
        std::vector<std::uint8_t>(kReadChunk);
    std::shared_ptr<CompletionSink> sink = std::make_shared<CompletionSink>();

    /// Per-loop counters: handles into the service's MetricsRegistry
    /// (socket_*_total series labeled loop="<index>"), registered by
    /// start() before the loop thread spawns. SocketServer::stats()
    /// aggregates across loops by reading the same handles back.
    Counter* accepted = nullptr;
    Counter* rejected = nullptr;
    Counter* closed = nullptr;
    Counter* requests = nullptr;
    Counter* batch_requests = nullptr;
    Counter* rounds = nullptr;
    Counter* responses = nullptr;
    Counter* protocol_errors = nullptr;
    Counter* idle_closed = nullptr;
    Counter* stats_requests = nullptr;
    Counter* fsm_violations = nullptr;

    [[nodiscard]] bool owns_listener(int fd) const {
      return std::any_of(listeners.begin(), listeners.end(),
                         [fd](const Listener& l) { return l.fd == fd; });
    }

    // --- event loop ---------------------------------------------------------

    void run() {
      std::vector<PollEvent> events;
      std::optional<Clock::time_point> drain_deadline;
      bool accepting = true;
      for (;;) {
        events.clear();
        (void)poller->wait(poll_timeout_ms(), events);
        const Clock::time_point now = Clock::now();

        if (listener_muted_until && now >= *listener_muted_until) {
          listener_muted_until.reset();
          if (accepting) {
            for (const Listener& l : listeners) poller->set(l.fd, true, false);
          }
        }

        for (const PollEvent& ev : events) {
          if (ev.fd == wake_rd) {
            drain_wake_pipe();
          } else if (owns_listener(ev.fd)) {
            if (accepting) accept_ready(ev.fd, now);
          } else if (const auto it = conns.find(ev.fd); it != conns.end()) {
            const std::shared_ptr<Connection>& conn = it->second;
            if (ev.error) {
              // EPOLLHUP/POLLERR: the peer is gone in both directions, so
              // owed responses have no reader. (A half-close arrives as a
              // plain readable event with read() == 0 instead.)
              schedule_close(*conn);
              continue;
            }
            // Writable events go through the full pump, not bare
            // handle_write: the pump re-parses frames that buffered while
            // writes had the connection paused, and ends in
            // update_interest so a fully flushed queue disarms
            // level-triggered EPOLLOUT (a bare flush would leave it armed
            // on an always-writable socket and spin the loop).
            if (ev.writable) pump_completions(*conn, now);
            if (ev.readable && conn->fd >= 0) handle_read(*conn, now);
          }
        }

        drain_adopted(now, accepting);
        drain_dirty(now);
        flush_pending_close();

        if (srv->opt.idle_timeout.count() > 0) sweep_idle(now);
        flush_pending_close();

        if (srv->stopping.load(std::memory_order_relaxed)) {
          if (accepting) {
            accepting = false;
            for (const Listener& l : listeners) {
              poller->remove(l.fd);
              ::close(l.fd);
            }
            listeners.clear();
            drain_deadline = now + srv->opt.drain_timeout;
            // No new requests: stop reading everywhere, keep flushing.
            for (auto& [fd, conn] : conns) {
              conn->peer_eof = true;
              if (conn->fd >= 0) conn->fsm.peer_half_closed();
              update_interest(*conn);
            }
          }
          for (auto& [fd, conn] : conns) {
            if (conn->drained() || now >= *drain_deadline) {
              schedule_close(*conn);
            }
          }
          flush_pending_close();
          // The only way out: stopping, listeners closed, every
          // connection torn down — nothing is left to clean up after the
          // loop.
          if (conns.empty()) break;
        }
      }
    }

    int poll_timeout_ms() const {
      if (srv->stopping.load(std::memory_order_relaxed)) return 10;
      return kSweepMs;
    }

    void drain_wake_pipe() {
      char buf[256];
      while (::read(wake_rd, buf, sizeof buf) > 0) {
      }
    }

    // --- accept path --------------------------------------------------------

    void accept_ready(int listen_fd, Clock::time_point now) {
      bool dispatch = false;
      for (const Listener& l : listeners) {
        if (l.fd == listen_fd) dispatch = l.dispatch;
      }
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
              errno == ENOMEM) {
            // Out of fds/memory: the pending connection stays in the
            // backlog, so the level-triggered listener would re-fire every
            // wait() and spin the loop hot. Mute this loop's listeners for
            // a sweep interval and retry once resources may have freed.
            for (const Listener& l : listeners) poller->set(l.fd, false, false);
            listener_muted_until = now + std::chrono::milliseconds(kSweepMs);
          }
          return;  // EAGAIN, or a transient accept failure: wait for the
                   // next readiness notification either way
        }
        // Reserve a connection slot before any handoff so the cap holds
        // across loops (REUSEPORT accepts race; fetch_add keeps it exact).
        if (srv->open_conns.fetch_add(1, std::memory_order_relaxed) >=
            srv->opt.max_connections) {
          srv->open_conns.fetch_sub(1, std::memory_order_relaxed);
          rejected->add();
          ::close(fd);
          continue;
        }
        if (Status s = set_nonblocking(fd); !s.ok()) {
          srv->open_conns.fetch_sub(1, std::memory_order_relaxed);
          ::close(fd);
          continue;
        }
        set_cloexec(fd);
        set_nodelay(fd);
        if (srv->opt.sndbuf > 0) {
          (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &srv->opt.sndbuf,
                             sizeof srv->opt.sndbuf);
        }
        accepted->add();
        if (dispatch) {
          Loop* target = srv->next_dispatch_target();
          if (target != this) {
            // Hand the fd to its loop through the handoff inbox; the
            // target adopts it on its next iteration. All socket options
            // are already applied, so the target never touches a racing
            // syscall path.
            std::lock_guard lock(target->sink->mu);
            target->sink->adopted.push_back(fd);
            wake_locked(*target->sink);
            continue;
          }
        }
        adopt(fd, now);
      }
    }

    /// Registers an accepted (slot-reserved, option-applied) fd with this
    /// loop. On failure the slot is returned.
    void adopt(int fd, Clock::time_point now) {
      auto conn = std::make_shared<Connection>(fd);
      conn->last_activity = now;
      if (!poller->add(fd, true, false).ok()) {
        srv->open_conns.fetch_sub(1, std::memory_order_relaxed);
        ::close(fd);
        return;
      }
      conns.emplace(fd, std::move(conn));
    }

    /// Adopts fds handed off by the accepting loop — or closes them when
    /// this loop is already past accepting (they arrived after stop()).
    void drain_adopted(Clock::time_point now, bool accepting) {
      std::vector<int> fds;
      {
        std::lock_guard lock(sink->mu);
        fds.swap(sink->adopted);
      }
      for (const int fd : fds) {
        if (!accepting) {
          srv->open_conns.fetch_sub(1, std::memory_order_relaxed);
          closed->add();
          ::close(fd);
          continue;
        }
        adopt(fd, now);
      }
    }

    // --- read path ----------------------------------------------------------

    void handle_read(Connection& conn, Clock::time_point now) {
      if (conn.fd < 0 || !conn.want_read) {
        // Paused (inflight cap) or tearing down, but an event raced the
        // interest update — leave the bytes in the socket buffer.
        return;
      }
      // Fault hook: a recv cap simulates a peer trickling bytes — each
      // recv sees at most recv_cap bytes, so frames land fragmented at
      // arbitrary boundaries (the loop below still drains the socket; it
      // just takes more iterations).
      const std::size_t cap = srv->opt.fault.recv_cap;
      const std::size_t want =
          cap > 0 ? std::min(cap, read_scratch.size()) : read_scratch.size();
      for (;;) {
        const ssize_t n = ::recv(conn.fd, read_scratch.data(), want, 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          schedule_close(conn);
          return;
        }
        if (n == 0) {
          conn.peer_eof = true;
          conn.fsm.peer_half_closed();
          parse_frames(conn, now);
          pump_completions(conn, now);  // flush what's ready; close if drained
          return;
        }
        conn.rbuf.insert(conn.rbuf.end(), read_scratch.begin(),
                         read_scratch.begin() + n);
        conn.last_activity = now;
        parse_frames(conn, now);
        if (conn.fd < 0) return;
        if (conn.teardown) {
          pump_completions(conn, now);  // release the error frame if nothing
          return;                       // else is owed ahead of it
        }
        if (conn.pending() >= srv->opt.max_inflight) break;  // paused
        if (static_cast<std::size_t>(n) < want) break;
      }
      update_interest(conn);
    }

    /// Consumes every complete frame in the read buffer, stopping early at
    /// the per-connection inflight cap (remaining bytes stay buffered and
    /// are re-parsed when responses drain) or at a protocol error.
    void parse_frames(Connection& conn, Clock::time_point now) {
      std::size_t pos = 0;
      while (!conn.teardown && conn.pending() < srv->opt.max_inflight) {
        const auto bytes =
            std::span<const std::uint8_t>(conn.rbuf).subspan(pos);
        StatusOr<std::optional<wire::FrameView>> parsed =
            wire::try_parse_frame(bytes);
        if (!parsed.ok()) {
          protocol_error(conn, parsed.status());
          break;
        }
        if (!parsed->has_value()) {
          if (conn.peer_eof && !bytes.empty()) {
            // The stream ended inside a frame: report the truncation before
            // closing. (Unreachable while paused — the loop condition keeps
            // buffered bytes for the post-drain re-parse instead.)
            protocol_error(conn,
                           Status::data_loss("connection closed mid-frame"));
          }
          break;
        }
        const wire::FrameView view = **parsed;
        if (view.type == wire::FrameType::stats_request) {
          // Admin frame: served inline from the loop thread — the stats
          // document never takes a trip through the batcher, but its
          // response still queues in sequence order behind the sorts.
          pos += view.frame_size;
          serve_stats(conn, view.body);
          continue;
        }
        const bool is_batch = view.type == wire::FrameType::batch_request;
        if (view.type != wire::FrameType::request && !is_batch) {
          protocol_error(conn, Status::unimplemented(
                                   "expected a request frame on the server"));
          break;
        }
        const Clock::time_point decode_start = Clock::now();
        StatusOr<SortRequest> request =
            is_batch ? wire::decode_batch_request(view.body, now)
                     : wire::decode_request(view.body, now);
        srv->decode_ns->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - decode_start)
                .count()));
        if (!request.ok()) {
          protocol_error(conn, request.status());
          break;
        }
        pos += view.frame_size;
        submit_request(conn, std::move(*request), is_batch);
      }
      if (conn.teardown) {
        conn.rbuf.clear();
      } else if (pos > 0) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() + static_cast<std::ptrdiff_t>(pos));
      }
    }

    void submit_request(Connection& conn, SortRequest request, bool as_batch) {
      const std::uint64_t seq = conn.next_seq++;
      const std::size_t weight = std::max<std::size_t>(request.rounds, 1);
      conn.pending_rounds += weight;
      conn.fsm.request_admitted();
      requests->add();
      rounds->add(weight);
      if (as_batch) batch_requests->add();
      {
        std::lock_guard lock(sink->mu);
        ++sink->outstanding;
      }
      std::shared_ptr<Connection> self = conn.shared_from_this();
      std::shared_ptr<CompletionSink> sink_ref = sink;
      // May block under service-wide backpressure (see the header note);
      // the per-connection cap keeps that rare. Completions run on service
      // workers, or inline right here on synchronous rejection — both only
      // touch the done-map and the sink. The response frame mirrors the
      // request frame's type, so a batch request always answers with a
      // batch response.
      srv->service.submit(
          std::move(request),
          [self = std::move(self), sink_ref = std::move(sink_ref), seq, weight,
           as_batch, encode_ns = srv->encode_ns](SortResponse response) {
            const Clock::time_point encode_start = Clock::now();
            std::vector<std::uint8_t> frame =
                as_batch ? wire::encode_batch_response(response)
                         : wire::encode_response(response);
            const Clock::time_point encoded_at = Clock::now();
            encode_ns->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    encoded_at - encode_start)
                    .count()));
            {
              std::lock_guard lock(self->mu);
              self->done.emplace(seq,
                                 OwedFrame{std::move(frame), weight,
                                           encoded_at});
            }
            std::lock_guard lock(sink_ref->mu);
            sink_ref->dirty.push_back(self);
            wake_locked(*sink_ref);
            --sink_ref->outstanding;
            if (sink_ref->outstanding == 0) {
              sink_ref->cv.notify_all();
            }
          });
    }

    /// Serves a stats admin frame inline: renders the service's
    /// observability document in the requested format and files the
    /// response under the connection's next sequence number (the regular
    /// drain releases it in order). A malformed stats body is answered
    /// with an error stats reply — framing is intact, so the connection
    /// survives.
    void serve_stats(Connection& conn, std::span<const std::uint8_t> body) {
      stats_requests->add();
      wire::StatsReply reply;
      StatusOr<wire::StatsFormat> format = wire::decode_stats_request(body);
      if (!format.ok()) {
        reply.status = format.status();
      } else {
        reply.format = *format;
        reply.text = *format == wire::StatsFormat::prometheus
                         ? srv->service.stats_prometheus()
                         : srv->service.stats_json();
      }
      const std::uint64_t seq = conn.next_seq++;
      conn.pending_rounds += 1;
      conn.fsm.request_admitted();
      {
        std::lock_guard lock(conn.mu);
        conn.done.emplace(
            seq, OwedFrame{wire::encode_stats_response(reply), 1,
                           Clock::now()});
      }
      // File the connection with the sink so the end-of-iteration drain
      // pumps the response out — same release path completions use, no
      // wake needed from the loop's own thread.
      std::lock_guard lock(sink->mu);
      sink->dirty.push_back(conn.shared_from_this());
    }

    /// Malformed traffic: answer with a Status error frame queued behind
    /// the responses already owed (so ordering still identifies the bad
    /// request), then tear the connection down once everything flushes.
    /// Framing past the bad bytes is unrecoverable, so reading stops here.
    void protocol_error(Connection& conn, Status status) {
      protocol_errors->add();
      const SortResponse error =
          SortResponse::failure(std::move(status), SortShape{1, 1});
      const std::uint64_t seq = conn.next_seq++;
      conn.pending_rounds += 1;
      conn.fsm.protocol_error();  // the error frame itself becomes owed
      {
        std::lock_guard lock(conn.mu);
        conn.done.emplace(seq, OwedFrame{wire::encode_response(error), 1,
                                         Clock::now()});
      }
      conn.teardown = true;
      conn.rbuf.clear();
    }

    // --- completion / write path --------------------------------------------

    void drain_dirty(Clock::time_point now) {
      std::vector<std::shared_ptr<Connection>> ready;
      {
        std::lock_guard lock(sink->mu);
        ready.swap(sink->dirty);
      }
      for (const std::shared_ptr<Connection>& conn : ready) {
        if (conn->fd < 0) continue;  // completed after teardown: drop
        pump_completions(*conn, now);
      }
    }

    /// Moves the in-order prefix of completed responses into the write
    /// queue.
    void release_ready(Connection& conn) {
      std::lock_guard lock(conn.mu);
      for (auto it = conn.done.find(conn.next_flush); it != conn.done.end();
           it = conn.done.find(conn.next_flush)) {
        conn.wqueue.push_back(std::move(it->second));
        conn.done.erase(it);
        ++conn.next_flush;
      }
    }

    /// Releases the in-order prefix of completed responses into the write
    /// queue, flushes opportunistically, and resumes parsing frames that
    /// were buffered while paused at the inflight cap (even after a
    /// half-close, when no more reads will come). Runs to a fixpoint: a
    /// completion can land *while* the re-parse submits (fast workers
    /// outrun the loop thread), dropping inflight below the cap again with
    /// frames still buffered — keying the re-parse off the state at entry
    /// would strand those frames until the idle reaper, so keep
    /// alternating release/parse until neither makes progress.
    void pump_completions(Connection& conn, Clock::time_point now) {
      while (conn.fd >= 0) {
        release_ready(conn);
        handle_write(conn, now);
        if (conn.fd < 0) return;
        if (conn.teardown || conn.rbuf.empty() ||
            conn.pending() >= srv->opt.max_inflight) {
          break;
        }
        const std::uint64_t before = conn.next_seq;
        parse_frames(conn, now);
        if (conn.next_seq == before && !conn.teardown) {
          break;  // only a partial frame left: wait for more bytes
        }
      }
      update_interest(conn);
    }

    void handle_write(Connection& conn, Clock::time_point now) {
      if (conn.fd < 0) return;
      while (!conn.wqueue.empty()) {
        const OwedFrame& front = conn.wqueue.front();
        // Fault hook: a send cap splits every response across many
        // partial writes, exercising the woff resume path continuously.
        std::size_t len = front.bytes.size() - conn.woff;
        if (const std::size_t cap = srv->opt.fault.send_cap; cap > 0) {
          len = std::min(len, cap);
        }
        const ssize_t n = ::send(conn.fd, front.bytes.data() + conn.woff,
                                 len, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          schedule_close(conn);  // peer reset; owed responses are moot
          return;
        }
        conn.woff += static_cast<std::size_t>(n);
        conn.last_activity = now;
        if (conn.woff == front.bytes.size()) {
          conn.pending_rounds -=
              std::min(front.rounds, conn.pending_rounds);
          srv->write_ns->record(static_cast<std::uint64_t>(
              std::max<std::int64_t>(
                  0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                         now - front.enqueued)
                         .count())));
          conn.wqueue.pop_front();
          conn.woff = 0;
          ++conn.written;
          conn.fsm.response_written();
          responses->add();
        }
      }
      finish_if_drained(conn);
    }

    void finish_if_drained(Connection& conn) {
      if (conn.fd < 0) return;
      // After a half-close the read buffer may still hold complete frames
      // that were beyond the pending cap — they are owed answers, so the
      // connection is not finished until a pump consumes them (a partial
      // tail turns into a teardown at its next parse instead).
      if ((conn.teardown || (conn.peer_eof && conn.rbuf.empty())) &&
          conn.drained()) {
        schedule_close(conn);
      }
    }

    void update_interest(Connection& conn) {
      if (conn.fd < 0) return;
      const bool rd = !conn.teardown && !conn.peer_eof &&
                      conn.pending() < srv->opt.max_inflight;
      const bool wr = !conn.wqueue.empty();
      if (rd != conn.want_read || wr != conn.want_write) {
        conn.want_read = rd;
        conn.want_write = wr;
        poller->set(conn.fd, rd, wr);
      }
    }

    // --- teardown -----------------------------------------------------------

    /// Closes are deferred to the end of the event batch so a recycled fd
    /// from accept() can't collide with a stale event in the same batch.
    void schedule_close(Connection& conn) {
      if (conn.fd < 0) return;
      conn.fsm.connection_closed();
      // In release builds the FSM counts violations instead of aborting;
      // surface them as a metric so a soak run can assert the count is
      // zero across hours of hostile traffic.
      if (conn.fsm.violations() > 0) {
        fsm_violations->add(conn.fsm.violations());
      }
      pending_close.push_back(conn.fd);
      poller->remove(conn.fd);
      conn.fd = -1;
    }

    void flush_pending_close() {
      for (const int fd : pending_close) {
        ::close(fd);
        conns.erase(fd);
        closed->add();
        srv->open_conns.fetch_sub(1, std::memory_order_relaxed);
      }
      pending_close.clear();
    }

    /// Reaps connections with no socket progress for idle_timeout —
    /// including ones with responses owed: last_activity advances on every
    /// read and write, so a stalled-but-owed connection means the client
    /// stopped reading (the flow-control pause already stopped us reading
    /// it); holding its encoded backlog forever would be the leak.
    void sweep_idle(Clock::time_point now) {
      for (auto& [fd, conn] : conns) {
        if (conn->fd < 0) continue;
        if (now - conn->last_activity >= srv->opt.idle_timeout) {
          idle_closed->add();
          conn->fsm.idle_expired();
          schedule_close(*conn);
        }
      }
    }
  };

  std::vector<std::unique_ptr<Loop>> loops;

  static void add_loop_stats(SocketServer::Stats& s, const Loop& l) {
    if (l.accepted == nullptr) return;  // start() failed before registration
    s.accepted += l.accepted->value();
    s.rejected += l.rejected->value();
    s.closed += l.closed->value();
    s.requests += l.requests->value();
    s.batch_requests += l.batch_requests->value();
    s.rounds += l.rounds->value();
    s.responses += l.responses->value();
    s.protocol_errors += l.protocol_errors->value();
    s.idle_closed += l.idle_closed->value();
    s.stats_requests += l.stats_requests->value();
    s.fsm_violations += l.fsm_violations->value();
  }

  /// Registers one loop's counters in the service registry, labeled with
  /// the loop index so per-loop load stays visible in the exposition.
  static void register_loop_series(Loop& loop, MetricsRegistry& reg) {
    const MetricsRegistry::Labels labels{
        {"loop", std::to_string(loop.index)}};
    loop.accepted = &reg.counter("socket_accepted_total", labels);
    loop.rejected = &reg.counter("socket_rejected_total", labels);
    loop.closed = &reg.counter("socket_closed_total", labels);
    loop.requests = &reg.counter("socket_requests_total", labels);
    loop.batch_requests = &reg.counter("socket_batch_requests_total", labels);
    loop.rounds = &reg.counter("socket_rounds_total", labels);
    loop.responses = &reg.counter("socket_responses_total", labels);
    loop.protocol_errors =
        &reg.counter("socket_protocol_errors_total", labels);
    loop.idle_closed = &reg.counter("socket_idle_closed_total", labels);
    loop.stats_requests = &reg.counter("socket_stats_requests_total", labels);
    loop.fsm_violations =
        &reg.counter("socket_fsm_violations_total", labels);
  }

  /// Next loop for shared-acceptor dispatch (called only from the loop
  /// that owns a dispatch listener, so rr_next is effectively
  /// single-threaded).
  Loop* next_dispatch_target() {
    Loop* target = loops[rr_next % loops.size()].get();
    ++rr_next;
    return target;
  }

  // --- lifecycle ------------------------------------------------------------

  Status start() {
    if (started.exchange(true)) {
      return Status::invalid_argument("SocketServer: start() called twice");
    }
    if (Status s = opt.validate(); !s.ok()) return s;

    MetricsRegistry& reg = service.registry();
    decode_ns = &reg.histogram("stage_decode_ns");
    encode_ns = &reg.histogram("stage_encode_ns");
    write_ns = &reg.histogram("stage_write_ns");

    const std::size_t n = static_cast<std::size_t>(opt.loops);
    loops.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->srv = this;
      loop->index = i;
      register_loop_series(*loop, reg);
      Status poller_status;
      loop->poller = make_poller(opt.force_poll, poller_status);
      if (!poller_status.ok()) return poller_status;
      int pipe_fds[2];
      if (::pipe(pipe_fds) < 0) return Status::unavailable(errno_text("pipe"));
      loop->wake_rd = pipe_fds[0];
      loop->sink->wake_fd = pipe_fds[1];
      for (const int fd : pipe_fds) {
        if (Status s = set_nonblocking(fd); !s.ok()) {
          loops.push_back(std::move(loop));  // stop() still closes the pipe
          return s;
        }
        set_cloexec(fd);
      }
      loops.push_back(std::move(loop));
    }

    if (Status s = open_listeners(); !s.ok()) return s;

    for (const std::unique_ptr<Loop>& loop : loops) {
      if (Status s = loop->poller->add(loop->wake_rd, true, false); !s.ok()) {
        return s;
      }
      for (const Listener& l : loop->listeners) {
        if (Status s = loop->poller->add(l.fd, true, false); !s.ok()) return s;
      }
    }
    for (const std::unique_ptr<Loop>& loop : loops) {
      Loop* lp = loop.get();
      lp->thread = std::thread([lp] { lp->run(); });
    }
    return Status();
  }

  Status open_listeners() {
    const std::size_t n = loops.size();
    if (opt.listen_tcp) {
      bool reuseport = false;
#if defined(__linux__)
      reuseport = n > 1 && !opt.force_acceptor;
#endif
      sockaddr_storage bound{};
      socklen_t bound_len = 0;
      int family = AF_UNSPEC;
      int first_fd = -1;
      if (Status s = open_first_tcp_listener(reuseport, first_fd, bound,
                                             bound_len, family);
          !s.ok()) {
        return s;
      }
      if (reuseport) {
        // One listener per loop, all bound to the (now concrete) same
        // address: the kernel spreads accepts across them.
        loops[0]->listeners.push_back(Listener{first_fd, false});
        for (std::size_t i = 1; i < n; ++i) {
          int fd = -1;
          if (Status s = open_sibling_tcp_listener(
                  family, reinterpret_cast<const sockaddr*>(&bound), bound_len,
                  fd);
              !s.ok()) {
            return s;
          }
          loops[i]->listeners.push_back(Listener{fd, false});
        }
      } else {
        // Single listener on loop 0; with several loops it round-robins
        // accepted fds instead of serving them itself.
        loops[0]->listeners.push_back(Listener{first_fd, n > 1});
      }
    }
    if (!opt.unix_path.empty()) {
      int fd = -1;
      if (Status s = open_unix_listener(fd); !s.ok()) return s;
      // SO_REUSEPORT does not load-balance AF_UNIX accepts, so the UDS
      // listener always lives on loop 0 and dispatches.
      loops[0]->listeners.push_back(Listener{fd, n > 1});
    }
    return Status();
  }

  Status open_first_tcp_listener(bool reuseport, int& out_fd,
                                 sockaddr_storage& bound, socklen_t& bound_len,
                                 int& family) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    const std::string port_str = std::to_string(opt.port);
    addrinfo* found = nullptr;
    if (const int rc =
            ::getaddrinfo(opt.host.c_str(), port_str.c_str(), &hints, &found);
        rc != 0) {
      return Status::unavailable("getaddrinfo(" + opt.host +
                                 "): " + ::gai_strerror(rc));
    }
    Status last = Status::unavailable("no usable address for " + opt.host);
    for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last = Status::unavailable(errno_text("socket"));
        continue;
      }
      int one = 1;
      (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#if defined(SO_REUSEPORT)
      if (reuseport) {
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
      }
#endif
      set_cloexec(fd);
      Status s = set_nonblocking(fd);
      if (s.ok() && ::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0) {
        s = Status::unavailable(errno_text("bind"));
      }
      if (s.ok() && ::listen(fd, opt.backlog) < 0) {
        s = Status::unavailable(errno_text("listen"));
      }
      if (s.ok()) {
        bound_len = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) < 0) {
          s = Status::unavailable(errno_text("getsockname"));
        } else if (bound.ss_family == AF_INET) {
          bound_port = ntohs(reinterpret_cast<sockaddr_in&>(bound).sin_port);
        } else if (bound.ss_family == AF_INET6) {
          bound_port = ntohs(reinterpret_cast<sockaddr_in6&>(bound).sin6_port);
        }
      }
      if (s.ok()) {
        out_fd = fd;
        family = ai->ai_family;
        ::freeaddrinfo(found);
        return Status();
      }
      ::close(fd);
      last = std::move(s);
    }
    ::freeaddrinfo(found);
    return last;
  }

  /// A further SO_REUSEPORT listener bound to the exact address the first
  /// one resolved to (concrete port included, so port == 0 requests all
  /// land on the same ephemeral port).
  Status open_sibling_tcp_listener(int family, const sockaddr* addr,
                                   socklen_t addr_len, int& out_fd) {
    const int fd = ::socket(family, SOCK_STREAM, 0);
    if (fd < 0) return Status::unavailable(errno_text("socket"));
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#if defined(SO_REUSEPORT)
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
#endif
    set_cloexec(fd);
    Status s = set_nonblocking(fd);
    if (s.ok() && ::bind(fd, addr, addr_len) < 0) {
      s = Status::unavailable(errno_text("bind(reuseport sibling)"));
    }
    if (s.ok() && ::listen(fd, opt.backlog) < 0) {
      s = Status::unavailable(errno_text("listen"));
    }
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    out_fd = fd;
    return Status();
  }

  Status open_unix_listener(int& out_fd) {
    sockaddr_un sa{};
    if (opt.unix_path.size() >= sizeof sa.sun_path) {
      return Status::invalid_argument(
          "unix_path longer than sockaddr_un allows (" +
          std::to_string(sizeof sa.sun_path - 1) + " bytes)");
    }
    struct stat st{};
    if (::lstat(opt.unix_path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        return Status::invalid_argument("refusing to replace non-socket file " +
                                        opt.unix_path);
      }
      (void)::unlink(opt.unix_path.c_str());
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::unavailable(errno_text("socket(AF_UNIX)"));
    set_cloexec(fd);
    Status s = set_nonblocking(fd);
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, opt.unix_path.c_str(), opt.unix_path.size());
    if (s.ok() &&
        ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
      s = Status::unavailable(errno_text("bind(unix_path)") + " (path " +
                              opt.unix_path + ")");
    }
    if (s.ok() && ::listen(fd, opt.backlog) < 0) {
      s = Status::unavailable(errno_text("listen"));
    }
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    uds_bound_path = opt.unix_path;
    out_fd = fd;
    return Status();
  }

  void stop() {
    if (!started.load() || stopped.exchange(true)) return;
    stopping.store(true);
    for (const std::unique_ptr<Loop>& loop : loops) {
      std::lock_guard lock(loop->sink->mu);
      wake_locked(*loop->sink);
    }
    for (const std::unique_ptr<Loop>& loop : loops) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    for (const std::unique_ptr<Loop>& loop : loops) {
      // Handoffs that raced the shutdown: the owning loop exited before
      // adopting them, so they are ours to close.
      std::vector<int> orphans;
      {
        std::lock_guard lock(loop->sink->mu);
        orphans.swap(loop->sink->adopted);
      }
      for (const int fd : orphans) {
        open_conns.fetch_sub(1, std::memory_order_relaxed);
        ::close(fd);
      }
    }
    // The loops are gone; wait out completions still running on service
    // worker threads before tearing down the state they touch. Admitted
    // requests always complete (the service's flush window sweeps partial
    // batches), so this terminates.
    for (const std::unique_ptr<Loop>& loop : loops) {
      std::unique_lock lock(loop->sink->mu);
      const int wake_fd = loop->sink->wake_fd;
      loop->sink->wake_fd = -1;
      if (wake_fd >= 0) ::close(wake_fd);
      loop->sink->cv.wait(lock,
                          [&loop] { return loop->sink->outstanding == 0; });
    }
    for (const std::unique_ptr<Loop>& loop : loops) {
      if (loop->wake_rd >= 0) {
        ::close(loop->wake_rd);
        loop->wake_rd = -1;
      }
      // If start() failed before the loop threads spawned, the listeners
      // (when they got as far as existing) are still ours to close.
      for (const Listener& l : loop->listeners) ::close(l.fd);
      loop->listeners.clear();
    }
    if (!uds_bound_path.empty()) {
      (void)::unlink(uds_bound_path.c_str());
      uds_bound_path.clear();
    }
  }
};

// --- public surface ---------------------------------------------------------

Status SocketOptions::validate() const {
  std::string bad;
  const auto complain = [&bad](const std::string& msg) {
    if (!bad.empty()) bad += "; ";
    bad += msg;
  };
  if (host.empty()) complain("host must be non-empty");
  if (loops < 1) {
    complain("loops must be >= 1 (got " + std::to_string(loops) + ")");
  }
  if (loops > 256) {
    complain("loops must be <= 256 (got " + std::to_string(loops) + ")");
  }
  if (!listen_tcp && unix_path.empty()) {
    complain("need a listener: listen_tcp is false and unix_path is empty");
  }
  if (!unix_path.empty() &&
      unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    complain("unix_path longer than " +
             std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes");
  }
  if (backlog < 1) {
    complain("backlog must be >= 1 (got " + std::to_string(backlog) + ")");
  }
  if (max_connections < 1) complain("max_connections must be >= 1 (got 0)");
  if (max_inflight < 1) complain("max_inflight must be >= 1 (got 0)");
  if (idle_timeout.count() < 0) {
    complain("idle_timeout must be >= 0 (got " +
             std::to_string(idle_timeout.count()) + "ms)");
  }
  if (drain_timeout.count() < 0) {
    complain("drain_timeout must be >= 0 (got " +
             std::to_string(drain_timeout.count()) + "ms)");
  }
  if (sndbuf < 0) {
    complain("sndbuf must be >= 0 (got " + std::to_string(sndbuf) + ")");
  }
  if (!bad.empty()) return Status::invalid_argument("SocketOptions: " + bad);
  return Status();
}

SocketServer::SocketServer(SortService& service, SocketOptions opt)
    : impl_(std::make_unique<Impl>(service, std::move(opt))) {}

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() { return impl_->start(); }

void SocketServer::stop() { impl_->stop(); }

std::uint16_t SocketServer::port() const noexcept { return impl_->bound_port; }

SocketServer::Stats SocketServer::stats() const {
  Stats s;
  for (const auto& loop : impl_->loops) Impl::add_loop_stats(s, *loop);
  return s;
}

SocketServer::Stats SocketServer::loop_stats(std::size_t loop) const {
  Stats s;
  if (loop < impl_->loops.size()) Impl::add_loop_stats(s, *impl_->loops[loop]);
  return s;
}

std::size_t SocketServer::loop_count() const noexcept {
  return impl_->loops.size();
}

std::size_t SocketServer::connections() const {
  return impl_->open_conns.load(std::memory_order_relaxed);
}

}  // namespace mcsn::net
