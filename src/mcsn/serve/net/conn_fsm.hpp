// Checked lifecycle state machine for a SocketServer connection.
//
// socket_server.cpp tracks a connection's life with a handful of
// booleans and counters (peer_eof, teardown, pending_rounds, fd < 0)
// whose legal combinations are implicit in the event-loop code. This
// header makes the lifecycle explicit:
//
//            request_admitted                  response_written
//          ┌────────────────────┐            ┌──(owed drops to 0)──┐
//          ▼                    │            ▼                     │
//   ┌──────────┐  request   ┌───┴────┐  last response   ┌──────────┴───┐
//   │ kReading │──────────▶│ kOwed  │ ... (kOwed stays while owed > 0) │
//   └──────────┘  admitted  └────────┘                  └──────────────┘
//        │  │                   │ │
//        │  │ protocol_error    │ │ peer_half_closed
//        │  └───────┬───────────┘ └───────────┬───────────
//        │          ▼                         ▼
//        │   ┌────────────────┐        ┌───────────────┐
//        │   │ kErrorDraining │◀───────│ kEofDraining  │ (truncated tail)
//        │   └────────────────┘        └───────────────┘
//        │          │    connection_closed     │
//        └──────────┴──────────┬───────────────┘   (also: idle_expired
//                              ▼                    from any live state)
//                         ┌─────────┐
//                         │ kClosed │
//                         └─────────┘
//
// Events and their legality:
//
//   request_admitted   kReading, kOwed, kEofDraining (frames already
//                      buffered at half-close still parse and are owed
//                      answers). Illegal once torn down or closed:
//                      parse_frames stops at a protocol error.
//   response_written   any live state with owed > 0 — a fully-written
//                      frame with nothing owed is the invariant breach
//                      this checker exists for.
//   protocol_error     kReading, kOwed, kEofDraining (a truncated tail
//                      after EOF is reported as data loss). The error
//                      response itself becomes owed. Illegal twice:
//                      framing stops at the first bad byte.
//   peer_half_closed   kReading, kOwed → kEofDraining. Idempotent in the
//                      draining states: the stop()-drain marks every
//                      connection peer_eof, including torn-down ones.
//   idle_expired       any live state → kClosed (the reaper may fire
//                      with responses still owed — that backlog is the
//                      leak it exists to cut).
//   connection_closed  any state → kClosed, idempotent (schedule_close
//                      runs after idle_expired already moved the FSM).
//
// The FSM is tracked unconditionally (it is a byte of state and a
// counter); on an illegal transition it aborts with a diagnostic in
// debug/sanitizer builds (!NDEBUG || MCSN_VERIFY, the same gate as the
// IR verifier) and otherwise records the violation and coerces to a
// safe state. Tests construct it with abort_on_violation = false to
// assert on the violation count instead of dying.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace mcsn::net {

enum class ConnState : std::uint8_t {
  kReading,        ///< no responses owed; parsing frames as they arrive
  kOwed,           ///< at least one response owed to the peer
  kErrorDraining,  ///< protocol error: flush owed frames, then close
  kEofDraining,    ///< peer half-closed: flush owed frames, then close
  kClosed,         ///< fd released (or scheduled for release)
};

[[nodiscard]] constexpr const char* conn_state_name(ConnState s) noexcept {
  switch (s) {
    case ConnState::kReading: return "reading";
    case ConnState::kOwed: return "owed";
    case ConnState::kErrorDraining: return "error-draining";
    case ConnState::kEofDraining: return "eof-draining";
    case ConnState::kClosed: return "closed";
  }
  return "?";
}

class ConnFsm {
 public:
  ConnFsm() = default;
  explicit ConnFsm(bool abort_on_violation) noexcept
      : abort_on_violation_(abort_on_violation) {}

  [[nodiscard]] ConnState state() const noexcept { return state_; }
  [[nodiscard]] std::size_t owed() const noexcept { return owed_; }
  [[nodiscard]] std::size_t violations() const noexcept { return violations_; }

  /// A request frame was decoded and its response became owed (sort,
  /// batch, or inline stats — the FSM does not distinguish).
  bool request_admitted() noexcept {
    switch (state_) {
      case ConnState::kReading:
        state_ = ConnState::kOwed;
        [[fallthrough]];
      case ConnState::kOwed:
      case ConnState::kEofDraining:
        ++owed_;
        return true;
      case ConnState::kErrorDraining:
      case ConnState::kClosed:
        return violation("request_admitted");
    }
    return violation("request_admitted");
  }

  /// One owed response frame was fully written to the socket.
  bool response_written() noexcept {
    if (state_ == ConnState::kClosed || owed_ == 0) {
      return violation("response_written");
    }
    --owed_;
    if (state_ == ConnState::kOwed && owed_ == 0) {
      state_ = ConnState::kReading;
    }
    return true;
  }

  /// Malformed traffic: the error response becomes owed and framing
  /// stops for good.
  bool protocol_error() noexcept {
    switch (state_) {
      case ConnState::kReading:
      case ConnState::kOwed:
      case ConnState::kEofDraining:
        state_ = ConnState::kErrorDraining;
        ++owed_;
        return true;
      case ConnState::kErrorDraining:
      case ConnState::kClosed:
        return violation("protocol_error");
    }
    return violation("protocol_error");
  }

  /// recv() returned 0, or the stop()-drain marked the connection.
  /// Idempotent in the draining states (the drain marks everyone).
  bool peer_half_closed() noexcept {
    switch (state_) {
      case ConnState::kReading:
      case ConnState::kOwed:
        state_ = ConnState::kEofDraining;
        return true;
      case ConnState::kErrorDraining:
      case ConnState::kEofDraining:
        return true;  // already draining; nothing changes
      case ConnState::kClosed:
        return violation("peer_half_closed");
    }
    return violation("peer_half_closed");
  }

  /// The idle reaper fired — legal with responses still owed.
  bool idle_expired() noexcept {
    if (state_ == ConnState::kClosed) return violation("idle_expired");
    state_ = ConnState::kClosed;
    return true;
  }

  /// The fd was scheduled for close (any reason). Idempotent.
  bool connection_closed() noexcept {
    state_ = ConnState::kClosed;
    return true;
  }

 private:
  bool violation(const char* event) noexcept {
    ++violations_;
#if !defined(NDEBUG) || defined(MCSN_VERIFY)
    if (abort_on_violation_) {
      std::fprintf(stderr,
                   "ConnFsm: illegal event '%s' in state '%s' (owed=%zu)\n",
                   event, conn_state_name(state_), owed_);
      std::abort();
    }
#endif
    (void)event;
    return false;
  }

  ConnState state_ = ConnState::kReading;
  std::size_t owed_ = 0;
  std::size_t violations_ = 0;
  bool abort_on_violation_ = true;
};

}  // namespace mcsn::net
