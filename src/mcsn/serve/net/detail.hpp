#pragma once
// Internals shared by the net layer's translation units (server and
// client). Not part of the public surface.

#include <cerrno>
#include <cstddef>
#include <string>
#include <system_error>

namespace mcsn::net::detail {

/// read/recv chunk size for both sides' buffers; on the server it doubles
/// as the "probably drained the socket buffer" heuristic (a short read
/// means no more data is waiting).
inline constexpr std::size_t kReadChunk = 64 * 1024;

/// "what: <errno message>" — evaluate immediately after the failing call,
/// before anything else can clobber errno. Uses std::error_code's
/// thread-safe message lookup (strerror races concurrent event loops;
/// clang-tidy concurrency-mt-unsafe).
inline std::string errno_text(const char* what) {
  return std::string(what) + ": " +
         std::error_code(errno, std::generic_category()).message();
}

}  // namespace mcsn::net::detail
