#pragma once
// Internals shared by the net layer's translation units (server and
// client). Not part of the public surface.

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <string>

namespace mcsn::net::detail {

/// read/recv chunk size for both sides' buffers; on the server it doubles
/// as the "probably drained the socket buffer" heuristic (a short read
/// means no more data is waiting).
inline constexpr std::size_t kReadChunk = 64 * 1024;

/// "what: strerror(errno)" — evaluate immediately after the failing call,
/// before anything else can clobber errno.
inline std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace mcsn::net::detail
