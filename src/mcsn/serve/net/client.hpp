#pragma once
// SortClient — a minimal blocking client for the wire codec (TCP or
// UNIX-domain), the counterpart of SocketServer. Used by tests, benches
// and the example client; it is deliberately simple (blocking sockets, one
// connection): production callers with their own event loops should speak
// the frames of serve/wire.hpp directly.
//
//   auto client = net::SortClient::connect("127.0.0.1", port);
//   if (!client.ok()) ...;
//   StatusOr<SortResponse> rsp = client->sort(request);      // send + recv
//
// Batch traffic uses the same connection: send_batch()/sort_batch() encode
// a multi-round request as one BATCH frame (wire v2) — one header, one
// syscall, one response frame for all rounds — and receive() transparently
// decodes whichever response type the server answered with.
//
// send()/receive() are also exposed separately so callers can pipeline:
// many sends first, then the matching receives — responses arrive in send
// order (the server guarantees per-connection ordering). A SortClient is
// move-only and NOT thread-safe as a whole, but one thread may send()
// while another receive()s (the two directions touch disjoint state) —
// exactly the writer/reader split a closed-loop pipelined driver needs.
//
// Nothing here throws: connection failures, short writes, malformed or
// truncated response frames all surface as Status values. A server that
// closed the connection cleanly between frames reports kUnavailable
// ("connection closed") from receive(). A connect that exceeds its
// optional timeout reports kDeadlineExceeded.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mcsn/api/sort_api.hpp"
#include "mcsn/serve/wire.hpp"

namespace mcsn::net {

class SortClient {
 public:
  /// Not yet connected; receive()/send() on a default-constructed client
  /// return kFailedPrecondition.
  SortClient() = default;

  ~SortClient();

  SortClient(SortClient&& other) noexcept;
  SortClient& operator=(SortClient&& other) noexcept;
  SortClient(const SortClient&) = delete;
  SortClient& operator=(const SortClient&) = delete;

  /// Resolves `host`, connects and disables Nagle. Blocks indefinitely by
  /// default; with `timeout` set, the attempt is bounded (kDeadlineExceeded
  /// past it) — interrupted waits resume with the remaining budget, so a
  /// signal storm cannot silently shorten or extend it. Returns
  /// kUnavailable with errno/getaddrinfo text on other failures.
  [[nodiscard]] static StatusOr<SortClient> connect(
      const std::string& host, std::uint16_t port,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Connects to a SocketServer's UNIX-domain listener (SocketOptions::
  /// unix_path). Same timeout semantics as connect().
  [[nodiscard]] static StatusOr<SortClient> connect_unix(
      const std::string& path,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Encodes `request` as one wire frame and writes it fully. A deadline
  /// on the request travels as a relative budget and is re-anchored at
  /// server receipt. Single-round requests encode as a v1 REQUEST frame
  /// (interoperable with v1 servers).
  [[nodiscard]] Status send(const SortRequest& request);

  /// Encodes `request` — any rounds count, 1 included — as one BATCH
  /// request frame (wire v2). The server answers with a single BATCH
  /// response carrying all rounds' outputs. Requires a v2 server; a v1
  /// server rejects the frame with kUnimplemented.
  [[nodiscard]] Status send_batch(const SortRequest& request);

  /// Blocks for the next response frame (single-round or batch; the
  /// response's `rounds` field tells which). Responses arrive in send
  /// order. kUnavailable on clean server close between frames; kDataLoss
  /// on a close mid-frame or corrupt framing. A response whose own status
  /// is non-OK (e.g. the server answering a malformed request) decodes
  /// successfully — inspect SortResponse::status.
  [[nodiscard]] StatusOr<SortResponse> receive();

  /// send() + receive(): the one-liner for unpipelined callers.
  [[nodiscard]] StatusOr<SortResponse> sort(const SortRequest& request);

  /// send_batch() + receive(): one round trip for a whole rounds batch.
  [[nodiscard]] StatusOr<SortResponse> sort_batch(const SortRequest& request);

  /// Writes one STATS request frame (wire v2) asking for the server's
  /// observability document in `format`. Pipelines with sort sends: the
  /// matching stats response arrives in send order.
  [[nodiscard]] Status send_stats(
      wire::StatsFormat format = wire::StatsFormat::json);

  /// Blocks for the next frame, which must be a stats response (use after
  /// send_stats with no sort sends in between, or drain sort responses
  /// first when pipelining). The reply's own status reports server-side
  /// scrape failures; wire-level corruption surfaces as this call's Status.
  [[nodiscard]] StatusOr<wire::StatsReply> receive_stats();

  /// send_stats() + receive_stats(): one-call scrape.
  [[nodiscard]] StatusOr<wire::StatsReply> stats(
      wire::StatsFormat format = wire::StatsFormat::json);

  /// Closes the connection (idempotent; the destructor calls it).
  void close() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// The raw socket, for tests that need byte-level control (split writes,
  /// deliberate garbage). -1 when closed.
  [[nodiscard]] int native_handle() const noexcept { return fd_; }

 private:
  explicit SortClient(int fd) : fd_(fd) {}

  [[nodiscard]] Status write_frame(const std::vector<std::uint8_t>& frame);

  int fd_ = -1;
  /// Bytes received but not yet consumed as frames (reads can straddle
  /// frame boundaries in both directions).
  std::vector<std::uint8_t> rbuf_;
  /// recv staging buffer (only the bytes actually read move to rbuf_);
  /// touched by receive() only, so the send/receive thread split holds.
  std::vector<std::uint8_t> scratch_;
};

}  // namespace mcsn::net
