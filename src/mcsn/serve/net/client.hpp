#pragma once
// SortClient — a minimal blocking TCP client for the wire codec, the
// counterpart of SocketServer. Used by tests, benches and the example
// client; it is deliberately simple (blocking sockets, one connection):
// production callers with their own event loops should speak the frames of
// serve/wire.hpp directly.
//
//   auto client = net::SortClient::connect("127.0.0.1", port);
//   if (!client.ok()) ...;
//   StatusOr<SortResponse> rsp = client->sort(request);      // send + recv
//
// send()/receive() are also exposed separately so callers can pipeline:
// many sends first, then the matching receives — responses arrive in send
// order (the server guarantees per-connection ordering). A SortClient is
// move-only and NOT thread-safe as a whole, but one thread may send()
// while another receive()s (the two directions touch disjoint state) —
// exactly the writer/reader split a closed-loop pipelined driver needs.
//
// Nothing here throws: connection failures, short writes, malformed or
// truncated response frames all surface as Status values. A server that
// closed the connection cleanly between frames reports kUnavailable
// ("connection closed") from receive().

#include <cstdint>
#include <string>
#include <vector>

#include "mcsn/api/sort_api.hpp"

namespace mcsn::net {

class SortClient {
 public:
  /// Not yet connected; receive()/send() on a default-constructed client
  /// return kFailedPrecondition.
  SortClient() = default;

  ~SortClient();

  SortClient(SortClient&& other) noexcept;
  SortClient& operator=(SortClient&& other) noexcept;
  SortClient(const SortClient&) = delete;
  SortClient& operator=(const SortClient&) = delete;

  /// Resolves `host`, connects (blocking) and disables Nagle. Returns
  /// kUnavailable with errno/getaddrinfo text on failure.
  [[nodiscard]] static StatusOr<SortClient> connect(const std::string& host,
                                                    std::uint16_t port);

  /// Encodes `request` as one wire frame and writes it fully. A deadline
  /// on the request travels as a relative budget and is re-anchored at
  /// server receipt.
  [[nodiscard]] Status send(const SortRequest& request);

  /// Blocks for the next response frame. Responses arrive in send order.
  /// kUnavailable on clean server close between frames; kDataLoss on a
  /// close mid-frame or corrupt framing. A response whose own status is
  /// non-OK (e.g. the server answering a malformed request) decodes
  /// successfully — inspect SortResponse::status.
  [[nodiscard]] StatusOr<SortResponse> receive();

  /// send() + receive(): the one-liner for unpipelined callers.
  [[nodiscard]] StatusOr<SortResponse> sort(const SortRequest& request);

  /// Closes the connection (idempotent; the destructor calls it).
  void close() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// The raw socket, for tests that need byte-level control (split writes,
  /// deliberate garbage). -1 when closed.
  [[nodiscard]] int native_handle() const noexcept { return fd_; }

 private:
  explicit SortClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Bytes received but not yet consumed as frames (reads can straddle
  /// frame boundaries in both directions).
  std::vector<std::uint8_t> rbuf_;
  /// recv staging buffer (only the bytes actually read move to rbuf_);
  /// touched by receive() only, so the send/receive thread split holds.
  std::vector<std::uint8_t> scratch_;
};

}  // namespace mcsn::net
