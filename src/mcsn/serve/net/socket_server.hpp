#pragma once
// SocketServer — the TCP (and UNIX-domain) front door to the streaming
// sort service.
//
// Accepts connections on non-blocking listening sockets and runs them on
// one or more single-threaded event loops (epoll on Linux, poll(2)
// everywhere — the fallback is also selectable at runtime for testing).
// Each connection carries the length-prefixed wire frames of
// serve/wire.hpp:
//
//   client                         server
//   ------ request frame  ------>  incremental decode (try_parse_frame on a
//                                  per-connection read buffer; frames may
//                                  arrive split or coalesced arbitrarily)
//                                  -> SortService::submit(request, callback)
//   <----- response frame ------   responses return strictly in per-
//                                  connection request order, via an ordered
//                                  completion queue + EPOLLOUT-driven
//                                  write flushes
//
// BATCH frames (wire v2) ride the same path: a batch request decodes
// straight into one contiguous flat buffer, submits as a single
// multi-round SortRequest (one engine lane group), and answers with a
// single batch response frame — amortizing header, syscall and completion
// cost across all of its rounds.
//
// STATS frames (wire v2) are admin requests answered directly from the
// event loop — the observability document (service registry + slow-request
// ring) is rendered inline and the response queued behind the responses
// already owed, so scrapes never take a trip through the batcher yet still
// respect per-connection ordering and flow control.
//
// Scaling: SocketOptions::loops spins up N event-loop threads, each with
// its own poller instance, self-pipe and connection table. On Linux the
// TCP listener is replicated per loop with SO_REUSEPORT (the kernel
// load-balances accepts); everywhere else — and always for the UNIX-domain
// listener — loop 0 owns the listener and round-robins accepted fds to the
// other loops through their wake pipes. A connection is pinned to one loop
// for life, so all per-connection ordering and flow-control invariants
// hold exactly as in the single-loop case.
//
// Threading/ownership: the caller owns the SortService and must keep it
// alive from start() until stop() returns. Each loop thread owns its
// sockets and connection state; service completions (which run on service
// worker threads, or inline on a loop thread for synchronous rejections)
// only encode the response, file it under the request's sequence number
// and wake the owning loop through its self-pipe — they never touch a
// file descriptor. start()/stop()/port()/stats() are safe to call from
// any thread; stop() is idempotent and the destructor calls it.
//
// Flow control and defense:
//   * at most max_inflight *rounds* per connection that are decoded but
//     not yet fully written back (a single-round frame counts 1, a batch
//     frame counts its round count); at the cap the loop stops reading
//     (and parsing) that connection until responses flush, so one
//     firehose client cannot monopolize the engine — and a client that
//     sends but never reads holds a bounded encoded backlog, not an
//     unbounded write queue;
//   * at most max_connections concurrent connections across all loops
//     (excess accepts are closed immediately);
//   * a connection with no socket progress for idle_timeout is closed —
//     responses still owed included (no read/write progress that long
//     means the peer stopped reading; its backlog is reclaimed);
//   * a malformed frame (bad magic/version/type/length, or a well-framed
//     but undecodable request body) is answered with a Status error frame
//     — queued behind the responses already owed, so the client can match
//     it to the first bad request — and the connection is closed once that
//     frame flushes. Corrupt framing is unrecoverable, so nothing after
//     the bad bytes is parsed.
//
// stop() stops accepting on every loop, lets every admitted request
// complete and flushes every owed response (bounded by drain_timeout),
// then closes all sockets and joins all loop threads.
//
// The server provisions nothing on the service: callers should size
// ServeOptions::max_inflight >= max_connections * max_inflight, or accept
// that a loop thread briefly blocks in submit() under service-wide
// backpressure (correct, but it stalls that loop's connections).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "mcsn/api/status.hpp"
#include "mcsn/serve/service.hpp"

namespace mcsn::net {

struct SocketOptions {
  /// Bind address. Loopback by default: exposing a sorter to a network is
  /// an explicit decision ("0.0.0.0"), not a default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Event-loop threads. Each loop has its own poller, self-pipe and
  /// connection table; see the header comment for how accepted
  /// connections are spread across loops.
  int loops = 1;
  /// Also listen on this UNIX-domain socket path ("" = no UDS listener).
  /// A stale socket file at the path is unlinked on start; the bound path
  /// is unlinked again on stop(). Refuses to replace a non-socket file.
  std::string unix_path;
  /// Serve TCP. Disable for a UDS-only server (unix_path must then be
  /// set); port() reports 0 when no TCP listener exists.
  bool listen_tcp = true;
  /// Use the shared-acceptor round-robin dispatch even where per-loop
  /// SO_REUSEPORT listeners are available (Linux, loops > 1). Gives
  /// deterministic round-robin placement — the kernel's REUSEPORT
  /// load-balancing is hash-based — at the cost of funneling all TCP
  /// accepts through loop 0.
  bool force_acceptor = false;
  /// listen(2) backlog.
  int backlog = 128;
  /// Concurrent-connection cap across all loops; excess accepts are
  /// closed immediately.
  std::size_t max_connections = 256;
  /// Per-connection cap on *rounds* decoded but not yet fully written
  /// back (a single-round frame counts 1, a batch frame its round count;
  /// covers both in-flight sorts and encoded frames queued for a slow
  /// reader). At the cap the loop stops reading from the connection until
  /// responses flush. A batch frame larger than the cap is still served
  /// whole — it just pauses further reads until it flushes.
  std::size_t max_inflight = 64;
  /// Close a connection with no read/write progress for this long — even
  /// with responses owed (a peer that stopped reading would otherwise
  /// pin its encoded backlog forever). Zero disables idle teardown.
  std::chrono::milliseconds idle_timeout{30000};
  /// Bound on how long stop() waits for pending responses to flush before
  /// force-closing the remaining connections.
  std::chrono::milliseconds drain_timeout{5000};
  /// SO_SNDBUF for accepted connections, in bytes; 0 keeps the kernel
  /// default. Pinning it disables send-side autotuning — bounds kernel
  /// memory per slow-reading connection, and makes write backpressure
  /// deterministic in tests.
  int sndbuf = 0;
  /// Use the portable poll(2) loop even where epoll is available (the
  /// fallback path is exercised in tests on every platform this way).
  bool force_poll = false;

  /// Test-only fault hooks (soak harness, adversarial tests). All off by
  /// default; production callers never set these.
  struct FaultInjection {
    /// Cap bytes consumed per recv(2) call (0 = no cap). Forces the
    /// incremental decoder through hostile fragmentation — every frame
    /// arrives split at arbitrary byte boundaries — without needing a
    /// peer that actually trickles bytes.
    std::size_t recv_cap = 0;
    /// Cap bytes offered per send(2) call (0 = no cap). Splits response
    /// frames across many partial writes, exercising the EPOLLOUT resume
    /// path and write-offset bookkeeping on every response.
    std::size_t send_cap = 0;
  };
  FaultInjection fault;

  /// Reports every out-of-range knob in one kInvalidArgument status;
  /// start() calls it, CLI front-ends can call it earlier for better
  /// error placement.
  [[nodiscard]] Status validate() const;
};

class SocketServer {
 public:
  /// Binds nothing yet; `service` must outlive this object's start()..
  /// stop() window.
  explicit SocketServer(SortService& service, SocketOptions opt = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Validates options, binds + listens, and starts the event-loop
  /// threads. Returns kInvalidArgument for bad options and kUnavailable
  /// for socket/bind/listen failures (with errno text). Call at most once.
  [[nodiscard]] Status start();

  /// Stops accepting on every loop, drains owed responses (bounded by
  /// drain_timeout), closes every socket and joins all loop threads.
  /// Idempotent; called by the destructor. Safe from any thread, but not
  /// from a service completion.
  void stop();

  /// The bound TCP port (useful with SocketOptions::port == 0; with
  /// loops > 1 on Linux every SO_REUSEPORT listener shares this one
  /// port). 0 when TCP is disabled. Valid after a successful start().
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Cumulative counters, read back from the service's MetricsRegistry
  /// (each loop records into socket_*_total series labeled loop="i";
  /// this struct is the historical compatibility view).
  struct Stats {
    std::uint64_t accepted = 0;         ///< connections accepted
    std::uint64_t rejected = 0;         ///< accepts over max_connections
    std::uint64_t closed = 0;           ///< connections fully torn down
    std::uint64_t requests = 0;         ///< request frames submitted
                                        ///< (single-round and batch)
    std::uint64_t batch_requests = 0;   ///< batch request frames among them
    std::uint64_t rounds = 0;           ///< rounds across all request frames
    std::uint64_t responses = 0;        ///< response frames fully written
    std::uint64_t protocol_errors = 0;  ///< malformed frames answered
    std::uint64_t idle_closed = 0;      ///< idle-timeout teardowns
    std::uint64_t stats_requests = 0;   ///< stats admin frames served
    std::uint64_t fsm_violations = 0;   ///< ConnFsm violations observed at
                                        ///< teardown (always 0 in verify
                                        ///< builds, which abort instead;
                                        ///< the soak asserts it stays 0)
  };
  /// Aggregated across every loop (each loop keeps its own counters; this
  /// sums them — never just loop 0's view).
  [[nodiscard]] Stats stats() const;

  /// One loop's counters (index < loop_count()) — for tests and per-loop
  /// load introspection.
  [[nodiscard]] Stats loop_stats(std::size_t loop) const;

  /// Event loops actually running (== SocketOptions::loops after a
  /// successful start()).
  [[nodiscard]] std::size_t loop_count() const noexcept;

  /// Connections currently open across all loops (approximate from
  /// non-loop threads).
  [[nodiscard]] std::size_t connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcsn::net
