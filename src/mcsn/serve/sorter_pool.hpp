#pragma once
// Bounded LRU cache of compiled sorters keyed by request shape
// (channels, bits). Elaborating and compiling a sorter costs milliseconds
// to seconds — done once per shape, then every micro-batch of that shape
// reuses the same program. With arbitrary-shape serving (nets/compose/)
// the shape space is unbounded, so the pool is a cache, not a registry:
// `capacity` bounds the number of compiled programs kept resident and the
// least-recently-used *idle* shape is evicted when a new shape would
// exceed it (capacity 0 = unbounded, the historical behavior).
//
// Idle means built and referenced by nobody outside the cache: an entry
// whose sorter is held by an in-flight batch group or a queued shard is
// never evicted (the shared_ptr keeps the program alive for them either
// way — eviction only drops the cache's reference). If every resident
// entry is busy the pool runs over capacity until batches drain: a soft
// bound, never an error.
//
// Concurrency: the first thread to request a shape builds it outside the
// map lock; others requesting the same shape wait on a shared_future, and
// requests for *other* shapes are never stalled by an in-flight build.
// Construction failures are reported as StatusOr (kInvalidArgument for
// degenerate shapes, kUnimplemented beyond the configured construction
// bound, kResourceExhausted/kInternal for build failures) — never as
// exceptions escaping into a serve worker.
//
// With a registry, the pool publishes one labeled series family per shape
// (pool_batches_total / pool_rounds_total / pool_execute_ns, all labeled
// {channels="C",bits="B"}), a pool_build_ns gauge per shape (one-shot
// compile cost), the cache series pool_hits_total / pool_misses_total /
// pool_evictions_total, and the pool_shapes / pool_capacity gauges.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>

#include "mcsn/sorter.hpp"
#include "mcsn/util/metrics_registry.hpp"

namespace mcsn {

class SorterPool {
 public:
  /// `capacity` bounds resident compiled shapes (0 = unbounded).
  explicit SorterPool(McSorterOptions opt = {},
                      MetricsRegistry* registry = nullptr,
                      std::size_t capacity = 0);

  /// The pooled sorter for (channels, bits), building it on first use and
  /// evicting the least-recently-used idle shape when over capacity.
  /// Returns the construction failure as a Status (no cache entry is left
  /// behind); the success result is shared and immutable — McSorter's
  /// const batch API is safe for concurrent use, and an evicted program
  /// stays alive for holders of the shared_ptr.
  [[nodiscard]] StatusOr<std::shared_ptr<const McSorter>> acquire(
      int channels, std::size_t bits);

  /// Per-shape warmup observer: (shape, build status, build nanoseconds).
  using WarmupObserver =
      std::function<void(const SortShape&, const Status&, std::uint64_t)>;

  /// Pre-builds every shape in order (cache hits cost ~nothing), invoking
  /// `observe` per shape when set. Returns the first failure status but
  /// still attempts the remaining shapes.
  Status warmup(std::span<const SortShape> shapes,
                const WarmupObserver& observe = {});

  /// Records one executed batch of `rounds` lanes for this shape: bumps
  /// the shape's batch/round counters and its execute-latency histogram.
  /// No-op without a registry or for a shape never acquired.
  void record_batch(int channels, std::size_t bits, std::size_t rounds,
                    std::uint64_t execute_ns) noexcept;

  /// Number of distinct shapes resident (built or building).
  [[nodiscard]] std::size_t size() const;

  /// The configured bound (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Shapes evicted so far (also a registry counter when one is set).
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  using Key = std::pair<int, std::size_t>;
  using Result = StatusOr<std::shared_ptr<const McSorter>>;

  struct CacheEntry {
    std::shared_future<Result> future;
    /// The cache's own reference, set once the build succeeds. Idleness
    /// test: ready and nobody but the cache (entry + future shared state)
    /// holds the sorter.
    std::shared_ptr<const McSorter> sorter;
    bool ready = false;
    std::list<Key>::iterator lru;  // position in lru_ (front = coldest)
  };

  /// Registry handles for one shape, created when its build starts.
  /// Retained across eviction so in-flight batches of an evicted shape
  /// still record (registry series persist regardless).
  struct ShapeSeries {
    Counter* batches = nullptr;
    Counter* rounds = nullptr;
    AtomicHistogram* execute_ns = nullptr;
  };

  /// Never throws; maps construction failures to Status.
  [[nodiscard]] Result build_sorter(int channels, std::size_t bits) const;

  /// Drops cold idle entries until size() <= capacity_ or none qualify.
  void evict_idle_locked();

  McSorterOptions opt_;
  MetricsRegistry* registry_ = nullptr;
  std::size_t capacity_ = 0;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* eviction_counter_ = nullptr;
  mutable std::mutex mu_;
  std::list<Key> lru_;
  std::map<Key, CacheEntry> cache_;
  std::map<Key, ShapeSeries> series_;
  std::uint64_t evictions_ = 0;
};

}  // namespace mcsn
