#pragma once
// Cache of compiled sorters keyed by request shape (channels, bits).
// Elaborating and compiling a sorter costs milliseconds — done once per
// shape, then every micro-batch of that shape reuses the same program.
//
// Concurrency: the first thread to request a shape builds it outside the
// map lock; others requesting the same shape wait on a shared_future, and
// requests for *other* shapes are never stalled by an in-flight build.
//
// With a registry, the pool publishes one labeled series family per shape
// (pool_batches_total / pool_rounds_total / pool_execute_ns, all labeled
// {channels="C",bits="B"}), a pool_build_ns gauge per shape (one-shot
// compile cost), and a pool_shapes gauge — the per-shape view the flat
// service counters can't give.

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "mcsn/sorter.hpp"
#include "mcsn/util/metrics_registry.hpp"

namespace mcsn {

class SorterPool {
 public:
  explicit SorterPool(McSorterOptions opt = {},
                      MetricsRegistry* registry = nullptr)
      : opt_(std::move(opt)), registry_(registry) {}

  /// The pooled sorter for (channels, bits), building it on first use.
  /// Throws (and leaves no cache entry) if construction fails, e.g. on a
  /// degenerate shape. The result is shared and immutable; McSorter's
  /// const batch API is safe for concurrent use.
  [[nodiscard]] std::shared_ptr<const McSorter> acquire(int channels,
                                                        std::size_t bits);

  /// Records one executed batch of `rounds` lanes for this shape: bumps
  /// the shape's batch/round counters and its execute-latency histogram.
  /// No-op without a registry or for a shape never acquired.
  void record_batch(int channels, std::size_t bits, std::size_t rounds,
                    std::uint64_t execute_ns) noexcept;

  /// Number of distinct shapes built or building.
  [[nodiscard]] std::size_t size() const;

 private:
  using Key = std::pair<int, std::size_t>;
  using Entry = std::shared_future<std::shared_ptr<const McSorter>>;

  /// Registry handles for one shape, created when its build starts.
  struct ShapeSeries {
    Counter* batches = nullptr;
    Counter* rounds = nullptr;
    AtomicHistogram* execute_ns = nullptr;
  };

  McSorterOptions opt_;
  MetricsRegistry* registry_ = nullptr;
  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::map<Key, ShapeSeries> series_;
};

}  // namespace mcsn
