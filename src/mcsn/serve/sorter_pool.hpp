#pragma once
// Cache of compiled sorters keyed by request shape (channels, bits).
// Elaborating and compiling a sorter costs milliseconds — done once per
// shape, then every micro-batch of that shape reuses the same program.
//
// Concurrency: the first thread to request a shape builds it outside the
// map lock; others requesting the same shape wait on a shared_future, and
// requests for *other* shapes are never stalled by an in-flight build.

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "mcsn/sorter.hpp"

namespace mcsn {

class SorterPool {
 public:
  explicit SorterPool(McSorterOptions opt = {}) : opt_(std::move(opt)) {}

  /// The pooled sorter for (channels, bits), building it on first use.
  /// Throws (and leaves no cache entry) if construction fails, e.g. on a
  /// degenerate shape. The result is shared and immutable; McSorter's
  /// const batch API is safe for concurrent use.
  [[nodiscard]] std::shared_ptr<const McSorter> acquire(int channels,
                                                        std::size_t bits);

  /// Number of distinct shapes built or building.
  [[nodiscard]] std::size_t size() const;

 private:
  using Key = std::pair<int, std::size_t>;
  using Entry = std::shared_future<std::shared_ptr<const McSorter>>;

  McSorterOptions opt_;
  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
};

}  // namespace mcsn
