#include "mcsn/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mcsn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
  return *this;
}

TextTable& TextTable::add_rule() {
  pending_rule_ = true;
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }
  auto print_rule = [&os, &width] {
    os << '+';
    for (const std::size_t w : width) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&os, &width](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left << s
         << " |";
    }
    os << '\n';
  };
  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& r : rows_) {
    if (r.rule_before) print_rule();
    print_cells(r.cells);
  }
  print_rule();
}

std::string TextTable::str() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TextTable::pct(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v << "%";
  return ss.str();
}

}  // namespace mcsn
