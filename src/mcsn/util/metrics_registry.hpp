#pragma once
// Process-wide observability primitives: named counters, gauges and
// log-bucketed histograms, registered once (cold path, mutex-guarded) and
// recorded through stable handles (hot path, relaxed atomics — no locks,
// no allocation). One MetricsRegistry is shared by every serving layer
// (SortService, MicroBatcher, SorterPool, SocketServer), replacing the
// per-subsystem ad-hoc stat structs with one coherent namespace:
//
//   MetricsRegistry reg;
//   Counter& hits = reg.counter("cache_hits_total");         // once
//   hits.add();                                              // per event
//   AtomicHistogram& lat = reg.histogram("stage_queue_ns");
//   lat.record(ns);
//
//   reg.json();        // {"cache_hits_total": 1, "stage_queue_ns": {...}}
//   reg.prometheus();  // text exposition (counter/gauge/summary)
//
// Series identity is (kind, name, sorted labels); registering the same
// series twice returns the same handle, so subsystems that share a
// registry share the series. Handles stay valid for the registry's
// lifetime (storage is never moved after registration).
//
// Consistency: recordings are relaxed atomics, so a snapshot taken under
// concurrent traffic is a near-point-in-time view, not a linearizable
// cut — each series is itself consistent (a histogram's quantiles are
// computed from one coherent bucket sweep), and cross-series skew is
// bounded by the writes in flight during the sweep.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mcsn/util/histogram.hpp"

namespace mcsn {

/// Monotonic event counter. add() is wait-free: each thread lands on one
/// of kShards cache-line-padded atomics (stable per-thread slot), so
/// concurrent hot-path increments never contend on one line.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shard().fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Monotone between calls as long as no shard
  /// wraps (2^64 events).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kShards = 8;

  [[nodiscard]] std::atomic<std::uint64_t>& shard() noexcept;

  Shard shards_[kShards];
};

/// Point-in-time signed quantity (queue depths, open shards).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Histogram with the exact bucket layout of util/histogram.hpp, but
/// recordable from any number of threads without locks: bucket/count/sum
/// increments are relaxed fetch_adds, min/max are CAS loops. snapshot()
/// materializes a plain Histogram for quantiles/JSON on the cold path.
class AtomicHistogram {
 public:
  void record(std::uint64_t value) noexcept;

  /// Near-point-in-time copy; count is derived from the bucket sweep so
  /// quantile ranks are internally consistent.
  [[nodiscard]] Histogram snapshot() const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[Histogram::kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// Label set of one series, e.g. {{"loop", "0"}}. Keys and values must
  /// be Prometheus-safe (keys [a-zA-Z_][a-zA-Z0-9_]*; values free text —
  /// they are escaped on exposition). Order is irrelevant (sorted on
  /// registration).
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the reference stays valid for the registry's
  /// lifetime. Names follow Prometheus conventions ([a-z0-9_], counters
  /// suffixed _total, histograms suffixed with their unit, e.g. _ns).
  [[nodiscard]] Counter& counter(const std::string& name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, Labels labels = {});
  [[nodiscard]] AtomicHistogram& histogram(const std::string& name,
                                           Labels labels = {});

  enum class Kind { counter, gauge, histogram };

  /// One series' state at snapshot time.
  struct Series {
    std::string name;
    Labels labels;  // sorted by key
    Kind kind = Kind::counter;
    std::uint64_t counter_value = 0;
    std::int64_t gauge_value = 0;
    Histogram histogram;

    /// "name" or "name{k1=\"v1\",k2=\"v2\"}" — the exposition identity.
    [[nodiscard]] std::string key() const;
  };

  /// Every registered series, deterministically ordered (by name, then
  /// labels, counters/gauges/histograms interleaved alphabetically).
  [[nodiscard]] std::vector<Series> snapshot() const;

  /// Flat JSON object keyed by Series::key(): counters/gauges as numbers,
  /// histograms as {"count","min","p50","p90","p99","max","mean"}
  /// objects (values in the series' recorded unit). Locale-independent.
  [[nodiscard]] std::string json() const;

  /// Prometheus text exposition: counters/gauges as single samples,
  /// histograms summary-style (quantile-labeled samples plus _sum and
  /// _count). One # TYPE line per metric name.
  [[nodiscard]] std::string prometheus() const;

 private:
  struct Slot {
    std::string name;
    Labels labels;
    Kind kind = Kind::counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<AtomicHistogram> histogram;
  };

  [[nodiscard]] Slot& slot(Kind kind, const std::string& name, Labels labels);

  mutable std::mutex mu_;
  /// Keyed by kind-prefixed series key so lookups are exact; std::map
  /// gives the deterministic exposition order for free.
  std::map<std::string, Slot> series_;
};

}  // namespace mcsn
