#pragma once
// Persistent worker pool for level- and lane-parallel evaluation.
//
// Every threaded path in the library used to spawn fresh std::threads per
// call (BatchEvaluator::run) or rely on ad-hoc per-owner thread sets; this
// pool replaces all of that with one fixed worker set that is started once
// and reused for the lifetime of its owner(s):
//
//   ThreadPool pool(3);                       // 3 workers + the caller
//   pool.run_and_wait(8, [&](std::size_t i) { shard(i); });
//
// run_and_wait(n, fn) invokes fn(0..n-1) exactly once each, spreading the
// indices across the workers *and* the calling thread (the caller is always
// an execution resource, so ThreadPool(0) degrades to a plain serial loop
// with zero thread overhead). It blocks until every index has finished and
// rethrows the first task exception.
//
// The pool is safe to share between several concurrent owners: batches from
// different callers are queued FIFO and each caller only blocks on its own
// batch. This is what lets one bounded pool serve N service workers x M
// pooled sorters without workers x threads oversubscription.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsn {

class ThreadPool {
 public:
  /// Spawns exactly `workers` threads (0 is valid: run_and_wait then runs
  /// everything inline on the caller). For a target parallelism of T,
  /// construct with T - 1 workers — the caller is the T-th lane.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Parallel lanes a run_and_wait can use: workers + the calling thread.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return workers_.size() + 1;
  }

  /// Invokes task(i) exactly once for every i in [0, n), on the workers and
  /// on the calling thread; returns when all n invocations have finished.
  /// The first exception thrown by any task is rethrown here (remaining
  /// tasks still run). Reentrant from multiple threads concurrently; do NOT
  /// call it from inside a task on the same pool (the worker would deadlock
  /// waiting on itself).
  void run_and_wait(std::size_t n,
                    const std::function<void(std::size_t)>& task);

  /// max(1, std::thread::hardware_concurrency) — the default parallelism
  /// target used wherever a knob is 0 ("auto").
  [[nodiscard]] static std::size_t hardware_parallelism() noexcept;

  /// Process-wide count of threads ever started by any ThreadPool. Tests
  /// use it to prove hot paths construct zero threads per call.
  [[nodiscard]] static std::uint64_t threads_started() noexcept;

 private:
  /// One run_and_wait call: a shared claim cursor plus completion count.
  /// The task function outlives the batch (the caller blocks in
  /// run_and_wait until done == total), so a raw pointer suffices.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;   // next unclaimed index, guarded by pool mutex
    std::size_t total = 0;
    std::size_t done = 0;   // finished invocations, guarded by pool mutex
    std::exception_ptr error;        // first failure
    std::condition_variable finished;  // signaled when done == total
  };

  void worker_loop();
  /// Runs index `i` of `batch` with the pool lock dropped, then books the
  /// completion. `lock` is held on entry and on return.
  void execute(const std::shared_ptr<Batch>& batch, std::size_t i,
               std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> pending_;  // batches with unclaimed work
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mcsn
