#include "mcsn/util/metrics_registry.hpp"

#include <algorithm>
#include <locale>
#include <sstream>
#include <tuple>

namespace mcsn {

namespace {

/// Stable, process-unique slot per thread; counters fold it onto their
/// shard array. Threads beyond kShards share shards round-robin, which
/// costs contention, never correctness.
std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Label values (and JSON keys embedding them) may carry quotes or
/// backslashes; both JSON strings and the Prometheus text format escape
/// them the same way ( \" , \\ , \n ).
std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Prometheus sample line with the base labels plus an optional extra
/// label (the quantile), e.g. name{channels="6",quantile="0.5"} 42.
void sample_line(std::ostream& os, const std::string& name,
                 const std::string& suffix,
                 const MetricsRegistry::Labels& labels, const char* extra_key,
                 const std::string& extra_value, double value) {
  os << name << suffix;
  if (!labels.empty() || extra_key != nullptr) {
    os << "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) os << ",";
      first = false;
      os << k << "=\"" << escape(v) << "\"";
    }
    if (extra_key != nullptr) {
      if (!first) os << ",";
      os << extra_key << "=\"" << extra_value << "\"";
    }
    os << "}";
  }
  os << " " << value << "\n";
}

const char* kind_prefix(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::counter: return "c:";
    case MetricsRegistry::Kind::gauge: return "g:";
    case MetricsRegistry::Kind::histogram: return "h:";
  }
  return "?:";
}

const char* prometheus_type(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::counter: return "counter";
    case MetricsRegistry::Kind::gauge: return "gauge";
    case MetricsRegistry::Kind::histogram: return "summary";
  }
  return "untyped";
}

}  // namespace

std::atomic<std::uint64_t>& Counter::shard() noexcept {
  return shards_[thread_slot() % kShards].v;
}

void AtomicHistogram::record(std::uint64_t value) noexcept {
  buckets_[Histogram::bucket_of(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram AtomicHistogram::snapshot() const noexcept {
  Histogram h;
  std::uint64_t count = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    h.buckets_[b] = n;
    count += n;
  }
  // Count is derived from the same bucket sweep the quantile walk uses, so
  // ranks always resolve inside the copied buckets even mid-record.
  h.count_ = count;
  h.sum_ = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  h.min_ = (count == 0 || min == ~std::uint64_t{0}) ? 0 : min;
  h.max_ = max_.load(std::memory_order_relaxed);
  return h;
}

std::string MetricsRegistry::Series::key() const {
  return name + render_labels(labels);
}

MetricsRegistry::Slot& MetricsRegistry::slot(Kind kind, const std::string& name,
                                             Labels labels) {
  std::sort(labels.begin(), labels.end());
  // The kind prefix keeps a kind-mismatched re-registration (same name,
  // different kind — a caller bug) from returning the wrong object type.
  const std::string key = kind_prefix(kind) + name + render_labels(labels);
  std::lock_guard lock(mu_);
  const auto it = series_.find(key);
  if (it != series_.end()) return it->second;
  Slot& slot = series_[key];
  slot.name = name;
  slot.labels = std::move(labels);
  slot.kind = kind;
  switch (kind) {
    case Kind::counter: slot.counter = std::make_unique<Counter>(); break;
    case Kind::gauge: slot.gauge = std::make_unique<Gauge>(); break;
    case Kind::histogram:
      slot.histogram = std::make_unique<AtomicHistogram>();
      break;
  }
  return slot;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *slot(Kind::counter, name, std::move(labels)).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *slot(Kind::gauge, name, std::move(labels)).gauge;
}

AtomicHistogram& MetricsRegistry::histogram(const std::string& name,
                                            Labels labels) {
  return *slot(Kind::histogram, name, std::move(labels)).histogram;
}

std::vector<MetricsRegistry::Series> MetricsRegistry::snapshot() const {
  std::vector<Series> out;
  std::lock_guard lock(mu_);
  out.reserve(series_.size());
  for (const auto& [key, slot] : series_) {
    Series s;
    s.name = slot.name;
    s.labels = slot.labels;
    s.kind = slot.kind;
    switch (slot.kind) {
      case Kind::counter: s.counter_value = slot.counter->value(); break;
      case Kind::gauge: s.gauge_value = slot.gauge->value(); break;
      case Kind::histogram: s.histogram = slot.histogram->snapshot(); break;
    }
    out.push_back(std::move(s));
  }
  // The map iterates in kind-prefixed order; re-sort by the exposition
  // identity so output groups by name regardless of kind.
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  });
  return out;
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  // Scraped by CI tooling: a grouping/decimal-comma global locale must
  // not leak into the document.
  os.imbue(std::locale::classic());
  os << "{";
  bool first = true;
  for (const Series& s : snapshot()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(s.key()) << "\": ";
    switch (s.kind) {
      case Kind::counter: os << s.counter_value; break;
      case Kind::gauge: os << s.gauge_value; break;
      case Kind::histogram: os << s.histogram.json(); break;
    }
  }
  os << "}";
  return os.str();
}

std::string MetricsRegistry::prometheus() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  std::string typed;  // last name a # TYPE line was emitted for
  for (const Series& s : snapshot()) {
    if (s.name != typed) {
      os << "# TYPE " << s.name << " " << prometheus_type(s.kind) << "\n";
      typed = s.name;
    }
    switch (s.kind) {
      case Kind::counter:
        sample_line(os, s.name, "", s.labels, nullptr, "",
                    static_cast<double>(s.counter_value));
        break;
      case Kind::gauge:
        sample_line(os, s.name, "", s.labels, nullptr, "",
                    static_cast<double>(s.gauge_value));
        break;
      case Kind::histogram: {
        for (const double q : {0.5, 0.9, 0.99}) {
          std::ostringstream qs;
          qs.imbue(std::locale::classic());
          qs << q;
          sample_line(os, s.name, "", s.labels, "quantile", qs.str(),
                      static_cast<double>(s.histogram.quantile(q)));
        }
        sample_line(os, s.name, "_sum", s.labels, nullptr, "",
                    static_cast<double>(s.histogram.count()) *
                        s.histogram.mean());
        sample_line(os, s.name, "_count", s.labels, nullptr, "",
                    static_cast<double>(s.histogram.count()));
        break;
      }
    }
  }
  return os.str();
}

}  // namespace mcsn
