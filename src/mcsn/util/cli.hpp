#pragma once
// Minimal command-line flag parser for the example binaries:
// --key value / --key=value / --flag.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcsn {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Value of --key (either "--key value" or "--key=value").
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  [[nodiscard]] std::string get_or(std::string_view key,
                                   std::string fallback) const;

  [[nodiscard]] long get_long_or(std::string_view key, long fallback) const;

  /// True if --key is present (with or without value).
  [[nodiscard]] bool has(std::string_view key) const;

  /// Positional (non-flag) arguments.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mcsn
