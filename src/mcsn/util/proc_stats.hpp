#pragma once
// Process-level resource sampling for leak detection: resident set size
// and open file-descriptor count, read from /proc/self on Linux. The soak
// harness (tools/soak.cpp, docs/SOAK.md) samples these throughout a
// campaign and asserts the RSS slope and fd baseline at the end; the
// gauges below put the same numbers on every STATS scrape so an external
// monitor can watch a live tool_sortd for the same drifts.
//
//   MetricsRegistry reg;
//   ProcStatsGauges gauges(reg);
//   gauges.refresh();          // before every scrape
//   reg.json();                // ... "process_rss_bytes": 12345678 ...
//
// On platforms without /proc (or a hardened /proc), read_proc_stats()
// reports -1 per field instead of failing; the gauges then publish -1 and
// consumers treat the series as unsupported.

#include <cstdint>

#include "mcsn/util/metrics_registry.hpp"

namespace mcsn {

/// One sample of the calling process's resource footprint. -1 per field
/// means "could not be read on this platform".
struct ProcStats {
  /// Resident set size in bytes (VmRSS from /proc/self/status).
  std::int64_t rss_bytes = -1;
  /// Open file descriptors (entries in /proc/self/fd, excluding the
  /// directory handle the count itself holds open).
  std::int64_t open_fds = -1;
};

/// Samples /proc/self once. Async-signal-UNSAFE (opendir/ifstream); call
/// from ordinary threads only. Cheap enough for ~ms-period polling but
/// not for per-request paths.
[[nodiscard]] ProcStats read_proc_stats();

/// Registers `process_rss_bytes` / `process_open_fds` gauges and updates
/// them from read_proc_stats() on refresh(). The service calls refresh()
/// before rendering a stats document, so every scrape carries a fresh
/// sample without any background thread.
class ProcStatsGauges {
 public:
  /// Registers the two gauges (get-or-create: constructing twice against
  /// one registry shares the series). Handles stay valid for the
  /// registry's lifetime; the registry must outlive this object.
  explicit ProcStatsGauges(MetricsRegistry& registry);

  /// Samples and publishes; returns the sample for callers that also
  /// want the raw values.
  ProcStats refresh() const;

 private:
  Gauge* rss_;
  Gauge* fds_;
};

}  // namespace mcsn
