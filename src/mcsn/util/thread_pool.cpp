#include "mcsn/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace mcsn {

namespace {
std::atomic<std::uint64_t> g_threads_started{0};
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&ThreadPool::worker_loop, this);
    g_threads_started.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::hardware_parallelism() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::uint64_t ThreadPool::threads_started() noexcept {
  return g_threads_started.load(std::memory_order_relaxed);
}

void ThreadPool::execute(const std::shared_ptr<Batch>& batch, std::size_t i,
                         std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  std::exception_ptr err;
  try {
    (*batch->fn)(i);
  } catch (...) {
    err = std::current_exception();
  }
  lock.lock();
  if (err && !batch->error) batch->error = err;
  if (++batch->done == batch->total) batch->finished.notify_one();
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (!pending_.empty()) {
      // Claim the next index of the oldest batch; drop the batch from the
      // pending deque once fully claimed (completion is tracked separately
      // by done, which stragglers keep bumping).
      const std::shared_ptr<Batch> batch = pending_.front();
      const std::size_t i = batch->next++;
      if (batch->next == batch->total) pending_.pop_front();
      execute(batch, i, lock);
      continue;
    }
    if (stop_) return;
  }
}

void ThreadPool::run_and_wait(std::size_t n,
                              const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  const auto batch = std::make_shared<Batch>();
  batch->fn = &task;
  batch->total = n;

  std::unique_lock lock(mu_);
  const bool offer = n > 1 && !workers_.empty();
  if (offer) pending_.push_back(batch);
  lock.unlock();
  if (offer) work_cv_.notify_all();
  lock.lock();

  // The caller works its own batch alongside the pool, so a pool busy with
  // other owners (or with zero workers) still makes progress.
  while (batch->next < batch->total) {
    const std::size_t i = batch->next++;
    if (batch->next == batch->total && offer) {
      std::erase(pending_, batch);
    }
    execute(batch, i, lock);
  }
  batch->finished.wait(lock, [&] { return batch->done == batch->total; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace mcsn
