#pragma once
// Shared load-generation helpers for the serve bench, the sortd driver and
// tests: a Poisson arrival clock and a random valid-round builder. One
// definition so the exponential pacing and the measurement-round corpus
// can't drift between the drivers.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mcsn/core/valid.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {

/// Open-loop Poisson arrival schedule: exponential inter-arrival times at
/// `rate` events/second, anchored at construction time. next() returns the
/// absolute steady_clock instant of the next arrival, independent of how
/// late the caller is (that's what makes the loop open rather than closed).
class PoissonClock {
 public:
  /// Throws std::invalid_argument unless rate_per_sec is finite and > 0 —
  /// a zero/negative/NaN rate would make every deadline inf or NaN, and
  /// sleep_until(inf) degrades to a never-ending spin in the open loop.
  PoissonClock(double rate_per_sec, Xoshiro256& rng,
               std::chrono::steady_clock::time_point start =
                   std::chrono::steady_clock::now())
      : rate_(rate_per_sec), rng_(&rng), start_(start) {
    if (!std::isfinite(rate_per_sec) || rate_per_sec <= 0.0) {
      throw std::invalid_argument(
          "PoissonClock: rate_per_sec must be finite and > 0");
    }
  }

  [[nodiscard]] std::chrono::steady_clock::time_point next() {
    // uniform() is in [0, 1), so 1 - u is in (0, 1] and log() is finite.
    offset_s_ += -std::log(1.0 - rng_->uniform()) / rate_;
    return start_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(offset_s_));
  }

  [[nodiscard]] std::chrono::steady_clock::time_point start() const noexcept {
    return start_;
  }

 private:
  double rate_;
  Xoshiro256* rng_;
  std::chrono::steady_clock::time_point start_;
  double offset_s_ = 0.0;
};

/// One measurement round: `channels` uniformly random valid strings of
/// `bits` trits (marginal measurements included — ~half carry an M bit).
[[nodiscard]] inline std::vector<Word> random_valid_round(Xoshiro256& rng,
                                                          int channels,
                                                          std::size_t bits) {
  std::vector<Word> round;
  round.reserve(static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    round.push_back(valid_from_rank(rng.below(valid_count(bits)), bits));
  }
  return round;
}

}  // namespace mcsn
