#pragma once
// Small, fast, deterministic PRNG (xoshiro256**) for tests, benchmarks and
// the network synthesizer. Deterministic across platforms, unlike
// std::mt19937 distributions.

#include <cstdint>
#include <vector>

namespace mcsn {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // splitmix64 seeding.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mcsn
