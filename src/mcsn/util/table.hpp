#pragma once
// Column-aligned plain-text table printer for the bench binaries.

#include <iosfwd>
#include <string>
#include <vector>

namespace mcsn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  TextTable& add_rule();

  void print(std::ostream& os) const;

  [[nodiscard]] std::string str() const;

  // Cell formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 1);
  [[nodiscard]] static std::string pct(double v, int precision = 1);

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace mcsn
