#include "mcsn/util/cli.hpp"

#include <cstdlib>

namespace mcsn {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace_back(std::string(body.substr(0, eq)),
                          std::string(body.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) !=
                                   0) {
      flags_.emplace_back(std::string(body), std::string(argv[++i]));
    } else {
      flags_.emplace_back(std::string(body), std::string{});
    }
  }
}

std::optional<std::string> CliArgs::get(std::string_view key) const {
  for (const auto& [k, v] : flags_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string CliArgs::get_or(std::string_view key, std::string fallback) const {
  if (auto v = get(key)) return *v;
  return fallback;
}

long CliArgs::get_long_or(std::string_view key, long fallback) const {
  if (auto v = get(key); v && !v->empty()) return std::atol(v->c_str());
  return fallback;
}

bool CliArgs::has(std::string_view key) const {
  for (const auto& [k, v] : flags_) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace mcsn
