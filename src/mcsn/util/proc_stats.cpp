#include "mcsn/util/proc_stats.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <dirent.h>
#endif

namespace mcsn {
namespace {

/// VmRSS from /proc/self/status, in bytes; -1 when absent. The kernel
/// reports "VmRSS:   <n> kB" — the unit is fixed, so we parse the number
/// and scale.
std::int64_t read_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::int64_t kib = -1;
    fields >> kib;
    if (!fields || kib < 0) return -1;
    return kib * 1024;
  }
#endif
  return -1;
}

/// Entries in /proc/self/fd minus the directory stream's own descriptor;
/// -1 when the directory cannot be read.
std::int64_t read_open_fds() {
#if defined(__linux__)
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  std::int64_t count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;  // "." and ".."
    ++count;
  }
  ::closedir(dir);
  // The opendir itself held one fd that is now closed again.
  return count > 0 ? count - 1 : count;
#else
  return -1;
#endif
}

}  // namespace

ProcStats read_proc_stats() {
  ProcStats s;
  s.rss_bytes = read_rss_bytes();
  s.open_fds = read_open_fds();
  return s;
}

ProcStatsGauges::ProcStatsGauges(MetricsRegistry& registry)
    : rss_(&registry.gauge("process_rss_bytes")),
      fds_(&registry.gauge("process_open_fds")) {
  refresh();  // publish a first sample so the series never reads 0
}

ProcStats ProcStatsGauges::refresh() const {
  ProcStats s = read_proc_stats();
  rss_->set(s.rss_bytes);
  fds_->set(s.open_fds);
  return s;
}

}  // namespace mcsn
