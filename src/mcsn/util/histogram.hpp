#pragma once
// Log-bucketed histogram for latency/size distributions (HDR-style, fixed
// memory): exact below 8, then 8 linear sub-buckets per power of two, giving
// a worst-case quantile error of one part in 16 (~6%). Values are plain
// uint64 — the caller picks the unit (the serve subsystem records
// nanoseconds and reports microseconds).
//
// Not internally synchronized; wrap in a mutex (ServiceMetrics does) or
// keep one per thread and merge().

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcsn {

class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]).
  /// Exact for values < 8; within 1/16 relative error above. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  void merge(const Histogram& other) noexcept;
  void reset() noexcept;

  /// JSON object {"count":..,"min":..,"p50":..,"p90":..,"p99":..,"max":..,
  /// "mean":..}, values divided by `unit` (e.g. 1000 to report recorded
  /// nanoseconds as microseconds).
  [[nodiscard]] std::string json(double unit = 1.0) const;

 private:
  // AtomicHistogram (util/metrics_registry.hpp) shares this exact bucket
  // layout so its lock-free recordings snapshot into a plain Histogram
  // without translation.
  friend class AtomicHistogram;

  // Buckets 0..7 hold values 0..7 exactly; above that, 8 sub-buckets per
  // binary order of magnitude: value with bit width e >= 4 lands in
  // 8 + (e - 4) * 8 + (next 3 bits below the leading bit).
  static constexpr std::size_t kBuckets = 8 + (64 - 3) * 8;
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept;

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace mcsn
