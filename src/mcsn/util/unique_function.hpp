#pragma once
// Move-only callable wrapper, the subset of C++23 std::move_only_function
// the serve layer needs. std::function requires copyable targets, which
// rules out completions that capture a std::promise; this wrapper accepts
// any move-constructible callable. One heap allocation per target, invoke
// through a single virtual call.

#include <cassert>
#include <memory>
#include <type_traits>
#include <utility>

namespace mcsn {

template <class Signature>
class UniqueFunction;

template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f)
      : target_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {
  }

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  [[nodiscard]] explicit operator bool() const noexcept {
    return target_ != nullptr;
  }

  /// Precondition: holds a target.
  R operator()(Args... args) {
    assert(target_ != nullptr);
    return target_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <class F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args&&... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> target_;
};

}  // namespace mcsn
