#include "mcsn/util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <locale>
#include <sstream>

namespace mcsn {

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  if (v < 8) return static_cast<std::size_t>(v);
  const int e = std::bit_width(v);  // >= 4
  const std::uint64_t sub = (v >> (e - 4)) & 7;
  return 8 + static_cast<std::size_t>(e - 4) * 8 +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t b) noexcept {
  if (b < 8) return b;
  const std::size_t off = b - 8;
  const int e = 4 + static_cast<int>(off / 8);
  const std::uint64_t sub = off % 8;
  const std::uint64_t lower =
      (std::uint64_t{1} << (e - 1)) | (sub << (e - 4));
  return lower + ((std::uint64_t{1} << (e - 4)) - 1);
}

void Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  min_ = count_ == 1 ? value : std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile, 1-based; walk the cumulative counts.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept { *this = Histogram{}; }

std::string Histogram::json(double unit) const {
  const auto scaled = [unit](std::uint64_t v) {
    return static_cast<double>(v) / unit;
  };
  std::ostringstream os;
  // A default-constructed stream inherits the global locale; under e.g. a
  // de_DE locale that means digit grouping and decimal commas — invalid
  // JSON. Always emit in the locale-independent "C" form.
  os.imbue(std::locale::classic());
  os << "{\"count\": " << count_ << ", \"min\": " << scaled(min())
     << ", \"p50\": " << scaled(quantile(0.5))
     << ", \"p90\": " << scaled(quantile(0.9))
     << ", \"p99\": " << scaled(quantile(0.99))
     << ", \"max\": " << scaled(max_) << ", \"mean\": "
     << (count_ ? static_cast<double>(sum_) / static_cast<double>(count_) /
                      unit
                : 0.0)
     << "}";
  return os.str();
}

}  // namespace mcsn
