#pragma once
// Bin-comp: the paper's standard, NON-containing binary comparator baseline
// (Sec. 6, Listing 1). Takes plain binary inputs, computes greater = (a > b)
// with a tree comparator, and steers both outputs through standard
// multiplexers. Uses the extended cell set (XNOR2 / AO21 / MUX2 counted as
// one gate each, as in the paper's synthesis flow, which "disfavors" the MC
// designs in gate-count comparisons).
//
// This circuit does NOT contain metastability: a metastable select bit can
// reach every output mux. The test suite demonstrates exactly that (it
// computes correct results on stable inputs and propagates M wildly on
// marginal ones).

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// Emits the comparator + mux circuit; returns (max, min) buses.
[[nodiscard]] BusPair build_bincomp(Netlist& nl, const Bus& a, const Bus& b);

/// Standalone circuit with inputs a[.], b[.] and outputs max[.], min[.].
[[nodiscard]] Netlist make_bincomp(std::size_t bits);

[[nodiscard]] std::size_t bincomp_gate_count(std::size_t bits);

}  // namespace mcsn
