#pragma once
// Parallel prefix computation (PPC) topologies, generic over the element
// type and combine operation (Ladner & Fischer; paper Sec. 5.2, Fig. 4).
//
// Given x_0 .. x_{n-1} and an associative operator OP, a PPC returns all
// inclusive prefixes pi_i = x_0 OP ... OP x_i. Every topology below combines
// only *adjacent, disjoint* ranges, so by Theorem 4.1 each is a valid
// evaluation order for the closure operator ⋄M on valid strings even though
// ⋄M is not associative in general.
//
// Topologies:
//   ladner_fischer — the paper's Fig. 4 recursion (Even's presentation):
//                    cost 2n - log2(n) - 2 for powers of two, depth
//                    <= 2 log2(n) - 1. This is the paper's choice.
//   sklansky       — minimal depth ceil(log2 n), cost Theta(n log n),
//                    unbounded fanout.
//   kogge_stone    — minimal depth, cost Theta(n log n), fanout 2.
//   han_carlson    — one odd/even level around kogge_stone.
//   serial         — chain: cost n-1, depth n-1 (FSM unrolling).

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace mcsn {

enum class PpcTopology {
  ladner_fischer,
  sklansky,
  kogge_stone,
  han_carlson,
  serial,
};

inline constexpr PpcTopology kAllPpcTopologies[] = {
    PpcTopology::ladner_fischer, PpcTopology::sklansky,
    PpcTopology::kogge_stone, PpcTopology::han_carlson, PpcTopology::serial};

[[nodiscard]] std::string_view ppc_topology_name(PpcTopology t) noexcept;
[[nodiscard]] std::optional<PpcTopology> ppc_topology_from_name(
    std::string_view name) noexcept;

namespace detail {

template <typename E, typename F>
std::vector<E> ppc_lf(std::span<const E> x, F& combine) {
  const std::size_t n = x.size();
  std::vector<E> out(n);
  if (n == 0) return out;
  out[0] = x[0];
  if (n == 1) return out;

  // Pair up adjacent inputs; a lone last input passes through (odd n).
  std::vector<E> paired;
  paired.reserve((n + 1) / 2);
  for (std::size_t k = 0; 2 * k + 1 < n; ++k) {
    paired.push_back(combine(x[2 * k], x[2 * k + 1]));
  }
  if (n % 2 == 1) paired.push_back(x[n - 1]);

  const std::vector<E> inner =
      ppc_lf(std::span<const E>(paired), combine);

  // Odd positions come straight from the inner prefixes; even positions
  // need one more combine. The last position of odd n is inner.back().
  for (std::size_t k = 0; 2 * k + 1 < n; ++k) out[2 * k + 1] = inner[k];
  for (std::size_t k = 1; 2 * k < n; ++k) {
    if (n % 2 == 1 && 2 * k == n - 1) {
      out[n - 1] = inner.back();
    } else {
      out[2 * k] = combine(inner[k - 1], x[2 * k]);
    }
  }
  return out;
}

template <typename E, typename F>
std::vector<E> ppc_sklansky(std::span<const E> x, F& combine) {
  const std::size_t n = x.size();
  if (n <= 1) return std::vector<E>(x.begin(), x.end());
  const std::size_t m = (n + 1) / 2;
  std::vector<E> left = ppc_sklansky(x.subspan(0, m), combine);
  const std::vector<E> right = ppc_sklansky(x.subspan(m), combine);
  std::vector<E> out = std::move(left);
  out.reserve(n);
  for (const E& r : right) out.push_back(combine(out[m - 1], r));
  return out;
}

template <typename E, typename F>
std::vector<E> ppc_kogge_stone(std::span<const E> x, F& combine) {
  std::vector<E> cur(x.begin(), x.end());
  const std::size_t n = cur.size();
  for (std::size_t d = 1; d < n; d *= 2) {
    std::vector<E> next = cur;
    for (std::size_t i = n; i-- > d;) {
      next[i] = combine(cur[i - d], cur[i]);
    }
    cur = std::move(next);
  }
  return cur;
}

template <typename E, typename F>
std::vector<E> ppc_han_carlson(std::span<const E> x, F& combine) {
  const std::size_t n = x.size();
  std::vector<E> out(n);
  if (n == 0) return out;
  out[0] = x[0];
  if (n == 1) return out;
  std::vector<E> paired;
  paired.reserve((n + 1) / 2);
  for (std::size_t k = 0; 2 * k + 1 < n; ++k) {
    paired.push_back(combine(x[2 * k], x[2 * k + 1]));
  }
  if (n % 2 == 1) paired.push_back(x[n - 1]);
  const std::vector<E> inner =
      ppc_kogge_stone(std::span<const E>(paired), combine);
  for (std::size_t k = 0; 2 * k + 1 < n; ++k) out[2 * k + 1] = inner[k];
  for (std::size_t k = 1; 2 * k < n; ++k) {
    if (n % 2 == 1 && 2 * k == n - 1) {
      out[n - 1] = inner.back();
    } else {
      out[2 * k] = combine(inner[k - 1], x[2 * k]);
    }
  }
  return out;
}

template <typename E, typename F>
std::vector<E> ppc_serial(std::span<const E> x, F& combine) {
  std::vector<E> out(x.begin(), x.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    out[i] = combine(out[i - 1], out[i]);
  }
  return out;
}

}  // namespace detail

/// Computes all inclusive prefixes of `x` under `combine` with the chosen
/// topology. `combine` may be stateful (e.g. emits gates into a netlist);
/// it is invoked once per operator node of the topology.
template <typename E, typename F>
std::vector<E> parallel_prefix(PpcTopology topo, std::span<const E> x,
                               F combine) {
  switch (topo) {
    case PpcTopology::ladner_fischer: return detail::ppc_lf(x, combine);
    case PpcTopology::sklansky: return detail::ppc_sklansky(x, combine);
    case PpcTopology::kogge_stone: return detail::ppc_kogge_stone(x, combine);
    case PpcTopology::han_carlson: return detail::ppc_han_carlson(x, combine);
    case PpcTopology::serial: return detail::ppc_serial(x, combine);
  }
  return {};
}

/// Number of operator instances the topology uses on n inputs.
[[nodiscard]] std::size_t ppc_op_count(PpcTopology topo, std::size_t n);

/// Operator depth (longest chain of combines) on n inputs.
[[nodiscard]] std::size_t ppc_op_depth(PpcTopology topo, std::size_t n);

}  // namespace mcsn
