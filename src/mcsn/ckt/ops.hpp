#pragma once
// Gate-level operator blocks (paper Sec. 5.1, Fig. 3, Table 6).
//
// A single 5-gate "selection circuit" shape implements one output bit of
// either the PPC operator or the output operator:
//
//   F(a, b, sel1, sel2) = ((sel1 | a) & b) | (~sel2 & a)
//
// (2 AND, 2 OR, 1 INV; depth 3). With sel1 = sel2 it degenerates to the
// metastability-containing multiplexer (cmux) of Friedrichs et al.
//
// The PPC works on the N-transform of FSM states (first bit inverted,
// paper's "^⋄M"), so its leaf inputs are (inv(g_i), h_i) and its internal
// wiring needs no further inverters beyond the ones inside the blocks.
//
// Both blocks compute the exact metastable closure of their operator for
// *all* ternary inputs — not every Boolean formula for the same function
// does (the paper's footnote 2 shows a counterexample); the test suite
// verifies this exhaustively.

#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

/// A 2-bit quantity on wires (FSM state or bit pair g_i h_i).
struct PairWires {
  NodeId first = 0;
  NodeId second = 0;
};

/// Implementation style for the operator blocks. The paper's circuits use
/// only AND2/OR2/INV (5 gates per selection circuit). The AOI style fuses
/// the same formula tree into OA21 + AO21 + INV (3 cells) — the
/// "straightforward transistor-level optimization" the paper's discussion
/// anticipates. Ternary semantics are identical (same formula, each input
/// read once), which the test suite verifies exhaustively.
enum class OpStyle { simple_gates, aoi_cells };

/// The shared selection circuit F (Fig. 3): 2 AND2 + 2 OR2 + 1 INV
/// (simple_gates) or OA21 + AO21 + INV (aoi_cells).
[[nodiscard]] NodeId selection_circuit(Netlist& nl, NodeId a, NodeId b,
                                       NodeId sel1, NodeId sel2,
                                       OpStyle style = OpStyle::simple_gates);

/// Metastability-containing multiplexer: sel==0 -> a, sel==1 -> b,
/// sel==M with a==b -> that common value. Selection circuit with tied sels.
[[nodiscard]] NodeId cmux(Netlist& nl, NodeId a, NodeId b, NodeId sel);

/// ^⋄M block: combines two N-encoded states/inputs into the N-encoded
/// composite state. 10 gates (4 AND, 4 OR, 2 INV), depth 3. (Table 6 rows
/// 1-2.)
[[nodiscard]] PairWires diamond_hat_block(Netlist& nl, PairWires x,
                                          PairWires y,
                                          OpStyle style = OpStyle::simple_gates);

/// outM block: from the N-encoded prefix state s and the raw bit pair
/// (g_i, h_i), computes (max_i, min_i). 10 gates, depth 3. (Table 6 rows
/// 3-4.)
[[nodiscard]] PairWires out_block(Netlist& nl, PairWires s_n_encoded,
                                  PairWires gh,
                                  OpStyle style = OpStyle::simple_gates);

/// Degenerate outM for position 1 where Ns^{(0)} = (1, 0): reduces to
/// (max_1, min_1) = (g_1 | h_1, g_1 & h_1). 2 gates. (Fig. 5, bottom left.)
[[nodiscard]] PairWires out_block_first(Netlist& nl, PairWires gh);

/// One output bit of the outM block only (max if `max_half`, else min);
/// 5 gates. Used by the split max/min baseline reconstruction.
[[nodiscard]] NodeId out_block_half(Netlist& nl, PairWires s_n_encoded,
                                    PairWires gh, bool max_half);

}  // namespace mcsn
