#include "mcsn/ckt/ops.hpp"

namespace mcsn {

NodeId selection_circuit(Netlist& nl, NodeId a, NodeId b, NodeId sel1,
                         NodeId sel2, OpStyle style) {
  if (style == OpStyle::aoi_cells) {
    // Same formula tree, fused: ((sel1 | a) & b) | (~sel2 & a).
    const NodeId t1 = nl.add_gate(CellKind::oa21, sel1, a, b);
    return nl.ao21(nl.inv(sel2), a, t1);
  }
  const NodeId t1 = nl.and2(nl.or2(sel1, a), b);
  const NodeId t2 = nl.and2(nl.inv(sel2), a);
  return nl.or2(t1, t2);
}

NodeId cmux(Netlist& nl, NodeId a, NodeId b, NodeId sel) {
  // F(a, b, sel, sel): sel=0 -> a, sel=1 -> b; closure for metastable sel.
  return selection_circuit(nl, a, b, sel, sel);
}

PairWires diamond_hat_block(Netlist& nl, PairWires x, PairWires y,
                            OpStyle style) {
  // x = N(s) = (p, q), y = N(b) = (r, u). Stable semantics (with s, b the
  // un-transformed values): s=00 passes b, s=01/10 absorb, s=11 passes the
  // complement of b. In N-encoding both output bits follow the same formula
  // with the respective y component as select:
  //   out.first  = ((r | q) & p) | (~r & q)
  //   out.second = ((u | q) & p) | (~u & q)
  const NodeId p = x.first;
  const NodeId q = x.second;
  return PairWires{selection_circuit(nl, q, p, y.first, y.first, style),
                   selection_circuit(nl, q, p, y.second, y.second, style)};
}

PairWires out_block(Netlist& nl, PairWires s, PairWires gh, OpStyle style) {
  // s = N(state) = (p, q); gh = (g_i, h_i).
  //   max_i = ((p | g_i) & h_i) | (~q & g_i)
  //   min_i = ((q | h_i) & g_i) | (~p & h_i)
  const NodeId p = s.first;
  const NodeId q = s.second;
  return PairWires{selection_circuit(nl, gh.first, gh.second, p, q, style),
                   selection_circuit(nl, gh.second, gh.first, q, p, style)};
}

PairWires out_block_first(Netlist& nl, PairWires gh) {
  return PairWires{nl.or2(gh.first, gh.second), nl.and2(gh.first, gh.second)};
}

NodeId out_block_half(Netlist& nl, PairWires s, PairWires gh, bool max_half) {
  const NodeId p = s.first;
  const NodeId q = s.second;
  if (max_half) return selection_circuit(nl, gh.first, gh.second, p, q);
  return selection_circuit(nl, gh.second, gh.first, q, p);
}

}  // namespace mcsn
