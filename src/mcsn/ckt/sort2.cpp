#include "mcsn/ckt/sort2.hpp"

#include <cassert>
#include <string>

namespace mcsn {

BusPair build_sort2(Netlist& nl, const Bus& g, const Bus& h,
                    const Sort2Options& opt) {
  assert(g.size() == h.size());
  assert(!g.empty());
  const std::size_t bits = g.size();

  BusPair out;
  out.max.resize(bits);
  out.min.resize(bits);

  // Position 1 (index 0): Ns^{(0)} = (1, 0) reduces outM to OR / AND.
  const PairWires first =
      out_block_first(nl, PairWires{g[0], h[0]});
  out.max[0] = first.first;
  out.min[0] = first.second;
  if (bits == 1) return out;

  // N-encoded leaves (inv(g_i), h_i) for positions 1..B-1.
  std::vector<PairWires> leaves(bits - 1);
  for (std::size_t i = 0; i + 1 < bits; ++i) {
    leaves[i] = PairWires{nl.inv(g[i]), h[i]};
  }

  // All prefix states Ns^{(1)} .. Ns^{(B-1)}.
  const std::vector<PairWires> prefix = parallel_prefix<PairWires>(
      opt.topology, leaves, [&nl, &opt](PairWires a, PairWires b) {
        return diamond_hat_block(nl, a, b, opt.style);
      });

  // Output blocks for positions 2..B.
  for (std::size_t i = 1; i < bits; ++i) {
    const PairWires o =
        out_block(nl, prefix[i - 1], PairWires{g[i], h[i]}, opt.style);
    out.max[i] = o.first;
    out.min[i] = o.second;
  }
  return out;
}

Netlist make_sort2(std::size_t bits, const Sort2Options& opt) {
  Netlist nl("sort2_" + std::string(ppc_topology_name(opt.topology)) + "_b" +
             std::to_string(bits));
  const Bus g = nl.add_input_bus("g", bits);
  const Bus h = nl.add_input_bus("h", bits);
  const BusPair out = build_sort2(nl, g, h, opt);
  nl.mark_output_bus(out.max, "max");
  nl.mark_output_bus(out.min, "min");
  return nl;
}

std::size_t sort2_gate_count(std::size_t bits, PpcTopology topo) {
  if (bits == 1) return 2;
  return 10 * ppc_op_count(topo, bits - 1)  // ^⋄M blocks
         + 10 * (bits - 1)                  // outM blocks, positions 2..B
         + (bits - 1)                       // leaf inverters
         + 2;                               // degenerate position-1 block
}

}  // namespace mcsn
