#include "mcsn/ckt/bincomp.hpp"

#include <cassert>
#include <string>
#include <vector>

namespace mcsn {

namespace {

struct GtEq {
  NodeId gt;  // this block of a is strictly greater than the block of b
  NodeId eq;  // blocks are equal
};

// Combines high block H with low block L: gt = gt_H | (eq_H & gt_L).
GtEq combine(Netlist& nl, GtEq hi, GtEq lo) {
  return GtEq{nl.ao21(hi.eq, lo.gt, hi.gt), nl.and2(hi.eq, lo.eq)};
}

GtEq tree(Netlist& nl, const std::vector<GtEq>& leaves, std::size_t first,
          std::size_t last) {
  if (first == last) return leaves[first];
  const std::size_t mid = first + (last - first) / 2;
  return combine(nl, tree(nl, leaves, first, mid),
                 tree(nl, leaves, mid + 1, last));
}

}  // namespace

BusPair build_bincomp(Netlist& nl, const Bus& a, const Bus& b) {
  assert(a.size() == b.size() && !a.empty());
  const std::size_t bits = a.size();

  // Per-bit (gt, eq), index 0 = MSB.
  std::vector<GtEq> leaves(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId nb = nl.inv(b[i]);
    leaves[i] = GtEq{nl.and2(a[i], nb), nl.xnor2(a[i], b[i])};
  }
  const NodeId greater = tree(nl, leaves, 0, bits - 1).gt;

  BusPair out;
  out.max.resize(bits);
  out.min.resize(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    out.max[i] = nl.mux2(b[i], a[i], greater);  // greater ? a : b
    out.min[i] = nl.mux2(a[i], b[i], greater);  // greater ? b : a
  }
  return out;
}

Netlist make_bincomp(std::size_t bits) {
  Netlist nl("bincomp_b" + std::to_string(bits));
  const Bus a = nl.add_input_bus("a", bits);
  const Bus b = nl.add_input_bus("b", bits);
  const BusPair out = build_bincomp(nl, a, b);
  nl.mark_output_bus(out.max, "max");
  nl.mark_output_bus(out.min, "min");
  return nl;
}

std::size_t bincomp_gate_count(std::size_t bits) {
  // 3 leaf gates per bit, 2 gates per tree combine, 2 muxes per bit.
  return 3 * bits + 2 * (bits - 1) + 2 * bits;
}

}  // namespace mcsn
