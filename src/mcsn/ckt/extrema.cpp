#include "mcsn/ckt/extrema.hpp"

#include <cassert>

#include "mcsn/ckt/ops.hpp"

namespace mcsn {

Bus build_extreme2(Netlist& nl, const Bus& g, const Bus& h, bool maximum,
                   const Sort2Options& opt) {
  assert(g.size() == h.size() && !g.empty());
  const std::size_t bits = g.size();
  Bus out(bits);
  out[0] = maximum ? nl.or2(g[0], h[0]) : nl.and2(g[0], h[0]);
  if (bits == 1) return out;

  std::vector<PairWires> leaves(bits - 1);
  for (std::size_t i = 0; i + 1 < bits; ++i) {
    leaves[i] = PairWires{nl.inv(g[i]), h[i]};
  }
  const std::vector<PairWires> prefix = parallel_prefix<PairWires>(
      opt.topology, leaves, [&nl, &opt](PairWires a, PairWires b) {
        return diamond_hat_block(nl, a, b, opt.style);
      });
  for (std::size_t i = 1; i < bits; ++i) {
    out[i] =
        out_block_half(nl, prefix[i - 1], PairWires{g[i], h[i]}, maximum);
  }
  return out;
}

Bus build_extreme_tree(Netlist& nl, const std::vector<Bus>& channels,
                       bool maximum, const Sort2Options& opt) {
  assert(!channels.empty());
  std::vector<Bus> layer = channels;
  while (layer.size() > 1) {
    std::vector<Bus> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(build_extreme2(nl, layer[i], layer[i + 1], maximum, opt));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer.front();
}

Netlist make_extreme_tree(std::size_t channels, std::size_t bits,
                          bool maximum, const Sort2Options& opt) {
  Netlist nl(std::string(maximum ? "max" : "min") + std::to_string(channels) +
             "_b" + std::to_string(bits));
  std::vector<Bus> ins;
  ins.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    ins.push_back(nl.add_input_bus("ch" + std::to_string(c), bits));
  }
  const Bus out = build_extreme_tree(nl, ins, maximum, opt);
  nl.mark_output_bus(out, maximum ? "max" : "min");
  return nl;
}

}  // namespace mcsn
