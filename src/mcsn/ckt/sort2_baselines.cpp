#include "mcsn/ckt/sort2_baselines.hpp"

#include <cassert>
#include <functional>
#include <string>

namespace mcsn {

namespace {

// Balanced tree fold of ^⋄M blocks over leaves [first, last].
PairWires fold_tree(Netlist& nl, const std::vector<PairWires>& leaves,
                    std::size_t first, std::size_t last) {
  if (first == last) return leaves[first];
  const std::size_t mid = first + (last - first) / 2;
  return diamond_hat_block(nl, fold_tree(nl, leaves, first, mid),
                           fold_tree(nl, leaves, mid + 1, last));
}

// One half (max or min) of the split construction: independent inverters,
// independent Kogge-Stone PPC, 5-gate half output blocks.
void build_half(Netlist& nl, const Bus& g, const Bus& h, bool max_half,
                Bus& out) {
  const std::size_t bits = g.size();
  out.resize(bits);
  const PairWires first{g[0], h[0]};
  out[0] = max_half ? nl.or2(first.first, first.second)
                    : nl.and2(first.first, first.second);
  if (bits == 1) return;

  std::vector<PairWires> leaves(bits - 1);
  for (std::size_t i = 0; i + 1 < bits; ++i) {
    leaves[i] = PairWires{nl.inv(g[i]), h[i]};
  }
  const std::vector<PairWires> prefix = parallel_prefix<PairWires>(
      PpcTopology::kogge_stone, leaves,
      [&nl](PairWires a, PairWires b) { return diamond_hat_block(nl, a, b); });
  for (std::size_t i = 1; i < bits; ++i) {
    out[i] = out_block_half(nl, prefix[i - 1], PairWires{g[i], h[i]},
                            max_half);
  }
}

}  // namespace

BusPair build_sort2_naive_trees(Netlist& nl, const Bus& g, const Bus& h) {
  assert(g.size() == h.size() && !g.empty());
  const std::size_t bits = g.size();
  BusPair out;
  out.max.resize(bits);
  out.min.resize(bits);

  const PairWires first = out_block_first(nl, PairWires{g[0], h[0]});
  out.max[0] = first.first;
  out.min[0] = first.second;
  if (bits == 1) return out;

  // Leaf inverters are shared (as any sane implementation would), but each
  // prefix state gets a fresh balanced tree.
  std::vector<PairWires> leaves(bits - 1);
  for (std::size_t i = 0; i + 1 < bits; ++i) {
    leaves[i] = PairWires{nl.inv(g[i]), h[i]};
  }
  for (std::size_t i = 1; i < bits; ++i) {
    const PairWires state = fold_tree(nl, leaves, 0, i - 1);
    const PairWires o = out_block(nl, state, PairWires{g[i], h[i]});
    out.max[i] = o.first;
    out.min[i] = o.second;
  }
  return out;
}

Netlist make_sort2_naive_trees(std::size_t bits) {
  Netlist nl("sort2_naive_trees_b" + std::to_string(bits));
  const Bus g = nl.add_input_bus("g", bits);
  const Bus h = nl.add_input_bus("h", bits);
  const BusPair out = build_sort2_naive_trees(nl, g, h);
  nl.mark_output_bus(out.max, "max");
  nl.mark_output_bus(out.min, "min");
  return nl;
}

std::size_t sort2_naive_trees_gate_count(std::size_t bits) {
  if (bits == 1) return 2;
  std::size_t tree_ops = 0;
  for (std::size_t i = 1; i < bits; ++i) tree_ops += i - 1;
  return 10 * tree_ops + 10 * (bits - 1) + (bits - 1) + 2;
}

BusPair build_sort2_date17_style(Netlist& nl, const Bus& g, const Bus& h) {
  assert(g.size() == h.size() && !g.empty());
  BusPair out;
  build_half(nl, g, h, /*max_half=*/true, out.max);
  build_half(nl, g, h, /*max_half=*/false, out.min);
  return out;
}

Netlist make_sort2_date17_style(std::size_t bits) {
  Netlist nl("sort2_date17_style_b" + std::to_string(bits));
  const Bus g = nl.add_input_bus("g", bits);
  const Bus h = nl.add_input_bus("h", bits);
  const BusPair out = build_sort2_date17_style(nl, g, h);
  nl.mark_output_bus(out.max, "max");
  nl.mark_output_bus(out.min, "min");
  return nl;
}

std::size_t sort2_date17_style_gate_count(std::size_t bits) {
  if (bits == 1) return 2;
  const std::size_t half =
      10 * ppc_op_count(PpcTopology::kogge_stone, bits - 1) +
      5 * (bits - 1) + (bits - 1) + 1;
  return 2 * half;
}

}  // namespace mcsn
