#include "mcsn/ckt/ppc.hpp"

#include <algorithm>

namespace mcsn {

std::string_view ppc_topology_name(PpcTopology t) noexcept {
  switch (t) {
    case PpcTopology::ladner_fischer: return "ladner-fischer";
    case PpcTopology::sklansky: return "sklansky";
    case PpcTopology::kogge_stone: return "kogge-stone";
    case PpcTopology::han_carlson: return "han-carlson";
    case PpcTopology::serial: return "serial";
  }
  return "?";
}

std::optional<PpcTopology> ppc_topology_from_name(
    std::string_view name) noexcept {
  for (const PpcTopology t : kAllPpcTopologies) {
    if (ppc_topology_name(t) == name) return t;
  }
  return std::nullopt;
}

std::size_t ppc_op_count(PpcTopology topo, std::size_t n) {
  std::size_t count = 0;
  std::vector<int> x(n, 0);
  parallel_prefix<int>(topo, x, [&count](int a, int b) {
    ++count;
    return std::max(a, b) + 1;
  });
  return count;
}

std::size_t ppc_op_depth(PpcTopology topo, std::size_t n) {
  std::vector<int> x(n, 0);
  const std::vector<int> out =
      parallel_prefix<int>(topo, x, [](int a, int b) {
        return std::max(a, b) + 1;
      });
  int depth = 0;
  for (const int d : out) depth = std::max(depth, d);
  return static_cast<std::size_t>(depth);
}

}  // namespace mcsn
