#pragma once
// N-input metastability-containing extrema circuits: max / min of n valid
// strings via a balanced tournament of "half" 2-sort circuits (each node
// computes only the needed output, i.e. inverters + PPC + max-half or
// min-half blocks). Cost Theta(n * B), depth Theta(log n * log B).
//
// Useful on their own (e.g. fault-tolerant clock sync takes the max of the
// k-th order statistics); also the building block the DATE'17
// reconstruction composes.

#include "mcsn/ckt/sort2.hpp"

namespace mcsn {

/// Emits the max (or min) of two buses only — roughly half a 2-sort:
/// B-1 inverters, one PPC, B-1 half out-blocks and one OR (AND for min).
[[nodiscard]] Bus build_extreme2(Netlist& nl, const Bus& g, const Bus& h,
                                 bool maximum,
                                 const Sort2Options& opt = {});

/// Balanced tournament over n >= 1 input buses.
[[nodiscard]] Bus build_extreme_tree(Netlist& nl,
                                     const std::vector<Bus>& channels,
                                     bool maximum,
                                     const Sort2Options& opt = {});

/// Standalone circuit: inputs ch<i>[.], output max[.] (or min[.]).
[[nodiscard]] Netlist make_extreme_tree(std::size_t channels,
                                        std::size_t bits, bool maximum,
                                        const Sort2Options& opt = {});

}  // namespace mcsn
