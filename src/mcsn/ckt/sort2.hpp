#pragma once
// The paper's contribution: metastability-containing 2-sort(B) with
// asymptotically optimal depth O(log B) and size O(B) (paper Fig. 5).
//
// Structure:
//   - one inverter per position 1..B-1 produces the N-encoded leaf
//     (inv(g_i), h_i) feeding the PPC;
//   - a PPC over B-1 leaves computes the N-encoded prefix states
//     Ns^{(1)} .. Ns^{(B-1)} with the ^⋄M block as operator;
//   - position 1 output degenerates to (OR, AND); positions 2..B use the
//     outM block on (Ns^{(i-1)}, g_i h_i).
//
// With the Ladner-Fischer topology the gate count is exactly
//   10 * ppc_op_count(B-1) + 10 * (B-1) + (B-1) + 2,
// i.e. 13 / 55 / 169 / 407 gates for B = 2 / 4 / 8 / 16 — matching the
// paper's Table 7 row "This paper".

#include <cstddef>

#include "mcsn/ckt/ops.hpp"
#include "mcsn/ckt/ppc.hpp"
#include "mcsn/netlist/netlist.hpp"

namespace mcsn {

struct Sort2Options {
  PpcTopology topology = PpcTopology::ladner_fischer;
  /// aoi_cells swaps each 5-gate selection circuit for a fused 3-cell
  /// OA21/AO21/INV version (the paper's anticipated transistor-level
  /// optimization); identical ternary behavior, not counted as "MC-safe
  /// simple gates" by Netlist::mc_safe().
  OpStyle style = OpStyle::simple_gates;
};

struct BusPair {
  Bus max;
  Bus min;
};

/// Emits a 2-sort(B) into `nl` operating on existing buses g, h (equal
/// width >= 1); returns the (max, min) output buses. Does not mark outputs.
[[nodiscard]] BusPair build_sort2(Netlist& nl, const Bus& g, const Bus& h,
                                  const Sort2Options& opt = {});

/// Standalone circuit with inputs g[.], h[.] and outputs max[.], min[.].
[[nodiscard]] Netlist make_sort2(std::size_t bits,
                                 const Sort2Options& opt = {});

/// Closed-form gate count of the construction (any topology).
[[nodiscard]] std::size_t sort2_gate_count(
    std::size_t bits, PpcTopology topo = PpcTopology::ladner_fischer);

}  // namespace mcsn
