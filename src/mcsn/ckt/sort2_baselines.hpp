#pragma once
// Baseline MC 2-sort circuits for comparison and ablation.
//
// 1. make_sort2_naive_trees: computes every prefix state s^{(i)} with its own
//    balanced tree of ^⋄M blocks (no sharing). Theta(B^2) gates, O(log B)
//    depth. Provably correct by Theorem 4.1; the "do not share prefixes"
//    strawman.
//
// 2. make_sort2_date17_style: complexity-faithful reconstruction of the
//    DATE 2017 state of the art [2]: Theta(B log B) gates, O(log B) depth.
//    The max and min halves are built as two *independent* circuits (own
//    inverters, own Kogge-Stone prefix network, 5-gate half output blocks).
//    The original netlists are not public; this reconstruction matches the
//    asymptotic class and lands within ~15% of the published gate counts at
//    B=16 (see refdata/paper_tables.hpp for the published numbers, which the
//    benches print side by side).
//
// 3. The serial (depth Theta(B)) variant is make_sort2 with
//    PpcTopology::serial — the unrolled FSM.

#include "mcsn/ckt/sort2.hpp"

namespace mcsn {

[[nodiscard]] BusPair build_sort2_naive_trees(Netlist& nl, const Bus& g,
                                              const Bus& h);
[[nodiscard]] Netlist make_sort2_naive_trees(std::size_t bits);
[[nodiscard]] std::size_t sort2_naive_trees_gate_count(std::size_t bits);

[[nodiscard]] BusPair build_sort2_date17_style(Netlist& nl, const Bus& g,
                                               const Bus& h);
[[nodiscard]] Netlist make_sort2_date17_style(std::size_t bits);
[[nodiscard]] std::size_t sort2_date17_style_gate_count(std::size_t bits);

}  // namespace mcsn
