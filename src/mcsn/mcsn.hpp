#pragma once
// Umbrella header for the mcsn library: metastability-containing sorting
// networks (reproduction of Bund, Lenzen, Medina, DATE 2018).
//
// Layers:
//   core     — ternary logic, Gray codes, valid strings, closures, the
//              comparison FSM and behavioral specifications
//   api      — the public request/response surface: Status/StatusOr,
//              SortRequest/SortResponse with flat zero-copy payloads
//   netlist  — gate-level circuits, ternary/packed evaluation, STA, cell
//              libraries, event-driven simulation, DOT/VCD export
//   ckt      — the paper's 2-sort(B) construction, PPC topologies,
//              baselines (DATE'17-style, naive, serial, Bin-comp)
//   nets     — comparator networks, catalog, SA synthesis, elaboration
//   serve    — streaming sort service: micro-batching over the compiled
//              engine, sorter pooling, futures/callback API, the binary
//              wire codec, metrics
//   refdata  — published evaluation numbers (Tables 7/8)

#include "mcsn/api/sort_api.hpp"
#include "mcsn/api/status.hpp"
#include "mcsn/core/closure.hpp"
#include "mcsn/core/fsm.hpp"
#include "mcsn/core/gray.hpp"
#include "mcsn/core/metastability.hpp"
#include "mcsn/core/packed.hpp"
#include "mcsn/core/spec.hpp"
#include "mcsn/core/trit.hpp"
#include "mcsn/core/valid.hpp"
#include "mcsn/core/word.hpp"
#include "mcsn/ckt/bincomp.hpp"
#include "mcsn/ckt/extrema.hpp"
#include "mcsn/ckt/ops.hpp"
#include "mcsn/ckt/ppc.hpp"
#include "mcsn/ckt/sort2.hpp"
#include "mcsn/ckt/sort2_baselines.hpp"
#include "mcsn/netlist/cell.hpp"
#include "mcsn/netlist/bdd.hpp"
#include "mcsn/netlist/check.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/netlist/dot.hpp"
#include "mcsn/netlist/equiv.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/eventsim.hpp"
#include "mcsn/netlist/liberty.hpp"
#include "mcsn/netlist/library.hpp"
#include "mcsn/netlist/netlist.hpp"
#include "mcsn/netlist/opt.hpp"
#include "mcsn/netlist/stats.hpp"
#include "mcsn/netlist/timing.hpp"
#include "mcsn/netlist/vcd.hpp"
#include "mcsn/netlist/verilog.hpp"
#include "mcsn/netlist/verilog_in.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/nets/catalog.hpp"
#include "mcsn/nets/elaborate.hpp"
#include "mcsn/nets/network.hpp"
#include "mcsn/nets/search.hpp"
#include "mcsn/refdata/paper_tables.hpp"
#include "mcsn/serve/batcher.hpp"
#include "mcsn/serve/metrics.hpp"
#include "mcsn/serve/queue.hpp"
#include "mcsn/serve/service.hpp"
#include "mcsn/serve/sorter_pool.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/util/cli.hpp"
#include "mcsn/util/histogram.hpp"
#include "mcsn/util/rng.hpp"
#include "mcsn/util/table.hpp"
#include "mcsn/util/thread_pool.hpp"
