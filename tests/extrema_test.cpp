// N-input MC extrema circuits: exhaustive/randomized correctness against
// rank order, cost accounting (roughly half a 2-sort per tournament node),
// and containment.

#include "mcsn/ckt/extrema.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mcsn/core/valid.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

TEST(Extrema, TwoInputMaxMinExhaustive) {
  const std::size_t bits = 4;
  for (const bool maximum : {true, false}) {
    const Netlist nl = make_extreme_tree(2, bits, maximum);
    ASSERT_TRUE(nl.mc_safe());
    Evaluator ev(nl);
    Word out;
    std::vector<Trit> in;
    const std::vector<Word> all = all_valid_strings(bits);
    for (const Word& g : all) {
      for (const Word& h : all) {
        const Word joined = g + h;
        in.assign(joined.begin(), joined.end());
        ev.run_outputs(in, out);
        const Word want = maximum ? valid_max(g, h) : valid_min(g, h);
        ASSERT_EQ(out, want) << g.str() << " " << h.str();
      }
    }
  }
}

class ExtremaWide : public ::testing::TestWithParam<int> {};

TEST_P(ExtremaWide, RandomVectorsMatchRankExtreme) {
  const int n = GetParam();
  const std::size_t bits = 6;
  for (const bool maximum : {true, false}) {
    const Netlist nl =
        make_extreme_tree(static_cast<std::size_t>(n), bits, maximum);
    Evaluator ev(nl);
    Xoshiro256 rng(static_cast<std::uint64_t>(n) * 31 + maximum);
    Word out;
    std::vector<Trit> in;
    for (int trial = 0; trial < 150; ++trial) {
      in.clear();
      std::uint64_t best_rank = maximum ? 0 : ~std::uint64_t{0};
      for (int c = 0; c < n; ++c) {
        const std::uint64_t r = rng.below(valid_count(bits));
        best_rank = maximum ? std::max(best_rank, r) : std::min(best_rank, r);
        const Word w = valid_from_rank(r, bits);
        in.insert(in.end(), w.begin(), w.end());
      }
      ev.run_outputs(in, out);
      ASSERT_EQ(out, valid_from_rank(best_rank, bits))
          << "n=" << n << " max=" << maximum << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExtremaWide, ::testing::Values(3, 4, 7, 10));

TEST(Extrema, CostIsAboutHalfASort2PerNode) {
  const std::size_t bits = 8;
  const Netlist one = make_extreme_tree(2, bits, true);
  // Half blocks: inverters B-1, PPC as in sort2, B-1 half out blocks + OR.
  const std::size_t full = sort2_gate_count(bits);
  EXPECT_LT(one.gate_count(), full);
  EXPECT_GT(one.gate_count(), full / 2 - bits);
  // Tournament: n-1 nodes.
  const Netlist tree = make_extreme_tree(5, bits, true);
  EXPECT_EQ(tree.gate_count(), 4 * one.gate_count());
}

TEST(Extrema, ContainmentSingleMarginalInput) {
  const std::size_t bits = 5;
  const Netlist nl = make_extreme_tree(4, bits, true);
  Evaluator ev(nl);
  Word out;
  std::vector<Trit> in;
  // The marginal input is the maximum: output must carry exactly its M.
  const Word marginal = valid_from_rank(valid_count(bits) - 2, bits);  // odd
  ASSERT_EQ(marginal.meta_count(), 1u);
  std::vector<Word> ins = {valid_from_rank(4, bits), marginal,
                           valid_from_rank(0, bits), valid_from_rank(8, bits)};
  for (const Word& w : ins) in.insert(in.end(), w.begin(), w.end());
  ev.run_outputs(in, out);
  EXPECT_EQ(out, marginal);
  // If the marginal input is NOT the extreme, the output is stable.
  in.clear();
  ins[1] = valid_from_rank(1, bits);  // marginal but tiny
  ins[2] = valid_from_rank(valid_count(bits) - 1, bits);  // stable max
  for (const Word& w : ins) in.insert(in.end(), w.begin(), w.end());
  ev.run_outputs(in, out);
  EXPECT_TRUE(out.is_stable());
  EXPECT_EQ(out, ins[2]);
}

TEST(Extrema, SingleChannelPassesThrough) {
  const Netlist nl = make_extreme_tree(1, 3, true);
  EXPECT_EQ(nl.gate_count(), 0u);
  const Word w = *Word::parse("01M");
  EXPECT_EQ(evaluate(nl, w), w);
}

}  // namespace
}  // namespace mcsn
