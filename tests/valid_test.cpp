// Valid strings (Def. 2.3) and the Table 2 total order: counts, rank
// round-trips, the Table 2 golden listing, and Obs. 2.4 (substrings of valid
// strings are valid).

#include "mcsn/core/valid.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/gray.hpp"

namespace mcsn {
namespace {

TEST(Valid, CountFormula) {
  EXPECT_EQ(valid_count(1), 3u);
  EXPECT_EQ(valid_count(2), 7u);
  EXPECT_EQ(valid_count(4), 31u);
  EXPECT_EQ(valid_count(16), 131071u);
  EXPECT_EQ(all_valid_strings(4).size(), 31u);
}

TEST(Valid, RankRoundTrip) {
  for (const std::size_t bits : {1u, 2u, 4u, 6u, 10u}) {
    for (std::uint64_t r = 0; r < valid_count(bits); ++r) {
      const Word w = valid_from_rank(r, bits);
      const auto back = valid_rank(w);
      ASSERT_TRUE(back) << w.str();
      EXPECT_EQ(*back, r) << w.str();
    }
  }
}

TEST(Valid, EvenRanksAreStableCodewords) {
  const std::size_t bits = 5;
  for (std::uint64_t x = 0; x < (1u << bits); ++x) {
    const Word w = valid_from_rank(2 * x, bits);
    EXPECT_TRUE(w.is_stable());
    EXPECT_EQ(gray_decode(w), x);
  }
}

TEST(Valid, OddRanksAreSuperpositionsOfNeighbors) {
  const std::size_t bits = 5;
  for (std::uint64_t x = 0; x + 1 < (1u << bits); ++x) {
    const Word w = valid_from_rank(2 * x + 1, bits);
    EXPECT_EQ(w.meta_count(), 1u);
    EXPECT_EQ(w, Word::star(gray_encode(x, bits), gray_encode(x + 1, bits)));
  }
}

// Paper Table 2: the 4-bit valid strings in rank order.
TEST(Valid, Table2Golden) {
  const char* expected[] = {
      "0000", "000M", "0001", "00M1", "0011", "001M", "0010", "0M10",
      "0110", "011M", "0111", "01M1", "0101", "010M", "0100", "M100",
      "1100", "110M", "1101", "11M1", "1111", "111M", "1110", "1M10",
      "1010", "101M", "1011", "10M1", "1001", "100M", "1000"};
  const std::vector<Word> all = all_valid_strings(4);
  ASSERT_EQ(all.size(), 31u);
  for (std::size_t r = 0; r < all.size(); ++r) {
    EXPECT_EQ(all[r].str(), expected[r]) << "rank " << r;
  }
}

TEST(Valid, RejectsInvalidWords) {
  // Two metastable bits.
  EXPECT_FALSE(is_valid_string(*Word::parse("0MM0")));
  // One M, but the two resolutions are not Gray neighbors.
  EXPECT_FALSE(is_valid_string(*Word::parse("M000")));  // 0 vs 15
  EXPECT_FALSE(is_valid_string(*Word::parse("0M00")));  // 7 vs 4
  EXPECT_FALSE(is_valid_string(*Word::parse("M111")));  // 5 vs 10
  EXPECT_FALSE(is_valid_string(Word{}));
}

TEST(Valid, AcceptsAllStableWords) {
  // Every stable word is a Gray codeword (the code is a bijection).
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_TRUE(is_valid_string(Word::from_uint(v, 6)));
  }
}

// Obs. 2.4: every substring of a valid string is valid.
TEST(Valid, SubstringsAreValid) {
  const std::size_t bits = 6;
  for (std::uint64_t r = 0; r < valid_count(bits); ++r) {
    const Word w = valid_from_rank(r, bits);
    for (std::size_t i = 0; i < bits; ++i) {
      for (std::size_t j = i; j < bits; ++j) {
        EXPECT_TRUE(is_valid_string(w.sub(i, j)))
            << w.str() << " [" << i << "," << j << "]";
      }
    }
  }
}

TEST(Valid, MaxMinFollowRankOrder) {
  const std::size_t bits = 4;
  const std::vector<Word> all = all_valid_strings(bits);
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = 0; b < all.size(); ++b) {
      const Word mx = valid_max(all[a], all[b]);
      const Word mn = valid_min(all[a], all[b]);
      EXPECT_EQ(mx, all[std::max(a, b)]);
      EXPECT_EQ(mn, all[std::min(a, b)]);
    }
  }
}

// The paper's worked examples (Sec. 2, after Def. 2.8).
TEST(Valid, PaperExamples) {
  EXPECT_EQ(valid_max(*Word::parse("1001"), *Word::parse("1000")).str(),
            "1000");  // rg(15) > rg(14)
  EXPECT_EQ(valid_max(*Word::parse("0M10"), *Word::parse("0010")).str(),
            "0M10");  // rg(3)*rg(4) > rg(3)
  EXPECT_EQ(valid_max(*Word::parse("0M10"), *Word::parse("0110")).str(),
            "0110");  // rg(4) > rg(3)*rg(4)
}

}  // namespace
}  // namespace mcsn
