// Structural Verilog export: module structure, cell instances with NanGate
// pin names, name sanitization, and a full 2-sort dump.

#include "mcsn/netlist/verilog.hpp"

#include <gtest/gtest.h>

#include "mcsn/ckt/bincomp.hpp"
#include "mcsn/ckt/sort2.hpp"

namespace mcsn {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Verilog, SmallCircuitStructure) {
  Netlist nl("demo");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.or2(nl.and2(a, b), nl.inv(a)), "y");
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module demo (a, b, y);"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("AND2_X1"), std::string::npos);
  EXPECT_NE(v.find("OR2_X1"), std::string::npos);
  EXPECT_NE(v.find("INV_X1"), std::string::npos);
  EXPECT_NE(v.find(".ZN("), std::string::npos);  // inverter output pin
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // The do-not-resynthesize warning is part of the contract.
  EXPECT_NE(v.find("do NOT resynthesize"), std::string::npos);
}

TEST(Verilog, BusNamesSanitized) {
  Netlist nl("bus");
  const Bus g = nl.add_input_bus("g", 2);
  nl.mark_output_bus({nl.inv(g[0]), nl.inv(g[1])}, "max");
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("g_0"), std::string::npos);
  EXPECT_NE(v.find("max_1"), std::string::npos);
  EXPECT_EQ(v.find('['), std::string::npos);  // no raw brackets anywhere
}

TEST(Verilog, Sort2InstanceCountsMatchGateCounts) {
  const Netlist nl = make_sort2(8);
  const std::string v = to_verilog(nl);
  const auto hist = nl.gate_histogram();
  EXPECT_EQ(count_occurrences(v, "AND2_X1 "),
            hist[static_cast<int>(CellKind::and2)]);
  EXPECT_EQ(count_occurrences(v, "OR2_X1 "),
            hist[static_cast<int>(CellKind::or2)]);
  EXPECT_EQ(count_occurrences(v, "INV_X1 "),
            hist[static_cast<int>(CellKind::inv)]);
  // 169 instances total at B=8.
  EXPECT_EQ(count_occurrences(v, "_X1 u"), nl.gate_count());
}

TEST(Verilog, ExtendedCellsUseThreePinConventions) {
  const Netlist nl = make_bincomp(4);
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("MUX2_X1"), std::string::npos);
  EXPECT_NE(v.find(".S("), std::string::npos);   // mux select pin
  EXPECT_NE(v.find("XNOR2_X1"), std::string::npos);
  EXPECT_NE(v.find("AO21_X1"), std::string::npos);
  EXPECT_NE(v.find(".B1("), std::string::npos);  // AO21 paired pin
}

TEST(Verilog, ConstantsEmitLiterals) {
  Netlist nl("konst");
  const NodeId c = nl.constant(true);
  const NodeId a = nl.add_input("a");
  nl.mark_output(nl.and2(c, a), "y");
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
}

}  // namespace
}  // namespace mcsn
