// Tests for the CompiledProgram IR verifier (netlist/verify_ir.hpp).
//
// Positive direction: every catalog network, elaborated under several
// builders and compiled under every CompileOptions combination, must
// verify — including the programs actually held by each lane backend's
// executor and by BatchEvaluator. Negative direction: a seeded mutation
// suite perturbs a known-good IrImage one invariant at a time and
// demands the verifier reject each mutant with that invariant's own
// diagnostic token, proving the checks are independent (a verifier that
// catches everything as "level-structure" would pass a weaker test).

#include "mcsn/netlist/verify_ir.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/nets/catalog.hpp"
#include "mcsn/nets/elaborate.hpp"

namespace mcsn {
namespace {

const CompileOptions kModes[] = {
    CompileOptions{},
    CompileOptions{.levelize = false},
    CompileOptions{.eliminate_dead = false},
    CompileOptions{.retain_all_nodes = true},
};

TEST(VerifyIr, AllCatalogNetworksVerifyUnderEveryCompileMode) {
  for (const ComparatorNetwork& net : paper_networks()) {
    for (const std::size_t bits : {1u, 4u, 8u}) {
      const Netlist nl = elaborate_network(net, bits, sort2_builder(),
                                           net.name() + "_verify");
      for (const CompileOptions& opt : kModes) {
        const CompiledProgram prog = CompiledProgram::compile(nl, opt);
        const Status s = verify_ir(prog, verify_options_for(opt));
        EXPECT_TRUE(s.ok()) << net.name() << " bits=" << bits << ": "
                            << s.to_string();
      }
    }
  }
}

TEST(VerifyIr, GeneratorFamiliesAndAllBuildersVerify) {
  const struct {
    const char* name;
    Sort2Builder builder;
  } builders[] = {
      {"mc", sort2_builder()},
      {"naive", sort2_naive_trees_builder()},
      {"date17", sort2_date17_style_builder()},
      {"bincomp", bincomp_builder()},
  };
  for (const auto& b : builders) {
    for (const ComparatorNetwork& net :
         {batcher_odd_even(6), odd_even_merger(4), odd_even_transposition(5),
          insertion_network(5)}) {
      const Netlist nl = elaborate_network(net, 4, b.builder);
      const CompiledProgram prog = CompiledProgram::compile(nl);
      const Status s = verify_ir(prog);
      EXPECT_TRUE(s.ok()) << b.name << "/" << net.name() << ": "
                          << s.to_string();
    }
  }
}

// The program each lane backend actually executes is the program the
// verifier blesses: construct every executor flavor and verify the IR it
// holds. The backends share CompiledProgram, so this pins the claim that
// "verified at compile()" covers scalar, 64-lane, 256-lane, and batch
// execution alike.
TEST(VerifyIr, EveryLaneBackendExecutesAVerifiedProgram) {
  const Netlist nl = elaborate_network(optimal_9(), 8, sort2_builder());
  const CompiledProgram prog = CompiledProgram::compile(nl);

  const CompiledExecutor<ScalarBackend> scalar(prog);
  EXPECT_TRUE(verify_ir(scalar.program()).ok());

  const CompiledExecutor<Packed64Backend> packed64(prog);
  EXPECT_TRUE(verify_ir(packed64.program()).ok());

  const CompiledExecutor<Packed256Backend> packed256(prog);
  EXPECT_TRUE(verify_ir(packed256.program()).ok());

  const BatchEvaluator batch(nl);
  EXPECT_TRUE(verify_ir(batch.program()).ok());
}

TEST(VerifyIr, OptionsMapping) {
  // retain_all_nodes keeps dead nodes: reachability must be off.
  EXPECT_FALSE(
      verify_options_for(CompileOptions{.retain_all_nodes = true})
          .require_reachable);
  EXPECT_FALSE(
      verify_options_for(CompileOptions{.eliminate_dead = false})
          .require_reachable);
  EXPECT_TRUE(verify_options_for(CompileOptions{}).require_reachable);
  EXPECT_FALSE(
      verify_options_for(CompileOptions{.levelize = false}).require_levelized);
}

// ---------------------------------------------------------------------------
// Mutation suite: one mutator per invariant class, each caught with its
// own diagnostic token.

class VerifyIrMutation : public ::testing::Test {
 protected:
  void SetUp() override {
    const Netlist nl =
        elaborate_network(optimal_4(), 4, sort2_builder(), "mutation_seed");
    clean_ = ir_image_of(CompiledProgram::compile(nl));
    ASSERT_TRUE(verify_ir(clean_).ok());
    ASSERT_GE(clean_.ops.size(), 2u);
    ASSERT_GE(clean_.level_offsets.size(), 3u);
  }

  /// Asserts the mutated image fails verification and the diagnostic
  /// carries `token` — the class-specific tag, not just any error.
  void expect_rejected(const IrImage& mutated, const std::string& token) {
    const Status s = verify_ir(mutated);
    ASSERT_FALSE(s.ok()) << "mutation not caught (want token '" << token
                         << "')";
    EXPECT_NE(s.message().find(token), std::string::npos)
        << "wrong diagnostic for token '" << token << "': " << s.to_string();
  }

  IrImage clean_;
};

TEST_F(VerifyIrMutation, OperandFromSameLevelIsCaught) {
  // Class: wrong-level operand. The last op of level 0 reads its stream
  // predecessor's output — fine by stream order, illegal by levelization.
  IrImage m = clean_;
  const std::size_t last = m.level_offsets[1] - 1;
  ASSERT_GE(last, 1u);
  m.ops[last].in[0] = m.ops[last - 1].out;
  expect_rejected(m, "operand-level");
}

TEST_F(VerifyIrMutation, DoubleWriteIsCaught) {
  // Class: slot written twice.
  IrImage m = clean_;
  m.ops[1].out = m.ops[0].out;
  expect_rejected(m, "double-write");
}

TEST_F(VerifyIrMutation, DanglingReadIsCaught) {
  // Class: read of a slot nothing ever writes.
  IrImage m = clean_;
  m.slot_count += 1;
  m.ops[0].in[0] = static_cast<std::uint32_t>(m.slot_count - 1);
  expect_rejected(m, "dangling-read");
}

TEST_F(VerifyIrMutation, ReadBeforeWriteIsCaught) {
  // Class: operand order — the slot IS written, but later in the stream
  // than the reader.
  IrImage m = clean_;
  m.ops[0].in[0] = m.ops.back().out;
  expect_rejected(m, "");  // any rejection...
  const Status s = verify_ir(m);
  // ...but specifically as an ordering/level violation, not a dangling read.
  EXPECT_EQ(s.message().find("dangling-read"), std::string::npos)
      << s.to_string();
}

TEST_F(VerifyIrMutation, OrphanOpIsCaught) {
  // Class: op no output transitively depends on (dead-node elimination
  // promised none survive).
  IrImage m = clean_;
  CompiledOp op;
  op.kind = CellKind::inv;
  op.out = static_cast<std::uint32_t>(m.slot_count);
  op.in = {m.output_slots[0], 0, 0};
  m.slot_count += 1;
  m.ops.push_back(op);
  m.level_offsets.back() += 1;
  expect_rejected(m, "orphan-op");

  // The same mutant is LEGAL when the program was compiled without
  // dead-node elimination — reachability is opt.-gated.
  EXPECT_TRUE(verify_ir(m, VerifyIrOptions{.require_reachable = false}).ok());
}

TEST_F(VerifyIrMutation, OutOfBoundsSlotIsCaught) {
  IrImage m = clean_;
  m.ops.back().out = static_cast<std::uint32_t>(m.slot_count + 7);
  expect_rejected(m, "slot-bounds");
}

TEST_F(VerifyIrMutation, CorruptLevelOffsetsAreCaught) {
  IrImage m = clean_;
  m.level_offsets.back() += 1;
  expect_rejected(m, "level-structure");
}

TEST_F(VerifyIrMutation, UnwrittenOutputIsCaught) {
  IrImage m = clean_;
  m.slot_count += 1;
  m.output_slots[0] = static_cast<std::uint32_t>(m.slot_count - 1);
  expect_rejected(m, "unwritten-output");
}

TEST_F(VerifyIrMutation, DistinctDiagnosticsPerClass) {
  // The acceptance bar: at least four invariant classes caught with four
  // DIFFERENT diagnostics. Collect the tokens the suite above relies on.
  std::vector<std::string> tokens;

  IrImage wrong_level = clean_;
  const std::size_t last = wrong_level.level_offsets[1] - 1;
  wrong_level.ops[last].in[0] = wrong_level.ops[last - 1].out;
  tokens.push_back(verify_ir(wrong_level).message());

  IrImage double_write = clean_;
  double_write.ops[1].out = double_write.ops[0].out;
  tokens.push_back(verify_ir(double_write).message());

  IrImage dangling = clean_;
  dangling.slot_count += 1;
  dangling.ops[0].in[0] = static_cast<std::uint32_t>(dangling.slot_count - 1);
  tokens.push_back(verify_ir(dangling).message());

  IrImage orphan = clean_;
  CompiledOp op;
  op.kind = CellKind::inv;
  op.out = static_cast<std::uint32_t>(orphan.slot_count);
  op.in = {orphan.output_slots[0], 0, 0};
  orphan.slot_count += 1;
  orphan.ops.push_back(op);
  orphan.level_offsets.back() += 1;
  tokens.push_back(verify_ir(orphan).message());

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    ASSERT_FALSE(tokens[i].empty());
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      EXPECT_NE(tokens[i], tokens[j])
          << "classes " << i << " and " << j << " share a diagnostic";
    }
  }
}

}  // namespace
}  // namespace mcsn
