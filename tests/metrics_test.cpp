// Tests for the observability subsystem: the registry primitives
// (Counter, Gauge, AtomicHistogram), series identity and exposition
// (JSON + Prometheus text), and the serve-layer slow-request ring.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mcsn/serve/metrics.hpp"
#include "mcsn/util/metrics_registry.hpp"
#include "mcsn/util/proc_stats.hpp"

namespace mcsn {
namespace {

TEST(Counter, StartsAtZeroAndSumsAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsNeverLoseIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddSubRoundTrip) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(AtomicHistogram, EmptySnapshotIsSafe) {
  const AtomicHistogram h;
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.min(), 0u);
  EXPECT_EQ(snap.max(), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.quantile(0.99), 0u);
}

TEST(AtomicHistogram, SnapshotMatchesPlainHistogram) {
  AtomicHistogram atomic;
  Histogram plain;
  const std::vector<std::uint64_t> values{0,  1,    7,      8,      9,
                                          63, 1000, 123456, 7890123};
  for (const std::uint64_t v : values) {
    atomic.record(v);
    plain.record(v);
  }
  const Histogram snap = atomic.snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.min(), plain.min());
  EXPECT_EQ(snap.max(), plain.max());
  EXPECT_EQ(snap.mean(), plain.mean());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile(q), plain.quantile(q)) << "q=" << q;
  }
}

TEST(AtomicHistogram, ConcurrentRecordsKeepCountSumAndExtrema) {
  AtomicHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  EXPECT_EQ(snap.min(), 1u);
  EXPECT_EQ(snap.max(), kThreads * kPerThread);
  // Mean of 1..N is (N+1)/2; the log buckets do not affect sum/count.
  EXPECT_DOUBLE_EQ(snap.mean(), (kThreads * kPerThread + 1) / 2.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits_total");
  Counter& b = reg.counter("hits_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Gauge& g1 = reg.gauge("depth");
  Gauge& g2 = reg.gauge("depth");
  EXPECT_EQ(&g1, &g2);
  AtomicHistogram& h1 = reg.histogram("lat_ns");
  AtomicHistogram& h2 = reg.histogram("lat_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, LabelsDistinguishSeriesAndOrderIsCanonical) {
  MetricsRegistry reg;
  Counter& loop0 = reg.counter("reqs_total", {{"loop", "0"}});
  Counter& loop1 = reg.counter("reqs_total", {{"loop", "1"}});
  EXPECT_NE(&loop0, &loop1);
  // Label order must not create a second series: {a,b} == {b,a}.
  Counter& ab = reg.counter("x_total", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.counter("x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(MetricsRegistry, SameNameDifferentKindAreDistinctSlots) {
  // Degenerate but must not alias or crash: the kind participates in
  // series identity.
  MetricsRegistry reg;
  Counter& c = reg.counter("clash");
  Gauge& g = reg.gauge("clash");
  c.add(7);
  g.set(-7);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(reg.snapshot().size(), 2u);
}

TEST(MetricsRegistry, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry reg;
  (void)reg.counter("zz_total");
  (void)reg.gauge("aa");
  (void)reg.counter("mm_total", {{"loop", "1"}});
  (void)reg.counter("mm_total", {{"loop", "0"}});
  const std::vector<MetricsRegistry::Series> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].key(), "aa");
  EXPECT_EQ(snap[1].key(), "mm_total{loop=\"0\"}");
  EXPECT_EQ(snap[2].key(), "mm_total{loop=\"1\"}");
  EXPECT_EQ(snap[3].key(), "zz_total");
}

TEST(MetricsRegistry, JsonExposesAllKindsWithExactKeys) {
  MetricsRegistry reg;
  reg.counter("requests_total").add(5);
  reg.gauge("queue_depth").set(-3);
  reg.histogram("stage_ns").record(7);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"requests_total\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\": -3"), std::string::npos) << json;
  // One sample: every summary stat equals it.
  EXPECT_NE(json.find("\"stage_ns\": {\"count\": 1, \"min\": 7, \"p50\": 7, "
                      "\"p90\": 7, \"p99\": 7, \"max\": 7, \"mean\": 7}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, JsonEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("odd_total", {{"tag", "a\"b\\c\nd"}}).add(1);
  const std::string json = reg.json();
  EXPECT_NE(json.find("odd_total{tag=\\\"a\\\\\\\"b\\\\\\\\c\\\\nd\\\"}"),
            std::string::npos)
      << json;
}

TEST(MetricsRegistry, PrometheusExpositionHasTypesAndSummaries) {
  MetricsRegistry reg;
  reg.counter("requests_total", {{"loop", "0"}}).add(5);
  reg.gauge("queue_depth").set(2);
  AtomicHistogram& h = reg.histogram("stage_ns");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{loop=\"0\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\nqueue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE stage_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("stage_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("stage_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("stage_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("stage_ns_count 100\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(SlowRequestRing, KeepsTopKByTotalLatencySortedDescending) {
  SlowRequestRing ring(4);
  for (std::uint64_t t = 1; t <= 20; ++t) {
    SlowRequest r;
    r.channels = static_cast<int>(t);
    r.total_ns = t * 100;
    ring.offer(r);
  }
  const std::vector<SlowRequest> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].total_ns, 2000u);
  EXPECT_EQ(snap[1].total_ns, 1900u);
  EXPECT_EQ(snap[2].total_ns, 1800u);
  EXPECT_EQ(snap[3].total_ns, 1700u);
  // A request at/below the floor must not evict anything.
  SlowRequest fast;
  fast.total_ns = 1;
  ring.offer(fast);
  EXPECT_EQ(ring.snapshot().back().total_ns, 1700u);
}

TEST(SlowRequestRing, JsonListsEntriesWithStageBreakdown) {
  SlowRequestRing ring(2);
  SlowRequest r;
  r.channels = 10;
  r.bits = 8;
  r.rounds = 3;
  r.total_ns = 5000;
  r.queue_ns = 1500;
  r.execute_ns = 3000;
  r.code = StatusCode::kDeadlineExceeded;
  ring.offer(r);
  const std::string json = ring.json();
  EXPECT_NE(json.find("\"channels\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bits\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rounds\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\": 5000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_ns\": 1500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"execute_ns\": 3000"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_EQ(SlowRequestRing(4).json(), "[]");
}

TEST(ServiceMetrics, SnapshotCompatViewMatchesRegistrySeries) {
  MetricsRegistry reg;
  ServiceMetrics m(reg, 16);
  m.on_submitted();
  m.on_submitted();
  m.on_rejected();
  m.record_latency(1000);
  m.on_batch(8, FlushCause::window, /*failed=*/0, /*expired=*/1);
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.flush_window, 1u);
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.max_lanes, 16u);
  EXPECT_EQ(snap.latency_ns.count(), 1u);
  EXPECT_EQ(snap.batch_lanes.count(), 1u);
  // The same numbers must be visible through the shared registry.
  EXPECT_EQ(reg.counter("serve_submitted_total").value(), 2u);
  EXPECT_EQ(reg.counter("serve_flush_total", {{"cause", "window"}}).value(),
            1u);
}

#if defined(__linux__)
TEST(ProcStats, ReadsPositiveRssAndFds) {
  const ProcStats s = read_proc_stats();
  // Any live test process has resident pages and at least stdio open.
  EXPECT_GT(s.rss_bytes, 0);
  EXPECT_GT(s.open_fds, 0);
}

TEST(ProcStats, FdCountTracksAnOpenedDescriptor) {
  const std::int64_t before = read_proc_stats().open_fds;
  ASSERT_GT(before, 0);
  FILE* f = std::fopen("/proc/self/status", "r");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(read_proc_stats().open_fds, before + 1);
  std::fclose(f);
  EXPECT_EQ(read_proc_stats().open_fds, before);
}
#endif

TEST(ProcStats, GaugesPublishIntoRegistry) {
  MetricsRegistry reg;
  ProcStatsGauges gauges(reg);
  const ProcStats s = gauges.refresh();
  EXPECT_EQ(reg.gauge("process_rss_bytes").value(), s.rss_bytes);
  EXPECT_EQ(reg.gauge("process_open_fds").value(), s.open_fds);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"process_rss_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"process_open_fds\""), std::string::npos) << json;
  const std::string prom = reg.prometheus();
  EXPECT_NE(prom.find("# TYPE process_rss_bytes gauge"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("process_open_fds "), std::string::npos) << prom;
}

}  // namespace
}  // namespace mcsn
