// Ternary and packed netlist evaluation, including the property that every
// cell's ternary behavior is the metastable closure of its Boolean function.

#include "mcsn/netlist/eval.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/closure.hpp"

namespace mcsn {
namespace {

Netlist mux_circuit() {
  Netlist nl("cmux_sop");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  // Plain SOP mux WITHOUT the redundant a&b term: NOT containing.
  const NodeId o = nl.or2(nl.and2(a, nl.inv(s)), nl.and2(b, s));
  nl.mark_output(o, "o");
  return nl;
}

TEST(Eval, StableMuxBehavior) {
  const Netlist nl = mux_circuit();
  EXPECT_EQ(evaluate(nl, *Word::parse("010")).str(), "0");
  EXPECT_EQ(evaluate(nl, *Word::parse("011")).str(), "1");
  EXPECT_EQ(evaluate(nl, *Word::parse("100")).str(), "1");
  EXPECT_EQ(evaluate(nl, *Word::parse("101")).str(), "0");
}

// The SOP mux leaks M when select is metastable even with equal inputs —
// the classic motivation for the cmux/selection circuit.
TEST(Eval, SopMuxLeaksMetastability) {
  const Netlist nl = mux_circuit();
  EXPECT_EQ(evaluate(nl, *Word::parse("11M")).str(), "M");
  EXPECT_EQ(evaluate(nl, *Word::parse("00M")).str(), "0");  // AND masks
}

TEST(Eval, ConstantsEvaluate) {
  Netlist nl;
  const NodeId c1 = nl.constant(true);
  const NodeId a = nl.add_input("a");
  nl.mark_output(nl.and2(c1, a), "o");
  EXPECT_EQ(evaluate(nl, *Word::parse("M")).str(), "M");
  EXPECT_EQ(evaluate(nl, *Word::parse("1")).str(), "1");
}

// Every multi-input cell computes the closure of its Boolean function
// (checked by brute-force enumeration of resolutions).
TEST(Eval, EveryCellComputesItsClosure) {
  const CellKind kinds[] = {CellKind::inv,   CellKind::and2, CellKind::or2,
                            CellKind::nand2, CellKind::nor2, CellKind::xor2,
                            CellKind::xnor2, CellKind::mux2, CellKind::aoi21,
                            CellKind::oai21, CellKind::ao21, CellKind::oa21};
  for (const CellKind k : kinds) {
    const int arity = cell_arity(k);
    const auto boolean_fn = [k](const Word& in) {
      return Word{to_trit(cell_eval_bool(k, to_bool(in[0]),
                                         in.size() > 1 && to_bool(in[1]),
                                         in.size() > 2 && to_bool(in[2])))};
    };
    std::uint64_t total = 1;
    for (int i = 0; i < arity; ++i) total *= 3;
    for (std::uint64_t v = 0; v < total; ++v) {
      Word in(static_cast<std::size_t>(arity));
      std::uint64_t x = v;
      for (int i = 0; i < arity; ++i) {
        in[i] = trit_from_index(static_cast<int>(x % 3));
        x /= 3;
      }
      const Trit direct =
          cell_eval(k, in[0], arity > 1 ? in[1] : Trit::zero,
                    arity > 2 ? in[2] : Trit::zero);
      const Word closed = closure_unary(boolean_fn, in);
      EXPECT_EQ(direct, closed[0])
          << cell_name(k) << " on " << in.str();
    }
  }
}

TEST(Eval, EvaluatorReuseMatchesOneShot) {
  const Netlist nl = mux_circuit();
  Evaluator ev(nl);
  Word out;
  for (const char* s : {"000", "101", "M11", "0M1", "11M"}) {
    const Word in = *Word::parse(s);
    std::vector<Trit> v(in.begin(), in.end());
    ev.run_outputs(v, out);
    EXPECT_EQ(out, evaluate(nl, in)) << s;
  }
}

// The compiled Evaluator and the legacy node-walker are interchangeable:
// identical node values and outputs on the full ternary input space.
TEST(Eval, CompiledEvaluatorMatchesNodeWalk) {
  const Netlist nl = mux_circuit();
  Evaluator compiled(nl);
  NodeWalkEvaluator legacy(nl);
  Word a, b;
  for (const Trit x : kAllTrits) {
    for (const Trit y : kAllTrits) {
      for (const Trit s : kAllTrits) {
        const Trit in[3] = {x, y, s};
        const std::span<const Trit> span(in, 3);
        compiled.run_outputs(span, a);
        legacy.run_outputs(span, b);
        ASSERT_EQ(a, b);
        const std::span<const Trit> cv = compiled.run(span);
        const std::span<const Trit> lv = legacy.run(span);
        ASSERT_EQ(std::vector<Trit>(cv.begin(), cv.end()),
                  std::vector<Trit>(lv.begin(), lv.end()));
      }
    }
  }
}

// Packed evaluation lane-for-lane equals scalar evaluation.
TEST(Eval, PackedMatchesScalar) {
  const Netlist nl = mux_circuit();
  // 27 ternary combos of 3 inputs, one per lane.
  std::vector<PackedTrit> inputs(3, PackedTrit::splat(Trit::zero));
  std::vector<Word> lanes;
  int lane = 0;
  for (const Trit a : kAllTrits) {
    for (const Trit b : kAllTrits) {
      for (const Trit s : kAllTrits) {
        inputs[0].set_lane(lane, a);
        inputs[1].set_lane(lane, b);
        inputs[2].set_lane(lane, s);
        lanes.push_back(Word{a, b, s});
        ++lane;
      }
    }
  }
  PackedEvaluator pev(nl);
  pev.run(inputs);
  for (int l = 0; l < lane; ++l) {
    EXPECT_EQ(pev.output_lane(0, l), evaluate(nl, lanes[static_cast<std::size_t>(l)])[0])
        << "lane " << l;
  }
}

}  // namespace
}  // namespace mcsn
