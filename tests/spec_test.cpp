// Behavioral specification tests: the brute-force closure spec and the rank
// spec agree on valid strings (the equivalence [2] proves), and the spec has
// the expected algebraic properties.

#include "mcsn/core/spec.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/gray.hpp"
#include "mcsn/core/valid.hpp"

namespace mcsn {
namespace {

TEST(Spec, ClosureAndRankSpecsAgreeOnValidStrings) {
  for (const std::size_t bits : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const std::vector<Word> all = all_valid_strings(bits);
    for (const Word& g : all) {
      for (const Word& h : all) {
        const auto [cmax, cmin] = sort2_spec_closure(g, h);
        const auto [rmax, rmin] = sort2_spec_rank(g, h);
        EXPECT_EQ(cmax, rmax) << g.str() << " " << h.str();
        EXPECT_EQ(cmin, rmin) << g.str() << " " << h.str();
      }
    }
  }
}

TEST(Spec, OutputsAreValidStrings) {
  const std::size_t bits = 6;
  const std::vector<Word> all = all_valid_strings(bits);
  for (const Word& g : all) {
    for (const Word& h : all) {
      const auto [mx, mn] = sort2_spec_rank(g, h);
      EXPECT_TRUE(is_valid_string(mx));
      EXPECT_TRUE(is_valid_string(mn));
    }
  }
}

TEST(Spec, SortingIsIdempotentAndCommutative) {
  const std::size_t bits = 4;
  const std::vector<Word> all = all_valid_strings(bits);
  for (const Word& g : all) {
    const auto [mx, mn] = sort2_spec_closure(g, g);
    EXPECT_EQ(mx, g);
    EXPECT_EQ(mn, g);
    for (const Word& h : all) {
      const auto ab = sort2_spec_closure(g, h);
      const auto ba = sort2_spec_closure(h, g);
      EXPECT_EQ(ab, ba);
    }
  }
}

TEST(Spec, PreservesMultisetOfRanks) {
  const std::size_t bits = 5;
  const std::vector<Word> all = all_valid_strings(bits);
  for (std::size_t a = 0; a < all.size(); a += 3) {
    for (std::size_t b = 0; b < all.size(); b += 3) {
      const auto [mx, mn] = sort2_spec_rank(all[a], all[b]);
      const auto rmax = valid_rank(mx);
      const auto rmin = valid_rank(mn);
      ASSERT_TRUE(rmax && rmin);
      EXPECT_EQ(*rmax, std::max(a, b));
      EXPECT_EQ(*rmin, std::min(a, b));
    }
  }
}

// On stable inputs the closure spec is exactly sort by decoded value.
TEST(Spec, StableInputsSortByValue) {
  const std::size_t bits = 5;
  for (std::uint64_t x = 0; x < 32; ++x) {
    for (std::uint64_t y = 0; y < 32; ++y) {
      const auto [mx, mn] =
          sort2_spec_closure(gray_encode(x, bits), gray_encode(y, bits));
      EXPECT_EQ(gray_decode(mx), std::max(x, y));
      EXPECT_EQ(gray_decode(mn), std::min(x, y));
    }
  }
}

// The closure spec is defined on arbitrary ternary inputs too: sanity-check
// a non-valid input (two Ms) produces the superposition of all outcomes.
TEST(Spec, NonValidInputsStillSuperpose) {
  const Word g = *Word::parse("MM");  // all four 2-bit codewords
  const Word h = *Word::parse("00");  // value 0
  const auto [mx, mn] = sort2_spec_closure(g, h);
  // max over {0,1,3,2} vs 0 -> can be any codeword: MM; min is always 00.
  EXPECT_EQ(mx.str(), "MM");
  EXPECT_EQ(mn.str(), "00");
}

}  // namespace
}  // namespace mcsn
