// The 5-gate selection circuit (Fig. 3 / Table 6) and the operator blocks:
// exhaustive ternary verification that the gate-level blocks compute the
// metastable closures ^⋄M and outM on ALL ternary inputs — the property the
// paper's footnote 2 shows is NOT automatic for arbitrary formulas.

#include "mcsn/ckt/ops.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/fsm.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/stats.hpp"

namespace mcsn {
namespace {

// Builds a standalone diamond-hat block circuit: inputs p,q,r,u (N-encoded
// x = (p,q), y = (r,u)), outputs the N-encoded composite.
Netlist diamond_hat_circuit() {
  Netlist nl("diamond_hat");
  const NodeId p = nl.add_input("p");
  const NodeId q = nl.add_input("q");
  const NodeId r = nl.add_input("r");
  const NodeId u = nl.add_input("u");
  const PairWires o =
      diamond_hat_block(nl, PairWires{p, q}, PairWires{r, u});
  nl.mark_output(o.first, "o1");
  nl.mark_output(o.second, "o2");
  return nl;
}

Netlist out_circuit() {
  Netlist nl("out");
  const NodeId p = nl.add_input("p");
  const NodeId q = nl.add_input("q");
  const NodeId g = nl.add_input("g");
  const NodeId h = nl.add_input("h");
  const PairWires o = out_block(nl, PairWires{p, q}, PairWires{g, h});
  nl.mark_output(o.first, "max_i");
  nl.mark_output(o.second, "min_i");
  return nl;
}

TEST(Ops, DiamondHatBlockGateBudget) {
  const Netlist nl = diamond_hat_circuit();
  const CircuitStats s = compute_stats(nl);
  // Paper Sec. 5.1: 4 AND, 4 OR, 2 inverters, depth 3.
  EXPECT_EQ(s.gates, 10u);
  EXPECT_EQ(s.and_gates, 4u);
  EXPECT_EQ(s.or_gates, 4u);
  EXPECT_EQ(s.inverters, 2u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_TRUE(s.mc_safe);
}

TEST(Ops, OutBlockGateBudget) {
  const CircuitStats s = compute_stats(out_circuit());
  EXPECT_EQ(s.gates, 10u);
  EXPECT_EQ(s.and_gates, 4u);
  EXPECT_EQ(s.or_gates, 4u);
  EXPECT_EQ(s.inverters, 2u);
  EXPECT_EQ(s.depth, 3u);
}

// Exhaustive over all 81 ternary (x, y) pairs: the circuit equals the table
// closure ^⋄M.
TEST(Ops, DiamondHatBlockComputesClosureExhaustively) {
  const Netlist nl = diamond_hat_circuit();
  for (int xi = 0; xi < kPairCount; ++xi) {
    for (int yi = 0; yi < kPairCount; ++yi) {
      const TritPair x = TritPair::from_index(xi);
      const TritPair y = TritPair::from_index(yi);
      const Word in{x.first, x.second, y.first, y.second};
      const Word out = evaluate(nl, in);
      const TritPair want = diamond_hat_m(x, y);
      EXPECT_EQ(out[0], want.first) << "x=" << x.str() << " y=" << y.str();
      EXPECT_EQ(out[1], want.second) << "x=" << x.str() << " y=" << y.str();
    }
  }
}

// Exhaustive over all 81 ternary (s, b): the circuit equals outM, where the
// s input arrives N-encoded (as produced by the PPC).
TEST(Ops, OutBlockComputesClosureExhaustively) {
  const Netlist nl = out_circuit();
  for (int si = 0; si < kPairCount; ++si) {
    for (int bi = 0; bi < kPairCount; ++bi) {
      const TritPair s = TritPair::from_index(si);
      const TritPair b = TritPair::from_index(bi);
      const TritPair ns = s.n_transformed();
      const Word in{ns.first, ns.second, b.first, b.second};
      const Word out = evaluate(nl, in);
      const TritPair want = out_m(s, b);
      EXPECT_EQ(out[0], want.first) << "s=" << s.str() << " b=" << b.str();
      EXPECT_EQ(out[1], want.second) << "s=" << s.str() << " b=" << b.str();
    }
  }
}

// The paper's footnote-2 regression: for s = 10 (N-encoded (0,0)) and
// b = M0, outM(s, b) = (M, 0) — a naive POS formula would output 0.
TEST(Ops, Footnote2Regression) {
  const Netlist nl = out_circuit();
  const Word in{Trit::zero, Trit::zero, Trit::meta, Trit::zero};
  const Word out = evaluate(nl, in);
  EXPECT_EQ(out[0], Trit::meta);
  EXPECT_EQ(out[1], Trit::zero);
}

TEST(Ops, FirstPositionBlockIsOrAnd) {
  Netlist nl;
  const NodeId g = nl.add_input("g");
  const NodeId h = nl.add_input("h");
  const PairWires o = out_block_first(nl, PairWires{g, h});
  nl.mark_output(o.first, "max");
  nl.mark_output(o.second, "min");
  EXPECT_EQ(nl.gate_count(), 2u);
  // For 1-bit code: max = OR, min = AND, including containment.
  EXPECT_EQ(evaluate(nl, *Word::parse("M1")).str(), "1M");
  EXPECT_EQ(evaluate(nl, *Word::parse("M0")).str(), "M0");
  EXPECT_EQ(evaluate(nl, *Word::parse("10")).str(), "10");
}

TEST(Ops, CmuxContainsMetastableSelect) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  nl.mark_output(cmux(nl, a, b, s), "o");
  // Exhaustive against the trit_mux closure.
  for (const Trit ta : kAllTrits) {
    for (const Trit tb : kAllTrits) {
      for (const Trit ts : kAllTrits) {
        const Word out = evaluate(nl, Word{ta, tb, ts});
        EXPECT_EQ(out[0], trit_mux(ta, tb, ts))
            << ta << tb << ts;
      }
    }
  }
}

// The AOI-fused selection circuit computes the identical ternary function
// with 3 cells instead of 5 (exhaustive over all 81 ternary inputs).
TEST(Ops, AoiStyleIsTernaryEquivalent) {
  Netlist simple("sel_simple"), fused("sel_aoi");
  for (Netlist* nl : {&simple, &fused}) {
    const NodeId a = nl->add_input("a");
    const NodeId b = nl->add_input("b");
    const NodeId s1 = nl->add_input("sel1");
    const NodeId s2 = nl->add_input("sel2");
    const OpStyle style =
        nl == &fused ? OpStyle::aoi_cells : OpStyle::simple_gates;
    nl->mark_output(selection_circuit(*nl, a, b, s1, s2, style), "f");
  }
  EXPECT_EQ(simple.gate_count(), 5u);
  EXPECT_EQ(fused.gate_count(), 3u);
  EXPECT_TRUE(simple.mc_safe());
  EXPECT_FALSE(fused.mc_safe());  // AOI cells are outside the simple set
  std::uint64_t total = 81;
  for (std::uint64_t v = 0; v < total; ++v) {
    Word in(4);
    std::uint64_t x = v;
    for (int i = 0; i < 4; ++i) {
      in[static_cast<std::size_t>(i)] =
          trit_from_index(static_cast<int>(x % 3));
      x /= 3;
    }
    EXPECT_EQ(evaluate(simple, in), evaluate(fused, in)) << in.str();
  }
}

// Half blocks match the corresponding component of the full block.
TEST(Ops, HalfBlocksMatchFullBlock) {
  for (const bool max_half : {true, false}) {
    Netlist nl;
    const NodeId p = nl.add_input("p");
    const NodeId q = nl.add_input("q");
    const NodeId g = nl.add_input("g");
    const NodeId h = nl.add_input("h");
    nl.mark_output(
        out_block_half(nl, PairWires{p, q}, PairWires{g, h}, max_half), "o");
    EXPECT_EQ(nl.gate_count(), 5u);
    const Netlist full = out_circuit();
    for (int si = 0; si < kPairCount; ++si) {
      for (int bi = 0; bi < kPairCount; ++bi) {
        const TritPair s = TritPair::from_index(si).n_transformed();
        const TritPair b = TritPair::from_index(bi);
        const Word in{s.first, s.second, b.first, b.second};
        EXPECT_EQ(evaluate(nl, in)[0], evaluate(full, in)[max_half ? 0 : 1]);
      }
    }
  }
}

}  // namespace
}  // namespace mcsn
