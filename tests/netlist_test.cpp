// Netlist construction, bookkeeping and validation.

#include "mcsn/netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "mcsn/netlist/dot.hpp"

namespace mcsn {
namespace {

TEST(Netlist, BuildSmallCircuit) {
  Netlist nl("half_adder");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId sum = nl.xor2(a, b);
  const NodeId carry = nl.and2(a, b);
  nl.mark_output(sum, "sum");
  nl.mark_output(carry, "carry");

  EXPECT_EQ(nl.node_count(), 4u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.input_name(0), "a");
  EXPECT_EQ(nl.outputs()[1].name, "carry");
  EXPECT_TRUE(nl.validate());
}

TEST(Netlist, BusHelpers) {
  Netlist nl;
  const Bus g = nl.add_input_bus("g", 4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(nl.input_name(2), "g[2]");
  nl.mark_output_bus(g, "o");
  EXPECT_EQ(nl.outputs()[3].name, "o[3]");
}

TEST(Netlist, GateHistogramAndMcSafety) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.or2(nl.and2(a, b), nl.inv(a));
  EXPECT_TRUE(nl.mc_safe());
  const auto hist = nl.gate_histogram();
  EXPECT_EQ(hist[static_cast<int>(CellKind::and2)], 1u);
  EXPECT_EQ(hist[static_cast<int>(CellKind::or2)], 1u);
  EXPECT_EQ(hist[static_cast<int>(CellKind::inv)], 1u);

  nl.mux2(a, b, a);
  EXPECT_FALSE(nl.mc_safe());
}

TEST(Netlist, ConstantsAreNotGates) {
  Netlist nl;
  const NodeId c0 = nl.constant(false);
  const NodeId c1 = nl.constant(true);
  EXPECT_EQ(nl.gate_count(), 0u);
  const NodeId o = nl.or2(c0, c1);
  nl.mark_output(o, "o");
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_TRUE(nl.validate());
}

TEST(Netlist, FanoutCounts) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.and2(a, b);
  nl.or2(x, a);
  nl.inv(x);
  const auto f = nl.fanouts();
  EXPECT_EQ(f[a], 2u);  // and2 + or2
  EXPECT_EQ(f[b], 1u);
  EXPECT_EQ(f[x], 2u);  // or2 + inv
}

TEST(Netlist, CellProperties) {
  EXPECT_EQ(cell_arity(CellKind::inv), 1);
  EXPECT_EQ(cell_arity(CellKind::and2), 2);
  EXPECT_EQ(cell_arity(CellKind::mux2), 3);
  EXPECT_EQ(cell_arity(CellKind::input), 0);
  EXPECT_TRUE(is_mc_safe(CellKind::or2));
  EXPECT_FALSE(is_mc_safe(CellKind::xor2));
  EXPECT_EQ(cell_name(CellKind::aoi21), "aoi21");
  EXPECT_EQ(cell_lib_name(CellKind::and2), "AND2_X1");
}

TEST(Netlist, DotExportContainsStructure) {
  Netlist nl("tiny");
  const NodeId a = nl.add_input("a");
  nl.mark_output(nl.inv(a), "y");
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("inv"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("\"y\""), std::string::npos);
}

}  // namespace
}  // namespace mcsn
