// The streaming sort service: bounded queue semantics, sorter pooling,
// micro-batcher flush rules, and — the load-bearing property — that any
// interleaving of requests through the service yields results bit-identical
// to a direct sort_batch of the same rounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <iterator>
#include <locale>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/serve/batcher.hpp"
#include "mcsn/serve/queue.hpp"
#include "mcsn/serve/service.hpp"
#include "mcsn/serve/sorter_pool.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {

/// White-box fault injection: closes the ready queue underneath a live
/// service so tests can drive the refused-push path that no public API
/// sequence reaches (the lifecycle lock orders real close() after drain).
struct SortServiceTestPeer {
  static void close_ready_queue(SortService& service) {
    service.ready_.close();
  }
};

namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::vector<Word> random_round(Xoshiro256& rng, int channels,
                               std::size_t bits) {
  return random_valid_round(rng, channels, bits);
}

PendingSort make_pending(Xoshiro256& rng, int channels, std::size_t bits,
                         Clock::time_point enqueued) {
  PendingSort pending;
  pending.request =
      std::move(SortRequest::from_words(random_round(rng, channels, bits))
                    .value());
  pending.done = [](SortResponse) {};
  pending.enqueued = enqueued;
  return pending;
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, FifoAndDrainAfterClose) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // refused after close...
  EXPECT_EQ(q.pop(), 1);    // ...but queued items still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, PushBlocksUntilConsumerFreesSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // must block: capacity 1, queue full
    pushed = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, PopUntilTimesOutOnEmpty) {
  BoundedQueue<int> q(1);
  const auto t0 = Clock::now();
  EXPECT_EQ(q.pop_until(t0 + 10ms), std::nullopt);
  EXPECT_GE(Clock::now() - t0, 10ms);
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(5ms);
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseUnblocksAllBlockedProducers) {
  // Several producers stuck in a blocking push on a full queue: close()
  // must wake every one of them, each returning false, with no deadlock.
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));  // fill to capacity
  constexpr int kProducers = 3;
  std::atomic<int> refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (!q.push(100 + p)) ++refused;
    });
  }
  std::this_thread::sleep_for(20ms);  // let them reach the full-queue wait
  q.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(refused.load(), kProducers);
  EXPECT_EQ(q.pop(), 0);  // pre-close item still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CapacityZeroClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));   // one slot exists
  EXPECT_FALSE(q.try_push(2));  // and only one
  EXPECT_EQ(q.pop(), 1);
}

TEST(BoundedQueue, PopUntilWithExpiredDeadline) {
  BoundedQueue<int> q(2);
  // Empty + already-expired deadline: immediate nullopt, no wait.
  const auto past = Clock::now() - 1h;
  const auto t0 = Clock::now();
  EXPECT_EQ(q.pop_until(past), std::nullopt);
  EXPECT_LT(Clock::now() - t0, 5s);  // returned promptly, no 1h hang
  // An available item is still handed out even though the deadline passed.
  ASSERT_TRUE(q.push(7));
  EXPECT_EQ(q.pop_until(past), 7);
}

TEST(BoundedQueue, PushOrReclaimReturnsItemWhenClosed) {
  BoundedQueue<std::string> q(2);
  EXPECT_EQ(q.push_or_reclaim("kept"), std::nullopt);
  q.close();
  const std::optional<std::string> back = q.push_or_reclaim("bounced");
  ASSERT_TRUE(back.has_value());  // the item survives the refusal
  EXPECT_EQ(*back, "bounced");
  EXPECT_EQ(q.pop(), "kept");
}

// --- SorterPool -------------------------------------------------------------

TEST(SorterPool, ReusesCompiledSorterPerShape) {
  SorterPool pool;
  const auto a = pool.acquire(4, 4);
  const auto b = pool.acquire(4, 4);
  const auto c = pool.acquire(6, 3);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->get(), b->get());  // same compiled instance
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ((*a)->channels(), 4);
  EXPECT_EQ((*c)->bits(), 3u);
}

TEST(SorterPool, FailedBuildIsNotCachedAndReportsStatus) {
  SorterPool pool;
  const auto bad = pool.acquire(0, 4);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.acquire(4, 4).ok());  // pool still usable
}

TEST(SorterPool, OversizedShapeComesBackUnimplemented) {
  McSorterOptions opt;
  opt.max_channels = 16;
  SorterPool pool(opt);
  const auto result = pool.acquire(17, 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.acquire(16, 4).ok());  // at the bound is fine
}

TEST(SorterPool, EvictsLeastRecentlyUsedIdleShapeAtCapacity) {
  MetricsRegistry registry;
  SorterPool pool(McSorterOptions{}, &registry, /*capacity=*/2);
  ASSERT_TRUE(pool.acquire(2, 2).ok());
  ASSERT_TRUE(pool.acquire(3, 2).ok());
  EXPECT_EQ(pool.size(), 2u);
  // Touch (2,2) so (3,2) is the coldest, then overflow the capacity.
  ASSERT_TRUE(pool.acquire(2, 2).ok());
  ASSERT_TRUE(pool.acquire(4, 2).ok());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evictions(), 1u);
  // (3,2) was evicted: acquiring it again is a miss (rebuild), while
  // (2,2) survived as a hit.
  const auto snapshot_misses = [&registry] {
    return registry.counter("pool_misses_total").value();
  };
  const std::uint64_t misses_before = snapshot_misses();
  ASSERT_TRUE(pool.acquire(2, 2).ok());
  EXPECT_EQ(snapshot_misses(), misses_before);
  ASSERT_TRUE(pool.acquire(3, 2).ok());
  EXPECT_EQ(snapshot_misses(), misses_before + 1);
  EXPECT_EQ(registry.counter("pool_evictions_total").value(),
            pool.evictions());
}

TEST(SorterPool, BusyShapesAreNotEvicted) {
  SorterPool pool(McSorterOptions{}, nullptr, /*capacity=*/1);
  const auto held = pool.acquire(2, 2);  // keep a reference: busy
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(pool.acquire(3, 2).ok());  // result dropped: idle
  // The busy (2,2) must survive; the pool rides over capacity instead.
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evictions(), 0u);
  // Once only the cache holds (3,2), the next insertion evicts it.
  ASSERT_TRUE(pool.acquire(4, 2).ok());
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_EQ(pool.size(), 2u);  // held (2,2) + fresh (4,2)
}

TEST(SorterPool, ConcurrentEvictWhileBusyNeverFreesARunningProgram) {
  // Hammer a capacity-1 pool from several threads across more shapes than
  // fit: every acquire of a novel shape triggers an eviction sweep while
  // other threads are mid-sort_batch_flat on entries the sweep considers.
  // The busy-entry guard (use_count > 2) must keep every running program
  // alive — a wrong eviction is a use-after-free ASan/TSan catches — and
  // the soft bound must re-tighten once the churn stops.
  MetricsRegistry registry;
  SorterPool pool(McSorterOptions{}, &registry, /*capacity=*/1);
  constexpr int kThreads = 6;
  constexpr int kIters = 24;
  const SortShape shapes[] = {{2, 3}, {3, 3}, {4, 3}, {5, 3}, {6, 3}, {7, 3}};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, &shapes, &failures, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(1000 + t));
      for (int i = 0; i < kIters; ++i) {
        const SortShape shape = shapes[rng.below(std::size(shapes))];
        const auto sorter = pool.acquire(shape.channels, shape.bits);
        if (!sorter.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<Trit> in;
        in.reserve(shape.trits());
        for (const Word& w :
             random_valid_round(rng, shape.channels, shape.bits)) {
          in.insert(in.end(), w.begin(), w.end());
        }
        std::vector<Trit> out(in.size());
        if (!(*sorter)->sort_batch_flat(in, out).ok()) failures.fetch_add(1);
        pool.record_batch(shape.channels, shape.bits, 1, 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  // All outside references are gone now; one fresh insert sweeps the
  // backlog of idle entries down to the bound.
  ASSERT_TRUE(pool.acquire(8, 3).ok());
  EXPECT_LE(pool.size(), 1u);
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_EQ(registry.counter("pool_evictions_total").value(),
            pool.evictions());
}

TEST(SorterPool, WarmupBuildsShapesAndReportsPerShapeTiming) {
  SorterPool pool;
  std::vector<SortShape> shapes = {{2, 2}, {3, 2}};
  std::vector<std::pair<SortShape, std::uint64_t>> observed;
  const Status status = pool.warmup(
      shapes, [&observed](const SortShape& s, const Status& st,
                          std::uint64_t ns) {
        EXPECT_TRUE(st.ok());
        observed.push_back({s, ns});
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_GT(observed[0].second, 0u);
  // A failing shape reports its status but later shapes still build.
  std::vector<SortShape> mixed = {{0, 2}, {4, 2}};
  Status seen;
  const Status warm = pool.warmup(
      mixed, [&seen](const SortShape&, const Status& st, std::uint64_t) {
        if (!st.ok()) seen = st;
      });
  EXPECT_EQ(warm.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(seen.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.size(), 3u);
}

// --- MicroBatcher -----------------------------------------------------------

TEST(MicroBatcher, FlushesOnLaneFull) {
  SorterPool pool;
  const auto sorter = *pool.acquire(2, 2);
  MicroBatcher batcher(4, 1ms);
  Xoshiro256 rng(1);
  const auto t0 = Clock::now();
  for (int i = 0; i < 3; ++i) {
    auto r = batcher.add(sorter, make_pending(rng, 2, 2, t0), t0);
    EXPECT_FALSE(r.full.has_value());
    EXPECT_EQ(r.window_started, i == 0);
  }
  auto r = batcher.add(sorter, make_pending(rng, 2, 2, t0), t0);
  ASSERT_TRUE(r.full.has_value());
  EXPECT_FALSE(r.window_started);
  EXPECT_EQ(r.full->requests.size(), 4u);
  // Payloads were staged contiguously, ready for one sort_batch_flat.
  EXPECT_EQ(r.full->flat.size(), 4u * (SortShape{2, 2}).trits());
  EXPECT_EQ(r.full->cause, FlushCause::lane_full);
  EXPECT_TRUE(batcher.empty());
}

TEST(MicroBatcher, FlushesOnWindowExpiry) {
  SorterPool pool;
  const auto sorter = *pool.acquire(2, 2);
  MicroBatcher batcher(256, 1ms);
  Xoshiro256 rng(2);
  const auto t0 = Clock::now();
  (void)batcher.add(sorter, make_pending(rng, 2, 2, t0), t0);
  (void)batcher.add(sorter, make_pending(rng, 2, 2, t0), t0 + 100us);

  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + 1ms);  // pinned to the oldest

  EXPECT_TRUE(batcher.take_expired(t0 + 999us).empty());  // not yet
  auto groups = batcher.take_expired(t0 + 1ms);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].requests.size(), 2u);
  EXPECT_EQ(groups[0].cause, FlushCause::window);
  EXPECT_TRUE(batcher.empty());
  EXPECT_FALSE(batcher.next_deadline().has_value());
}

TEST(MicroBatcher, ShardsByShapeAndDrainsAll) {
  SorterPool pool;
  MicroBatcher batcher(256, 1ms);
  Xoshiro256 rng(3);
  const auto t0 = Clock::now();
  (void)batcher.add(*pool.acquire(2, 2), make_pending(rng, 2, 2, t0), t0);
  (void)batcher.add(*pool.acquire(4, 3), make_pending(rng, 4, 3, t0), t0);
  (void)batcher.add(*pool.acquire(2, 2), make_pending(rng, 2, 2, t0), t0);
  EXPECT_EQ(batcher.pending(), 3u);

  auto groups = batcher.take_all();
  ASSERT_EQ(groups.size(), 2u);  // one per shape
  for (const auto& g : groups) {
    EXPECT_EQ(g.cause, FlushCause::drain);
    EXPECT_EQ(g.flat.size(), g.requests.size() * g.sorter->shape().trits());
    for (const auto& pending : g.requests) {
      EXPECT_EQ(pending.request.shape.channels, g.sorter->channels());
    }
  }
  EXPECT_TRUE(batcher.empty());
}

// --- SortService ------------------------------------------------------------

// The tentpole property: an arbitrary interleaving of mixed-shape requests
// through the micro-batched service is bit-identical to direct sort_batch
// calls on the same rounds — including partial final lane groups.
TEST(SortService, BatchingEquivalentToDirectSortBatch) {
  struct Shape {
    int channels;
    std::size_t bits;
    std::size_t count;
  };
  // Counts straddle lane-group boundaries: > 256 (full group + partial),
  // small partial, and an exact sub-group size.
  const std::vector<Shape> shapes = {{4, 4, 300}, {6, 5, 57}, {7, 3, 128}};

  Xoshiro256 rng(7);
  std::vector<std::vector<std::vector<Word>>> rounds(shapes.size());
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (shape, index)
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    rounds[s].reserve(shapes[s].count);
    for (std::size_t i = 0; i < shapes[s].count; ++i) {
      rounds[s].push_back(
          random_round(rng, shapes[s].channels, shapes[s].bits));
      order.emplace_back(s, i);
    }
  }
  rng.shuffle(order);  // arbitrary interleaving of heterogeneous traffic

  ServeOptions opt;
  opt.workers = 2;
  opt.flush_window = 500us;
  SortService service(opt);

  std::vector<std::vector<std::future<std::vector<Word>>>> futures(
      shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    futures[s].resize(shapes[s].count);
  }
  for (const auto& [s, i] : order) {
    futures[s][i] = service.submit(rounds[s][i]);
  }

  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const McSorter reference(shapes[s].channels, shapes[s].bits);
    const std::vector<std::vector<Word>> expect =
        reference.sort_batch(rounds[s]);
    for (std::size_t i = 0; i < shapes[s].count; ++i) {
      ASSERT_EQ(futures[s][i].get(), expect[i])
          << "shape " << shapes[s].channels << "x" << shapes[s].bits
          << " request " << i;
    }
  }

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, order.size());
  EXPECT_EQ(m.completed, order.size());
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GE(m.batches, 4u);  // at least ceil(300/256)+1+1 shape flushes
  EXPECT_EQ(m.flush_full + m.flush_window + m.flush_drain, m.batches);
  EXPECT_GT(m.mean_occupancy(), 0.0);
  EXPECT_EQ(service.shapes(), shapes.size());
}

TEST(SortService, ConcurrentProducersStaySorted) {
  ServeOptions opt;
  opt.workers = 2;
  opt.flush_window = 200us;
  SortService service(opt);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  std::vector<std::thread> producers;
  std::vector<int> failures(kProducers, 0);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        std::vector<std::uint64_t> vals;
        for (int c = 0; c < 6; ++c) vals.push_back(rng.below(32));
        std::vector<std::uint64_t> expect = vals;
        std::sort(expect.begin(), expect.end());
        if (service.sort_values(vals, 5) != expect) ++failures[p];
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(failures[p], 0);
  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.completed,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(m.latency_ns.count(), 0u);
}

TEST(SortService, StopDrainsEveryPendingFuture) {
  ServeOptions opt;
  opt.workers = 1;
  opt.flush_window = std::chrono::microseconds(1h);  // window never expires
  SortService service(opt);

  Xoshiro256 rng(9);
  std::vector<std::future<std::vector<Word>>> futures;
  std::vector<std::vector<Word>> sent;
  for (int i = 0; i < 40; ++i) {  // partial group: stays pending in batcher
    sent.push_back(random_round(rng, 4, 4));
    futures.push_back(service.submit(sent.back()));
  }
  service.stop();

  const McSorter reference(4, 4);
  const auto expect = reference.sort_batch(sent);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), expect[i]);  // fulfilled by the drain
  }
  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.flush_drain, 1u);
  EXPECT_EQ(m.completed, 40u);

  EXPECT_THROW((void)service.submit(random_round(rng, 4, 4)),
               std::runtime_error);
  EXPECT_EQ(service.metrics().rejected, 1u);
  service.stop();  // idempotent
}

// Regression: a refused ready-queue push used to drop the BatchGroup on the
// floor — promises died unfulfilled and the group's inflight slots leaked,
// wedging all later submitters at the backpressure gate. Now every request
// in the refused group fails fast and its slots are released.
TEST(SortService, RefusedReadyPushFailsGroupInsteadOfDroppingIt) {
  ServeOptions opt;
  opt.workers = 1;
  opt.max_lanes = 1;   // every submit flushes a full group immediately
  opt.max_inflight = 2;  // tight bound: leaked slots would hang the test
  SortService service(opt);
  Xoshiro256 rng(31);

  SortServiceTestPeer::close_ready_queue(service);

  // Well past max_inflight: only possible if each refused group releases
  // its inflight slots. Every future must carry the failure, not hang.
  for (int i = 0; i < 8; ++i) {
    std::future<std::vector<Word>> f = service.submit(random_round(rng, 4, 4));
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "request " << i;
    EXPECT_THROW((void)f.get(), std::runtime_error) << "request " << i;
  }

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, 8u);
  EXPECT_EQ(m.rejected, 8u);  // refused pushes count as rejections
  EXPECT_EQ(m.completed, 0u);
  service.stop();  // still clean to stop after the induced fault
}

// The engine pool knob: batch.threads > 1 creates ONE pool shared by every
// worker and shape (never workers x threads), and serving results stay
// bit-identical to direct sort_batch.
TEST(SortService, SharedEnginePoolServesCorrectlyAcrossShapes) {
  ServeOptions opt;
  opt.workers = 2;
  opt.flush_window = 200us;
  // max_lanes spans two 256-lane engine groups, so a full flush actually
  // shards across the pool — the exact nesting the old sanitize() hack
  // had to forbid.
  opt.max_lanes = 512;
  opt.sorter.batch.threads = 3;  // one shared 2-worker pool via sanitize()
  SortService service(opt);
  ASSERT_NE(service.options().sorter.batch.pool, nullptr);
  EXPECT_EQ(service.options().sorter.batch.pool->worker_count(), 2u);

  const std::uint64_t spawned = ThreadPool::threads_started();
  Xoshiro256 rng(17);
  struct Shape {
    int channels;
    std::size_t bits;
  };
  for (const Shape s : {Shape{4, 4}, Shape{6, 3}}) {
    std::vector<std::vector<Word>> rounds;
    std::vector<std::future<std::vector<Word>>> futures;
    for (int i = 0; i < 600; ++i) {  // > 512: at least one sharded flush
      rounds.push_back(random_round(rng, s.channels, s.bits));
      futures.push_back(service.submit(rounds.back()));
    }
    // Explicitly serial reference: default auto-threads would lazily spawn
    // a pool of its own on multi-core hosts and trip the spawn assertion.
    McSorterOptions serial;
    serial.batch.threads = 1;
    const McSorter reference(s.channels, s.bits, serial);
    const auto expect = reference.sort_batch(rounds);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      ASSERT_EQ(futures[i].get(), expect[i])
          << s.channels << "x" << s.bits << " request " << i;
    }
  }
  // Every shape's sorter shared the one service pool, and serving spawned
  // nothing further (the references above are explicitly serial).
  EXPECT_EQ(ThreadPool::threads_started(), spawned);
  service.stop();
}

// Metrics JSON must stay locale-independent (CI parses the artifacts).
TEST(SortService, MetricsJsonIsLocaleIndependent) {
  struct CommaPunct : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  MetricsSnapshot snap;
  snap.submitted = 1234567;
  snap.completed = 1234567;
  snap.batches = 1000;
  snap.max_lanes = 256;
  for (int i = 0; i < 1000; ++i) snap.latency_ns.record(2500000);

  const std::locale previous =
      std::locale::global(std::locale(std::locale::classic(),
                                      new CommaPunct));
  const std::string json = snap.json();
  std::locale::global(previous);

  EXPECT_NE(json.find("\"submitted\": 1234567"), std::string::npos) << json;
  EXPECT_EQ(json.find("1.234"), std::string::npos) << json;  // no grouping
  // Commas may only be JSON separators (always followed by a space here),
  // never decimal commas inside a number.
  for (std::size_t pos = json.find(','); pos != std::string::npos;
       pos = json.find(',', pos + 1)) {
    ASSERT_LT(pos + 1, json.size());
    EXPECT_EQ(json[pos + 1], ' ') << "decimal comma at " << pos << ": " << json;
  }
}

TEST(SortService, RejectsMalformedRounds) {
  SortService service;
  EXPECT_THROW((void)service.submit(std::vector<Word>{}),
               std::invalid_argument);
  EXPECT_THROW((void)service.submit(std::vector<Word>{Word(0), Word(0)}),
               std::invalid_argument);
  EXPECT_THROW((void)service.submit(std::vector<Word>{Word(4), Word(3)}),
               std::invalid_argument);
}

TEST(SortService, MetricsJsonHasTheAdvertisedFields) {
  ServeOptions opt;
  opt.flush_window = 100us;
  SortService service(opt);
  (void)service.sort_values({3, 1, 2, 0}, 4);
  const std::string json = service.metrics_json();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"batches\"", "\"flush\"",
        "\"mean_occupancy\"", "\"batch_lanes\"", "\"latency_us\"", "\"p50\"",
        "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// --- SortRequest/SortResponse API --------------------------------------------

// Differential parity: SortRequest submission (futures and callbacks,
// owned and zero-copy-view payloads) is checksum-identical to the legacy
// sort_batch path on the same rounds.
TEST(SortService, RequestApiMatchesDirectSortBatch) {
  constexpr int kChannels = 4;
  constexpr std::size_t kBits = 4;
  constexpr std::size_t kRounds = 300;  // full lane group + partial
  Xoshiro256 rng(41);
  std::vector<std::vector<Word>> rounds;
  std::vector<std::vector<Trit>> flats(kRounds);
  for (std::size_t i = 0; i < kRounds; ++i) {
    rounds.push_back(random_round(rng, kChannels, kBits));
    for (const Word& w : rounds.back()) {
      flats[i].insert(flats[i].end(), w.begin(), w.end());
    }
  }
  const McSorter reference(kChannels, kBits);
  const std::vector<std::vector<Word>> expect = reference.sort_batch(rounds);

  // Futures path over zero-copy views (flats outlive the completions),
  // interleaved with the callback path writing into preassigned slots.
  // Slots are declared before the service: if an assertion bails out of
  // the test early, ~SortService still drains pending callbacks, which
  // must find their targets alive.
  std::vector<std::future<SortResponse>> futures(kRounds);
  std::vector<SortResponse> callback_slots(kRounds);
  std::atomic<std::size_t> callbacks_done{0};

  ServeOptions opt;
  opt.workers = 2;
  opt.flush_window = 200us;
  SortService service(opt);
  for (std::size_t i = 0; i < kRounds; ++i) {
    SortRequest req = std::move(
        SortRequest::view(SortShape{kChannels, kBits}, flats[i]).value());
    if (i % 2 == 0) {
      futures[i] = service.submit(std::move(req));
    } else {
      service.submit(std::move(req), [&, i](SortResponse rsp) {
        callback_slots[i] = std::move(rsp);
        callbacks_done.fetch_add(1);
      });
    }
  }
  for (std::size_t i = 0; i < kRounds; i += 2) {
    const SortResponse rsp = futures[i].get();
    ASSERT_TRUE(rsp.status.ok()) << rsp.status.to_string();
    ASSERT_EQ(rsp.words(), expect[i]) << "request " << i;
    EXPECT_GT(rsp.latency.count(), 0);
  }
  service.stop();  // all callbacks have run once stop() returns
  EXPECT_EQ(callbacks_done.load(), kRounds / 2);
  for (std::size_t i = 1; i < kRounds; i += 2) {
    ASSERT_TRUE(callback_slots[i].status.ok());
    ASSERT_EQ(callback_slots[i].words(), expect[i]) << "callback " << i;
  }
  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, kRounds);
  EXPECT_EQ(m.completed, kRounds);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.expired, 0u);
}

// The request path never throws: malformed requests and post-stop submits
// complete (inline) with the corresponding Status.
TEST(SortService, RequestApiFailsViaStatusNotExceptions) {
  SortService service;
  SortRequest malformed;  // empty payload, 0x0 shape
  const SortResponse bad = service.submit(std::move(malformed)).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.metrics().rejected, 1u);

  service.stop();
  Xoshiro256 rng(5);
  bool called_inline = false;
  service.submit(
      std::move(SortRequest::from_words(random_round(rng, 4, 4)).value()),
      [&](SortResponse rsp) {
        called_inline = true;
        EXPECT_EQ(rsp.status.code(), StatusCode::kUnavailable);
      });
  EXPECT_TRUE(called_inline);  // completion ran before submit returned
  EXPECT_EQ(service.metrics().rejected, 2u);
}

// Deadline policy: judged at flush time. An expired request is failed with
// kDeadlineExceeded while its fresh lane-mates in the same group still
// sort correctly.
TEST(SortService, DeadlineExpiredRequestsFailAtFlushTime) {
  ServeOptions opt;
  opt.workers = 1;
  opt.flush_window = std::chrono::microseconds(1h);  // only drain flushes
  SortService service(opt);
  Xoshiro256 rng(19);

  const std::vector<Word> round_a = random_round(rng, 4, 4);
  const std::vector<Word> round_b = random_round(rng, 4, 4);
  SortRequest expired = std::move(SortRequest::from_words(round_a).value());
  expired.deadline = Clock::now() - 1ms;  // already past
  SortRequest fresh = std::move(SortRequest::from_words(round_b).value());
  fresh.deadline = Clock::now() + 1h;

  std::future<SortResponse> f_expired = service.submit(std::move(expired));
  std::future<SortResponse> f_fresh = service.submit(std::move(fresh));
  service.stop();  // drain-flushes the shared partial group

  const SortResponse r_expired = f_expired.get();
  EXPECT_EQ(r_expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r_expired.payload.empty());

  const SortResponse r_fresh = f_fresh.get();
  ASSERT_TRUE(r_fresh.status.ok()) << r_fresh.status.to_string();
  const McSorter reference(4, 4);
  EXPECT_EQ(r_fresh.words(), reference.sort_batch({round_b})[0]);

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.expired, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.failed, 0u);
}

// Satellite regression: integer-valued service entry points must reject
// bits > 64 loudly — uint64_t values cannot fill wider words.
TEST(SortService, SortValuesRejectsBitsOver64) {
  SortService service;
  EXPECT_THROW((void)service.sort_values({3, 1, 2, 0}, 65),
               std::invalid_argument);
  EXPECT_THROW((void)service.sort_values({3, 1, 2, 0}, 0),
               std::invalid_argument);
  // bits = 64 stays legal at the validation layer (the values all fit).
  const StatusOr<SortRequest> wide =
      SortRequest::from_values(SortShape{2, 64}, std::vector<std::uint64_t>{
                                                     1, ~std::uint64_t{0}});
  EXPECT_TRUE(wide.ok()) << wide.status().to_string();
}

TEST(ServeOptions, ValidateNamesEveryBadKnob) {
  ServeOptions opt;
  EXPECT_TRUE(opt.validate().ok());

  opt.workers = 0;
  opt.max_lanes = 0;
  opt.flush_window = std::chrono::microseconds(-5);
  opt.max_inflight = 0;
  opt.ready_capacity = 0;
  opt.sorter.batch.threads = -2;
  const Status s = opt.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  for (const char* knob : {"workers", "max_lanes", "flush_window",
                           "max_inflight", "ready_capacity",
                           "sorter.batch.threads"}) {
    EXPECT_NE(s.message().find(knob), std::string::npos)
        << knob << " missing in: " << s.message();
  }
  // The constructor still sanitizes for programmatic callers: building a
  // service from these knobs clamps instead of failing.
  SortService service(opt);
  EXPECT_GE(service.options().workers, 1);
}

TEST(SortService, BackpressureBoundsInflight) {
  ServeOptions opt;
  opt.workers = 1;
  opt.max_inflight = 8;
  opt.flush_window = 100us;
  SortService service(opt);
  // Far more submissions than max_inflight: the bound forces submit() to
  // block and the service to keep up, rather than queueing unboundedly.
  Xoshiro256 rng(21);
  std::vector<std::future<std::vector<Word>>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(service.submit(random_round(rng, 4, 4)));
  }
  for (auto& f : futures) (void)f.get();
  EXPECT_EQ(service.metrics().completed, 200u);
}

}  // namespace
}  // namespace mcsn
