// Unit tests for ternary words: parsing, resolution (Def. 2.5),
// superposition (Def. 2.1), and the identities of Obs. 2.2 / 2.6.

#include "mcsn/core/word.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mcsn {
namespace {

TEST(Word, ParseAndStr) {
  const auto w = Word::parse("0M10");
  ASSERT_TRUE(w);
  EXPECT_EQ(w->size(), 4u);
  EXPECT_EQ((*w)[0], Trit::zero);
  EXPECT_EQ((*w)[1], Trit::meta);
  EXPECT_EQ((*w)[2], Trit::one);
  EXPECT_EQ((*w)[3], Trit::zero);
  EXPECT_EQ(w->str(), "0M10");
  EXPECT_FALSE(Word::parse("01?"));
}

TEST(Word, FromUintMsbFirst) {
  EXPECT_EQ(Word::from_uint(0b1010, 4).str(), "1010");
  EXPECT_EQ(Word::from_uint(1, 4).str(), "0001");
  EXPECT_EQ(Word::from_uint(0, 3).str(), "000");
  EXPECT_EQ(Word::from_uint(0b1010, 4).to_uint(), 0b1010u);
}

TEST(Word, StableAndMetaCount) {
  EXPECT_TRUE(Word::parse("0101")->is_stable());
  EXPECT_FALSE(Word::parse("01M1")->is_stable());
  EXPECT_EQ(Word::parse("MM0M")->meta_count(), 3u);
  EXPECT_EQ(Word::parse("0101")->meta_count(), 0u);
  EXPECT_EQ(*Word::parse("01M1")->first_meta(), 2u);
  EXPECT_FALSE(Word::parse("0101")->first_meta());
}

TEST(Word, Parity) {
  EXPECT_FALSE(Word::parse("0000")->parity());
  EXPECT_TRUE(Word::parse("0100")->parity());
  EXPECT_FALSE(Word::parse("0110")->parity());
  EXPECT_TRUE(Word::parse("0111")->parity());
}

TEST(Word, SubAndConcat) {
  const Word w = *Word::parse("01M10");
  EXPECT_EQ(w.sub(1, 3).str(), "1M1");
  EXPECT_EQ(w.sub(0, 0).str(), "0");
  EXPECT_EQ((*Word::parse("01") + *Word::parse("M0")).str(), "01M0");
}

TEST(Word, Complement) {
  EXPECT_EQ(Word::parse("01M")->complement().str(), "10M");
}

TEST(Word, StarOperatorDef21) {
  const Word a = *Word::parse("0011");
  const Word b = *Word::parse("0101");
  EXPECT_EQ(Word::star(a, b).str(), "0MM1");
  // Commutative.
  EXPECT_EQ(Word::star(b, a).str(), "0MM1");
}

TEST(Word, StarAssociativeObs22) {
  // Superposition of a set does not depend on the order (Obs. 2.2).
  const std::vector<Word> set = {*Word::parse("0011"), *Word::parse("0101"),
                                 *Word::parse("0110")};
  const Word direct = Word::star(set);
  const Word reordered =
      Word::star(Word::star(set[2], set[0]), set[1]);
  EXPECT_EQ(direct, reordered);
  EXPECT_EQ(direct.str(), "0MMM");
}

TEST(Word, ResolutionsEnumerateAllSubstitutions) {
  const Word w = *Word::parse("0M1M");
  const std::vector<Word> rs = w.resolutions();
  ASSERT_EQ(rs.size(), 4u);
  // All resolutions are stable, distinct, and match the wildcard pattern.
  for (const Word& r : rs) {
    EXPECT_TRUE(r.is_stable());
    EXPECT_TRUE(w.matches_resolution(r));
  }
  EXPECT_EQ(std::count(rs.begin(), rs.end(), *Word::parse("0010")), 1);
  EXPECT_EQ(std::count(rs.begin(), rs.end(), *Word::parse("0111")), 1);
}

TEST(Word, ResolutionOfStableWordIsItself) {
  const Word w = *Word::parse("0110");
  const std::vector<Word> rs = w.resolutions();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0], w);
}

// Obs. 2.6: *res(x) = x.
TEST(Word, StarOfResolutionsIsIdentity) {
  for (const char* s : {"0", "M", "01M", "MM", "1M0M1", "0110"}) {
    const Word w = *Word::parse(s);
    EXPECT_EQ(Word::star(w.resolutions()), w) << s;
  }
}

// Obs. 2.6: S subseteq res(*S).
TEST(Word, SetContainedInResolutionOfStar) {
  const std::vector<Word> set = {*Word::parse("0011"), *Word::parse("1001")};
  const Word star = Word::star(set);
  for (const Word& s : set) {
    EXPECT_TRUE(star.matches_resolution(s));
  }
}

TEST(Word, MatchesResolutionRejectsWrongWidthAndValues) {
  const Word w = *Word::parse("0M");
  EXPECT_TRUE(w.matches_resolution(*Word::parse("00")));
  EXPECT_TRUE(w.matches_resolution(*Word::parse("01")));
  EXPECT_FALSE(w.matches_resolution(*Word::parse("10")));
  EXPECT_FALSE(w.matches_resolution(*Word::parse("000")));
}

}  // namespace
}  // namespace mcsn
