// Metastable closure machinery (Def. 2.7): golden checks against hand
// computations and the paper's non-associativity counterexample for +M mod 4.

#include "mcsn/core/closure.hpp"

#include <gtest/gtest.h>

namespace mcsn {
namespace {

Word bitwise_and(const Word& a, const Word& b) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = trit_and(a[i], b[i]);
  return out;
}

TEST(Closure, StableInputsPassThrough) {
  const Word x = *Word::parse("0110");
  const Word y = *Word::parse("0101");
  EXPECT_EQ(closure_binary(&bitwise_and, x, y).str(), "0100");
}

TEST(Closure, UnaryClosureOfIdentityIsIdentity) {
  const Word x = *Word::parse("0M1M");
  EXPECT_EQ(closure_unary([](const Word& w) { return w; }, x), x);
}

TEST(Closure, UnaryClosureCollapsesConstantFunction) {
  const Word x = *Word::parse("MMM");
  const Word k = *Word::parse("010");
  EXPECT_EQ(closure_unary([&k](const Word&) { return k; }, x), k);
}

// Closure of bitwise AND equals the Kleene AND (gates compute their own
// closure — the basis of the paper's computational model).
TEST(Closure, BitwiseAndClosureEqualsKleene) {
  for (const Trit a : kAllTrits) {
    for (const Trit b : kAllTrits) {
      const Word x{a};
      const Word y{b};
      EXPECT_EQ(closure_binary(&bitwise_and, x, y)[0], trit_and(a, b));
    }
  }
}

// 2-bit modular addition: word <-> value helpers (index 0 = MSB).
Word add_mod4(const Word& a, const Word& b) {
  return Word::from_uint((a.to_uint() + b.to_uint()) & 3u, 2);
}

// The paper's counterexample (Sec. 4.1): the closure of an associative
// operator need not be associative:
//   (0M +M 01) +M 01 = MM  but  0M +M (01 +M 01) = 1M.
TEST(Closure, PaperCounterexampleAddMod4NotAssociative) {
  const Word zm = *Word::parse("0M");
  const Word o1 = *Word::parse("01");

  const Word left = closure_binary(&add_mod4, closure_binary(&add_mod4, zm, o1), o1);
  const Word right = closure_binary(&add_mod4, zm, closure_binary(&add_mod4, o1, o1));
  EXPECT_EQ(left.str(), "MM");
  EXPECT_EQ(right.str(), "1M");
  EXPECT_NE(left, right);
}

TEST(Closure, PairClosureSuperposesComponentsIndependently) {
  // f(a,b) = (min,max) on 1-bit values.
  const auto f = [](const Word& a, const Word& b) -> std::pair<Word, Word> {
    const bool x = to_bool(a[0]);
    const bool y = to_bool(b[0]);
    return {Word{to_trit(x && y)}, Word{to_trit(x || y)}};
  };
  const auto [mn, mx] =
      closure_binary_pair(f, *Word::parse("M"), *Word::parse("1"));
  EXPECT_EQ(mn.str(), "M");
  EXPECT_EQ(mx.str(), "1");
}

}  // namespace
}  // namespace mcsn
