// The TCP front-end: loopback round-trip parity against the direct flat
// batch engine, concurrent pipelined clients with interleaved responses,
// byte-split and coalesced frame delivery, malformed-frame teardown (error
// frame then close), graceful drain on stop, the poll(2) fallback loop and
// idle-timeout reaping.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/core/gray.hpp"
#include "mcsn/serve/net/client.hpp"
#include "mcsn/serve/net/socket_server.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

using namespace std::chrono_literals;

std::vector<Trit> random_flat(Xoshiro256& rng, SortShape shape) {
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const Word& w : random_valid_round(rng, shape.channels, shape.bits)) {
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return flat;
}

/// Sorted flat payloads for `rounds`, computed by the direct engine path
/// the serve/net stack must agree with bit-for-bit.
std::vector<std::vector<Trit>> expected_sorted(
    SortShape shape, const std::vector<std::vector<Trit>>& rounds) {
  const McSorter sorter(shape.channels, shape.bits);
  std::vector<Trit> in;
  in.reserve(rounds.size() * shape.trits());
  for (const std::vector<Trit>& r : rounds) {
    in.insert(in.end(), r.begin(), r.end());
  }
  std::vector<Trit> out(in.size());
  EXPECT_TRUE(sorter.sort_batch_flat(in, out).ok());
  std::vector<std::vector<Trit>> result;
  result.reserve(rounds.size());
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const auto begin = out.begin() + static_cast<std::ptrdiff_t>(
                                         i * shape.trits());
    result.emplace_back(begin,
                        begin + static_cast<std::ptrdiff_t>(shape.trits()));
  }
  return result;
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// A service + started server on an ephemeral loopback port.
struct Loopback {
  explicit Loopback(net::SocketOptions sopt = {}, ServeOptions vopt = {}) {
    service.emplace(vopt);
    sopt.port = 0;
    server.emplace(*service, sopt);
    const Status s = server->start();
    EXPECT_TRUE(s.ok()) << s.to_string();
  }

  net::SortClient client() {
    StatusOr<net::SortClient> c =
        net::SortClient::connect("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(*c);
  }

  std::optional<SortService> service;
  std::optional<net::SocketServer> server;
};

ServeOptions fast_flush() {
  ServeOptions opt;
  opt.flush_window = std::chrono::microseconds(100);
  return opt;
}

// --- correctness ------------------------------------------------------------

TEST(SocketServer, RoundTripParityVsFlatBatch) {
  const SortShape shape{6, 6};
  Xoshiro256 rng(7);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 64; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortRequest> request = SortRequest::view(shape, rounds[i]);
    ASSERT_TRUE(request.ok());
    StatusOr<SortResponse> response = client.sort(*request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok()) << response->status.to_string();
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
  const net::SocketServer::Stats stats = loop.server->stats();
  EXPECT_EQ(stats.requests, rounds.size());
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(SocketServer, ValueRequestsDecodeAsIntegers) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::vector<std::uint64_t> values{13, 2, 250, 9};
  StatusOr<SortRequest> request =
      SortRequest::from_values(SortShape{4, 8}, values);
  ASSERT_TRUE(request.ok());
  StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok());
  const StatusOr<std::vector<std::uint64_t>> sorted = response->values();
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(*sorted, (std::vector<std::uint64_t>{2, 9, 13, 250}));
}

TEST(SocketServer, MetastableTritSurvivesTheWire) {
  // The paper's whole point: a marginal measurement must cross the network
  // uncertain and come back still exactly one uncertain bit.
  const SortShape shape{2, 8};
  std::vector<Trit> flat;
  const Word g = gray_encode(100, shape.bits);
  Word h = gray_encode(100, shape.bits);
  h[gray_flip_index(100, shape.bits)] = Trit::meta;
  flat.insert(flat.end(), h.begin(), h.end());
  flat.insert(flat.end(), g.begin(), g.end());
  const std::vector<std::vector<Trit>> expect =
      expected_sorted(shape, {flat});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, flat);
  ASSERT_TRUE(request.ok());
  StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, expect[0]);
  EXPECT_EQ(std::count(response->payload.begin(), response->payload.end(),
                       Trit::meta),
            1);
}

TEST(SocketServer, ConcurrentPipelinedClientsInterleave) {
  const SortShape shape{4, 5};
  constexpr int kClients = 6;
  constexpr int kPerClient = 48;
  Loopback loop({}, fast_flush());

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      std::vector<std::vector<Trit>> rounds;
      for (int i = 0; i < kPerClient; ++i) {
        rounds.push_back(random_flat(rng, shape));
      }
      const std::vector<std::vector<Trit>> expect =
          expected_sorted(shape, rounds);
      net::SortClient client = loop.client();
      // Pipeline: all sends first, then the matching receives — responses
      // must come back in send order even while five other clients
      // interleave through the same service.
      for (const std::vector<Trit>& r : rounds) {
        StatusOr<SortRequest> request = SortRequest::view(shape, r);
        if (!request.ok() || !client.send(*request).ok()) {
          failures[static_cast<std::size_t>(c)] = "send failed";
          return;
        }
      }
      for (int i = 0; i < kPerClient; ++i) {
        StatusOr<SortResponse> response = client.receive();
        if (!response.ok() || !response->status.ok()) {
          failures[static_cast<std::size_t>(c)] = "receive failed";
          return;
        }
        if (response->payload != expect[static_cast<std::size_t>(i)]) {
          failures[static_cast<std::size_t>(c)] =
              "order/parity mismatch at " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_EQ(loop.server->stats().requests,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST(SocketServer, InflightCapPausesAndResumes) {
  net::SocketOptions sopt;
  sopt.max_inflight = 4;  // far below the burst: pause/resume must engage
  Loopback loop(sopt, fast_flush());

  const SortShape shape{4, 4};
  Xoshiro256 rng(11);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 96; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
}

TEST(SocketServer, HalfCloseAfterBurstStillAnswersEverything) {
  // shutdown(SHUT_WR) right after pipelining far past the pending cap:
  // the EOF lands while most frames are still buffered unparsed, so the
  // server must keep re-parsing from the buffer (no more reads will ever
  // come) and only close once every buffered request was answered.
  const SortShape shape{4, 4};
  constexpr int kRounds = 64;
  Xoshiro256 rng(19);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < kRounds; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.max_inflight = 4;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  ASSERT_EQ(::shutdown(client.native_handle(), SHUT_WR), 0);
  for (int i = 0; i < kRounds; ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[static_cast<std::size_t>(i)]);
  }
  StatusOr<SortResponse> eof = client.receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);  // clean close
  EXPECT_EQ(loop.server->stats().protocol_errors, 0u);
}

TEST(SocketServer, LateReaderDrainsBackpressuredWrites) {
  // A client that pipelines a large burst and only starts reading later:
  // the tiny pinned SO_SNDBUF guarantees the server's writes hit EAGAIN,
  // so EPOLLOUT arming, flush-on-writable, disarm-after-drain and the
  // re-parse of frames buffered during the write stall all run — and
  // every response must still arrive, in order, bit-exact.
  const SortShape shape{4, 16};
  constexpr int kRounds = 2048;
  Xoshiro256 rng(29);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < kRounds; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.max_inflight = 8;
  sopt.sndbuf = 4096;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  std::thread writer([&] {
    for (const std::vector<Trit>& r : rounds) {
      StatusOr<SortRequest> request = SortRequest::view(shape, r);
      if (!request.ok() || !client.send(*request).ok()) return;
    }
  });
  std::this_thread::sleep_for(150ms);  // let the write side back up
  for (int i = 0; i < kRounds; ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[static_cast<std::size_t>(i)])
        << "round " << i;
  }
  writer.join();
}

TEST(SocketServer, NeverReadingClientIsReaped) {
  // A client that pipelines requests and never reads responses must not
  // pin server memory: the pending cap stops the server reading it, and
  // the idle sweep reclaims the connection — owed responses included —
  // once the socket makes no progress for idle_timeout. The client's
  // SO_RCVBUF is pinned tiny *before* connecting (a raw socket, since
  // autotuned buffers on loopback would quietly absorb everything and the
  // stall this test is about would never happen).
  const SortShape shape{4, 16};
  Xoshiro256 rng(31);
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 1024; ++i) {
    StatusOr<SortRequest> request =
        SortRequest::own(shape, random_flat(rng, shape));
    ASSERT_TRUE(request.ok());
    const std::vector<std::uint8_t> frame = wire::encode_request(*request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }

  net::SocketOptions sopt;
  sopt.max_inflight = 8;
  sopt.sndbuf = 4096;
  sopt.idle_timeout = std::chrono::milliseconds(200);
  Loopback loop(sopt, fast_flush());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loop.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::thread writer([&] {
    std::size_t off = 0;
    while (off < burst.size()) {
      const ssize_t n = ::send(fd, burst.data() + off, burst.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // reap resets the connection under us: done
      off += static_cast<std::size_t>(n);
    }
  });
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().idle_closed >= 1; }, 10000ms));
  EXPECT_TRUE(eventually([&] { return loop.server->connections() == 0; }));
  writer.join();
  ::close(fd);
}

// --- framing robustness -----------------------------------------------------

TEST(SocketServer, SplitFrameReadsReassemble) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(3);
  const std::vector<Trit> round = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, {round});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, round);
  ASSERT_TRUE(request.ok());
  const std::vector<std::uint8_t> frame = wire::encode_request(*request);
  // One byte at a time, with pauses inside the header and inside the body:
  // the per-connection buffer must reassemble across arbitrarily many
  // event-loop wakeups.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(::send(client.native_handle(), frame.data() + i, 1, 0), 1);
    if (i % 5 == 0) std::this_thread::sleep_for(1ms);
  }
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, expect[0]);
}

TEST(SocketServer, CoalescedFramesAllAnswered) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(5);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 8; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  std::vector<std::uint8_t> burst;  // 8 frames in one send(2)
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    const std::vector<std::uint8_t> frame = wire::encode_request(*request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_EQ(::send(client.native_handle(), burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
}

TEST(SocketServer, BadMagicGetsErrorFrameThenClose) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::uint8_t garbage[16] = {'X', 'X', 1, 1, 4, 0, 0, 0,
                                    0,   0,   0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(client.native_handle(), garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status.code(), StatusCode::kDataLoss);
  // Defensive teardown: after the error frame, the server closes.
  StatusOr<SortResponse> eof = client.receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(loop.server->stats().protocol_errors, 1u);
}

TEST(SocketServer, UndecodableRequestBodyGetsStatusThenClose) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  // Intact framing, nonsense body: shape 0x0 with an empty payload.
  std::vector<std::uint8_t> frame = {'M', 'C', 1, 1, 20, 0, 0, 0};
  frame.resize(8 + 20, 0);
  ASSERT_EQ(::send(client.native_handle(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, ErrorFrameWaitsBehindOwedResponses) {
  // Good request then garbage in one burst: the good round's response must
  // arrive first, the error frame second — ordering is what lets a client
  // attribute the failure to the right request.
  const SortShape shape{4, 4};
  Xoshiro256 rng(13);
  const std::vector<Trit> round = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, {round});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, round);
  ASSERT_TRUE(request.ok());
  std::vector<std::uint8_t> burst = wire::encode_request(*request);
  const char* garbage = "not a frame";
  burst.insert(burst.end(), garbage, garbage + std::strlen(garbage));
  ASSERT_EQ(::send(client.native_handle(), burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  StatusOr<SortResponse> first = client.receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->status.ok());
  EXPECT_EQ(first->payload, expect[0]);
  StatusOr<SortResponse> second = client.receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status.code(), StatusCode::kDataLoss);
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, ResponseFrameToServerIsAProtocolError) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::vector<std::uint8_t> frame = wire::encode_response(
      SortResponse::failure(Status::internal("nope"), SortShape{1, 1}));
  ASSERT_EQ(::send(client.native_handle(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kUnimplemented);
}

TEST(SocketServer, CloseMidFrameCountsAsProtocolError) {
  Loopback loop({}, fast_flush());
  {
    net::SortClient client = loop.client();
    const std::uint8_t partial[4] = {'M', 'C', 1, 1};  // header cut short
    ASSERT_EQ(::send(client.native_handle(), partial, sizeof partial, 0), 4);
    ASSERT_TRUE(eventually(
        [&] { return loop.server->stats().accepted == 1; }));
  }  // close with the frame unfinished
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().protocol_errors == 1; }));
}

// --- lifecycle --------------------------------------------------------------

TEST(SocketServer, StopDrainsPendingResponses) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(17);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 16; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  // A wide flush window keeps the batch pending in the service when stop()
  // lands, so the drain actually has something to wait for.
  ServeOptions vopt;
  vopt.flush_window = std::chrono::milliseconds(20);
  Loopback loop({}, vopt);
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  ASSERT_TRUE(eventually(
      [&] { return loop.server->stats().requests == rounds.size(); }));
  loop.server->stop();
  // Every admitted request's response was flushed before the close.
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, PollFallbackRoundTrips) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(23);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 32; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.force_poll = true;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
}

TEST(SocketServer, IdleConnectionsAreReaped) {
  net::SocketOptions sopt;
  sopt.idle_timeout = std::chrono::milliseconds(50);
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortResponse> response = client.receive();  // blocks until reap
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().idle_closed == 1; }));
}

TEST(SocketServer, StartValidatesOptionsAndRejectsReuse) {
  ServeOptions vopt;
  SortService service(vopt);
  net::SocketOptions bad;
  bad.max_connections = 0;
  bad.backlog = 0;
  net::SocketServer broken(service, bad);
  const Status invalid = broken.start();
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(invalid.message().find("max_connections"), std::string::npos);
  EXPECT_NE(invalid.message().find("backlog"), std::string::npos);

  net::SocketServer server(service, {});
  ASSERT_TRUE(server.start().ok());
  const Status twice = server.start();
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.code(), StatusCode::kInvalidArgument);
}

TEST(SocketServer, StopIsIdempotentAndClosesClients) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  ASSERT_TRUE(eventually([&] { return loop.server->connections() == 1; }));
  loop.server->stop();
  loop.server->stop();
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(loop.server->connections(), 0u);
}

}  // namespace
}  // namespace mcsn
