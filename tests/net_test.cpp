// The TCP front-end: loopback round-trip parity against the direct flat
// batch engine, concurrent pipelined clients with interleaved responses,
// byte-split and coalesced frame delivery, malformed-frame teardown (error
// frame then close), graceful drain on stop, the poll(2) fallback loop and
// idle-timeout reaping.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/core/gray.hpp"
#include "mcsn/serve/net/client.hpp"
#include "mcsn/serve/net/socket_server.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

using namespace std::chrono_literals;

std::vector<Trit> random_flat(Xoshiro256& rng, SortShape shape) {
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const Word& w : random_valid_round(rng, shape.channels, shape.bits)) {
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return flat;
}

/// Sorted flat payloads for `rounds`, computed by the direct engine path
/// the serve/net stack must agree with bit-for-bit.
std::vector<std::vector<Trit>> expected_sorted(
    SortShape shape, const std::vector<std::vector<Trit>>& rounds) {
  const McSorter sorter(shape.channels, shape.bits);
  std::vector<Trit> in;
  in.reserve(rounds.size() * shape.trits());
  for (const std::vector<Trit>& r : rounds) {
    in.insert(in.end(), r.begin(), r.end());
  }
  std::vector<Trit> out(in.size());
  EXPECT_TRUE(sorter.sort_batch_flat(in, out).ok());
  std::vector<std::vector<Trit>> result;
  result.reserve(rounds.size());
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const auto begin = out.begin() + static_cast<std::ptrdiff_t>(
                                         i * shape.trits());
    result.emplace_back(begin,
                        begin + static_cast<std::ptrdiff_t>(shape.trits()));
  }
  return result;
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// A service + started server on an ephemeral loopback port.
struct Loopback {
  explicit Loopback(net::SocketOptions sopt = {}, ServeOptions vopt = {}) {
    service.emplace(vopt);
    sopt.port = 0;
    server.emplace(*service, sopt);
    const Status s = server->start();
    EXPECT_TRUE(s.ok()) << s.to_string();
  }

  net::SortClient client() {
    StatusOr<net::SortClient> c =
        net::SortClient::connect("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(*c);
  }

  std::optional<SortService> service;
  std::optional<net::SocketServer> server;
};

ServeOptions fast_flush() {
  ServeOptions opt;
  opt.flush_window = std::chrono::microseconds(100);
  return opt;
}

// --- correctness ------------------------------------------------------------

TEST(SocketServer, RoundTripParityVsFlatBatch) {
  const SortShape shape{6, 6};
  Xoshiro256 rng(7);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 64; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortRequest> request = SortRequest::view(shape, rounds[i]);
    ASSERT_TRUE(request.ok());
    StatusOr<SortResponse> response = client.sort(*request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok()) << response->status.to_string();
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
  const net::SocketServer::Stats stats = loop.server->stats();
  EXPECT_EQ(stats.requests, rounds.size());
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(SocketServer, NonCatalogShapeRoundTripsWithParity) {
  // 24 channels is beyond the paper's optimal catalog: the pool builds it
  // through the recursive composer (nets/compose/) on first request, and
  // the wire result must still match the direct flat engine bit-for-bit.
  const SortShape shape{24, 3};
  Xoshiro256 rng(24);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 16; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortRequest> request = SortRequest::view(shape, rounds[i]);
    ASSERT_TRUE(request.ok());
    StatusOr<SortResponse> response = client.sort(*request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok()) << response->status.to_string();
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
  EXPECT_EQ(loop.server->stats().protocol_errors, 0u);
}

TEST(SocketServer, UnsupportedShapeGetsUnimplementedFrameNotAClose) {
  // A shape beyond the configured construction bound is a well-formed
  // request the server cannot serve: it must come back as a
  // kUnimplemented *error frame* on a connection that stays usable — not
  // a protocol error, not a teardown.
  ServeOptions vopt = fast_flush();
  vopt.sorter.max_channels = 8;
  Loopback loop({}, vopt);
  net::SortClient client = loop.client();

  const SortShape big{9, 4};
  const std::vector<Trit> big_round(big.trits(), Trit::zero);
  StatusOr<SortRequest> over = SortRequest::view(big, big_round);
  ASSERT_TRUE(over.ok());
  StatusOr<SortResponse> rejected = client.sort(*over);
  ASSERT_TRUE(rejected.ok()) << rejected.status().to_string();
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnimplemented);

  // The same connection still serves shapes inside the bound.
  const SortShape ok_shape{8, 4};
  Xoshiro256 rng(88);
  const std::vector<Trit> round = random_flat(rng, ok_shape);
  const std::vector<std::vector<Trit>> expect =
      expected_sorted(ok_shape, {round});
  StatusOr<SortRequest> request = SortRequest::view(ok_shape, round);
  ASSERT_TRUE(request.ok());
  StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok()) << response->status.to_string();
  EXPECT_EQ(response->payload, expect[0]);
  EXPECT_EQ(loop.server->stats().protocol_errors, 0u);
}

TEST(SocketServer, ValueRequestsDecodeAsIntegers) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::vector<std::uint64_t> values{13, 2, 250, 9};
  StatusOr<SortRequest> request =
      SortRequest::from_values(SortShape{4, 8}, values);
  ASSERT_TRUE(request.ok());
  StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok());
  const StatusOr<std::vector<std::uint64_t>> sorted = response->values();
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(*sorted, (std::vector<std::uint64_t>{2, 9, 13, 250}));
}

TEST(SocketServer, MetastableTritSurvivesTheWire) {
  // The paper's whole point: a marginal measurement must cross the network
  // uncertain and come back still exactly one uncertain bit.
  const SortShape shape{2, 8};
  std::vector<Trit> flat;
  const Word g = gray_encode(100, shape.bits);
  Word h = gray_encode(100, shape.bits);
  h[gray_flip_index(100, shape.bits)] = Trit::meta;
  flat.insert(flat.end(), h.begin(), h.end());
  flat.insert(flat.end(), g.begin(), g.end());
  const std::vector<std::vector<Trit>> expect =
      expected_sorted(shape, {flat});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, flat);
  ASSERT_TRUE(request.ok());
  StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, expect[0]);
  EXPECT_EQ(std::count(response->payload.begin(), response->payload.end(),
                       Trit::meta),
            1);
}

TEST(SocketServer, ConcurrentPipelinedClientsInterleave) {
  const SortShape shape{4, 5};
  constexpr int kClients = 6;
  constexpr int kPerClient = 48;
  Loopback loop({}, fast_flush());

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      std::vector<std::vector<Trit>> rounds;
      for (int i = 0; i < kPerClient; ++i) {
        rounds.push_back(random_flat(rng, shape));
      }
      const std::vector<std::vector<Trit>> expect =
          expected_sorted(shape, rounds);
      net::SortClient client = loop.client();
      // Pipeline: all sends first, then the matching receives — responses
      // must come back in send order even while five other clients
      // interleave through the same service.
      for (const std::vector<Trit>& r : rounds) {
        StatusOr<SortRequest> request = SortRequest::view(shape, r);
        if (!request.ok() || !client.send(*request).ok()) {
          failures[static_cast<std::size_t>(c)] = "send failed";
          return;
        }
      }
      for (int i = 0; i < kPerClient; ++i) {
        StatusOr<SortResponse> response = client.receive();
        if (!response.ok() || !response->status.ok()) {
          failures[static_cast<std::size_t>(c)] = "receive failed";
          return;
        }
        if (response->payload != expect[static_cast<std::size_t>(i)]) {
          failures[static_cast<std::size_t>(c)] =
              "order/parity mismatch at " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_EQ(loop.server->stats().requests,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST(SocketServer, InflightCapPausesAndResumes) {
  net::SocketOptions sopt;
  sopt.max_inflight = 4;  // far below the burst: pause/resume must engage
  Loopback loop(sopt, fast_flush());

  const SortShape shape{4, 4};
  Xoshiro256 rng(11);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 96; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
}

TEST(SocketServer, HalfCloseAfterBurstStillAnswersEverything) {
  // shutdown(SHUT_WR) right after pipelining far past the pending cap:
  // the EOF lands while most frames are still buffered unparsed, so the
  // server must keep re-parsing from the buffer (no more reads will ever
  // come) and only close once every buffered request was answered.
  const SortShape shape{4, 4};
  constexpr int kRounds = 64;
  Xoshiro256 rng(19);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < kRounds; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.max_inflight = 4;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  ASSERT_EQ(::shutdown(client.native_handle(), SHUT_WR), 0);
  for (int i = 0; i < kRounds; ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[static_cast<std::size_t>(i)]);
  }
  StatusOr<SortResponse> eof = client.receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);  // clean close
  EXPECT_EQ(loop.server->stats().protocol_errors, 0u);
}

TEST(SocketServer, LateReaderDrainsBackpressuredWrites) {
  // A client that pipelines a large burst and only starts reading later:
  // the tiny pinned SO_SNDBUF guarantees the server's writes hit EAGAIN,
  // so EPOLLOUT arming, flush-on-writable, disarm-after-drain and the
  // re-parse of frames buffered during the write stall all run — and
  // every response must still arrive, in order, bit-exact.
  const SortShape shape{4, 16};
  constexpr int kRounds = 2048;
  Xoshiro256 rng(29);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < kRounds; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.max_inflight = 8;
  sopt.sndbuf = 4096;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  std::thread writer([&] {
    for (const std::vector<Trit>& r : rounds) {
      StatusOr<SortRequest> request = SortRequest::view(shape, r);
      if (!request.ok() || !client.send(*request).ok()) return;
    }
  });
  std::this_thread::sleep_for(150ms);  // let the write side back up
  for (int i = 0; i < kRounds; ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[static_cast<std::size_t>(i)])
        << "round " << i;
  }
  writer.join();
}

TEST(SocketServer, NeverReadingClientIsReaped) {
  // A client that pipelines requests and never reads responses must not
  // pin server memory: the pending cap stops the server reading it, and
  // the idle sweep reclaims the connection — owed responses included —
  // once the socket makes no progress for idle_timeout. The client's
  // SO_RCVBUF is pinned tiny *before* connecting (a raw socket, since
  // autotuned buffers on loopback would quietly absorb everything and the
  // stall this test is about would never happen).
  const SortShape shape{4, 16};
  Xoshiro256 rng(31);
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 1024; ++i) {
    StatusOr<SortRequest> request =
        SortRequest::own(shape, random_flat(rng, shape));
    ASSERT_TRUE(request.ok());
    const std::vector<std::uint8_t> frame = wire::encode_request(*request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }

  net::SocketOptions sopt;
  sopt.max_inflight = 8;
  sopt.sndbuf = 4096;
  sopt.idle_timeout = std::chrono::milliseconds(200);
  Loopback loop(sopt, fast_flush());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loop.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::thread writer([&] {
    std::size_t off = 0;
    while (off < burst.size()) {
      const ssize_t n = ::send(fd, burst.data() + off, burst.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // reap resets the connection under us: done
      off += static_cast<std::size_t>(n);
    }
  });
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().idle_closed >= 1; }, 10000ms));
  EXPECT_TRUE(eventually([&] { return loop.server->connections() == 0; }));
  writer.join();
  ::close(fd);
}

// --- framing robustness -----------------------------------------------------

TEST(SocketServer, SplitFrameReadsReassemble) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(3);
  const std::vector<Trit> round = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, {round});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, round);
  ASSERT_TRUE(request.ok());
  const std::vector<std::uint8_t> frame = wire::encode_request(*request);
  // One byte at a time, with pauses inside the header and inside the body:
  // the per-connection buffer must reassemble across arbitrarily many
  // event-loop wakeups.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(::send(client.native_handle(), frame.data() + i, 1, 0), 1);
    if (i % 5 == 0) std::this_thread::sleep_for(1ms);
  }
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, expect[0]);
}

TEST(SocketServer, CoalescedFramesAllAnswered) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(5);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 8; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  std::vector<std::uint8_t> burst;  // 8 frames in one send(2)
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    const std::vector<std::uint8_t> frame = wire::encode_request(*request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_EQ(::send(client.native_handle(), burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
}

TEST(SocketServer, BadMagicGetsErrorFrameThenClose) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::uint8_t garbage[16] = {'X', 'X', 1, 1, 4, 0, 0, 0,
                                    0,   0,   0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(client.native_handle(), garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status.code(), StatusCode::kDataLoss);
  // Defensive teardown: after the error frame, the server closes.
  StatusOr<SortResponse> eof = client.receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(loop.server->stats().protocol_errors, 1u);
}

TEST(SocketServer, UndecodableRequestBodyGetsStatusThenClose) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  // Intact framing, nonsense body: shape 0x0 with an empty payload.
  std::vector<std::uint8_t> frame = {'M', 'C', 1, 1, 20, 0, 0, 0};
  frame.resize(8 + 20, 0);
  ASSERT_EQ(::send(client.native_handle(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, ErrorFrameWaitsBehindOwedResponses) {
  // Good request then garbage in one burst: the good round's response must
  // arrive first, the error frame second — ordering is what lets a client
  // attribute the failure to the right request.
  const SortShape shape{4, 4};
  Xoshiro256 rng(13);
  const std::vector<Trit> round = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, {round});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view(shape, round);
  ASSERT_TRUE(request.ok());
  std::vector<std::uint8_t> burst = wire::encode_request(*request);
  const char* garbage = "not a frame";
  burst.insert(burst.end(), garbage, garbage + std::strlen(garbage));
  ASSERT_EQ(::send(client.native_handle(), burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  StatusOr<SortResponse> first = client.receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->status.ok());
  EXPECT_EQ(first->payload, expect[0]);
  StatusOr<SortResponse> second = client.receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status.code(), StatusCode::kDataLoss);
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, ResponseFrameToServerIsAProtocolError) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  const std::vector<std::uint8_t> frame = wire::encode_response(
      SortResponse::failure(Status::internal("nope"), SortShape{1, 1}));
  ASSERT_EQ(::send(client.native_handle(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  StatusOr<SortResponse> response = client.receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kUnimplemented);
}

TEST(SocketServer, CloseMidFrameCountsAsProtocolError) {
  Loopback loop({}, fast_flush());
  {
    net::SortClient client = loop.client();
    const std::uint8_t partial[4] = {'M', 'C', 1, 1};  // header cut short
    ASSERT_EQ(::send(client.native_handle(), partial, sizeof partial, 0), 4);
    ASSERT_TRUE(eventually(
        [&] { return loop.server->stats().accepted == 1; }));
  }  // close with the frame unfinished
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().protocol_errors == 1; }));
}

// --- lifecycle --------------------------------------------------------------

TEST(SocketServer, StopDrainsPendingResponses) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(17);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 16; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  // A wide flush window keeps the batch pending in the service when stop()
  // lands, so the drain actually has something to wait for.
  ServeOptions vopt;
  vopt.flush_window = std::chrono::milliseconds(20);
  Loopback loop({}, vopt);
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  ASSERT_TRUE(eventually(
      [&] { return loop.server->stats().requests == rounds.size(); }));
  loop.server->stop();
  // Every admitted request's response was flushed before the close.
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
}

TEST(SocketServer, PollFallbackRoundTrips) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(23);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 32; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.force_poll = true;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]);
  }
}

TEST(SocketServer, IdleConnectionsAreReaped) {
  net::SocketOptions sopt;
  sopt.idle_timeout = std::chrono::milliseconds(50);
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortResponse> response = client.receive();  // blocks until reap
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(eventually(
      [&] { return loop.server->stats().idle_closed == 1; }));
}

TEST(SocketServer, StartValidatesOptionsAndRejectsReuse) {
  ServeOptions vopt;
  SortService service(vopt);
  net::SocketOptions bad;
  bad.max_connections = 0;
  bad.backlog = 0;
  net::SocketServer broken(service, bad);
  const Status invalid = broken.start();
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(invalid.message().find("max_connections"), std::string::npos);
  EXPECT_NE(invalid.message().find("backlog"), std::string::npos);

  net::SocketServer server(service, {});
  ASSERT_TRUE(server.start().ok());
  const Status twice = server.start();
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.code(), StatusCode::kInvalidArgument);
}

TEST(SocketServer, StopIsIdempotentAndClosesClients) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  ASSERT_TRUE(eventually([&] { return loop.server->connections() == 1; }));
  loop.server->stop();
  loop.server->stop();
  StatusOr<SortResponse> eof = client.receive();
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(loop.server->connections(), 0u);
}

// --- multi-loop -------------------------------------------------------------

TEST(SocketServer, MultiLoopPipelinedClientsSpreadAndAgree) {
  // Three event loops behind the shared acceptor (force_acceptor gives
  // deterministic round-robin placement; kernel REUSEPORT balancing is
  // hash-based and can't be asserted on). Six pipelined clients land two
  // per loop, and every response must still arrive in per-connection send
  // order, bit-identical to the direct engine path.
  const SortShape shape{4, 5};
  constexpr int kClients = 6;
  constexpr int kPerClient = 48;
  net::SocketOptions sopt;
  sopt.loops = 3;
  sopt.force_acceptor = true;
  Loopback loop(sopt, fast_flush());
  ASSERT_EQ(loop.server->loop_count(), 3u);

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(500 + static_cast<std::uint64_t>(c));
      std::vector<std::vector<Trit>> rounds;
      for (int i = 0; i < kPerClient; ++i) {
        rounds.push_back(random_flat(rng, shape));
      }
      const std::vector<std::vector<Trit>> expect =
          expected_sorted(shape, rounds);
      net::SortClient client = loop.client();
      for (const std::vector<Trit>& r : rounds) {
        StatusOr<SortRequest> request = SortRequest::view(shape, r);
        if (!request.ok() || !client.send(*request).ok()) {
          failures[static_cast<std::size_t>(c)] = "send failed";
          return;
        }
      }
      for (int i = 0; i < kPerClient; ++i) {
        StatusOr<SortResponse> response = client.receive();
        if (!response.ok() || !response->status.ok()) {
          failures[static_cast<std::size_t>(c)] = "receive failed";
          return;
        }
        if (response->payload != expect[static_cast<std::size_t>(i)]) {
          failures[static_cast<std::size_t>(c)] =
              "order/parity mismatch at " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");

  // Aggregated counters cover every loop's traffic, and the round-robin
  // dispatch actually used every loop.
  const net::SocketServer::Stats total = loop.server->stats();
  EXPECT_EQ(total.requests, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(total.accepted, static_cast<std::uint64_t>(kClients));
  std::uint64_t summed = 0;
  for (std::size_t l = 0; l < loop.server->loop_count(); ++l) {
    const net::SocketServer::Stats per = loop.server->loop_stats(l);
    EXPECT_GT(per.requests, 0u) << "loop " << l << " served nothing";
    summed += per.requests;
  }
  EXPECT_EQ(summed, total.requests);
}

TEST(SocketServer, MultiLoopListenersShareOneEphemeralPort) {
  // loops > 1 without force_acceptor: on Linux this replicates the TCP
  // listener per loop with SO_REUSEPORT — every sibling must end up on
  // the same kernel-chosen ephemeral port, and clients connecting to that
  // one port round-trip regardless of which loop's listener wins the
  // accept. (Elsewhere this degrades to the shared acceptor; the client
  // contract is identical.)
  const SortShape shape{4, 4};
  net::SocketOptions sopt;
  sopt.loops = 2;
  Loopback loop(sopt, fast_flush());
  ASSERT_EQ(loop.server->loop_count(), 2u);
  ASSERT_NE(loop.server->port(), 0);

  Xoshiro256 rng(41);
  for (int c = 0; c < 8; ++c) {
    const std::vector<Trit> round = random_flat(rng, shape);
    const std::vector<std::vector<Trit>> expect =
        expected_sorted(shape, {round});
    net::SortClient client = loop.client();
    StatusOr<SortRequest> request = SortRequest::view(shape, round);
    ASSERT_TRUE(request.ok());
    StatusOr<SortResponse> response = client.sort(*request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[0]);
  }
  EXPECT_EQ(loop.server->stats().accepted, 8u);
}

TEST(SocketServer, MultiLoopGracefulStopDrainsEveryLoop) {
  // Owed responses pending on BOTH loops when stop() lands (wide flush
  // window keeps the batches unflushed): the drain must flush every
  // connection on every loop, not just loop 0's.
  const SortShape shape{4, 4};
  Xoshiro256 rng(47);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 16; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.loops = 2;
  sopt.force_acceptor = true;  // deterministic: client 1 -> loop 0, 2 -> 1
  ServeOptions vopt;
  vopt.flush_window = std::chrono::milliseconds(20);
  Loopback loop(sopt, vopt);
  net::SortClient a = loop.client();
  net::SortClient b = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(a.send(*request).ok());
    ASSERT_TRUE(b.send(*request).ok());
  }
  ASSERT_TRUE(eventually(
      [&] { return loop.server->stats().requests == 2 * rounds.size(); }));
  loop.server->stop();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> ra = a.receive();
    StatusOr<SortResponse> rb = b.receive();
    ASSERT_TRUE(ra.ok() && rb.ok()) << "round " << i;
    ASSERT_TRUE(ra->status.ok() && rb->status.ok());
    EXPECT_EQ(ra->payload, expect[i]);
    EXPECT_EQ(rb->payload, expect[i]);
  }
  EXPECT_FALSE(a.receive().ok());
  EXPECT_FALSE(b.receive().ok());
  EXPECT_EQ(loop.server->connections(), 0u);
}

// --- batch frames over the socket -------------------------------------------

TEST(SocketServer, BatchFramesRoundTripWithParityAndCounters) {
  const SortShape shape{6, 6};
  constexpr std::size_t kRounds = 64;
  Xoshiro256 rng(53);
  std::vector<std::vector<Trit>> rounds;
  std::vector<Trit> flat;
  for (std::size_t i = 0; i < kRounds; ++i) {
    rounds.push_back(random_flat(rng, shape));
    flat.insert(flat.end(), rounds.back().begin(), rounds.back().end());
  }
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.max_inflight = 256;  // in rounds: one 64-round frame fits comfortably
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();
  StatusOr<SortRequest> request = SortRequest::view_batch(shape, kRounds, flat);
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  StatusOr<SortResponse> response = client.sort_batch(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_TRUE(response->status.ok()) << response->status.to_string();
  EXPECT_EQ(response->rounds, kRounds);
  ASSERT_EQ(response->payload.size(), kRounds * shape.trits());
  for (std::size_t i = 0; i < kRounds; ++i) {
    const std::vector<Trit> row(
        response->payload.begin() +
            static_cast<std::ptrdiff_t>(i * shape.trits()),
        response->payload.begin() +
            static_cast<std::ptrdiff_t>((i + 1) * shape.trits()));
    EXPECT_EQ(row, expect[i]) << "round " << i;
  }
  const net::SocketServer::Stats stats = loop.server->stats();
  EXPECT_EQ(stats.requests, 1u);        // one frame...
  EXPECT_EQ(stats.batch_requests, 1u);  // ...a batch one...
  EXPECT_EQ(stats.rounds, kRounds);     // ...carrying all the rounds
}

TEST(SocketServer, BatchAndSingleFramesInterleaveInOrder) {
  // A pipelined mix of single-round and batch frames on one connection:
  // responses come back in send order, each answered with its own frame
  // type (rounds tells them apart on the client).
  const SortShape shape{4, 4};
  Xoshiro256 rng(59);
  const std::vector<Trit> single1 = random_flat(rng, shape);
  std::vector<std::vector<Trit>> batch_rounds;
  std::vector<Trit> batch_flat;
  for (int i = 0; i < 5; ++i) {
    batch_rounds.push_back(random_flat(rng, shape));
    batch_flat.insert(batch_flat.end(), batch_rounds.back().begin(),
                      batch_rounds.back().end());
  }
  const std::vector<Trit> single2 = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect1 =
      expected_sorted(shape, {single1});
  const std::vector<std::vector<Trit>> expect_batch =
      expected_sorted(shape, batch_rounds);
  const std::vector<std::vector<Trit>> expect2 =
      expected_sorted(shape, {single2});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  ASSERT_TRUE(client.send(SortRequest::view(shape, single1).value()).ok());
  ASSERT_TRUE(
      client.send_batch(SortRequest::view_batch(shape, 5, batch_flat).value())
          .ok());
  ASSERT_TRUE(client.send(SortRequest::view(shape, single2).value()).ok());

  StatusOr<SortResponse> r1 = client.receive();
  ASSERT_TRUE(r1.ok() && r1->status.ok());
  EXPECT_EQ(r1->rounds, 1u);
  EXPECT_EQ(r1->payload, expect1[0]);
  StatusOr<SortResponse> rb = client.receive();
  ASSERT_TRUE(rb.ok() && rb->status.ok());
  EXPECT_EQ(rb->rounds, 5u);
  for (int i = 0; i < 5; ++i) {
    const std::vector<Trit> row(
        rb->payload.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(i) * shape.trits()),
        rb->payload.begin() +
            static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i + 1) *
                                        shape.trits()));
    EXPECT_EQ(row, expect_batch[static_cast<std::size_t>(i)]);
  }
  StatusOr<SortResponse> r2 = client.receive();
  ASSERT_TRUE(r2.ok() && r2->status.ok());
  EXPECT_EQ(r2->rounds, 1u);
  EXPECT_EQ(r2->payload, expect2[0]);
}

// --- UNIX-domain sockets ----------------------------------------------------

std::string fresh_uds_path() {
  static std::atomic<int> counter{0};
  return "/tmp/mcsn_net_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A service + started UDS-only server on a fresh socket path.
struct UdsLoop {
  explicit UdsLoop(net::SocketOptions sopt = {}, ServeOptions vopt = {})
      : path(fresh_uds_path()) {
    service.emplace(vopt);
    sopt.listen_tcp = false;
    sopt.unix_path = path;
    server.emplace(*service, sopt);
    const Status s = server->start();
    EXPECT_TRUE(s.ok()) << s.to_string();
  }

  net::SortClient client() {
    StatusOr<net::SortClient> c = net::SortClient::connect_unix(path);
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(*c);
  }

  std::string path;
  std::optional<SortService> service;
  std::optional<net::SocketServer> server;
};

TEST(SocketServer, UnixDomainParityWithTcpIncludingMetastable) {
  // The same traffic over AF_UNIX must be indistinguishable from TCP:
  // pipelined parity rounds plus a marginal measurement whose single M
  // trit crosses the socket intact.
  const SortShape shape{4, 8};
  Xoshiro256 rng(61);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 32; ++i) rounds.push_back(random_flat(rng, shape));
  Word marginal = gray_encode(77, shape.bits);
  marginal[gray_flip_index(77, shape.bits)] = Trit::meta;
  std::vector<Trit> meta_round;
  for (int c = 0; c < shape.channels; ++c) {
    const Word w = c == 0 ? marginal : gray_encode(200, shape.bits);
    meta_round.insert(meta_round.end(), w.begin(), w.end());
  }
  rounds.push_back(meta_round);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  UdsLoop loop({}, fast_flush());
  ASSERT_EQ(loop.server->port(), 0);  // no TCP listener at all
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    StatusOr<SortRequest> request = SortRequest::view(shape, r);
    ASSERT_TRUE(request.ok());
    ASSERT_TRUE(client.send(*request).ok());
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    EXPECT_EQ(response->payload, expect[i]) << "round " << i;
  }
  EXPECT_EQ(std::count(expect.back().begin(), expect.back().end(), Trit::meta),
            1);
}

TEST(SocketServer, UnixDomainBatchAndMultiLoopDispatch) {
  // AF_UNIX has no REUSEPORT load balancing, so with several loops the
  // UDS listener lives on loop 0 and hands accepted fds round-robin to
  // the others — batch frames included.
  const SortShape shape{4, 4};
  constexpr std::size_t kRounds = 24;
  Xoshiro256 rng(67);
  std::vector<std::vector<Trit>> rounds;
  std::vector<Trit> flat;
  for (std::size_t i = 0; i < kRounds; ++i) {
    rounds.push_back(random_flat(rng, shape));
    flat.insert(flat.end(), rounds.back().begin(), rounds.back().end());
  }
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  net::SocketOptions sopt;
  sopt.loops = 2;
  UdsLoop loop(sopt, fast_flush());
  for (int c = 0; c < 4; ++c) {
    net::SortClient client = loop.client();
    StatusOr<SortRequest> request =
        SortRequest::view_batch(shape, kRounds, flat);
    ASSERT_TRUE(request.ok());
    StatusOr<SortResponse> response = client.sort_batch(*request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response->status.ok());
    ASSERT_EQ(response->payload.size(), kRounds * shape.trits());
    for (std::size_t i = 0; i < kRounds; ++i) {
      const std::vector<Trit> row(
          response->payload.begin() +
              static_cast<std::ptrdiff_t>(i * shape.trits()),
          response->payload.begin() +
              static_cast<std::ptrdiff_t>((i + 1) * shape.trits()));
      EXPECT_EQ(row, expect[i]);
    }
  }
  const net::SocketServer::Stats stats = loop.server->stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.batch_requests, 4u);
  EXPECT_EQ(stats.rounds, 4 * kRounds);
  // Round-robin dispatch: both loops adopted connections.
  EXPECT_GT(loop.server->loop_stats(0).accepted +
                loop.server->loop_stats(0).requests,
            0u);
  EXPECT_GT(loop.server->loop_stats(1).requests, 0u);
}

TEST(SocketServer, UnixPathIsUnlinkedOnStopAndNonSocketRefused) {
  const std::string path = fresh_uds_path();
  {
    ServeOptions vopt;
    SortService service(vopt);
    net::SocketOptions sopt;
    sopt.listen_tcp = false;
    sopt.unix_path = path;
    net::SocketServer server(service, sopt);
    ASSERT_TRUE(server.start().ok());
    server.stop();
    // The socket file is gone: a later server can bind the path fresh.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
  }
  // A non-socket file at the path is never unlinked, it's an error.
  {
    const std::string file = fresh_uds_path();
    FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    ServeOptions vopt;
    SortService service(vopt);
    net::SocketOptions sopt;
    sopt.listen_tcp = false;
    sopt.unix_path = file;
    net::SocketServer server(service, sopt);
    const Status s = server.start();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(::access(file.c_str(), F_OK), 0);  // still there
    ::unlink(file.c_str());
  }
}

// --- connect timeout --------------------------------------------------------

TEST(SortClient, ConnectWithTimeoutSucceedsAgainstLiveServer) {
  // The bounded-connect path (non-blocking + poll + restore-to-blocking)
  // must leave a perfectly usable connection behind.
  const SortShape shape{4, 4};
  Xoshiro256 rng(71);
  const std::vector<Trit> round = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, {round});

  Loopback loop({}, fast_flush());
  StatusOr<net::SortClient> client =
      net::SortClient::connect("127.0.0.1", loop.server->port(), 2000ms);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  StatusOr<SortResponse> response =
      client->sort(SortRequest::view(shape, round).value());
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, expect[0]);
}

TEST(SortClient, ConnectTimesOutAgainstFullBacklog) {
  // A listener that never accepts, with its backlog pre-filled: further
  // SYNs are dropped (Linux default) so the connect can only hang — the
  // timeout must cut it off with kDeadlineExceeded near the budget.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Fill the accept queue (backlog 1 admits a couple of connections on
  // Linux; a handful of fillers makes the overflow certain).
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(50ms);  // let the queue fill

  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<net::SortClient> client =
      net::SortClient::connect("127.0.0.1", port, 300ms);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kDeadlineExceeded)
      << client.status().to_string();
  EXPECT_GE(elapsed, 250ms);
  EXPECT_LT(elapsed, 5000ms);  // and it didn't hang anywhere near forever

  for (const int fd : fillers) ::close(fd);
  ::close(lfd);
}

TEST(SortClient, ConnectUnixRejectsBadPaths) {
  EXPECT_EQ(net::SortClient::connect_unix("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::SortClient::connect_unix(std::string(200, 'x'))
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // longer than sun_path
  const StatusOr<net::SortClient> missing =
      net::SortClient::connect_unix("/tmp/mcsn_no_such_socket_here.sock");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnavailable);
}

// --- stats admin frames ------------------------------------------------------

TEST(SocketServer, LiveStatsScrapeDuringPipelinedLoad) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(51);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 64; ++i) rounds.push_back(random_flat(rng, shape));

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  for (const std::vector<Trit>& r : rounds) {
    ASSERT_TRUE(client.send(SortRequest::view(shape, r).value()).ok());
  }
  // Scrape from a second connection while the pipelined load is in
  // flight: the stats path must answer from the event loop without a
  // batcher trip (a scrape stuck behind the load would deadlock a
  // monitoring client).
  net::SortClient scraper = loop.client();
  const StatusOr<wire::StatsReply> mid = scraper.stats();
  ASSERT_TRUE(mid.ok()) << mid.status().to_string();
  ASSERT_TRUE(mid->status.ok()) << mid->status.to_string();
  EXPECT_EQ(mid->format, wire::StatsFormat::json);
  // Eagerly registered series only: the per-shape pool series appear
  // after the first batch executes, which may race this scrape.
  for (const char* key :
       {"\"metrics\"", "\"slow_requests\"", "serve_submitted_total",
        "stage_decode_ns", "stage_queue_ns", "stage_execute_ns",
        "stage_encode_ns", "stage_write_ns", "socket_requests_total"}) {
    EXPECT_NE(mid->text.find(key), std::string::npos) << key;
  }

  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const StatusOr<SortResponse> response = client.receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
  }
  // After the drain, every stage histogram must have samples — the
  // Prometheus rendering exposes the counts directly.
  const StatusOr<wire::StatsReply> after =
      scraper.stats(wire::StatsFormat::prometheus);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  EXPECT_EQ(after->format, wire::StatsFormat::prometheus);
  for (const char* stage :
       {"stage_decode_ns", "stage_queue_ns", "stage_execute_ns",
        "stage_encode_ns", "stage_write_ns"}) {
    const std::string count_key = std::string(stage) + "_count ";
    const std::size_t at = after->text.find(count_key);
    ASSERT_NE(at, std::string::npos) << stage;
    EXPECT_NE(after->text.compare(at + count_key.size(), 2, "0\n"), 0)
        << stage << " histogram is empty";
  }
  // By now at least one batch executed, so the per-shape pool series exist.
  EXPECT_NE(after->text.find("pool_batches_total{bits=\"4\",channels=\"4\"}"),
            std::string::npos);
  EXPECT_GE(loop.server->stats().stats_requests, 2u);
}

TEST(SocketServer, StatsFramesInterleaveWithSortFramesInOrder) {
  const SortShape shape{4, 4};
  Xoshiro256 rng(53);
  constexpr std::size_t kRounds = 3;
  std::vector<Trit> flat;
  std::vector<std::vector<Trit>> rounds;
  for (std::size_t r = 0; r < kRounds; ++r) {
    rounds.push_back(random_flat(rng, shape));
    flat.insert(flat.end(), rounds.back().begin(), rounds.back().end());
  }
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);
  const std::vector<Trit> single = random_flat(rng, shape);
  const std::vector<std::vector<Trit>> single_expect =
      expected_sorted(shape, {single});

  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  // One connection, four pipelined sends: batch, stats, single, stats.
  // Responses must come back in exactly that order — stats replies are
  // served inline by the loop but still queue behind owed responses.
  ASSERT_TRUE(
      client.send_batch(SortRequest::view_batch(shape, kRounds, flat).value())
          .ok());
  ASSERT_TRUE(client.send_stats(wire::StatsFormat::json).ok());
  ASSERT_TRUE(client.send(SortRequest::view(shape, single).value()).ok());
  ASSERT_TRUE(client.send_stats(wire::StatsFormat::prometheus).ok());

  const StatusOr<SortResponse> batch = client.receive();
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  ASSERT_TRUE(batch->status.ok());
  EXPECT_EQ(batch->rounds, kRounds);
  const StatusOr<wire::StatsReply> json_reply = client.receive_stats();
  ASSERT_TRUE(json_reply.ok()) << json_reply.status().to_string();
  ASSERT_TRUE(json_reply->status.ok());
  EXPECT_EQ(json_reply->format, wire::StatsFormat::json);
  EXPECT_EQ(json_reply->text.front(), '{');
  const StatusOr<SortResponse> one = client.receive();
  ASSERT_TRUE(one.ok()) << one.status().to_string();
  ASSERT_TRUE(one->status.ok());
  EXPECT_EQ(one->payload, single_expect[0]);
  const StatusOr<wire::StatsReply> prom_reply = client.receive_stats();
  ASSERT_TRUE(prom_reply.ok()) << prom_reply.status().to_string();
  ASSERT_TRUE(prom_reply->status.ok());
  EXPECT_EQ(prom_reply->format, wire::StatsFormat::prometheus);
  EXPECT_EQ(prom_reply->text.compare(0, 7, "# TYPE "), 0);
  // The JSON scrape ran between the two sorts: it must already count the
  // batch frame but reflect a live server either way.
  EXPECT_NE(json_reply->text.find("socket_batch_requests_total"),
            std::string::npos);
}

TEST(SocketServer, MalformedStatsRequestGetsErrorReplyAndSurvives) {
  Loopback loop({}, fast_flush());
  net::SortClient client = loop.client();
  // Intact framing, wrong body size (3 bytes, must be exactly 4): the
  // reply carries the decode failure as its status, and — unlike a corrupt
  // sort frame — the connection stays up, because framing was never lost.
  const std::uint8_t bad_len[] = {'M', 'C', 2, 5, 3, 0, 0, 0, 1, 2, 3};
  ASSERT_EQ(::send(client.native_handle(), bad_len, sizeof bad_len, 0),
            static_cast<ssize_t>(sizeof bad_len));
  const StatusOr<wire::StatsReply> reply = client.receive_stats();
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->status.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(reply->text.empty());

  // An unknown format value (a newer client) answers kUnimplemented.
  const std::uint8_t bad_format[] = {'M', 'C', 2, 5, 4, 0, 0, 0, 9, 0, 0, 0};
  ASSERT_EQ(::send(client.native_handle(), bad_format, sizeof bad_format, 0),
            static_cast<ssize_t>(sizeof bad_format));
  const StatusOr<wire::StatsReply> reply2 = client.receive_stats();
  ASSERT_TRUE(reply2.ok()) << reply2.status().to_string();
  EXPECT_EQ(reply2->status.code(), StatusCode::kUnimplemented);

  // The connection still sorts.
  const SortShape shape{4, 4};
  Xoshiro256 rng(57);
  const std::vector<Trit> round = random_flat(rng, shape);
  const StatusOr<SortResponse> response =
      client.sort(SortRequest::view(shape, round).value());
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(loop.server->stats().protocol_errors, 0u);
}

TEST(SocketServer, SlowRequestRingCapturesDeadlineExceeded) {
  // A deadline shorter than the flush window: the request expires in the
  // batcher, the client sees kDeadlineExceeded, and the slow-request ring
  // records the victim with its stage breakdown.
  ServeOptions vopt;
  vopt.flush_window = std::chrono::microseconds(20000);
  Loopback loop({}, vopt);
  net::SortClient client = loop.client();
  const SortShape shape{4, 4};
  Xoshiro256 rng(59);
  const std::vector<Trit> round = random_flat(rng, shape);
  StatusOr<SortRequest> request = SortRequest::view(shape, round);
  ASSERT_TRUE(request.ok());
  request->set_deadline_after(std::chrono::milliseconds(1));
  const StatusOr<SortResponse> response = client.sort(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status.code(), StatusCode::kDeadlineExceeded);

  const std::vector<SlowRequest> slow = loop.service->slow_requests().snapshot();
  ASSERT_FALSE(slow.empty());
  bool found = false;
  for (const SlowRequest& r : slow) {
    if (r.code != StatusCode::kDeadlineExceeded) continue;
    found = true;
    EXPECT_EQ(r.channels, shape.channels);
    EXPECT_EQ(r.bits, shape.bits);
    EXPECT_EQ(r.rounds, 1u);
    // It spent (at least) the deadline waiting in the queue, and never
    // reached the engine.
    EXPECT_GE(r.queue_ns, 1000000u);
    EXPECT_EQ(r.execute_ns, 0u);
    EXPECT_GE(r.total_ns, r.queue_ns);
  }
  EXPECT_TRUE(found);
  // The ring also renders into the live scrape document.
  const StatusOr<wire::StatsReply> reply = client.stats();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply->text.find("\"slow_requests\": [{"), std::string::npos);
}

// --- abruptly killed server -------------------------------------------------

/// A stand-in for a server that dies: a raw listener on an ephemeral
/// loopback port whose accept thread runs `behavior` on the accepted fd
/// and then closes it. No SocketServer involved — the point is to control
/// the exact byte position at which the peer disappears.
class DyingServer {
 public:
  explicit DyingServer(std::function<void(int)> behavior) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    accept_thread_ = std::thread([this, behavior = std::move(behavior)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      behavior(fd);
      ::close(fd);
    });
  }

  ~DyingServer() {
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
};

/// Lets the client's request bytes arrive (and discards them) so the
/// client's send() succeeds and the failure surfaces in receive().
void drain_briefly(int fd) {
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::uint8_t buf[4096];
  (void)::recv(fd, buf, sizeof(buf), 0);
}

SortRequest small_request(Xoshiro256& rng, std::vector<Trit>& storage) {
  const SortShape shape{4, 4};
  storage = random_flat(rng, shape);
  StatusOr<SortRequest> request = SortRequest::view(shape, storage);
  EXPECT_TRUE(request.ok());
  return std::move(*request);
}

TEST(SortClient, ServerClosingBeforeResponseFailsSortCleanly) {
  // The server reads the request and closes cleanly between frames: the
  // client must return kUnavailable — not hang, not crash.
  Xoshiro256 rng(91);
  std::vector<Trit> storage;
  const SortRequest request = small_request(rng, storage);
  {
    DyingServer server(drain_briefly);
    StatusOr<net::SortClient> client =
        net::SortClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    const StatusOr<SortResponse> rsp = client->sort(request);
    ASSERT_FALSE(rsp.ok());
    EXPECT_EQ(rsp.status().code(), StatusCode::kUnavailable);
  }
  {
    DyingServer server(drain_briefly);
    StatusOr<net::SortClient> client =
        net::SortClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    const StatusOr<SortResponse> rsp = client->sort_batch(request);
    ASSERT_FALSE(rsp.ok());
    EXPECT_EQ(rsp.status().code(), StatusCode::kUnavailable);
  }
  {
    DyingServer server(drain_briefly);
    StatusOr<net::SortClient> client =
        net::SortClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    const StatusOr<wire::StatsReply> rsp = client->stats();
    ASSERT_FALSE(rsp.ok());
    EXPECT_EQ(rsp.status().code(), StatusCode::kUnavailable);
  }
}

TEST(SortClient, ServerDyingMidResponseFrameReportsDataLoss) {
  // The server answers with a valid header promising a body it never
  // delivers, then dies: a close mid-frame is data loss, distinguishable
  // from a clean shutdown.
  DyingServer server([](int fd) {
    drain_briefly(fd);
    std::uint8_t partial[wire::kHeaderSize + 5] = {};
    partial[0] = 'M';
    partial[1] = 'C';
    partial[2] = wire::kVersion;
    partial[3] = static_cast<std::uint8_t>(wire::FrameType::response);
    partial[4] = 100;  // length 100 LE; only 5 body bytes follow.
    (void)::send(fd, partial, sizeof(partial), MSG_NOSIGNAL);
  });
  StatusOr<net::SortClient> client =
      net::SortClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Xoshiro256 rng(92);
  std::vector<Trit> storage;
  const StatusOr<SortResponse> rsp = client->sort(small_request(rng, storage));
  ASSERT_FALSE(rsp.ok());
  EXPECT_EQ(rsp.status().code(), StatusCode::kDataLoss);
}

TEST(SortClient, ServerResetFailsEveryPipelinedInFlightCall) {
  // SIGKILL of a serving process manifests to the peer as either a clean
  // FIN or an RST depending on socket state; SO_LINGER{1,0} forces the
  // harsher RST case. Several requests and a stats scrape are in flight —
  // every receive must come back with a Status, none may hang.
  DyingServer server([](int fd) {
    drain_briefly(fd);
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  });
  StatusOr<net::SortClient> client =
      net::SortClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Xoshiro256 rng(93);
  std::vector<Trit> storage[3];
  // Pipeline: the sends may themselves fail (EPIPE after the RST lands) —
  // that is fine, as long as they fail with a Status.
  (void)client->send(small_request(rng, storage[0]));
  (void)client->send(small_request(rng, storage[1]));
  (void)client->send(small_request(rng, storage[2]));
  (void)client->send_stats();
  for (int i = 0; i < 3; ++i) {
    const StatusOr<SortResponse> rsp = client->receive();
    EXPECT_FALSE(rsp.ok());
  }
  const StatusOr<wire::StatsReply> stats = client->receive_stats();
  EXPECT_FALSE(stats.ok());
  // The connection is dead; further calls keep returning Status values.
  const StatusOr<SortResponse> again =
      client->sort(small_request(rng, storage[0]));
  EXPECT_FALSE(again.ok());
}

TEST(SocketServer, FaultInjectionByteCapsPreserveParity) {
  // The soak harness's syscall byte caps (SocketOptions::fault) slice
  // every recv/send into tiny pieces; the framing layer must reassemble
  // and the answers must stay bit-identical to the direct engine.
  net::SocketOptions sopt;
  sopt.fault.recv_cap = 3;
  sopt.fault.send_cap = 5;
  Loopback loop(sopt, fast_flush());
  net::SortClient client = loop.client();

  const SortShape shape{5, 4};
  Xoshiro256 rng(94);
  std::vector<std::vector<Trit>> rounds;
  for (int i = 0; i < 8; ++i) rounds.push_back(random_flat(rng, shape));
  const std::vector<std::vector<Trit>> expect = expected_sorted(shape, rounds);

  for (std::size_t i = 0; i < rounds.size(); ++i) {
    StatusOr<SortRequest> request = SortRequest::view(shape, rounds[i]);
    ASSERT_TRUE(request.ok());
    const StatusOr<SortResponse> rsp = client.sort(*request);
    ASSERT_TRUE(rsp.ok()) << rsp.status().to_string();
    ASSERT_TRUE(rsp->status.ok()) << rsp->status.to_string();
    EXPECT_EQ(rsp->payload, expect[i]) << "single round " << i;
  }

  std::vector<Trit> flat;
  for (const std::vector<Trit>& r : rounds) {
    flat.insert(flat.end(), r.begin(), r.end());
  }
  StatusOr<SortRequest> batch =
      SortRequest::view_batch(shape, rounds.size(), flat);
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  const StatusOr<SortResponse> rsp = client.sort_batch(*batch);
  ASSERT_TRUE(rsp.ok()) << rsp.status().to_string();
  ASSERT_TRUE(rsp->status.ok()) << rsp->status.to_string();
  std::vector<Trit> expect_flat;
  for (const std::vector<Trit>& r : expect) {
    expect_flat.insert(expect_flat.end(), r.begin(), r.end());
  }
  EXPECT_EQ(rsp->payload, expect_flat);

  // A stats document (much larger than the caps) survives the slicing too.
  const StatusOr<wire::StatsReply> stats = client.stats();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_NE(stats->text.find("process_rss_bytes"), std::string::npos);
}

}  // namespace
}  // namespace mcsn
