// Equivalence checking in both semantics, including the central MC trap:
// Boolean-equivalent circuits that are NOT ternary-equivalent (the formal
// content of the paper's footnote 2 and its "disable optimization" flow).

#include "mcsn/netlist/equiv.hpp"

#include <gtest/gtest.h>

#include "mcsn/ckt/ops.hpp"
#include "mcsn/ckt/sort2.hpp"
#include "mcsn/ckt/sort2_baselines.hpp"
#include "mcsn/netlist/eval.hpp"

namespace mcsn {
namespace {

// Plain SOP mux: a&~s | b&s.
Netlist sop_mux() {
  Netlist nl("sop_mux");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  nl.mark_output(nl.or2(nl.and2(a, nl.inv(s)), nl.and2(b, s)), "f");
  return nl;
}

// Containing mux: the 5-gate selection circuit with tied selects.
Netlist mc_mux() {
  Netlist nl("mc_mux");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  nl.mark_output(cmux(nl, a, b, s), "f");
  return nl;
}

TEST(Equiv, MuxesBooleanEquivalent) {
  EquivOptions opt;
  opt.semantics = EquivSemantics::boolean_only;
  EXPECT_FALSE(check_equivalence(sop_mux(), mc_mux(), opt));
}

TEST(Equiv, MuxesTernaryInequivalentWithWitness) {
  EquivOptions opt;
  opt.semantics = EquivSemantics::ternary;
  const auto mismatch = check_equivalence(sop_mux(), mc_mux(), opt);
  ASSERT_TRUE(mismatch);
  // The witness must have a metastable select with equal stable data
  // (that is the only place the two differ).
  EXPECT_EQ(mismatch->input[2], Trit::meta);
  EXPECT_EQ(mismatch->input[0], mismatch->input[1]);
  EXPECT_TRUE(is_stable(mismatch->input[0]));
  EXPECT_FALSE(mismatch->describe().empty());
}

// POS mux: (a | s) & (b | ~s). Boolean-equivalent to the others, but fails
// containment on the *opposite* corner from the SOP form: equal-zero data.
// Together with MuxesTernaryInequivalent this is the footnote-2 phenomenon:
// among Boolean-equivalent formulas, only carefully chosen ones compute the
// metastable closure — which is why the paper's flow forbids resynthesis.
TEST(Equiv, PosMuxBooleanEquivalentButLeaksOnZeros) {
  Netlist pos("pos_mux");
  {
    const NodeId a = pos.add_input("a");
    const NodeId b = pos.add_input("b");
    const NodeId s = pos.add_input("s");
    pos.mark_output(pos.and2(pos.or2(a, s), pos.or2(b, pos.inv(s))), "f");
  }
  EquivOptions boolean;
  boolean.semantics = EquivSemantics::boolean_only;
  EXPECT_FALSE(check_equivalence(pos, mc_mux(), boolean));

  // Ternary witness: a = b = 0, s = M -> closure says 0, POS mux says M.
  const Word witness = *Word::parse("00M");
  EXPECT_EQ(evaluate(mc_mux(), witness).str(), "0");
  EXPECT_EQ(evaluate(pos, witness).str(), "M");
  // And the SOP mux fails on ones but works on zeros — the failures are
  // complementary, so no two of the three are ternary-equivalent.
  EXPECT_EQ(evaluate(sop_mux(), witness).str(), "0");
  EXPECT_EQ(evaluate(sop_mux(), *Word::parse("11M")).str(), "M");
  EXPECT_EQ(evaluate(pos, *Word::parse("11M")).str(), "1");
  const auto mismatch = check_equivalence(pos, sop_mux());
  ASSERT_TRUE(mismatch);
}

TEST(Equiv, EquivalentCircuitsPassBothSemantics) {
  const Netlist a = make_sort2(4);
  const Netlist b = make_sort2(4, Sort2Options{PpcTopology::kogge_stone});
  // Different internal structure, same function on valid inputs; on
  // arbitrary ternary inputs they agree too (same operator blocks in
  // different associations — equal because ⋄M is associative everywhere,
  // see fsm_test).
  EXPECT_FALSE(check_equivalence(a, b));
}

TEST(Equiv, RandomSamplingModeAboveExhaustiveBound) {
  const Netlist a = make_sort2(8);
  const Netlist b = make_sort2_date17_style(8);
  EquivOptions opt;
  opt.exhaustive_bound = 1000;  // force sampling (3^32 combos)
  opt.random_samples = 20'000;
  opt.semantics = EquivSemantics::boolean_only;
  EXPECT_FALSE(check_equivalence(a, b, opt));
}

TEST(Equiv, DetectsSingleGateDifference) {
  Netlist a("a"), b("b");
  for (Netlist* nl : {&a, &b}) {
    const NodeId x = nl->add_input("x");
    const NodeId y = nl->add_input("y");
    nl->mark_output(nl == &a ? nl->and2(x, y) : nl->or2(x, y), "f");
  }
  const auto mismatch = check_equivalence(a, b);
  ASSERT_TRUE(mismatch);
  EXPECT_NE(mismatch->output_a, mismatch->output_b);
}

}  // namespace
}  // namespace mcsn
