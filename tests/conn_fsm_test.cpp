// The connection-lifecycle FSM (serve/net/conn_fsm.hpp): the transition
// table itself, then a randomized property suite driving >= 1000 client
// sessions — pipelined sorts, batches, stats scrapes, half-closes,
// garbage tails, truncated frames, abrupt resets — against a real
// SocketServer. The server's per-connection ConnFsm aborts the process
// on any illegal lifecycle transition in this (debug/MCSN_VERIFY) build,
// so the property is simply that every randomized session completes with
// the expected responses and the server survives.

#include "mcsn/serve/net/conn_fsm.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mcsn/serve/net/client.hpp"
#include "mcsn/serve/net/socket_server.hpp"
#include "mcsn/serve/wire.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

using namespace std::chrono_literals;
using net::ConnFsm;
using net::ConnState;

// --- transition table -------------------------------------------------------

/// A non-aborting FSM so illegal transitions can be asserted on instead
/// of killing the test binary.
ConnFsm soft() { return ConnFsm(/*abort_on_violation=*/false); }

TEST(ConnFsm, HappyPathRequestResponseCycles) {
  ConnFsm fsm = soft();
  EXPECT_EQ(fsm.state(), ConnState::kReading);
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_TRUE(fsm.request_admitted());
    EXPECT_TRUE(fsm.request_admitted());
    EXPECT_EQ(fsm.state(), ConnState::kOwed);
    EXPECT_EQ(fsm.owed(), 2u);
    EXPECT_TRUE(fsm.response_written());
    EXPECT_EQ(fsm.state(), ConnState::kOwed);  // one still owed
    EXPECT_TRUE(fsm.response_written());
    EXPECT_EQ(fsm.state(), ConnState::kReading);  // balanced again
  }
  EXPECT_TRUE(fsm.connection_closed());
  EXPECT_EQ(fsm.state(), ConnState::kClosed);
  EXPECT_EQ(fsm.violations(), 0u);
}

TEST(ConnFsm, ResponseWithoutRequestIsAViolation) {
  ConnFsm fsm = soft();
  EXPECT_FALSE(fsm.response_written());
  EXPECT_EQ(fsm.violations(), 1u);

  // Also after the books balance: a stray extra write is caught.
  EXPECT_TRUE(fsm.request_admitted());
  EXPECT_TRUE(fsm.response_written());
  EXPECT_FALSE(fsm.response_written());
  EXPECT_EQ(fsm.violations(), 2u);
}

TEST(ConnFsm, HalfCloseDrainsOwedThenNothingNewAfterTeardown) {
  ConnFsm fsm = soft();
  EXPECT_TRUE(fsm.request_admitted());
  EXPECT_TRUE(fsm.peer_half_closed());
  EXPECT_EQ(fsm.state(), ConnState::kEofDraining);
  // Frames buffered before the EOF still parse and are owed answers.
  EXPECT_TRUE(fsm.request_admitted());
  EXPECT_TRUE(fsm.response_written());
  EXPECT_TRUE(fsm.response_written());
  EXPECT_EQ(fsm.state(), ConnState::kEofDraining);  // EOF is sticky
  EXPECT_TRUE(fsm.connection_closed());
  EXPECT_EQ(fsm.violations(), 0u);
}

TEST(ConnFsm, ProtocolErrorOwesTheErrorFrameAndStopsAdmission) {
  ConnFsm fsm = soft();
  EXPECT_TRUE(fsm.request_admitted());
  EXPECT_TRUE(fsm.protocol_error());
  EXPECT_EQ(fsm.state(), ConnState::kErrorDraining);
  EXPECT_EQ(fsm.owed(), 2u);  // the sort + the error response
  EXPECT_FALSE(fsm.request_admitted());  // framing stopped at the bad byte
  EXPECT_FALSE(fsm.protocol_error());    // and stays stopped
  EXPECT_EQ(fsm.violations(), 2u);
  EXPECT_TRUE(fsm.response_written());
  EXPECT_TRUE(fsm.response_written());
  EXPECT_TRUE(fsm.connection_closed());
}

TEST(ConnFsm, TruncatedTailAfterEofEscalatesToError) {
  // recv()==0 with a partial frame buffered: data_loss is reported, so
  // kEofDraining -> kErrorDraining must be legal.
  ConnFsm fsm = soft();
  EXPECT_TRUE(fsm.peer_half_closed());
  EXPECT_TRUE(fsm.protocol_error());
  EXPECT_EQ(fsm.state(), ConnState::kErrorDraining);
  EXPECT_EQ(fsm.owed(), 1u);
  EXPECT_EQ(fsm.violations(), 0u);
}

TEST(ConnFsm, StopDrainHalfCloseIsIdempotent) {
  // stop() marks every connection peer_eof, including ones already
  // draining — the event must be a no-op there, not a violation.
  ConnFsm fsm = soft();
  EXPECT_TRUE(fsm.peer_half_closed());
  EXPECT_TRUE(fsm.peer_half_closed());
  EXPECT_EQ(fsm.state(), ConnState::kEofDraining);
  EXPECT_TRUE(fsm.protocol_error());
  EXPECT_TRUE(fsm.peer_half_closed());
  EXPECT_EQ(fsm.state(), ConnState::kErrorDraining);
  EXPECT_EQ(fsm.violations(), 0u);
}

TEST(ConnFsm, IdleReapIsLegalWithResponsesStillOwed) {
  ConnFsm fsm = soft();
  EXPECT_TRUE(fsm.request_admitted());
  EXPECT_TRUE(fsm.idle_expired());
  EXPECT_EQ(fsm.state(), ConnState::kClosed);
  // schedule_close runs after the reaper already moved the FSM.
  EXPECT_TRUE(fsm.connection_closed());
  // But nothing else is legal after close.
  EXPECT_FALSE(fsm.request_admitted());
  EXPECT_FALSE(fsm.response_written());
  EXPECT_FALSE(fsm.peer_half_closed());
  EXPECT_FALSE(fsm.idle_expired());
  EXPECT_EQ(fsm.violations(), 4u);
}

// --- randomized sessions against a real server ------------------------------

std::vector<Trit> random_flat(Xoshiro256& rng, SortShape shape) {
  std::vector<Trit> flat;
  flat.reserve(shape.trits());
  for (const Word& w : random_valid_round(rng, shape.channels, shape.bits)) {
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return flat;
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// One randomized session: a pipelined burst of valid traffic, then a
/// randomly chosen ending. Returns false only on unexpected failures
/// (expected error responses and connection teardowns are part of the
/// exercise).
void run_session(net::SortClient& client, Xoshiro256& rng) {
  const SortShape shape{2, 2};
  enum class Sent : std::uint8_t { sort, batch, stats };
  std::vector<Sent> sent;

  const std::size_t burst = rng.below(5);  // 0..4 pipelined frames
  for (std::size_t i = 0; i < burst; ++i) {
    switch (rng.below(3)) {
      case 0: {
        StatusOr<SortRequest> req =
            SortRequest::own(shape, random_flat(rng, shape));
        ASSERT_TRUE(req.ok());
        ASSERT_TRUE(client.send(*req).ok());
        sent.push_back(Sent::sort);
        break;
      }
      case 1: {
        const std::size_t rounds = 1 + rng.below(3);
        std::vector<Trit> flat;
        for (std::size_t r = 0; r < rounds; ++r) {
          const std::vector<Trit> one = random_flat(rng, shape);
          flat.insert(flat.end(), one.begin(), one.end());
        }
        StatusOr<SortRequest> req =
            SortRequest::own_batch(shape, rounds, std::move(flat));
        ASSERT_TRUE(req.ok());
        ASSERT_TRUE(client.send_batch(*req).ok());
        sent.push_back(Sent::batch);
        break;
      }
      default:
        ASSERT_TRUE(client.send_stats().ok());
        sent.push_back(Sent::stats);
        break;
    }
  }

  // Random ending, chosen BEFORE draining so teardowns race real traffic.
  const std::uint64_t ending = rng.below(5);
  if (ending == 1) {
    // Garbage tail: the server answers everything owed, appends an error
    // response, and tears the connection down. Must be at least a full
    // header (8 bytes): a shorter prefix is indistinguishable from an
    // incomplete frame, and the server rightly waits for the rest.
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef,
                                 0x00, 0x99, 0x77, 0x66};
    (void)::send(client.native_handle(), junk, sizeof junk, MSG_NOSIGNAL);
  } else if (ending == 2) {
    // Truncated frame then half-close: mid-frame EOF is data loss.
    const std::vector<std::uint8_t> frame =
        wire::encode_stats_request(wire::StatsFormat::json);
    (void)::send(client.native_handle(), frame.data(), frame.size() / 2,
                 MSG_NOSIGNAL);
    (void)::shutdown(client.native_handle(), SHUT_WR);
  } else if (ending == 3) {
    // Clean half-close: everything already sent must still be answered.
    (void)::shutdown(client.native_handle(), SHUT_WR);
  }  // 0: plain close after draining; 4: abrupt close with responses owed

  if (ending == 4) {
    client.close();
    return;
  }

  // Drain every owed response in order; after a garbage/truncated tail
  // one final error response may follow, then the server closes.
  for (const Sent type : sent) {
    if (type == Sent::stats) {
      StatusOr<wire::StatsReply> reply = client.receive_stats();
      ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    } else {
      StatusOr<SortResponse> rsp = client.receive();
      ASSERT_TRUE(rsp.ok()) << rsp.status().to_string();
      ASSERT_TRUE(rsp->status.ok()) << rsp->status.to_string();
      ASSERT_EQ(rsp->payload.size(),
                shape.trits() * (type == Sent::batch ? rsp->rounds : 1));
    }
  }
  if (ending == 1 || ending == 2) {
    // The teardown error frame (bad magic / mid-frame truncation).
    StatusOr<SortResponse> err = client.receive();
    if (err.ok()) {
      EXPECT_FALSE(err->status.ok());
    }  // (the connection may already read as closed under races — fine)
    // And then nothing more: the server closed.
    EXPECT_FALSE(client.receive().ok());
  }
}

TEST(ConnFsmProperty, ThousandRandomizedSessionsAgainstRealServer) {
  ServeOptions vopt;
  vopt.flush_window = std::chrono::microseconds(100);
  SortService service(vopt);
  net::SocketOptions sopt;
  sopt.port = 0;
  // Backstop: a session that deadlocks (client waiting on a response the
  // server does not owe) gets reaped instead of hanging the suite.
  sopt.idle_timeout = std::chrono::milliseconds(2000);
  net::SocketServer server(service, sopt);
  ASSERT_TRUE(server.start().ok());

  constexpr int kSessions = 1000;
  Xoshiro256 rng(20260807);
  for (int s = 0; s < kSessions; ++s) {
    StatusOr<net::SortClient> client =
        net::SortClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << "session " << s << ": "
                             << client.status().to_string();
    run_session(*client, rng);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "session " << s << " failed";
    }
  }

  // All sessions eventually account for their close (abrupt ones lag).
  EXPECT_TRUE(eventually([&] {
    const net::SocketServer::Stats stats = server.stats();
    return stats.closed + stats.idle_closed >= kSessions;
  }));
  const net::SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kSessions));
  EXPECT_GT(stats.protocol_errors, 0u);  // garbage/truncation endings ran
  server.stop();
}

TEST(ConnFsmProperty, IdleReaperClosesStalledConnections) {
  ServeOptions vopt;
  vopt.flush_window = std::chrono::microseconds(100);
  SortService service(vopt);
  net::SocketOptions sopt;
  sopt.port = 0;
  sopt.idle_timeout = 60ms;
  net::SocketServer server(service, sopt);
  ASSERT_TRUE(server.start().ok());

  StatusOr<net::SortClient> idle =
      net::SortClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(idle.ok());
  // Send one request so the reap happens on a connection that has lived
  // through the kOwed state, then stall.
  Xoshiro256 rng(99);
  StatusOr<SortRequest> req =
      SortRequest::own(SortShape{2, 2}, random_flat(rng, {2, 2}));
  ASSERT_TRUE(req.ok());
  StatusOr<SortResponse> rsp = idle->sort(*req);
  ASSERT_TRUE(rsp.ok());

  EXPECT_TRUE(eventually([&] { return server.stats().idle_closed >= 1; }));
  server.stop();
}

}  // namespace
}  // namespace mcsn
