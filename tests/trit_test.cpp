// Unit tests for the ternary value type and the Table 3 gate semantics.

#include "mcsn/core/trit.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcsn {
namespace {

TEST(Trit, BasicPredicates) {
  EXPECT_TRUE(is_stable(Trit::zero));
  EXPECT_TRUE(is_stable(Trit::one));
  EXPECT_FALSE(is_stable(Trit::meta));
  EXPECT_TRUE(is_meta(Trit::meta));
  EXPECT_FALSE(is_meta(Trit::one));
}

TEST(Trit, BoolConversions) {
  EXPECT_EQ(to_trit(false), Trit::zero);
  EXPECT_EQ(to_trit(true), Trit::one);
  EXPECT_FALSE(to_bool(Trit::zero));
  EXPECT_TRUE(to_bool(Trit::one));
}

TEST(Trit, IndexRoundTrip) {
  for (const Trit t : kAllTrits) {
    EXPECT_EQ(trit_from_index(index(t)), t);
  }
}

// Paper Table 3, AND: a 0 forces 0; two 1s give 1; otherwise M.
TEST(Trit, AndMatchesTable3) {
  const Trit T0 = Trit::zero, T1 = Trit::one, TM = Trit::meta;
  EXPECT_EQ(trit_and(T0, T0), T0);
  EXPECT_EQ(trit_and(T0, T1), T0);
  EXPECT_EQ(trit_and(T0, TM), T0);
  EXPECT_EQ(trit_and(T1, T0), T0);
  EXPECT_EQ(trit_and(T1, T1), T1);
  EXPECT_EQ(trit_and(T1, TM), TM);
  EXPECT_EQ(trit_and(TM, T0), T0);
  EXPECT_EQ(trit_and(TM, T1), TM);
  EXPECT_EQ(trit_and(TM, TM), TM);
}

// Paper Table 3, OR: a 1 forces 1.
TEST(Trit, OrMatchesTable3) {
  const Trit T0 = Trit::zero, T1 = Trit::one, TM = Trit::meta;
  EXPECT_EQ(trit_or(T0, T0), T0);
  EXPECT_EQ(trit_or(T0, T1), T1);
  EXPECT_EQ(trit_or(T0, TM), TM);
  EXPECT_EQ(trit_or(T1, T0), T1);
  EXPECT_EQ(trit_or(T1, T1), T1);
  EXPECT_EQ(trit_or(T1, TM), T1);
  EXPECT_EQ(trit_or(TM, T0), TM);
  EXPECT_EQ(trit_or(TM, T1), T1);
  EXPECT_EQ(trit_or(TM, TM), TM);
}

// Paper Table 3, inverter: M maps to M.
TEST(Trit, NotMatchesTable3) {
  EXPECT_EQ(trit_not(Trit::zero), Trit::one);
  EXPECT_EQ(trit_not(Trit::one), Trit::zero);
  EXPECT_EQ(trit_not(Trit::meta), Trit::meta);
}

TEST(Trit, DeMorganHoldsInKleeneLogic) {
  for (const Trit a : kAllTrits) {
    for (const Trit b : kAllTrits) {
      EXPECT_EQ(trit_not(trit_and(a, b)), trit_or(trit_not(a), trit_not(b)));
      EXPECT_EQ(trit_not(trit_or(a, b)), trit_and(trit_not(a), trit_not(b)));
    }
  }
}

TEST(Trit, AndOrCommutativeAssociative) {
  for (const Trit a : kAllTrits) {
    for (const Trit b : kAllTrits) {
      EXPECT_EQ(trit_and(a, b), trit_and(b, a));
      EXPECT_EQ(trit_or(a, b), trit_or(b, a));
      for (const Trit c : kAllTrits) {
        EXPECT_EQ(trit_and(trit_and(a, b), c), trit_and(a, trit_and(b, c)));
        EXPECT_EQ(trit_or(trit_or(a, b), c), trit_or(a, trit_or(b, c)));
      }
    }
  }
}

TEST(Trit, XorPropagatesAnyMeta) {
  EXPECT_EQ(trit_xor(Trit::meta, Trit::zero), Trit::meta);
  EXPECT_EQ(trit_xor(Trit::one, Trit::meta), Trit::meta);
  EXPECT_EQ(trit_xor(Trit::one, Trit::zero), Trit::one);
  EXPECT_EQ(trit_xor(Trit::one, Trit::one), Trit::zero);
}

TEST(Trit, MuxContainsMetastableSelect) {
  // Equal data suppresses a metastable select (cmux behavior).
  EXPECT_EQ(trit_mux(Trit::one, Trit::one, Trit::meta), Trit::one);
  EXPECT_EQ(trit_mux(Trit::zero, Trit::zero, Trit::meta), Trit::zero);
  EXPECT_EQ(trit_mux(Trit::zero, Trit::one, Trit::meta), Trit::meta);
  // Stable select passes the chosen input through, even if M.
  EXPECT_EQ(trit_mux(Trit::meta, Trit::one, Trit::zero), Trit::meta);
  EXPECT_EQ(trit_mux(Trit::meta, Trit::one, Trit::one), Trit::one);
}

TEST(Trit, StarOperator) {
  EXPECT_EQ(trit_star(Trit::zero, Trit::zero), Trit::zero);
  EXPECT_EQ(trit_star(Trit::one, Trit::one), Trit::one);
  EXPECT_EQ(trit_star(Trit::zero, Trit::one), Trit::meta);
  EXPECT_EQ(trit_star(Trit::meta, Trit::zero), Trit::meta);
}

TEST(Trit, CharConversions) {
  EXPECT_EQ(to_char(Trit::zero), '0');
  EXPECT_EQ(to_char(Trit::one), '1');
  EXPECT_EQ(to_char(Trit::meta), 'M');
  EXPECT_EQ(trit_from_char('0'), Trit::zero);
  EXPECT_EQ(trit_from_char('1'), Trit::one);
  EXPECT_EQ(trit_from_char('M'), Trit::meta);
  EXPECT_EQ(trit_from_char('x'), Trit::meta);
  EXPECT_EQ(trit_from_char('?'), std::nullopt);
}

TEST(Trit, StreamOutput) {
  std::ostringstream ss;
  ss << Trit::zero << Trit::meta << Trit::one;
  EXPECT_EQ(ss.str(), "0M1");
}

}  // namespace
}  // namespace mcsn
