// Cross-module integration: the full pipeline from measurement-style valid
// strings through elaborated MC sorting networks, equivalence of all 2-sort
// implementations on one netlist-level harness, and end-to-end containment
// guarantees (the paper's headline property).

#include <gtest/gtest.h>

#include <algorithm>

#include "mcsn/mcsn.hpp"

namespace mcsn {
namespace {

// All MC 2-sort implementations agree with each other and with the spec on a
// randomized corpus at B=10 (too wide for exhaustive, wide enough to stress
// the PPC structure).
TEST(Integration, AllImplementationsAgreeAtB10) {
  const std::size_t bits = 10;
  std::vector<Netlist> impls;
  for (const PpcTopology t : kAllPpcTopologies) {
    impls.push_back(make_sort2(bits, Sort2Options{t}));
  }
  impls.push_back(make_sort2_naive_trees(bits));
  impls.push_back(make_sort2_date17_style(bits));

  std::vector<Evaluator> evals;
  evals.reserve(impls.size());
  for (const Netlist& nl : impls) evals.emplace_back(nl);

  Xoshiro256 rng(2024);
  Word out;
  std::vector<Trit> in;
  for (int trial = 0; trial < 2000; ++trial) {
    const Word g = valid_from_rank(rng.below(valid_count(bits)), bits);
    const Word h = valid_from_rank(rng.below(valid_count(bits)), bits);
    const auto [mx, mn] = sort2_spec_rank(g, h);
    const Word want = mx + mn;
    const Word joined = g + h;
    in.assign(joined.begin(), joined.end());
    for (std::size_t k = 0; k < impls.size(); ++k) {
      evals[k].run_outputs(in, out);
      ASSERT_EQ(out, want) << impls[k].name() << " g=" << g.str()
                           << " h=" << h.str();
    }
  }
}

// The containment guarantee, end to end: feed n measurements where ONE
// channel is marginal (has an M); after sorting, at most one output channel
// is marginal, the others are exact, and the marginal output sits at the
// correct rank boundary.
TEST(Integration, ContainmentThroughWholeNetwork) {
  const std::size_t bits = 6;
  const Netlist nl =
      elaborate_network(optimal_7(), bits, sort2_builder());
  Evaluator ev(nl);
  Xoshiro256 rng(77);
  Word out;
  std::vector<Trit> in;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Word> words;
    std::vector<std::uint64_t> ranks;
    for (int c = 0; c < 7; ++c) {
      // Channel 3 gets a marginal measurement (odd rank), others stable.
      const std::uint64_t r = c == 3
                                  ? 2 * rng.below(valid_count(bits) / 2) + 1
                                  : 2 * rng.below(valid_count(bits) / 2 + 1);
      words.push_back(valid_from_rank(r, bits));
      ranks.push_back(r);
    }
    Word joined(0);
    for (const Word& w : words) joined = joined + w;
    in.assign(joined.begin(), joined.end());
    ev.run_outputs(in, out);

    std::sort(ranks.begin(), ranks.end());
    std::size_t meta_channels = 0;
    for (int c = 0; c < 7; ++c) {
      const Word ch = out.sub(static_cast<std::size_t>(c) * bits,
                              (static_cast<std::size_t>(c) + 1) * bits - 1);
      const auto r = valid_rank(ch);
      ASSERT_TRUE(r) << "non-valid output channel";
      ASSERT_EQ(*r, ranks[static_cast<std::size_t>(c)]);
      meta_channels += ch.is_stable() ? 0 : 1;
    }
    EXPECT_EQ(meta_channels, 1u);  // exactly the one marginal input survives
  }
}

// Network-level glitch freedom: resolve the marginal channel's M after
// settling; the elaborated 7-sort netlist transitions monotonically.
TEST(Integration, NetworkLevelResolutionIsGlitchFree) {
  const std::size_t bits = 3;
  const Netlist nl = elaborate_network(optimal_4(), bits, sort2_builder());
  EventSimulator sim(nl, CellLibrary::paper_calibrated());
  const Word a = valid_from_rank(5, bits);  // marginal
  const Word b = valid_from_rank(2, bits);
  const Word c = valid_from_rank(8, bits);
  const Word d = valid_from_rank(12, bits);
  const Word joined = a + b + c + d;
  for (std::size_t i = 0; i < joined.size(); ++i) {
    sim.set_input(i, joined[i], 0.0);
  }
  sim.run();
  sim.clear_waveforms(5000.0);
  sim.set_input(*a.first_meta(), Trit::one, 5000.0);
  sim.run();
  EXPECT_TRUE(sim.glitch_free());
}

// Sanity tie between measured stats and refdata at every Table 7 point.
TEST(Integration, MeasuredStatsTrackPaper) {
  for (const int bits : {2, 4, 8, 16}) {
    const CircuitStats s =
        compute_stats(make_sort2(static_cast<std::size_t>(bits)));
    const auto ref = refdata::table7_row(refdata::Circuit::here, bits);
    EXPECT_EQ(s.gates, ref->gates);
    EXPECT_NEAR(s.area, ref->area, 0.001 * ref->area);
    // Delay: calibrated model, require within 20% of the published value.
    EXPECT_NEAR(s.delay, ref->delay, 0.20 * ref->delay) << "B=" << bits;
  }
}

// The umbrella header exposes a coherent public API (compile-time check via
// odr-use of a few symbols from each layer).
TEST(Integration, UmbrellaHeaderSmoke) {
  EXPECT_EQ(trit_and(Trit::one, Trit::meta), Trit::meta);
  EXPECT_EQ(gray_decode(gray_encode(9, 5)), 9u);
  EXPECT_EQ(sort2_gate_count(16), 407u);
  EXPECT_TRUE(optimal_4().sorts_all_binary());
  EXPECT_EQ(refdata::table7().size(), 12u);
}

}  // namespace
}  // namespace mcsn
