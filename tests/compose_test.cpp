// The arbitrary-shape construction routes (nets/compose/): generalized
// odd-even merge, recursive composition over the optimal catalog leaves,
// the PPC construction, and the NetworkBuilder policy/status surface.
//
// Verification ladder, weakest to strongest:
//   1. 0-1 principle exhaustively (n <= 16) and the merge variant for
//      every (p, q) run split up to 8+8;
//   2. comparator-level differential vs std::sort for every n up to 32;
//   3. gate-level differential vs the rank-sort reference on random valid
//      and marginal (metastable) measurements for every n up to 32;
//   4. every compiled program passes verify_ir, and the scalar / 64-lane /
//      256-lane backends agree with the node-walking evaluator.

#include "mcsn/nets/compose/compose.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcsn/core/valid.hpp"
#include "mcsn/netlist/compile.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/verify_ir.hpp"
#include "mcsn/nets/catalog.hpp"
#include "mcsn/nets/compose/builder.hpp"
#include "mcsn/nets/elaborate.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

// --- construction routes: 0-1 principle ------------------------------------

TEST(Compose, CatalogLeavesAreOptimal) {
  // Size/depth pairs are the known optima (Knuth TAOCP vol. 3; Codish et
  // al. for the 9/10-channel results) — the composer's leaf quality is
  // exactly the paper-grade quality these pin down.
  const struct {
    ComparatorNetwork net;
    std::size_t size;
    std::size_t depth;
  } leaves[] = {
      {optimal_2(), 1, 1},  {optimal_3(), 3, 3},  {optimal_5(), 9, 5},
      {optimal_6(), 12, 5}, {optimal_8(), 19, 6},
  };
  for (const auto& leaf : leaves) {
    SCOPED_TRACE(leaf.net.name());
    EXPECT_TRUE(leaf.net.well_formed());
    EXPECT_EQ(leaf.net.size(), leaf.size);
    EXPECT_EQ(leaf.net.depth(), leaf.depth);
    EXPECT_TRUE(leaf.net.sorts_all_binary());
  }
}

TEST(Compose, OddEvenMergeMergesEveryRunSplit) {
  for (int p = 1; p <= 8; ++p) {
    for (int q = 1; q <= 8; ++q) {
      const ComparatorNetwork net = odd_even_merge_network(p, q);
      SCOPED_TRACE(net.name());
      ASSERT_EQ(net.channels(), p + q);
      ASSERT_TRUE(net.well_formed());
      // Merge variant of the 0-1 principle: exhaustive over every binary
      // input whose two runs are each sorted.
      ASSERT_TRUE(net.merges_sorted_halves(p));
    }
  }
  EXPECT_THROW(odd_even_merge_network(0, 3), std::invalid_argument);
  EXPECT_THROW(odd_even_merge_network(3, 0), std::invalid_argument);
}

TEST(Compose, AppendOddEvenMergeRelocatesByBase) {
  // The shared building block must emit the same comparators as the
  // standalone network, shifted by `base` — both routes rely on this.
  const ComparatorNetwork ref = odd_even_merge_network(3, 5);
  std::vector<Comparator> seq;
  append_odd_even_merge(seq, 7, 3, 5);
  std::vector<Comparator> shifted;
  for (const Comparator& c : ref.flattened()) {
    shifted.push_back({c.lo + 7, c.hi + 7});
  }
  // from_flat re-layers (ASAP), so compare as multisets, not sequences.
  const auto by_channels = [](const Comparator& a, const Comparator& b) {
    return std::pair{a.lo, a.hi} < std::pair{b.lo, b.hi};
  };
  std::sort(seq.begin(), seq.end(), by_channels);
  std::sort(shifted.begin(), shifted.end(), by_channels);
  ASSERT_EQ(seq, shifted);
}

TEST(Compose, ComposedSortsAllBinaryTo16) {
  for (int n = 1; n <= 16; ++n) {
    for (const bool prefer_depth : {true, false}) {
      const ComparatorNetwork net = composed_sort_network(n, prefer_depth);
      SCOPED_TRACE(net.name());
      ASSERT_EQ(net.channels(), n);
      ASSERT_TRUE(net.well_formed());
      ASSERT_TRUE(net.sorts_all_binary());
    }
  }
  EXPECT_THROW(composed_sort_network(0), std::invalid_argument);
}

TEST(Compose, PpcSortsAllBinaryTo16) {
  for (const PpcTopology topo : {PpcTopology::ladner_fischer,
                                 PpcTopology::sklansky, PpcTopology::serial}) {
    for (int n = 1; n <= 16; ++n) {
      const ComparatorNetwork net = ppc_sort_network(n, topo);
      SCOPED_TRACE(net.name());
      ASSERT_EQ(net.channels(), n);
      ASSERT_TRUE(net.well_formed());
      ASSERT_TRUE(net.sorts_all_binary());
    }
  }
}

TEST(Compose, PpcRejectsPrefixReusingTopologies) {
  // kogge_stone / han_carlson reuse intermediate prefixes; an in-place
  // comparator network cannot express that, so the route must refuse
  // rather than silently emit a non-sorting network.
  EXPECT_TRUE(ppc_compose_supported(PpcTopology::ladner_fischer));
  EXPECT_TRUE(ppc_compose_supported(PpcTopology::sklansky));
  EXPECT_TRUE(ppc_compose_supported(PpcTopology::serial));
  EXPECT_FALSE(ppc_compose_supported(PpcTopology::kogge_stone));
  EXPECT_FALSE(ppc_compose_supported(PpcTopology::han_carlson));
  EXPECT_THROW(ppc_sort_network(8, PpcTopology::kogge_stone),
               std::invalid_argument);
  EXPECT_THROW(ppc_sort_network(8, PpcTopology::han_carlson),
               std::invalid_argument);
  EXPECT_THROW(ppc_sort_network(0), std::invalid_argument);
}

TEST(Compose, ComposedStaysWithinBatcherBounds) {
  // The composition must never be worse than plain Batcher (its leaves are
  // optimal, its glue identical), and sklansky must be the depth champion
  // among the PPC cones.
  for (const int n : {11, 17, 24, 32}) {
    const ComparatorNetwork batcher = batcher_odd_even(n);
    const ComparatorNetwork composed = composed_sort_network(n, true);
    SCOPED_TRACE(composed.name());
    EXPECT_LE(composed.size(), batcher.size());
    EXPECT_LE(composed.depth(), batcher.depth());
    const ComparatorNetwork sk = ppc_sort_network(n, PpcTopology::sklansky);
    const ComparatorNetwork lf =
        ppc_sort_network(n, PpcTopology::ladner_fischer);
    EXPECT_LE(sk.depth(), lf.depth());
  }
}

// --- comparator-level differential up to 32 channels -----------------------

TEST(Compose, ComparatorDifferentialAgainstStdSortTo32) {
  Xoshiro256 rng(2018);
  for (int n = 2; n <= 32; ++n) {
    const ComparatorNetwork nets[] = {
        composed_sort_network(n, true),
        composed_sort_network(n, false),
        ppc_sort_network(n, PpcTopology::ladner_fischer),
        ppc_sort_network(n, PpcTopology::sklansky),
    };
    for (const ComparatorNetwork& net : nets) {
      SCOPED_TRACE(net.name());
      for (int round = 0; round < 50; ++round) {
        std::vector<std::uint64_t> v;
        v.reserve(static_cast<std::size_t>(n));
        for (int c = 0; c < n; ++c) v.push_back(rng.below(8));  // many ties
        std::vector<std::uint64_t> expect = v;
        std::sort(expect.begin(), expect.end());
        net.apply(v);
        ASSERT_EQ(v, expect);
      }
    }
  }
}

// --- gate-level differential: random + metastable inputs to 32 -------------

// Random measurement ranks — spanning fully-valid codewords and the
// marginal (metastability-containing) strings between them — sorted by the
// elaborated, compiled engine and checked against rank order.
void check_sorter_differential(McSorter& sorter, std::uint64_t seed,
                               int rounds) {
  const int n = sorter.channels();
  const std::size_t bits = sorter.bits();
  Xoshiro256 rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::vector<Word> in;
    std::vector<std::uint64_t> ranks;
    for (int c = 0; c < n; ++c) {
      // Odd ranks are the marginal M-containing strings, so roughly half
      // of every round is metastable input.
      const std::uint64_t r = rng.below(valid_count(bits));
      ranks.push_back(r);
      in.push_back(valid_from_rank(r, bits));
    }
    const std::vector<Word> out = sorter.sort(in);
    std::sort(ranks.begin(), ranks.end());
    for (int c = 0; c < n; ++c) {
      ASSERT_EQ(out[static_cast<std::size_t>(c)],
                valid_from_rank(ranks[static_cast<std::size_t>(c)], bits))
          << sorter.network().name() << " n=" << n << " round=" << round
          << " c=" << c;
    }
  }
}

TEST(Compose, ComposedSorterDifferentialRandomAndMetastableTo32) {
  for (int n = 2; n <= 32; ++n) {
    McSorter sorter(n, 4);  // auto_select: catalog <= 10, composed beyond
    check_sorter_differential(sorter, 9000u + static_cast<std::uint64_t>(n),
                              8);
  }
}

TEST(Compose, DepthPolicySorterDifferentialTo32) {
  // smallest_depth also switches the 2-sort elaboration to the sklansky
  // cone, so this exercises the other gate-level topology end to end.
  McSorterOptions opt;
  opt.policy = BuildPolicy::smallest_depth;
  for (const int n : {6, 11, 13, 17, 24, 32}) {
    McSorter sorter(n, 4, opt);
    check_sorter_differential(sorter, 9100u + static_cast<std::uint64_t>(n),
                              8);
  }
}

TEST(Compose, PpcSorterDifferentialRandomAndMetastableTo32) {
  for (const PpcTopology topo :
       {PpcTopology::ladner_fischer, PpcTopology::sklansky}) {
    for (const int n : {5, 11, 17, 24, 32}) {
      BuiltNetwork built;
      built.network = ppc_sort_network(n, topo);
      built.route = BuildRoute::ppc;
      McSorter sorter(std::move(built), 4);
      check_sorter_differential(sorter,
                                9200u + static_cast<std::uint64_t>(n), 6);
    }
  }
}

// --- compiled-program invariants and backend agreement ----------------------

TEST(Compose, VerifyIrPassesOnEveryComposedProgram) {
  for (const int n : {11, 16, 24, 32}) {
    const ComparatorNetwork nets[] = {
        composed_sort_network(n, true),
        ppc_sort_network(n, PpcTopology::ladner_fischer),
        ppc_sort_network(n, PpcTopology::sklansky),
    };
    for (const ComparatorNetwork& net : nets) {
      SCOPED_TRACE(net.name());
      const Netlist nl = elaborate_network(net, 3, sort2_builder());
      const CompiledProgram prog = CompiledProgram::compile(nl);
      const Status st = verify_ir(prog);
      ASSERT_TRUE(st.ok()) << st.to_string();
    }
  }
}

TEST(Compose, AllBackendsMatchLegacyOnComposedNetworks) {
  // The compile_test differential, pointed at composer-generated netlists:
  // node-walking reference vs scalar, 64-lane and 256-lane executors on
  // random ternary inputs (arbitrary trits stress every gate path).
  constexpr int kVectors = 80;
  const ComparatorNetwork nets[] = {
      composed_sort_network(12, true),
      composed_sort_network(17, false),
      ppc_sort_network(13, PpcTopology::ladner_fischer),
      ppc_sort_network(11, PpcTopology::sklansky),
      odd_even_merge_network(5, 3),
  };
  Xoshiro256 rng(4242);
  for (const ComparatorNetwork& net : nets) {
    SCOPED_TRACE(net.name());
    const Netlist nl = elaborate_network(net, 2, sort2_builder());
    const std::size_t width = nl.inputs().size();
    const std::size_t outs = nl.outputs().size();

    std::vector<Word> corpus;
    corpus.reserve(kVectors);
    for (int v = 0; v < kVectors; ++v) {
      Word w(width);
      for (std::size_t i = 0; i < width; ++i) {
        w[i] = trit_from_index(static_cast<int>(rng.below(3)));
      }
      corpus.push_back(std::move(w));
    }

    NodeWalkEvaluator legacy(nl);
    std::vector<Word> want;
    want.reserve(kVectors);
    std::vector<Trit> in;
    Word out;
    for (const Word& w : corpus) {
      in.assign(w.begin(), w.end());
      legacy.run_outputs(in, out);
      want.push_back(out);
    }

    const CompiledProgram prog = CompiledProgram::compile(nl);
    ASSERT_TRUE(verify_ir(prog).ok());

    CompiledExecutor<ScalarBackend> scalar(prog);
    std::vector<Trit> sin(width);
    for (int v = 0; v < kVectors; ++v) {
      for (std::size_t i = 0; i < width; ++i) sin[i] = corpus[v][i];
      scalar.run(sin);
      for (std::size_t o = 0; o < outs; ++o) {
        ASSERT_EQ(scalar.output_lane(o, 0), want[v][o])
            << "scalar v=" << v << " o=" << o;
      }
    }

    auto check_packed = [&](auto backend_tag, const char* label) {
      using Backend = decltype(backend_tag);
      CompiledExecutor<Backend> exec(prog);
      std::vector<typename Backend::Value> pin(width);
      for (int base = 0; base < kVectors; base += Backend::kLanes) {
        const int active = std::min(Backend::kLanes, kVectors - base);
        for (std::size_t i = 0; i < width; ++i) {
          for (int lane = 0; lane < active; ++lane) {
            Backend::set_lane(pin[i], lane, corpus[base + lane][i]);
          }
        }
        exec.run(pin);
        for (int lane = 0; lane < active; ++lane) {
          for (std::size_t o = 0; o < outs; ++o) {
            ASSERT_EQ(exec.output_lane(o, lane), want[base + lane][o])
                << label << " v=" << base + lane << " o=" << o;
          }
        }
      }
    };
    check_packed(Packed64Backend{}, "packed64");
    check_packed(Packed256Backend{}, "packed256");
  }
}

// --- NetworkBuilder policy / status surface ---------------------------------

TEST(NetworkBuilder, MapsDegenerateAndOversizedShapesToStatus) {
  NetworkBuilderOptions opt;
  opt.max_channels = 16;
  const NetworkBuilder builder(opt);

  const StatusOr<BuiltNetwork> zero = builder.build(0);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  const StatusOr<BuiltNetwork> negative = builder.build(-3);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  const StatusOr<BuiltNetwork> beyond = builder.build(17);
  ASSERT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.status().code(), StatusCode::kUnimplemented);

  const StatusOr<BuiltNetwork> at_bound = builder.build(16);
  ASSERT_TRUE(at_bound.ok()) << at_bound.status().to_string();
  EXPECT_TRUE(at_bound->network.sorts_all_binary());
}

TEST(NetworkBuilder, RoutesCatalogBelowElevenChannels) {
  const NetworkBuilder builder;
  for (int n = 1; n <= 10; ++n) {
    const StatusOr<BuiltNetwork> built = builder.build(n);
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(built->route, BuildRoute::catalog) << n;
    EXPECT_EQ(built->network.channels(), n);
  }
  // Auto-select keeps the exact historical catalog picks.
  EXPECT_EQ(builder.build(4)->network.size(), 5u);
  EXPECT_EQ(builder.build(9)->network.size(), 25u);
  EXPECT_EQ(builder.build(10)->network.depth(), 7u);
}

TEST(NetworkBuilder, PolicyPicksSizeOrDepthChampion) {
  NetworkBuilderOptions size_opt;
  size_opt.policy = BuildPolicy::smallest_size;
  NetworkBuilderOptions depth_opt;
  depth_opt.policy = BuildPolicy::smallest_depth;
  for (const int n : {11, 17, 24, 32}) {
    const BuiltNetwork by_size = *NetworkBuilder(size_opt).build(n);
    const BuiltNetwork by_depth = *NetworkBuilder(depth_opt).build(n);
    EXPECT_LE(by_size.network.size(), by_depth.network.size()) << n;
    EXPECT_LE(by_depth.network.depth(), by_size.network.depth()) << n;
    EXPECT_NE(by_size.route, BuildRoute::catalog);
    // The 1911.00267 depth lever: smallest_depth pushes the sklansky cone
    // down into the 2-sort elaboration; other policies keep the paper's
    // ladner_fischer.
    EXPECT_EQ(by_depth.sort2_topology, PpcTopology::sklansky);
    EXPECT_EQ(by_size.sort2_topology, PpcTopology::ladner_fischer);
  }
}

TEST(NetworkBuilder, NamesPoliciesAndRoutes) {
  EXPECT_EQ(build_policy_name(BuildPolicy::smallest_size), "smallest_size");
  EXPECT_EQ(build_policy_name(BuildPolicy::smallest_depth), "smallest_depth");
  EXPECT_EQ(build_policy_name(BuildPolicy::auto_select), "auto");
  EXPECT_EQ(build_route_name(BuildRoute::catalog), "catalog");
  EXPECT_EQ(build_route_name(BuildRoute::composed), "composed");
  EXPECT_EQ(build_route_name(BuildRoute::ppc), "ppc");
}

}  // namespace
}  // namespace mcsn
