// Baseline MC 2-sort circuits: functional correctness (same spec as the main
// construction), gate-count formulas, and asymptotic separation from the
// paper's circuit.

#include "mcsn/ckt/sort2_baselines.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/spec.hpp"
#include "mcsn/core/valid.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/timing.hpp"

namespace mcsn {
namespace {

void check_exhaustive(const Netlist& nl, std::size_t bits) {
  const std::vector<Word> all = all_valid_strings(bits);
  Evaluator ev(nl);
  Word out;
  std::vector<Trit> in;
  for (const Word& g : all) {
    for (const Word& h : all) {
      const Word joined = g + h;
      in.assign(joined.begin(), joined.end());
      ev.run_outputs(in, out);
      const auto [mx, mn] = sort2_spec_rank(g, h);
      ASSERT_EQ(out, mx + mn)
          << nl.name() << " g=" << g.str() << " h=" << h.str();
    }
  }
}

TEST(Sort2Baselines, NaiveTreesExhaustive) {
  for (std::size_t bits = 1; bits <= 6; ++bits) {
    const Netlist nl = make_sort2_naive_trees(bits);
    ASSERT_TRUE(nl.validate());
    EXPECT_TRUE(nl.mc_safe());
    check_exhaustive(nl, bits);
  }
}

TEST(Sort2Baselines, Date17StyleExhaustive) {
  for (std::size_t bits = 1; bits <= 6; ++bits) {
    const Netlist nl = make_sort2_date17_style(bits);
    ASSERT_TRUE(nl.validate());
    EXPECT_TRUE(nl.mc_safe());
    check_exhaustive(nl, bits);
  }
}

TEST(Sort2Baselines, GateCountFormulas) {
  for (std::size_t bits = 1; bits <= 20; ++bits) {
    EXPECT_EQ(make_sort2_naive_trees(bits).gate_count(),
              sort2_naive_trees_gate_count(bits));
    EXPECT_EQ(make_sort2_date17_style(bits).gate_count(),
              sort2_date17_style_gate_count(bits));
  }
}

// The naive baseline is Theta(B^2): quadratic growth visible by B=32.
TEST(Sort2Baselines, NaiveTreesAreQuadratic) {
  const std::size_t g16 = sort2_naive_trees_gate_count(16);
  const std::size_t g32 = sort2_naive_trees_gate_count(32);
  EXPECT_GT(g32, 3 * g16);  // quadratic: ~4x, linear would be ~2x
}

// The DATE'17-style baseline is Theta(B log B): super-linear but
// sub-quadratic, and asymptotically above the paper's O(B) circuit.
TEST(Sort2Baselines, Date17StyleIsBetweenLinearAndQuadratic) {
  const std::size_t g16 = sort2_date17_style_gate_count(16);
  const std::size_t g64 = sort2_date17_style_gate_count(64);
  EXPECT_GT(g64, 4 * g16);   // super-linear
  EXPECT_LT(g64, 16 * g16);  // sub-quadratic
  EXPECT_GT(g16, sort2_gate_count(16));
}

// Reconstruction quality vs the published DATE'17 numbers: within 35% at
// every width (documented substitution, see DESIGN.md).
TEST(Sort2Baselines, Date17StyleTracksPublishedCounts) {
  const std::pair<std::size_t, std::size_t> published[] = {
      {2, 34}, {4, 160}, {8, 504}, {16, 1344}};
  for (const auto& [bits, gates] : published) {
    const double measured =
        static_cast<double>(sort2_date17_style_gate_count(bits));
    const double ref = static_cast<double>(gates);
    EXPECT_LT(measured / ref, 1.35) << "B=" << bits;
    EXPECT_GT(measured / ref, 0.40) << "B=" << bits;
  }
}

// Depth: both parallel baselines are logarithmic; serial-topology sort2 is
// linear (it is the unrolled FSM).
TEST(Sort2Baselines, DepthClasses) {
  EXPECT_LE(logic_depth(make_sort2_date17_style(16)), 3 * 4 + 4);
  EXPECT_LE(logic_depth(make_sort2_naive_trees(16)), 3 * 4 + 4);
  const Netlist serial = make_sort2(16, Sort2Options{PpcTopology::serial});
  EXPECT_GE(logic_depth(serial), 3 * 14);
}

}  // namespace
}  // namespace mcsn
