// Static timing analysis and area accounting.

#include "mcsn/netlist/timing.hpp"

#include <gtest/gtest.h>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/stats.hpp"

namespace mcsn {
namespace {

Netlist chain(std::size_t length) {
  Netlist nl("chain");
  NodeId n = nl.add_input("a");
  for (std::size_t i = 0; i < length; ++i) n = nl.inv(n);
  nl.mark_output(n, "y");
  return nl;
}

TEST(Timing, UnitDepthOfChain) {
  EXPECT_EQ(logic_depth(chain(1)), 1u);
  EXPECT_EQ(logic_depth(chain(7)), 7u);
}

TEST(Timing, UnitLibraryDelayEqualsDepth) {
  const Netlist nl = chain(5);
  const TimingReport rep = analyze_timing(nl, CellLibrary::unit());
  EXPECT_DOUBLE_EQ(rep.critical_delay, 5.0);
}

TEST(Timing, CriticalPathEndsAtWorstOutput) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId fast = nl.inv(a);
  const NodeId slow = nl.inv(nl.inv(nl.inv(a)));
  nl.mark_output(fast, "fast");
  nl.mark_output(slow, "slow");
  const TimingReport rep = analyze_timing(nl, CellLibrary::unit());
  EXPECT_DOUBLE_EQ(rep.critical_delay, 3.0);
  ASSERT_FALSE(rep.critical_path.empty());
  EXPECT_EQ(rep.critical_path.back(), slow);
  EXPECT_EQ(rep.critical_path.front(), a);  // walks back to the input
}

TEST(Timing, LoadDependentDelayGrowsWithFanout) {
  // One inverter driving k loads must be slower than driving one.
  auto fanout_circuit = [](int k) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId x = nl.inv(a);
    for (int i = 0; i < k; ++i) nl.mark_output(nl.inv(x), "o" + std::to_string(i));
    return nl;
  };
  const auto& lib = CellLibrary::paper_calibrated();
  const double d1 = analyze_timing(fanout_circuit(1), lib).critical_delay;
  const double d8 = analyze_timing(fanout_circuit(8), lib).critical_delay;
  EXPECT_GT(d8, d1);
}

TEST(Timing, AreaSumsCells) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.or2(nl.and2(a, b), nl.inv(a)), "y");
  const auto& lib = CellLibrary::paper_calibrated();
  const double expect = lib.params(CellKind::and2).area +
                        lib.params(CellKind::or2).area +
                        lib.params(CellKind::inv).area;
  EXPECT_DOUBLE_EQ(total_area(nl, lib), expect);
  EXPECT_DOUBLE_EQ(total_area(nl, CellLibrary::unit()), 3.0);
}

TEST(Timing, ResolutionLatencyPerInput) {
  // y = inv(a); z = inv(inv(b)): b's cone is deeper than a's.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.inv(a), "y");
  nl.mark_output(nl.inv(nl.inv(b)), "z");
  const auto& unit = CellLibrary::unit();
  EXPECT_DOUBLE_EQ(resolution_latency(nl, unit, 0), 1.0);
  EXPECT_DOUBLE_EQ(resolution_latency(nl, unit, 1), 2.0);
  EXPECT_DOUBLE_EQ(worst_resolution_latency(nl, unit),
                   analyze_timing(nl, unit).critical_delay);
}

TEST(Timing, ResolutionLatencyOfSort2Inputs) {
  // Every input of the 2-sort reaches some output; the first Gray bit g_1
  // feeds the whole prefix chain, so its cone is among the deepest, while
  // the last bit g_B only feeds its own outM block.
  const Netlist nl = make_sort2(8);
  const auto& lib = CellLibrary::paper_calibrated();
  const double first = resolution_latency(nl, lib, 0);
  const double last = resolution_latency(nl, lib, 7);
  EXPECT_GT(first, last);
  EXPECT_GT(last, 0.0);
  EXPECT_DOUBLE_EQ(worst_resolution_latency(nl, lib),
                   analyze_timing(nl, lib).critical_delay);
}

TEST(Timing, StatsAggregate) {
  Netlist nl("agg");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.or2(nl.and2(a, b), nl.inv(a)), "y");
  const CircuitStats s = compute_stats(nl);
  EXPECT_EQ(s.gates, 3u);
  EXPECT_EQ(s.and_gates, 1u);
  EXPECT_EQ(s.or_gates, 1u);
  EXPECT_EQ(s.inverters, 1u);
  EXPECT_EQ(s.other_gates, 0u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_TRUE(s.mc_safe);
  EXPECT_GT(s.delay, 0.0);
}

}  // namespace
}  // namespace mcsn
