// The unified request/response API: Status/StatusOr semantics, SortRequest
// construction and validation, SortResponse decoding, and — the load-bearing
// property — that the flat zero-copy batch entry points are bit-identical to
// the legacy vector-of-vectors path on every catalog shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mcsn/api/sort_api.hpp"
#include "mcsn/api/status.hpp"
#include "mcsn/core/gray.hpp"
#include "mcsn/sorter.hpp"
#include "mcsn/util/loadgen.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

// --- Status / StatusOr -------------------------------------------------------

TEST(Status, DefaultIsOkAndFactoriesCarryCodeAndMessage) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "ok");

  const Status bad = Status::invalid_argument("ragged round");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "ragged round");
  EXPECT_EQ(bad.to_string(), "invalid_argument: ragged round");

  EXPECT_EQ(status_code_name(StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(status_code_name(StatusCode::kDataLoss), "data_loss");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> with_value(42);
  ASSERT_TRUE(with_value.ok());
  EXPECT_EQ(*with_value, 42);
  EXPECT_TRUE(with_value.status().ok());

  StatusOr<int> with_error(Status::unavailable("stopped"));
  ASSERT_FALSE(with_error.ok());
  EXPECT_EQ(with_error.status().code(), StatusCode::kUnavailable);

  // Move-out works for move-only payloads.
  StatusOr<std::unique_ptr<int>> moveonly(std::make_unique<int>(7));
  ASSERT_TRUE(moveonly.ok());
  std::unique_ptr<int> taken = std::move(moveonly).value();
  EXPECT_EQ(*taken, 7);
}

// --- SortShape / SortRequest -------------------------------------------------

TEST(SortShape, ValidatesBounds) {
  EXPECT_TRUE((SortShape{4, 8}).validate().ok());
  EXPECT_FALSE((SortShape{0, 8}).validate().ok());
  EXPECT_FALSE((SortShape{4, 0}).validate().ok());
  EXPECT_FALSE((SortShape{kMaxChannels + 1, 8}).validate().ok());
  EXPECT_FALSE((SortShape{4, kMaxBits + 1}).validate().ok());
  EXPECT_EQ((SortShape{4, 8}).trits(), 32u);
}

TEST(SortRequest, ViewAliasesCallerMemoryAndOwnCopies) {
  const std::vector<Trit> flat(8, Trit::one);
  const StatusOr<SortRequest> view = SortRequest::view(SortShape{2, 4}, flat);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->payload.data(), flat.data());  // zero-copy
  EXPECT_EQ(view->storage, nullptr);
  EXPECT_TRUE(view->validate().ok());

  const StatusOr<SortRequest> owned =
      SortRequest::own(SortShape{2, 4}, std::vector<Trit>(8, Trit::meta));
  ASSERT_TRUE(owned.ok());
  ASSERT_NE(owned->storage, nullptr);
  EXPECT_EQ(owned->payload.data(), owned->storage->data());
}

TEST(SortRequest, FactoriesRejectMismatchedPayloads) {
  const std::vector<Trit> flat(7, Trit::zero);  // 7 != 2*4
  EXPECT_EQ(SortRequest::view(SortShape{2, 4}, flat).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SortRequest::own(SortShape{0, 4}, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SortRequest::from_words({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SortRequest::from_words({Word(4), Word(3)}).status().code(),
            StatusCode::kInvalidArgument);  // ragged
}

TEST(SortRequest, FromValuesGrayEncodesAndFlagsIntent) {
  const StatusOr<SortRequest> req = SortRequest::from_values(
      SortShape{3, 4}, std::vector<std::uint64_t>{5, 0, 15});
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->values_requested);
  ASSERT_EQ(req->payload.size(), 12u);
  const Word expect5 = gray_encode(5, 4);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(req->payload[b], expect5[b]);
}

// Satellite regression: every integer-valued entry point rejects bits > 64
// (values are uint64_t) instead of silently mis-encoding.
TEST(SortRequest, FromValuesRejectsBitsOver64AndOutOfRangeValues) {
  const StatusOr<SortRequest> too_wide = SortRequest::from_values(
      SortShape{2, 65}, std::vector<std::uint64_t>{1, 2});
  ASSERT_FALSE(too_wide.ok());
  EXPECT_EQ(too_wide.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_wide.status().message().find("64"), std::string::npos);

  const StatusOr<SortRequest> too_big = SortRequest::from_values(
      SortShape{2, 4}, std::vector<std::uint64_t>{3, 16});  // 16 needs 5 bits
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);

  // 64 bits exactly is fine, including the extreme value.
  EXPECT_TRUE(SortRequest::from_values(
                  SortShape{2, 64},
                  std::vector<std::uint64_t>{0, ~std::uint64_t{0}})
                  .ok());
}

// --- SortResponse ------------------------------------------------------------

TEST(SortResponse, WordsAndValuesDecodeThePayload) {
  SortResponse rsp;
  rsp.shape = SortShape{2, 3};
  const Word a = gray_encode(6, 3);
  const Word b = gray_encode(1, 3);
  rsp.payload.insert(rsp.payload.end(), a.begin(), a.end());
  rsp.payload.insert(rsp.payload.end(), b.begin(), b.end());

  const std::vector<Word> words = rsp.words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], a);
  EXPECT_EQ(words[1], b);

  const StatusOr<std::vector<std::uint64_t>> values = rsp.values();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<std::uint64_t>{6, 1}));
}

TEST(SortResponse, ValuesFailOnMetastableOrErrorResponses) {
  SortResponse rsp;
  rsp.shape = SortShape{1, 2};
  rsp.payload = {Trit::one, Trit::meta};
  const StatusOr<std::vector<std::uint64_t>> meta = rsp.values();
  ASSERT_FALSE(meta.ok());
  EXPECT_EQ(meta.status().code(), StatusCode::kFailedPrecondition);

  const SortResponse failed = SortResponse::failure(
      Status::unavailable("stopped"), SortShape{1, 2});
  EXPECT_EQ(failed.values().status().code(), StatusCode::kUnavailable);
}

// --- flat batch parity -------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::span<const Trit> trits) {
  for (const Trit t : trits) {
    h ^= static_cast<std::uint64_t>(t) + 1;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Differential parity on every catalog shape (plus a Batcher fallback):
// sort_batch_flat and sort_request are checksum-identical to the legacy
// sort_batch path on random valid rounds, including partial lane groups.
TEST(McSorterFlat, FlatBatchMatchesLegacySortBatchOnAllCatalogShapes) {
  struct Case {
    int channels;
    std::size_t bits;
    std::size_t rounds;
  };
  // 4/7/9/10 hit the paper's optimal catalog networks; 6 exercises the
  // Batcher odd-even fallback. Round counts straddle the 256-lane group.
  const std::vector<Case> cases = {
      {4, 4, 300}, {7, 3, 57}, {9, 2, 64}, {10, 4, 10}, {6, 5, 130}};
  Xoshiro256 rng(77);
  for (const Case& c : cases) {
    const McSorter sorter(c.channels, c.bits);
    const std::size_t round_trits = sorter.shape().trits();

    std::vector<std::vector<Word>> rounds;
    std::vector<Trit> flat;
    flat.reserve(c.rounds * round_trits);
    for (std::size_t r = 0; r < c.rounds; ++r) {
      rounds.push_back(random_valid_round(rng, c.channels, c.bits));
      for (const Word& w : rounds.back()) {
        flat.insert(flat.end(), w.begin(), w.end());
      }
    }

    const std::vector<std::vector<Word>> expect = sorter.sort_batch(rounds);
    std::uint64_t expect_sum = 0xcbf29ce484222325ULL;
    for (const std::vector<Word>& round : expect) {
      for (const Word& w : round) {
        expect_sum = fnv1a(expect_sum, std::vector<Trit>(w.begin(), w.end()));
      }
    }

    std::vector<Trit> out(flat.size());
    ASSERT_TRUE(sorter.sort_batch_flat(flat, out).ok())
        << c.channels << "x" << c.bits;
    EXPECT_EQ(fnv1a(0xcbf29ce484222325ULL, out), expect_sum)
        << c.channels << "x" << c.bits;

    // Single-round request path agrees too.
    const SortResponse rsp = sorter.sort_request(std::move(
        SortRequest::view(sorter.shape(),
                          std::span<const Trit>(flat).first(round_trits))
            .value()));
    ASSERT_TRUE(rsp.status.ok());
    EXPECT_EQ(rsp.words(), expect[0]) << c.channels << "x" << c.bits;
  }
}

TEST(McSorterFlat, FlatBatchRejectsMisshapenBuffers) {
  const McSorter sorter(4, 4);
  std::vector<Trit> in(17);  // not a multiple of 16
  std::vector<Trit> out(17);
  EXPECT_EQ(sorter.sort_batch_flat(in, out).code(),
            StatusCode::kInvalidArgument);
  in.resize(32);
  out.resize(16);  // output size mismatch
  EXPECT_EQ(sorter.sort_batch_flat(in, out).code(),
            StatusCode::kInvalidArgument);
  out.resize(32);
  EXPECT_TRUE(sorter.sort_batch_flat(in, out).ok());
}

TEST(McSorterFlat, SortRequestReportsShapeMismatch) {
  const McSorter sorter(4, 4);
  const SortResponse rsp = sorter.sort_request(std::move(
      SortRequest::from_values(SortShape{4, 5},
                               std::vector<std::uint64_t>{1, 2, 3, 4})
          .value()));
  EXPECT_EQ(rsp.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(rsp.payload.empty());
}

}  // namespace
}  // namespace mcsn
