// Structural Verilog reader: hand-written netlists, full round trips
// (write -> parse -> formally ternary-equivalent), and error reporting.

#include "mcsn/netlist/verilog_in.hpp"

#include <gtest/gtest.h>

#include "mcsn/ckt/bincomp.hpp"
#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/equiv.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/verilog.hpp"

namespace mcsn {
namespace {

TEST(VerilogIn, ParsesHandWrittenModule) {
  const char* src = R"(
    // a tiny mux built from gates
    module tiny (a, b, s, y);
      input a; input b; input s;
      output y;
      wire ns; wire t0; wire t1; wire yw;
      INV_X1  u0 (.A(s), .ZN(ns));
      AND2_X1 u1 (.A1(a), .A2(ns), .Z(t0));
      AND2_X1 u2 (.A1(b), .A2(s), .Z(t1));
      OR2_X1  u3 (.A1(t0), .A2(t1), .Z(yw));
      assign y = yw;
    endmodule
  )";
  VerilogError err;
  const auto nl = parse_verilog(src, &err);
  ASSERT_TRUE(nl) << err.message << " at line " << err.line;
  EXPECT_EQ(nl->name(), "tiny");
  EXPECT_EQ(nl->inputs().size(), 3u);
  EXPECT_EQ(nl->outputs().size(), 1u);
  EXPECT_EQ(nl->gate_count(), 4u);
  EXPECT_EQ(evaluate(*nl, *Word::parse("010")).str(), "0");
  EXPECT_EQ(evaluate(*nl, *Word::parse("011")).str(), "1");
  EXPECT_EQ(evaluate(*nl, *Word::parse("10M")).str(), "M");  // SOP mux leaks
}

TEST(VerilogIn, InstancesInAnyOrderAreSorted) {
  const char* src = R"(
    module reorder (a, y);
      input a; output y;
      wire w1; wire w2;
      INV_X1 u1 (.A(w1), .ZN(w2));   // uses w1 before its driver appears
      INV_X1 u0 (.A(a), .ZN(w1));
      assign y = w2;
    endmodule
  )";
  const auto nl = parse_verilog(src);
  ASSERT_TRUE(nl);
  EXPECT_TRUE(nl->validate());
  EXPECT_EQ(evaluate(*nl, *Word::parse("1")).str(), "1");
}

TEST(VerilogIn, ConstantWires) {
  const char* src = R"(
    module konst (a, y);
      input a; output y;
      wire one = 1'b1; wire w;
      AND2_X1 u0 (.A1(a), .A2(one), .Z(w));
      assign y = w;
    endmodule
  )";
  const auto nl = parse_verilog(src);
  ASSERT_TRUE(nl);
  EXPECT_EQ(evaluate(*nl, *Word::parse("M")).str(), "M");
  EXPECT_EQ(evaluate(*nl, *Word::parse("0")).str(), "0");
}

TEST(VerilogIn, RoundTripSort2FormallyEquivalent) {
  const Netlist orig = make_sort2(6);
  VerilogError err;
  const auto back = parse_verilog(to_verilog(orig), &err);
  ASSERT_TRUE(back) << err.message;
  EXPECT_EQ(back->gate_count(), orig.gate_count());
  EXPECT_EQ(back->gate_histogram(), orig.gate_histogram());
  EXPECT_EQ(back->inputs().size(), orig.inputs().size());
  EXPECT_EQ(back->outputs().size(), orig.outputs().size());
  const FormalEquivResult res = check_equivalence_formal(orig, *back);
  EXPECT_TRUE(res.equivalent) << res.witness->str();
}

TEST(VerilogIn, RoundTripExtendedCells) {
  const Netlist orig = make_bincomp(4);
  const auto back = parse_verilog(to_verilog(orig));
  ASSERT_TRUE(back);
  EXPECT_EQ(back->gate_histogram(), orig.gate_histogram());
  // Boolean equivalence (bincomp is non-MC anyway, but the reader must
  // reproduce the exact ternary function too).
  const FormalEquivResult res = check_equivalence_formal(orig, *back);
  EXPECT_TRUE(res.equivalent);
}

TEST(VerilogIn, ReportsErrors) {
  VerilogError err;
  EXPECT_FALSE(parse_verilog("library (x) {}", &err));
  EXPECT_FALSE(err.message.empty());
  // Unknown cell.
  EXPECT_FALSE(parse_verilog(
      "module m (a, y); input a; output y; wire w;\n"
      "MAGIC_X1 u0 (.A(a), .Z(w)); assign y = w; endmodule",
      &err));
  // Undriven output.
  EXPECT_FALSE(parse_verilog(
      "module m (a, y); input a; output y; endmodule", &err));
  // Cycle.
  EXPECT_FALSE(parse_verilog(
      "module m (a, y); input a; output y; wire w1; wire w2;\n"
      "INV_X1 u0 (.A(w2), .ZN(w1)); INV_X1 u1 (.A(w1), .ZN(w2));\n"
      "assign y = w1; endmodule",
      &err));
  EXPECT_NE(err.message.find("cycle"), std::string::npos);
}

}  // namespace
}  // namespace mcsn
