// Cross-cutting property suites:
//  * refinement monotonicity of the closure operators and of whole circuits
//    on arbitrary ternary inputs,
//  * Theorem 4.1 over ALL parenthesizations (Catalan enumeration),
//  * idempotence of sorting at the netlist level (sort twice == sort once),
//  * packed/scalar evaluator agreement on the real circuits.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "mcsn/mcsn.hpp"

namespace mcsn {
namespace {

// x refines y (x is "at least as defined"): every stable bit of y agrees.
bool refines(TritPair x, TritPair y) {
  const auto bit_refines = [](Trit xb, Trit yb) {
    return is_meta(yb) || xb == yb;
  };
  return bit_refines(x.first, y.first) && bit_refines(x.second, y.second);
}

// Closure operators are monotone w.r.t. the information order: more defined
// inputs can only give more defined (consistent) outputs. Exhaustive 9^2/9^2.
TEST(Property, DiamondAndOutClosuresAreRefinementMonotone) {
  for (int s1 = 0; s1 < kPairCount; ++s1) {
    for (int b1 = 0; b1 < kPairCount; ++b1) {
      const TritPair s = TritPair::from_index(s1);
      const TritPair b = TritPair::from_index(b1);
      for (int s2 = 0; s2 < kPairCount; ++s2) {
        for (int b2 = 0; b2 < kPairCount; ++b2) {
          const TritPair sr = TritPair::from_index(s2);
          const TritPair br = TritPair::from_index(b2);
          if (!refines(sr, s) || !refines(br, b)) continue;
          EXPECT_TRUE(refines(diamond_m(sr, br), diamond_m(s, b)));
          EXPECT_TRUE(refines(out_m(sr, br), out_m(s, b)));
        }
      }
    }
  }
}

// Enumerates all parenthesizations (full binary trees) over the leaf range:
// returns every possible fold value of leaves[lo..hi] over diamond_m.
std::vector<TritPair> fold_values(const std::vector<TritPair>& leaves,
                                  std::size_t lo, std::size_t hi) {
  if (lo == hi) return {leaves[lo]};
  std::vector<TritPair> out;
  for (std::size_t split = lo; split < hi; ++split) {
    for (const TritPair a : fold_values(leaves, lo, split)) {
      for (const TritPair b : fold_values(leaves, split + 1, hi)) {
        out.push_back(diamond_m(a, b));
      }
    }
  }
  return out;
}

// Theorem 4.1, strengthened test: for valid strings, EVERY parenthesization
// of ⋄M yields the same value (the paper proves it for the ones a PPC uses;
// we check all Catalan(n-1) trees at B=5).
TEST(Property, Theorem41AllParenthesizations) {
  const std::size_t bits = 5;
  const std::vector<Word> all = all_valid_strings(bits);
  // Subsample pairs for runtime: every 3rd string against every 5th.
  for (std::size_t a = 0; a < all.size(); a += 3) {
    for (std::size_t b = 0; b < all.size(); b += 5) {
      std::vector<TritPair> leaves(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        leaves[i] = TritPair{all[a][i], all[b][i]};
      }
      const std::vector<TritPair> folds = fold_values(leaves, 0, bits - 1);
      ASSERT_EQ(folds.size(), 14u);  // Catalan(4)
      for (const TritPair f : folds) {
        EXPECT_EQ(f, folds.front())
            << all[a].str() << " / " << all[b].str();
      }
    }
  }
}

// Whole-circuit refinement monotonicity on ARBITRARY ternary inputs (not
// just valid strings): a circuit of closure gates is always monotone.
TEST(Property, Sort2RefinementMonotoneOnArbitraryTernary) {
  const std::size_t bits = 4;
  const Netlist nl = make_sort2(bits);
  Evaluator ev(nl);
  Xoshiro256 rng(314);
  Word base_out, ref_out;
  std::vector<Trit> in;
  for (int trial = 0; trial < 400; ++trial) {
    Word w(2 * bits);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = trit_from_index(static_cast<int>(rng.below(3)));
    }
    in.assign(w.begin(), w.end());
    ev.run_outputs(in, base_out);
    // Refine one random M (if any).
    std::vector<std::size_t> metas;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (is_meta(w[i])) metas.push_back(i);
    }
    if (metas.empty()) continue;
    Word r = w;
    r[metas[rng.below(metas.size())]] = to_trit(rng.below(2) == 1);
    in.assign(r.begin(), r.end());
    ev.run_outputs(in, ref_out);
    EXPECT_TRUE(base_out.matches_resolution(ref_out) ||
                [&] {
                  // matches_resolution requires stability; check per-trit
                  // refinement instead.
                  for (std::size_t i = 0; i < base_out.size(); ++i) {
                    if (!is_meta(base_out[i]) && base_out[i] != ref_out[i]) {
                      return false;
                    }
                  }
                  return true;
                }())
        << w.str();
  }
}

// Sorting is idempotent at the netlist level: chain two sorters.
TEST(Property, SortingTwiceEqualsSortingOnce) {
  const std::size_t bits = 3;
  Netlist nl("double_sort");
  std::vector<Bus> ch(4);
  for (int c = 0; c < 4; ++c) {
    ch[static_cast<std::size_t>(c)] =
        nl.add_input_bus("ch" + std::to_string(c), bits);
  }
  const ComparatorNetwork net = optimal_4();
  auto apply_network = [&](std::vector<Bus> buses) {
    for (const auto& layer : net.layers()) {
      for (const Comparator& c : layer) {
        const BusPair s = build_sort2(nl, buses[static_cast<std::size_t>(c.lo)],
                                      buses[static_cast<std::size_t>(c.hi)]);
        buses[static_cast<std::size_t>(c.lo)] = s.min;
        buses[static_cast<std::size_t>(c.hi)] = s.max;
      }
    }
    return buses;
  };
  const std::vector<Bus> once = apply_network(ch);
  const std::vector<Bus> twice = apply_network(once);
  for (int c = 0; c < 4; ++c) {
    nl.mark_output_bus(once[static_cast<std::size_t>(c)],
                       "once" + std::to_string(c));
  }
  for (int c = 0; c < 4; ++c) {
    nl.mark_output_bus(twice[static_cast<std::size_t>(c)],
                       "twice" + std::to_string(c));
  }

  Evaluator ev(nl);
  Xoshiro256 rng(99);
  Word out;
  std::vector<Trit> in;
  for (int trial = 0; trial < 500; ++trial) {
    in.clear();
    for (int c = 0; c < 4; ++c) {
      const Word w = valid_from_rank(rng.below(valid_count(bits)), bits);
      in.insert(in.end(), w.begin(), w.end());
    }
    ev.run_outputs(in, out);
    const std::size_t half = 4 * bits;
    EXPECT_EQ(out.sub(0, half - 1), out.sub(half, 2 * half - 1));
  }
}

// Packed and scalar evaluators agree on the paper's big circuit.
TEST(Property, PackedScalarAgreementOnSort2) {
  const std::size_t bits = 16;
  const Netlist nl = make_sort2(bits);
  Evaluator scalar(nl);
  PackedEvaluator packed(nl);
  Xoshiro256 rng(555);
  std::vector<PackedTrit> pin(2 * bits);
  std::vector<Word> words(64, Word(2 * bits));
  for (int lane = 0; lane < 64; ++lane) {
    for (std::size_t i = 0; i < 2 * bits; ++i) {
      const Trit t = trit_from_index(static_cast<int>(rng.below(3)));
      words[static_cast<std::size_t>(lane)][i] = t;
      pin[i].set_lane(lane, t);
    }
  }
  packed.run(pin);
  Word out;
  std::vector<Trit> in;
  for (int lane = 0; lane < 64; ++lane) {
    const Word& w = words[static_cast<std::size_t>(lane)];
    in.assign(w.begin(), w.end());
    scalar.run_outputs(in, out);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      ASSERT_EQ(out[o], packed.output_lane(o, lane)) << lane;
    }
  }
}

// The FSM reference model is refinement-monotone too (it is built from
// closure tables).
TEST(Property, FsmSortRefinementMonotone) {
  const std::size_t bits = 6;
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 1000; ++trial) {
    const Word g = valid_from_rank(rng.below(valid_count(bits)), bits);
    const Word h = valid_from_rank(rng.below(valid_count(bits)), bits);
    const auto [mx, mn] = GrayCompareFsm::sort2(g, h);
    Word gr = g, hr = h;
    gr.for_each_resolution([&](const Word& gres) {
      hr.for_each_resolution([&](const Word& hres) {
        const auto [rmx, rmn] = GrayCompareFsm::sort2(gres, hres);
        EXPECT_TRUE(mx.matches_resolution(rmx));
        EXPECT_TRUE(mn.matches_resolution(rmn));
      });
    });
  }
}

}  // namespace
}  // namespace mcsn
