// Abstraction soundness: on ARBITRARY ternary inputs (even invalid ones),
// the gate-level circuit is a *sound abstraction* of the ideal metastable
// closure: wherever the circuit outputs a stable value, the ideal closure
// outputs the same value (the circuit may only be more pessimistic — extra
// Ms — never wrong). On valid strings the two coincide exactly (the paper's
// theorems; tested elsewhere). Uses check_exhaustive_ternary for the
// full-domain sweeps.

#include <gtest/gtest.h>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/core/spec.hpp"
#include "mcsn/netlist/check.hpp"
#include "mcsn/netlist/eval.hpp"

namespace mcsn {
namespace {

// a ⊑ b: b refines a (b agrees with every stable bit of a).
bool abstracts(const Word& a, const Word& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!is_meta(a[i]) && a[i] != b[i]) return false;
  }
  return true;
}

// OBSERVED STRENGTHENING (exhaustive through B=4, i.e. 3^8 = 6561 ternary
// input combinations): the gate-level circuit does not just soundly
// abstract the ideal closure — it computes it EXACTLY on every ternary
// input, including words that are not valid strings (multiple Ms,
// non-neighbor superpositions). The paper only claims exactness on valid
// strings; we record the stronger empirical property at the widths we can
// enumerate, and assert soundness in any case.
TEST(Soundness, CircuitEqualsIdealClosureOnAllTernaryInputsUpToB4) {
  for (const std::size_t bits : {2u, 3u, 4u}) {
    const Netlist nl = make_sort2(bits);
    Evaluator ev(nl);
    Word out;
    std::vector<Trit> in;
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < 2 * bits; ++i) total *= 3;
    for (std::uint64_t v = 0; v < total; ++v) {
      Word w(2 * bits);
      std::uint64_t x = v;
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = trit_from_index(static_cast<int>(x % 3));
        x /= 3;
      }
      in.assign(w.begin(), w.end());
      ev.run_outputs(in, out);
      const auto [mx, mn] =
          sort2_spec_closure(w.sub(0, bits - 1), w.sub(bits, 2 * bits - 1));
      const Word ideal = mx + mn;
      ASSERT_TRUE(abstracts(out, ideal))
          << "soundness violated at " << w.str() << ": circuit " << out.str()
          << " vs ideal " << ideal.str();
      ASSERT_EQ(out, ideal) << "exactness lost at " << w.str();
    }
  }
}

// At larger widths we cannot enumerate 3^(2B), but soundness must still hold
// on random arbitrary-ternary samples.
TEST(Soundness, CircuitSoundOnRandomTernaryAtB8) {
  const std::size_t bits = 8;
  const Netlist nl = make_sort2(bits);
  Evaluator ev(nl);
  Word out;
  std::vector<Trit> in;
  std::uint64_t seed = 12345;
  for (int trial = 0; trial < 300; ++trial) {
    Word w(2 * bits);
    for (std::size_t i = 0; i < w.size(); ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      w[i] = trit_from_index(static_cast<int>((seed >> 33) % 3));
    }
    in.assign(w.begin(), w.end());
    ev.run_outputs(in, out);
    const auto [mx, mn] =
        sort2_spec_closure(w.sub(0, bits - 1), w.sub(bits, 2 * bits - 1));
    ASSERT_TRUE(abstracts(out, mx + mn)) << w.str();
  }
}

// check_exhaustive_ternary: the single out block IS exactly the ideal
// closure on its whole 4-trit domain (proved in ops_test via tables; here
// exercised through the generic checker API).
TEST(Soundness, CheckExhaustiveTernaryApi) {
  Netlist nl("or_and");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.or2(a, b), "max");
  nl.mark_output(nl.and2(a, b), "min");
  const auto fail = check_exhaustive_ternary(nl, [](const Word& in) {
    return Word{trit_or(in[0], in[1]), trit_and(in[0], in[1])};
  });
  EXPECT_FALSE(fail) << (fail ? fail->describe() : "");

  // And a deliberately wrong spec is caught.
  const auto caught = check_exhaustive_ternary(nl, [](const Word& in) {
    return Word{trit_and(in[0], in[1]), trit_or(in[0], in[1])};
  });
  ASSERT_TRUE(caught);
  EXPECT_FALSE(caught->describe().empty());
}

TEST(Soundness, CheckExhaustiveTernaryGuardsWidth) {
  Netlist nl("wide");
  Bus in = nl.add_input_bus("x", 13);
  nl.mark_output(in[0], "y");
  EXPECT_THROW(
      (void)check_exhaustive_ternary(nl, [](const Word& w) { return w; }),
      std::length_error);
}

// Resolution-count guard on Word.
TEST(Soundness, ResolutionGuard) {
  Word w(25, Trit::meta);
  EXPECT_THROW((void)w.resolutions(), std::length_error);
}

}  // namespace
}  // namespace mcsn
