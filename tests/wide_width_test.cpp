// Wide-width stress: the paper evaluates up to B=16; the library must scale
// beyond (time-to-digital converters easily produce 20+ bits). Randomized
// verification against the rank specification at B in {24, 32, 48} with the
// packed evaluator, plus rank machinery near the 64-bit boundary.

#include <gtest/gtest.h>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/core/fsm.hpp"
#include "mcsn/core/gray.hpp"
#include "mcsn/core/spec.hpp"
#include "mcsn/core/valid.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/timing.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

class WideSort2 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WideSort2, PackedRandomAgainstRankSpec) {
  const std::size_t bits = GetParam();
  const Netlist nl = make_sort2(bits);
  ASSERT_TRUE(nl.validate());
  PackedEvaluator ev(nl);
  Xoshiro256 rng(bits);
  std::vector<PackedTrit> in(2 * bits);
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<Word> gs(64), hs(64);
    for (int lane = 0; lane < 64; ++lane) {
      gs[static_cast<std::size_t>(lane)] =
          valid_from_rank(rng.below(valid_count(bits)), bits);
      hs[static_cast<std::size_t>(lane)] =
          valid_from_rank(rng.below(valid_count(bits)), bits);
      for (std::size_t i = 0; i < bits; ++i) {
        in[i].set_lane(lane, gs[static_cast<std::size_t>(lane)][i]);
        in[bits + i].set_lane(lane, hs[static_cast<std::size_t>(lane)][i]);
      }
    }
    ev.run(in);
    for (int lane = 0; lane < 64; ++lane) {
      const auto [mx, mn] =
          sort2_spec_rank(gs[static_cast<std::size_t>(lane)],
                          hs[static_cast<std::size_t>(lane)]);
      for (std::size_t i = 0; i < bits; ++i) {
        ASSERT_EQ(ev.output_lane(i, lane), mx[i]) << bits << " " << lane;
        ASSERT_EQ(ev.output_lane(bits + i, lane), mn[i])
            << bits << " " << lane;
      }
    }
  }
}

TEST_P(WideSort2, LinearSizeLogDepth) {
  const std::size_t bits = GetParam();
  const Netlist nl = make_sort2(bits);
  EXPECT_LE(nl.gate_count(), 31 * bits);
  std::size_t log2b = 0;
  while ((std::size_t{1} << log2b) < bits) ++log2b;
  EXPECT_LE(logic_depth(nl), 3 * (2 * log2b - 1) + 4);
}

INSTANTIATE_TEST_SUITE_P(Widths, WideSort2,
                         ::testing::Values(std::size_t{24}, std::size_t{32},
                                           std::size_t{48}));

TEST(WideWidth, RankMachineryNear64Bits) {
  // valid_rank works up to B=62 (rank needs B+1 bits).
  const std::size_t bits = 62;
  const std::uint64_t huge = (std::uint64_t{1} << bits) - 2;
  const Word top = gray_encode(huge + 1, bits);
  EXPECT_EQ(*valid_rank(top), 2 * (huge + 1));
  // Marginal word between the two largest values.
  Word w = gray_encode(huge, bits);
  w[gray_flip_index(huge, bits)] = Trit::meta;
  EXPECT_EQ(*valid_rank(w), 2 * huge + 1);
  EXPECT_EQ(valid_from_rank(2 * huge + 1, bits), w);
}

TEST(WideWidth, GrayRoundTrip62Bits) {
  Xoshiro256 rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng.next() & ((std::uint64_t{1} << 62) - 1);
    EXPECT_EQ(gray_decode(gray_encode(x, 62)), x);
  }
}

TEST(WideWidth, FsmModelMatchesRankSpecAt40Bits) {
  const std::size_t bits = 40;
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const Word g = valid_from_rank(rng.below(valid_count(bits)), bits);
    const Word h = valid_from_rank(rng.below(valid_count(bits)), bits);
    const auto [mx, mn] = GrayCompareFsm::sort2(g, h);
    const auto [smx, smn] = sort2_spec_rank(g, h);
    ASSERT_EQ(mx, smx);
    ASSERT_EQ(mn, smn);
  }
}

}  // namespace
}  // namespace mcsn
