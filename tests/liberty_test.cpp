// Liberty subset reader/writer: round trip of the default library, manual
// documents, tolerance of unknown constructs, and error reporting.

#include "mcsn/netlist/liberty.hpp"

#include <gtest/gtest.h>

#include "mcsn/ckt/sort2.hpp"
#include "mcsn/netlist/timing.hpp"

namespace mcsn {
namespace {

TEST(Liberty, RoundTripDefaultLibrary) {
  const CellLibrary& lib = CellLibrary::paper_calibrated();
  LibertyError err;
  const auto parsed = parse_liberty(to_liberty(lib), &err);
  ASSERT_TRUE(parsed) << err.message << " at line " << err.line;
  EXPECT_EQ(parsed->name(), lib.name());
  EXPECT_DOUBLE_EQ(parsed->port_cap(), lib.port_cap());
  for (int k = 0; k < kCellKindCount; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (!is_gate(kind)) continue;
    const CellParams& a = lib.params(kind);
    const CellParams& b = parsed->params(kind);
    EXPECT_DOUBLE_EQ(a.area, b.area) << cell_name(kind);
    EXPECT_DOUBLE_EQ(a.input_cap, b.input_cap) << cell_name(kind);
    EXPECT_DOUBLE_EQ(a.intrinsic, b.intrinsic) << cell_name(kind);
    EXPECT_DOUBLE_EQ(a.slope, b.slope) << cell_name(kind);
  }
}

TEST(Liberty, RoundTrippedLibraryGivesIdenticalSta) {
  const CellLibrary& lib = CellLibrary::paper_calibrated();
  const auto parsed = parse_liberty(to_liberty(lib));
  ASSERT_TRUE(parsed);
  const Netlist nl = make_sort2(8);
  EXPECT_DOUBLE_EQ(analyze_timing(nl, lib).critical_delay,
                   analyze_timing(nl, *parsed).critical_delay);
  EXPECT_DOUBLE_EQ(total_area(nl, lib), total_area(nl, *parsed));
}

TEST(Liberty, ParsesHandWrittenDocumentWithNoise) {
  const char* doc = R"(
    /* a library with stuff we do not model */
    library (demo) {
      technology (cmos);             // unknown group form
      delay_model : table_lookup;    // unknown attribute
      default_output_pin_cap : 2.5;
      operating_conditions (typical) { temperature : 25; }
      cell (INV_X1) {
        area : 0.5;
        cell_footprint : "inv";
        pin (A) { direction : input; capacitance : 0.9; }
        pin (ZN) {
          direction : output;
          function : "!A";
          timing () {
            related_pin : "A";
            intrinsic_rise : 7.0;
            intrinsic_fall : 5.0;
            rise_resistance : 1.5;
            fall_resistance : 1.25;
          }
        }
      }
      cell (WEIRD_CELL_X9) { area : 99; }
    }
  )";
  LibertyError err;
  const auto lib = parse_liberty(doc, &err);
  ASSERT_TRUE(lib) << err.message << " at line " << err.line;
  EXPECT_EQ(lib->name(), "demo");
  EXPECT_DOUBLE_EQ(lib->port_cap(), 2.5);
  const CellParams& inv = lib->params(CellKind::inv);
  EXPECT_DOUBLE_EQ(inv.area, 0.5);
  EXPECT_DOUBLE_EQ(inv.input_cap, 0.9);
  EXPECT_DOUBLE_EQ(inv.intrinsic, 7.0);   // max(rise, fall)
  EXPECT_DOUBLE_EQ(inv.slope, 1.5);
  // Unknown cells ignored; unmentioned cells stay zeroed.
  EXPECT_DOUBLE_EQ(lib->params(CellKind::and2).area, 0.0);
}

TEST(Liberty, AveragesInputPinCapacitance) {
  const char* doc = R"(library (l) {
    cell (AND2_X1) {
      area : 1;
      pin (A1) { direction : input; capacitance : 1.0; }
      pin (A2) { direction : input; capacitance : 3.0; }
      pin (Z)  { direction : output; }
    }
  })";
  const auto lib = parse_liberty(doc);
  ASSERT_TRUE(lib);
  EXPECT_DOUBLE_EQ(lib->params(CellKind::and2).input_cap, 2.0);
}

TEST(Liberty, ReportsErrors) {
  LibertyError err;
  EXPECT_FALSE(parse_liberty("module foo;", &err));
  EXPECT_FALSE(parse_liberty("library (x) { cell (INV_X1) {", &err));
  EXPECT_FALSE(err.message.empty());
  EXPECT_FALSE(parse_liberty("library (x) { area 3 }", &err));
}

}  // namespace
}  // namespace mcsn
