// Gray code tests: Table 1 golden values, bijectivity, the single-bit-change
// property, Obs. 3.1 (prefix/suffix structure), and Lemma 3.2.

#include "mcsn/core/gray.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mcsn/core/word.hpp"

namespace mcsn {
namespace {

// Paper Table 1: 4-bit binary reflected Gray code.
TEST(Gray, Table1Golden) {
  const char* expected[16] = {"0000", "0001", "0011", "0010", "0110", "0111",
                              "0101", "0100", "1100", "1101", "1111", "1110",
                              "1010", "1011", "1001", "1000"};
  for (int x = 0; x < 16; ++x) {
    EXPECT_EQ(gray_encode(static_cast<std::uint64_t>(x), 4).str(), expected[x])
        << "x=" << x;
  }
}

TEST(Gray, RecursiveDefinitionMatchesXorShift) {
  // rg_B(x) = 0 rg_{B-1}(x) for x < 2^{B-1}, else 1 rg_{B-1}(2^B-1-x).
  for (std::size_t bits = 2; bits <= 10; ++bits) {
    const std::uint64_t n = std::uint64_t{1} << bits;
    const std::uint64_t half = n / 2;
    for (std::uint64_t x = 0; x < n; ++x) {
      const Word g = gray_encode(x, bits);
      if (x < half) {
        EXPECT_EQ(g[0], Trit::zero);
        EXPECT_EQ(g.sub(1, bits - 1), gray_encode(x, bits - 1));
      } else {
        EXPECT_EQ(g[0], Trit::one);
        EXPECT_EQ(g.sub(1, bits - 1), gray_encode(n - 1 - x, bits - 1));
      }
    }
  }
}

TEST(Gray, EncodeDecodeBijection) {
  for (const std::size_t bits : {1u, 3u, 8u, 13u}) {
    const std::uint64_t n = std::uint64_t{1} << bits;
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < n; ++x) {
      const Word g = gray_encode(x, bits);
      EXPECT_EQ(gray_decode(g), x);
      seen.insert(g.to_uint());
    }
    EXPECT_EQ(seen.size(), n) << "not a bijection for B=" << bits;
  }
}

TEST(Gray, ConsecutiveCodewordsDifferInOneBit) {
  const std::size_t bits = 8;
  for (std::uint64_t x = 0; x + 1 < (1u << bits); ++x) {
    const std::uint64_t a = gray_encode(x, bits).to_uint();
    const std::uint64_t b = gray_encode(x + 1, bits).to_uint();
    const std::uint64_t diff = a ^ b;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit differs at " << x;
  }
}

TEST(Gray, FlipIndexIdentifiesTheDifferingBit) {
  const std::size_t bits = 6;
  for (std::uint64_t x = 0; x + 1 < (1u << bits); ++x) {
    const Word a = gray_encode(x, bits);
    const Word b = gray_encode(x + 1, bits);
    const std::size_t idx = gray_flip_index(x, bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (i == idx) {
        EXPECT_NE(a[i], b[i]);
      } else {
        EXPECT_EQ(a[i], b[i]);
      }
    }
  }
}

TEST(Gray, UintHelpersRoundTrip) {
  for (std::uint64_t x = 0; x < 5000; ++x) {
    EXPECT_EQ(gray_decode_uint(gray_encode_uint(x)), x);
  }
  EXPECT_EQ(gray_encode_uint(0), 0u);
  EXPECT_EQ(gray_encode_uint(1), 1u);
  EXPECT_EQ(gray_encode_uint(2), 3u);
  EXPECT_EQ(gray_encode_uint(3), 2u);
}

// Obs. 3.1 consequence used throughout the paper: the last bit of B-bit code
// toggles on every second up-count and <g> = 2<g_{1..B-1}> + par-correction.
TEST(Gray, LastBitStructure) {
  const std::size_t bits = 6;
  for (std::uint64_t x = 0; x < (1u << bits); ++x) {
    const Word g = gray_encode(x, bits);
    const Word prefix = g.sub(0, bits - 2);
    const bool last = to_bool(g[bits - 1]);
    const std::uint64_t prefix_val = gray_decode(prefix);
    // <g> = 2*<g_{1..B-1}> + XOR(par(prefix), g_B)  (proof of Obs. 3.1).
    const std::uint64_t expected =
        2 * prefix_val + ((prefix.parity() != last) ? 1u : 0u);
    EXPECT_EQ(x, expected);
  }
}

// Obs. 3.1: removing the first bit and deduplicating yields an up-down count
// through (B-1)-bit code.
TEST(Gray, SuffixCountsUpThenDown) {
  const std::size_t bits = 5;
  const std::uint64_t half = 1u << (bits - 1);
  for (std::uint64_t x = 0; x < (1u << bits); ++x) {
    const Word g = gray_encode(x, bits);
    const std::uint64_t suffix = gray_decode(g.sub(1, bits - 1));
    EXPECT_EQ(suffix, x < half ? x : (2 * half - 1 - x));
  }
}

// Lemma 3.2: at the first differing bit i, g_i = 1 iff par(g_{1..i-1}) = 0
// (for <g> > <h>).
TEST(Gray, Lemma32FirstDifferingBit) {
  const std::size_t bits = 7;
  const std::uint64_t n = 1u << bits;
  for (std::uint64_t xg = 0; xg < n; ++xg) {
    for (std::uint64_t xh = 0; xh < xg; ++xh) {
      const Word g = gray_encode(xg, bits);
      const Word h = gray_encode(xh, bits);
      std::size_t i = 0;
      while (g[i] == h[i]) ++i;
      const bool par = i == 0 ? false : g.sub(0, i - 1).parity();
      if (!par) {
        EXPECT_EQ(g[i], Trit::one) << "xg=" << xg << " xh=" << xh;
      } else {
        EXPECT_EQ(g[i], Trit::zero) << "xg=" << xg << " xh=" << xh;
      }
    }
  }
}

}  // namespace
}  // namespace mcsn
