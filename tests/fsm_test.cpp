// The comparison FSM (Fig. 2) and its operators (Tables 4/5): golden tables,
// associativity (Obs. 3.3), Theorem 4.1 (order-independence of ⋄M on valid
// strings), and Theorem 4.3 (outM correctness).

#include "mcsn/core/fsm.hpp"

#include <gtest/gtest.h>

#include "mcsn/core/gray.hpp"
#include "mcsn/core/spec.hpp"
#include "mcsn/core/valid.hpp"

namespace mcsn {
namespace {

TritPair tp(const char* s) {
  const Word w = *Word::parse(s);
  return TritPair{w[0], w[1]};
}

// Paper Table 5 (left): the ⋄ operator on stable values.
TEST(Fsm, DiamondTable5Golden) {
  const char* cols[4] = {"00", "01", "11", "10"};
  // Rows in the same order; entry [r][c] = row operand ⋄ column operand.
  const char* expect[4][4] = {
      {"00", "01", "11", "10"},
      {"01", "01", "01", "01"},
      {"11", "10", "00", "01"},
      {"10", "10", "10", "10"},
  };
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(diamond_stable(tp(cols[r]), tp(cols[c])), tp(expect[r][c]))
          << cols[r] << " . " << cols[c];
    }
  }
}

// Paper Table 5 (right): the out operator on stable values.
TEST(Fsm, OutTable5Golden) {
  const char* cols[4] = {"00", "01", "11", "10"};
  const char* expect[4][4] = {
      {"00", "10", "11", "10"},
      {"00", "10", "11", "01"},
      {"00", "01", "11", "01"},
      {"00", "01", "11", "10"},
  };
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(out_stable(tp(cols[r]), tp(cols[c])), tp(expect[r][c]))
          << cols[r] << " out " << cols[c];
    }
  }
}

// Obs. 3.3: ⋄ is associative on stable values, with identity 00.
TEST(Fsm, DiamondAssociativeWithIdentity) {
  for (unsigned a = 0; a < 4; ++a) {
    const TritPair pa = TritPair::from_bits(a);
    EXPECT_EQ(diamond_stable(TritPair::from_bits(0), pa), pa);
    for (unsigned b = 0; b < 4; ++b) {
      for (unsigned c = 0; c < 4; ++c) {
        const TritPair pb = TritPair::from_bits(b);
        const TritPair pc = TritPair::from_bits(c);
        EXPECT_EQ(diamond_stable(diamond_stable(pa, pb), pc),
                  diamond_stable(pa, diamond_stable(pb, pc)));
      }
    }
  }
}

// diamond_m restricted to stable inputs equals diamond.
TEST(Fsm, DiamondClosureExtendsStable) {
  for (unsigned a = 0; a < 4; ++a) {
    for (unsigned b = 0; b < 4; ++b) {
      EXPECT_EQ(
          diamond_m(TritPair::from_bits(a), TritPair::from_bits(b)),
          diamond_stable(TritPair::from_bits(a), TritPair::from_bits(b)));
    }
  }
}

TEST(Fsm, DiamondClosureSpotChecks) {
  // 00 ⋄M x = x for every ternary x (00 is the identity and stable).
  for (int i = 0; i < kPairCount; ++i) {
    EXPECT_EQ(diamond_m(tp("00"), TritPair::from_index(i)),
              TritPair::from_index(i));
  }
  // Absorbing states stay absorbing under metastable inputs.
  EXPECT_EQ(diamond_m(tp("01"), tp("MM")), tp("01"));
  EXPECT_EQ(diamond_m(tp("10"), tp("MM")), tp("10"));
  // Superposed state {00,01} = 0M applied to 11: 00⋄11=11, 01⋄11=01 -> M1.
  EXPECT_EQ(diamond_m(tp("0M"), tp("11")), tp("M1"));
  // MM ⋄M x covers all four states' results.
  EXPECT_EQ(diamond_m(tp("MM"), tp("01")), tp("MM"));
}

// The paper proves ⋄M behaves associatively on inputs from valid strings
// (Thm 4.1) and explicitly leaves open whether ⋄M is associative in general
// ("we remark that we did not prove that ⋄M is an associative operator").
// Exhaustive enumeration of all 9^3 ternary triples shows that it in fact
// IS associative on the whole domain — a (minor) strengthening of the
// paper's statement, recorded here as a machine-checked observation.
// (The paper's caution is still justified: closures of associative
// operators are not associative in general, cf. the +M mod 4 example in
// closure_test.cpp.)
TEST(Fsm, DiamondClosureIsAssociativeOnAllTernaryInputs) {
  for (int a = 0; a < kPairCount; ++a) {
    for (int b = 0; b < kPairCount; ++b) {
      for (int c = 0; c < kPairCount; ++c) {
        const TritPair pa = TritPair::from_index(a);
        const TritPair pb = TritPair::from_index(b);
        const TritPair pc = TritPair::from_index(c);
        EXPECT_EQ(diamond_m(diamond_m(pa, pb), pc),
                  diamond_m(pa, diamond_m(pb, pc)))
            << pa.str() << " " << pb.str() << " " << pc.str();
      }
    }
  }
}

// Theorem 4.1: on bit pairs from valid strings, every parenthesization /
// evaluation order of ⋄M yields *⋄(res x res) — checked here for all valid
// string pairs at B=5 against left fold, right fold, and balanced fold.
TEST(Fsm, Theorem41OrderIndependenceOnValidStrings) {
  const std::size_t bits = 5;
  const std::vector<Word> all = all_valid_strings(bits);

  // Brute-force RHS: superpose the stable fold over res(g) x res(h).
  const auto rhs = [bits](const Word& g, const Word& h) {
    TritPair acc{Trit::meta, Trit::meta};
    bool first = true;
    g.for_each_resolution([&](const Word& gr) {
      h.for_each_resolution([&](const Word& hr) {
        TritPair s = kFsmInit;
        for (std::size_t i = 0; i < bits; ++i) {
          s = diamond_stable(s, TritPair{gr[i], hr[i]});
        }
        if (first) {
          acc = s;
          first = false;
        } else {
          acc = TritPair{trit_star(acc.first, s.first),
                         trit_star(acc.second, s.second)};
        }
      });
    });
    return acc;
  };

  for (const Word& g : all) {
    for (const Word& h : all) {
      std::vector<TritPair> in(bits);
      for (std::size_t i = 0; i < bits; ++i) in[i] = TritPair{g[i], h[i]};

      TritPair left = in[0];
      for (std::size_t i = 1; i < bits; ++i) left = diamond_m(left, in[i]);

      TritPair right = in[bits - 1];
      for (std::size_t i = bits - 1; i-- > 0;) right = diamond_m(in[i], right);

      // Balanced: ((0,1),(2,(3,4))).
      const TritPair balanced =
          diamond_m(diamond_m(in[0], in[1]),
                    diamond_m(in[2], diamond_m(in[3], in[4])));

      const TritPair want = rhs(g, h);
      EXPECT_EQ(left, want) << g.str() << " / " << h.str();
      EXPECT_EQ(right, want) << g.str() << " / " << h.str();
      EXPECT_EQ(balanced, want) << g.str() << " / " << h.str();
    }
  }
}

// The N transform and ^⋄M: N is an involution and ^⋄M is the N-conjugate.
TEST(Fsm, DiamondHatIsNConjugate) {
  for (int a = 0; a < kPairCount; ++a) {
    const TritPair pa = TritPair::from_index(a);
    EXPECT_EQ(pa.n_transformed().n_transformed(), pa);
    for (int b = 0; b < kPairCount; ++b) {
      const TritPair pb = TritPair::from_index(b);
      EXPECT_EQ(
          diamond_hat_m(pa.n_transformed(), pb.n_transformed()),
          diamond_m(pa, pb).n_transformed());
    }
  }
}

// Theorem 4.3 via the sequential model: the FSM equals the brute-force
// closure spec on all valid string pairs for B <= 5.
TEST(Fsm, SequentialModelMatchesClosureSpec) {
  for (const std::size_t bits : {1u, 2u, 3u, 4u, 5u}) {
    const std::vector<Word> all = all_valid_strings(bits);
    for (const Word& g : all) {
      for (const Word& h : all) {
        const auto [mx, mn] = GrayCompareFsm::sort2(g, h);
        const auto [smx, smn] = sort2_spec_closure(g, h);
        EXPECT_EQ(mx, smx) << "B=" << bits << " g=" << g.str()
                           << " h=" << h.str();
        EXPECT_EQ(mn, smn) << "B=" << bits << " g=" << g.str()
                           << " h=" << h.str();
      }
    }
  }
}

TEST(Fsm, StateLabels) {
  EXPECT_EQ(fsm_state_label(tp("00")), "eq,par=0");
  EXPECT_EQ(fsm_state_label(tp("11")), "eq,par=1");
  EXPECT_EQ(fsm_state_label(tp("01")), "g<h");
  EXPECT_EQ(fsm_state_label(tp("10")), "g>h");
  EXPECT_EQ(fsm_state_label(tp("0M")), "(superposed)");
}

// Stable end-to-end: the FSM reproduces max/min by decoded value on all
// stable pairs for B = 6.
TEST(Fsm, StableSortMatchesDecodedOrder) {
  const std::size_t bits = 6;
  const std::uint64_t n = 1u << bits;
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = 0; y < n; ++y) {
      const Word g = gray_encode(x, bits);
      const Word h = gray_encode(y, bits);
      const auto [mx, mn] = GrayCompareFsm::sort2(g, h);
      EXPECT_EQ(gray_decode(mx), std::max(x, y));
      EXPECT_EQ(gray_decode(mn), std::min(x, y));
    }
  }
}

}  // namespace
}  // namespace mcsn
