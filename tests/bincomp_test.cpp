// Bin-comp baseline: correct binary sorting on stable inputs, and an
// explicit demonstration that it does NOT contain metastability.

#include "mcsn/ckt/bincomp.hpp"

#include <gtest/gtest.h>

#include "mcsn/netlist/eval.hpp"
#include "mcsn/netlist/timing.hpp"

namespace mcsn {
namespace {

TEST(Bincomp, SortsAllStablePairsExhaustively) {
  for (const std::size_t bits : {1u, 2u, 4u, 6u}) {
    const Netlist nl = make_bincomp(bits);
    ASSERT_TRUE(nl.validate());
    Evaluator ev(nl);
    Word out;
    std::vector<Trit> in;
    const std::uint64_t n = std::uint64_t{1} << bits;
    for (std::uint64_t x = 0; x < n; ++x) {
      for (std::uint64_t y = 0; y < n; ++y) {
        const Word joined = Word::from_uint(x, bits) + Word::from_uint(y, bits);
        in.assign(joined.begin(), joined.end());
        ev.run_outputs(in, out);
        EXPECT_EQ(out.sub(0, bits - 1).to_uint(), std::max(x, y));
        EXPECT_EQ(out.sub(bits, 2 * bits - 1).to_uint(), std::min(x, y));
      }
    }
  }
}

TEST(Bincomp, UsesExtendedCellsAndIsNotMcSafe) {
  const Netlist nl = make_bincomp(4);
  EXPECT_FALSE(nl.mc_safe());
}

TEST(Bincomp, GateCountFormula) {
  for (const std::size_t bits : {1u, 2u, 4u, 8u, 16u}) {
    EXPECT_EQ(make_bincomp(bits).gate_count(), bincomp_gate_count(bits));
  }
  // Same order of magnitude as the paper's optimized Bin-comp (81 @ B=16);
  // ours is unoptimized, see DESIGN.md.
  EXPECT_EQ(bincomp_gate_count(16), 7u * 16 - 2);
}

// The headline failure mode the paper's circuits avoid: one marginal input
// bit can corrupt *many* output bits (here: an M on the MSB comparison
// spreads through the select into every mux).
TEST(Bincomp, MetastabilitySpreadsThroughSelect) {
  const std::size_t bits = 4;
  const Netlist nl = make_bincomp(bits);
  // a = 1000, b = 0111 (a > b). Make a's MSB metastable: a in {0000, 1000},
  // so "greater" is genuinely uncertain and every output bit diverges.
  const Word a = *Word::parse("M000");
  const Word b = *Word::parse("0111");
  const Word out = evaluate(nl, a + b);
  std::size_t meta_outputs = 0;
  for (const Trit t : out) meta_outputs += is_meta(t) ? 1 : 0;
  // All 8 output bits are poisoned (max and min disagree on every bit
  // between the two resolutions).
  EXPECT_EQ(meta_outputs, 2 * bits);
}

// Depth is logarithmic in B (tree comparator).
TEST(Bincomp, LogDepth) {
  EXPECT_LE(logic_depth(make_bincomp(16)), 12u);
  EXPECT_LT(logic_depth(make_bincomp(16)),
            logic_depth(make_bincomp(64)));
}

}  // namespace
}  // namespace mcsn
