// Network elaboration: gate-count compositionality (Table 8 "gates" = CE
// count x 2-sort gates) and end-to-end MC sorting of valid-string vectors
// w.r.t. the Table 2 total order.

#include "mcsn/nets/elaborate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mcsn/core/valid.hpp"
#include "mcsn/nets/catalog.hpp"
#include "mcsn/netlist/eval.hpp"
#include "mcsn/util/rng.hpp"

namespace mcsn {
namespace {

// Applies the elaborated netlist to a vector of valid strings.
std::vector<Word> run_network(const Netlist& nl, const std::vector<Word>& in,
                              std::size_t bits) {
  std::vector<Trit> flat;
  for (const Word& w : in) {
    flat.insert(flat.end(), w.begin(), w.end());
  }
  const Word out = evaluate(nl, flat);
  std::vector<Word> res(in.size());
  for (std::size_t c = 0; c < in.size(); ++c) {
    res[c] = out.sub(c * bits, (c + 1) * bits - 1);
  }
  return res;
}

TEST(Elaborate, GateCountIsComparatorTimesSort2) {
  for (const std::size_t bits : {2u, 4u, 8u, 16u}) {
    const ComparatorNetwork net = optimal_4();
    const Netlist nl = elaborate_network(net, bits, sort2_builder());
    EXPECT_EQ(nl.gate_count(), net.size() * sort2_gate_count(bits));
    EXPECT_TRUE(nl.validate());
    EXPECT_TRUE(nl.mc_safe());
  }
}

TEST(Elaborate, FourSortExhaustiveSmall) {
  // All 4-vectors of 2-bit valid strings: 7^4 = 2401 cases.
  const std::size_t bits = 2;
  const Netlist nl = elaborate_network(optimal_4(), bits, sort2_builder());
  const std::vector<Word> all = all_valid_strings(bits);
  Evaluator ev(nl);
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = 0; b < all.size(); ++b) {
      for (std::size_t c = 0; c < all.size(); ++c) {
        for (std::size_t d = 0; d < all.size(); ++d) {
          const std::vector<Word> in = {all[a], all[b], all[c], all[d]};
          const std::vector<Word> out = run_network(nl, in, bits);
          std::vector<std::size_t> ranks = {a, b, c, d};
          std::sort(ranks.begin(), ranks.end());
          for (int i = 0; i < 4; ++i) {
            ASSERT_EQ(out[static_cast<std::size_t>(i)],
                      all[ranks[static_cast<std::size_t>(i)]])
                << a << " " << b << " " << c << " " << d;
          }
        }
      }
    }
  }
}

class ElaborateNetworks
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ElaborateNetworks, RandomValidVectorsSortByRank) {
  const int which = std::get<0>(GetParam());
  const std::size_t bits = std::get<1>(GetParam());
  const ComparatorNetwork net = paper_networks()[static_cast<std::size_t>(which)];
  const Netlist nl = elaborate_network(net, bits, sort2_builder());
  Xoshiro256 rng(1234 + static_cast<std::uint64_t>(which) + bits);
  const int channels = net.channels();
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Word> in;
    std::vector<std::uint64_t> ranks;
    for (int c = 0; c < channels; ++c) {
      const std::uint64_t r = rng.below(valid_count(bits));
      in.push_back(valid_from_rank(r, bits));
      ranks.push_back(r);
    }
    const std::vector<Word> out = run_network(nl, in, bits);
    std::sort(ranks.begin(), ranks.end());
    for (int c = 0; c < channels; ++c) {
      ASSERT_EQ(out[static_cast<std::size_t>(c)],
                valid_from_rank(ranks[static_cast<std::size_t>(c)], bits))
          << net.name() << " B=" << bits << " trial=" << trial;
    }
  }
}

std::string network_param_name(
    const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
  static const char* const names[] = {"sort4", "sort7", "sort10size",
                                      "sort10depth"};
  return std::string(names[std::get<0>(info.param)]) + "_b" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PaperNetworks, ElaborateNetworks,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8})),
    network_param_name);

TEST(Elaborate, BaselineBuildersProduceSameFunction) {
  const std::size_t bits = 3;
  const ComparatorNetwork net = optimal_4();
  const Netlist a = elaborate_network(net, bits, sort2_builder());
  const Netlist b = elaborate_network(net, bits, sort2_naive_trees_builder());
  const Netlist c = elaborate_network(net, bits, sort2_date17_style_builder());
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Word> in;
    for (int ch = 0; ch < 4; ++ch) {
      in.push_back(valid_from_rank(rng.below(valid_count(bits)), bits));
    }
    const auto oa = run_network(a, in, bits);
    const auto ob = run_network(b, in, bits);
    const auto oc = run_network(c, in, bits);
    EXPECT_EQ(oa, ob);
    EXPECT_EQ(oa, oc);
  }
}

TEST(Elaborate, BincompSortsStableVectors) {
  const std::size_t bits = 4;
  const Netlist nl = elaborate_network(optimal_4(), bits, bincomp_builder());
  EXPECT_FALSE(nl.mc_safe());
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Word> in;
    std::vector<std::uint64_t> vals;
    for (int c = 0; c < 4; ++c) {
      const std::uint64_t v = rng.below(16);
      in.push_back(Word::from_uint(v, bits));
      vals.push_back(v);
    }
    const std::vector<Word> out = run_network(nl, in, bits);
    std::sort(vals.begin(), vals.end());
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(out[static_cast<std::size_t>(c)].to_uint(),
                vals[static_cast<std::size_t>(c)]);
    }
  }
}

}  // namespace
}  // namespace mcsn
